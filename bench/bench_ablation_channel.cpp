// Ablation A3: RSU->OBU link characterisation — DENM delivery ratio and
// latency vs distance, line-of-sight vs blind-corner NLOS (the paper's
// §IV-C outlook: "further work is required to properly model attenuation,
// either by interference or shadowing"). Demonstrates why the intersection
// use case needs road-side infrastructure: the direct V2V path through the
// corner is shadowed out at short range while the RSU link stays clean.

#include <cstdio>
#include <map>

#include "rst/core/its_station.hpp"
#include "rst/geo/geodesy.hpp"
#include "rst/sim/stats.hpp"

namespace {

struct LinkResult {
  double delivery_ratio{0};
  rst::sim::RunningStats latency_ms{};
};

enum class Propagation { LogDistance, DualSlope, DualSlopeNakagami };

LinkResult measure_link(double distance_m, bool nlos, std::uint64_t seed,
                        Propagation propagation = Propagation::LogDistance) {
  using namespace rst;
  using namespace rst::sim::literals;

  sim::Scheduler sched;
  sim::RandomStream rng{seed, "channel_bench"};
  geo::LocalFrame frame{{41.1780, -8.6080}};

  dot11p::ChannelModel channel;
  std::unique_ptr<dot11p::PathLossModel> base;
  if (propagation == Propagation::LogDistance) {
    base = std::make_unique<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.1));
  } else {
    base = std::make_unique<dot11p::DualSlopeModel>(dot11p::DualSlopeModel::its_g5());
    if (propagation == Propagation::DualSlopeNakagami) {
      channel.fading = dot11p::FadingModel::Nakagami;
      channel.nakagami_m = 3.0;
    }
  }
  if (nlos) {
    // A wall perpendicular to the link, halfway: the blind corner.
    std::vector<dot11p::Wall> walls{{.a = {distance_m / 2, -50.0},
                                     .b = {distance_m / 2, 50.0},
                                     .obstruction_loss_db = 25.0}};
    channel.path_loss =
        std::make_shared<dot11p::ObstacleShadowingModel>(std::move(base), std::move(walls));
  } else {
    channel.path_loss = std::shared_ptr<const dot11p::PathLossModel>{std::move(base)};
  }
  channel.shadowing_sigma_db = 3.0;
  dot11p::Medium medium{sched, rng.child("medium"), std::move(channel)};
  middleware::HttpLan lan{sched, rng.child("lan")};

  core::ItsStationConfig rsu_config;
  rsu_config.station_id = 900;
  rsu_config.station_type = its::StationType::RoadSideUnit;
  rsu_config.name = "rsu";
  core::ItsStation rsu{sched,        medium, lan, frame, rsu_config,
                       [] { return its::EgoState{{0, 0}, 0, 0}; },
                       rng.child("rsu"), nullptr};

  core::ItsStationConfig obu_config;
  obu_config.station_id = 42;
  obu_config.name = "obu";
  core::ItsStation obu{sched,        medium, lan, frame, obu_config,
                       [distance_m] { return its::EgoState{{distance_m, 0}, 0, 0}; },
                       rng.child("obu"), nullptr};

  constexpr int kMessages = 200;
  std::map<std::uint16_t, sim::SimTime> sent_at;
  LinkResult result;
  int received = 0;
  obu.den().set_denm_callback([&](const its::Denm& denm, const its::GnDeliveryMeta& meta, bool) {
    const auto it = sent_at.find(denm.management.action_id.sequence_number);
    if (it == sent_at.end()) return;
    ++received;
    result.latency_ms.add((meta.delivered_at - it->second).to_milliseconds());
  });

  for (int i = 0; i < kMessages; ++i) {
    sched.schedule_at(20_ms * i, [&, i] {
      its::DenmRequest request;
      request.event_type = its::EventType::of(its::Cause::CollisionRisk, 2);
      request.event_position = {0, 0};
      request.validity = 60_s;
      request.destination_area = geo::GeoArea::circle({0, 0}, distance_m + 100.0);
      sent_at[static_cast<std::uint16_t>(i + 1)] = sched.now();
      (void)rsu.den().trigger(request);
    });
  }
  sched.run_until(20_ms * kMessages + 1_s);
  result.delivery_ratio = static_cast<double>(received) / kMessages;
  return result;
}

}  // namespace

int main() {
  const double distances[] = {50, 200, 500, 1000, 2000, 3500};

  std::printf("RSU->OBU DENM link vs distance (200 DENMs per point, log-distance n=2.1,\n");
  std::printf("3 dB shadowing; NLOS adds a 25 dB blind-corner wall)\n\n");
  std::printf("  distance (m)   LOS delivery   LOS latency (ms)   NLOS delivery   NLOS latency\n");

  std::map<double, LinkResult> los;
  std::map<double, LinkResult> nlos;
  for (double d : distances) {
    los[d] = measure_link(d, false, 21);
    nlos[d] = measure_link(d, true, 22);
    std::printf("  %12.0f   %11.1f%%   %16.2f   %12.1f%%   %12.2f\n", d,
                100.0 * los[d].delivery_ratio,
                los[d].latency_ms.count() ? los[d].latency_ms.mean() : 0.0,
                100.0 * nlos[d].delivery_ratio,
                nlos[d].latency_ms.count() ? nlos[d].latency_ms.mean() : 0.0);
  }

  std::printf("\nPropagation-model comparison (LOS delivery ratio):\n");
  std::printf("  distance (m)   log-distance n=2.1   dual-slope 2.0/3.8   dual-slope + Nakagami\n");
  std::map<double, LinkResult> dual;
  std::map<double, LinkResult> faded;
  for (double d : {200.0, 500.0, 1000.0, 2000.0}) {
    dual[d] = measure_link(d, false, 23, Propagation::DualSlope);
    faded[d] = measure_link(d, false, 24, Propagation::DualSlopeNakagami);
    std::printf("  %12.0f   %17.1f%%   %17.1f%%   %20.1f%%\n", d,
                100.0 * measure_link(d, false, 25).delivery_ratio,
                100.0 * dual[d].delivery_ratio, 100.0 * faded[d].delivery_ratio);
  }

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks ===\n");
  check("testbed-scale LOS link is essentially lossless", los[50].delivery_ratio > 0.99);
  check("LOS latency is ~1-3 ms (paper: 1.6 ms avg)",
        los[50].latency_ms.mean() > 0.5 && los[50].latency_ms.mean() < 4.0);
  check("LOS delivery degrades with distance",
        los[3500].delivery_ratio < los[50].delivery_ratio);
  check("blind-corner NLOS collapses much earlier than LOS",
        nlos[1000].delivery_ratio < 0.5 && los[1000].delivery_ratio > 0.9);
  check("the dual-slope breakpoint shortens usable range vs single slope",
        dual[1000].delivery_ratio < los[1000].delivery_ratio);
  check("Nakagami fading degrades marginal links further",
        faded[500].delivery_ratio <= dual[500].delivery_ratio + 0.02);
  return ok ? 0 : 1;
}
