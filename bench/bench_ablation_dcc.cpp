// Ablation A9: channel load and Decentralized Congestion Control. The
// paper's §IV-C outlook calls for modelling interference; here a crowd of
// background ITS stations floods the control channel with high-rate CAMs
// and we measure (a) the channel busy ratio, (b) the DENM warning latency
// RSU->OBU, with the background stations' DCC gatekeeping off vs on
// (ETSI TS 102 687 reactive).

#include <cstdio>
#include <memory>
#include <vector>

#include "rst/core/its_station.hpp"
#include "rst/its/dcc/adaptive_dcc.hpp"
#include "rst/its/dcc/channel_probe.hpp"
#include "rst/its/dcc/reactive_dcc.hpp"
#include "rst/sim/stats.hpp"

namespace {

using namespace rst;
using namespace rst::sim::literals;

struct Result {
  double cbr{0};
  double denm_delivery{0};
  sim::RunningStats denm_latency_ms{};
  std::uint64_t background_frames{0};
};

enum class Policy { Off, Reactive, Adaptive };

const char* to_label(Policy p) {
  switch (p) {
    case Policy::Off: return "off";
    case Policy::Reactive: return "react";
    case Policy::Adaptive: return "adapt";
  }
  return "?";
}

Result run_load(int n_background, Policy with_dcc, std::uint64_t seed) {
  sim::Scheduler sched;
  sim::RandomStream rng{seed, "dcc_bench"};
  geo::LocalFrame frame{{41.1780, -8.6080}};

  dot11p::ChannelModel channel;
  channel.path_loss =
      std::make_shared<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.1));
  dot11p::Medium medium{sched, rng.child("medium"), channel};
  middleware::HttpLan lan{sched, rng.child("lan")};

  // RSU and the protagonist OBU, 30 m apart.
  core::ItsStationConfig rsu_config;
  rsu_config.station_id = 900;
  rsu_config.station_type = its::StationType::RoadSideUnit;
  rsu_config.name = "rsu";
  core::ItsStation rsu{sched,        medium, lan, frame, rsu_config,
                       [] { return its::EgoState{{0, 0}, 0, 0}; },
                       rng.child("rsu"), nullptr};
  core::ItsStationConfig obu_config;
  obu_config.station_id = 42;
  obu_config.name = "obu";
  core::ItsStation obu{sched,        medium, lan, frame, obu_config,
                       [] { return its::EgoState{{30, 0}, 0, 0}; },
                       rng.child("obu"), nullptr};

  // Background stations: 10 Hz CAMs each, scattered within ~80 m.
  struct Background {
    std::unique_ptr<dot11p::Radio> radio;
    std::unique_ptr<its::GeoNetRouter> router;
    std::unique_ptr<its::CaBasicService> ca;
    std::unique_ptr<its::dcc::ChannelProbe> probe;
    std::unique_ptr<its::dcc::ReactiveDcc> dcc;
    std::unique_ptr<its::dcc::AdaptiveDcc> adaptive;
  };
  std::vector<std::unique_ptr<Background>> crowd;
  for (int i = 0; i < n_background; ++i) {
    auto bg = std::make_unique<Background>();
    auto bg_rng = rng.child("bg" + std::to_string(i));
    const geo::Vec2 pos{bg_rng.uniform(-40, 40), bg_rng.uniform(5, 80)};
    bg->radio = std::make_unique<dot11p::Radio>(
        medium, dot11p::RadioConfig{}, [pos] { return pos; }, bg_rng.child("radio"),
        "bg" + std::to_string(i));
    bg->router = std::make_unique<its::GeoNetRouter>(
        sched, *bg->radio, frame, its::GnAddress::from_station(1000 + i),
        [pos] { return its::EgoState{pos, 8.0, 0.0}; }, its::GeoNetConfig{}, bg_rng.child("gn"));
    its::CaConfig ca_config;
    // Deliberately abusive offered load (50 Hz "CAMs"): the point of the
    // ablation is to saturate the channel so congestion control matters.
    ca_config.t_gen_cam_min = 20_ms;
    ca_config.t_gen_cam_max = 20_ms;
    bg->ca = std::make_unique<its::CaBasicService>(
        sched, *bg->router, 1000 + i, [pos] { return its::CaVehicleData{.position = pos}; },
        ca_config);
    if (with_dcc != Policy::Off) {
      bg->probe = std::make_unique<its::dcc::ChannelProbe>(sched, *bg->radio);
      bg->probe->start();
      if (with_dcc == Policy::Reactive) {
        bg->dcc = std::make_unique<its::dcc::ReactiveDcc>(sched, *bg->radio, *bg->probe);
        bg->router->set_send_hook(
            [dcc = bg->dcc.get()](dot11p::Frame f) { dcc->send(std::move(f)); });
      } else {
        bg->adaptive = std::make_unique<its::dcc::AdaptiveDcc>(sched, *bg->radio, *bg->probe);
        bg->router->set_send_hook(
            [dcc = bg->adaptive.get()](dot11p::Frame f) { dcc->send(std::move(f)); });
      }
    }
    bg->ca->start();
    crowd.push_back(std::move(bg));
  }

  // CBR measured at the protagonist OBU.
  its::dcc::ChannelProbe obu_probe{sched, obu.radio()};
  obu_probe.start();

  // DENM stream RSU -> OBU, one warning every 200 ms.
  constexpr int kDenms = 50;
  std::vector<sim::SimTime> sent(kDenms + 1);
  Result result;
  int received = 0;
  obu.den().set_denm_callback([&](const its::Denm& denm, const its::GnDeliveryMeta& meta, bool) {
    const auto seq = denm.management.action_id.sequence_number;
    if (seq == 0 || seq > kDenms) return;
    ++received;
    result.denm_latency_ms.add((meta.delivered_at - sent[seq]).to_milliseconds());
  });
  for (int i = 0; i < kDenms; ++i) {
    sched.schedule_at(1_s + 200_ms * i, [&, i] {
      its::DenmRequest request;
      request.event_type = its::EventType::of(its::Cause::CollisionRisk, 2);
      request.event_position = {0, 0};
      request.destination_area = geo::GeoArea::circle({0, 0}, 200.0);
      sent[i + 1] = sched.now();
      (void)rsu.den().trigger(request);
    });
  }
  sched.run_until(1_s + 200_ms * kDenms + 1_s);

  result.cbr = obu_probe.cbr();
  result.denm_delivery = static_cast<double>(received) / kDenms;
  for (const auto& bg : crowd) result.background_frames += bg->radio->stats().tx_frames;
  return result;
}

}  // namespace

int main() {
  std::printf("Channel load vs DENM warning performance (50 DENMs, RSU->OBU at 30 m)\n\n");
  std::printf("  stations  DCC   CBR    bg frames   DENM delivery   DENM latency mean/max (ms)\n");

  Result baseline;
  Result congested_off;
  Result congested_on;
  Result congested_adaptive;
  for (int n : {0, 20, 60}) {
    for (Policy dcc : {Policy::Off, Policy::Reactive, Policy::Adaptive}) {
      if (n == 0 && dcc != Policy::Off) continue;
      const Result r = run_load(n, dcc, 77);
      std::printf("  %8d  %-5s %4.2f  %9llu   %12.0f%%   %8.2f / %.2f\n", n, to_label(dcc),
                  r.cbr, static_cast<unsigned long long>(r.background_frames),
                  100.0 * r.denm_delivery,
                  r.denm_latency_ms.count() ? r.denm_latency_ms.mean() : 0.0,
                  r.denm_latency_ms.count() ? r.denm_latency_ms.max() : 0.0);
      if (n == 0) baseline = r;
      if (n == 60 && dcc == Policy::Off) congested_off = r;
      if (n == 60 && dcc == Policy::Reactive) congested_on = r;
      if (n == 60 && dcc == Policy::Adaptive) congested_adaptive = r;
    }
  }

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks ===\n");
  check("idle channel delivers every DENM in ~1-2 ms",
        baseline.denm_delivery == 1.0 && baseline.denm_latency_ms.mean() < 4.0);
  check("60 x 10 Hz CAM load raises CBR substantially", congested_off.cbr > 0.25);
  // Note: one might expect congestion to inflate the warning latency, but
  // the DENM rides AC_VO (AIFSN 2, CWmin 3) while the CAM flood rides
  // AC_VI — EDCA's priority access keeps the safety hop near-constant even
  // at CBR ~0.7. DCC is what protects the *CAM* service itself.
  check("AC_VO keeps the warning hop under 3 ms even at high CBR",
        congested_off.denm_latency_ms.mean() < 3.0);
  check("DCC sheds background load (fewer frames on air)",
        congested_on.background_frames < congested_off.background_frames / 2);
  check("DCC lowers the measured CBR", congested_on.cbr < congested_off.cbr);
  check("warnings still delivered under DCC", congested_on.denm_delivery > 0.95);
  check("adaptive DCC also bounds the load", congested_adaptive.cbr < congested_off.cbr);
  check("adaptive DCC converges near (not far above) the 0.68 target",
        congested_adaptive.cbr < 0.8);
  return ok ? 0 : 1;
}
