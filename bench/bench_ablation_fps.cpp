// Ablation A2: the edge node's ~4 FPS YOLO loop quantises the action-point
// crossing ("a small error margin on detection exists", paper §IV-A1).
// Sweeping the processing rate shows the margin shrink and the braking
// distance tighten.

#include <cstdio>

#include "rst/core/experiment.hpp"

int main() {
  const unsigned threads = rst::core::experiment_threads_from_env();
  const long periods_ms[] = {100, 250, 500, 1000};  // 10, 4, 2, 1 FPS
  constexpr int kRuns = 25;

  std::printf("Ablation: detection-loop rate vs detection margin & braking distance (%d runs)\n\n",
              kRuns);
  std::printf("  FPS    margin mean (m)  margin max   braking mean (m)  missed stops\n");

  double margin_at_4fps = 0;
  double margin_at_10fps = 0;
  std::size_t failures_at_4fps = 1;
  std::size_t failures_at_1fps = 0;
  for (long period : periods_ms) {
    rst::core::TestbedConfig config;
    config.seed = 11000 + static_cast<std::uint64_t>(period);
    config.detection.processing_period = rst::sim::SimTime::milliseconds(period);
    const auto summary = rst::core::run_emergency_brake_experiment(config, kRuns, threads);
    rst::sim::RunningStats margin;
    for (const auto& t : summary.trials) {
      if (t.stopped_by_denm) {
        margin.add(config.hazard.action_point_distance_m - t.detection_distance_m);
      }
    }
    std::printf("  %4.1f   %15.3f  %10.3f   %16.3f  %7zu / %d\n", 1000.0 / period, margin.mean(),
                margin.max(), summary.braking_distance_m.mean(), summary.failures, kRuns);
    if (period == 250) {
      margin_at_4fps = margin.mean();
      failures_at_4fps = summary.failures;
    }
    if (period == 100) margin_at_10fps = margin.mean();
    if (period == 1000) failures_at_1fps = summary.failures;
  }

  std::printf("\nAt 1-2 FPS the car can cross the whole 1.52 m -> 0.75 m detection window\n");
  std::printf("between processed frames: missed stops are a genuine failure mode, which is\n");
  std::printf("why the paper's ~4 FPS loop (with the 1.73 m min-range default as backstop)\n");
  std::printf("is the minimum viable rate at this approach speed.\n\n");

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  check("paper's 4 FPS rate misses no stops", failures_at_4fps == 0);
  check("higher FPS shrinks the detection margin", margin_at_10fps < margin_at_4fps);
  std::printf("  [info] 1 FPS missed %zu of %d stops\n", failures_at_1fps, kRuns);
  return ok ? 0 : 1;
}
