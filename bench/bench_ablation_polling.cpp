// Ablation A1: the paper's step 4->5 interval (OBU reception to actuator
// command, avg 29.2 ms) is dominated by the Jetson's HTTP polling loop
// against the OBU's /request_denm endpoint. Sweeping the polling period
// shows the dependence and quantifies how much of the end-to-end budget the
// integration choice costs.

#include <cstdio>

#include "rst/core/experiment.hpp"

int main() {
  const unsigned threads = rst::core::experiment_threads_from_env();
  const long periods_ms[] = {5, 10, 20, 50, 100};
  constexpr int kRuns = 25;

  std::printf("Ablation: OBU polling period vs step 4->5 and total delay (%d runs each)\n\n",
              kRuns);
  std::printf("  poll (ms)   #4->#5 mean (ms)   #4->#5 max   total mean   total max\n");

  double mean_at_5 = 0;
  double mean_at_100 = 0;
  bool all_ok = true;
  for (long period : periods_ms) {
    rst::core::TestbedConfig config;
    config.seed = 9000 + static_cast<std::uint64_t>(period);
    config.message_handler.poll_period = rst::sim::SimTime::milliseconds(period);
    const auto summary = rst::core::run_emergency_brake_experiment(config, kRuns, threads);
    all_ok = all_ok && summary.failures == 0;
    std::printf("  %9ld   %16.1f   %10.1f   %10.1f   %9.1f\n", period,
                summary.obu_to_actuator_ms.mean(), summary.obu_to_actuator_ms.max(),
                summary.total_ms.mean(), summary.total_ms.max());
    if (period == 5) mean_at_5 = summary.obu_to_actuator_ms.mean();
    if (period == 100) mean_at_100 = summary.obu_to_actuator_ms.mean();
  }

  std::printf("\nExpectation: mean #4->#5 ~= poll/2 + handling; grows linearly with the period.\n");
  bool ok = all_ok;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  check("all runs stopped", all_ok);
  check("polling dominates: 100 ms poll costs >5x the 5 ms poll", mean_at_100 > 5.0 * mean_at_5);
  check("5 ms polling brings step 4->5 under 12 ms", mean_at_5 < 12.0);
  return ok ? 0 : 1;
}
