// Ablation A12: approach speed vs the fixed 1.52 m Action Point. The
// paper's margin analysis in physical terms: the vehicle travels
// v * (detection + chain latency) before power-cut and then coasts
// v^2 / 2a — at some approach speed the 1.52 m budget no longer suffices
// and the vehicle overruns the camera position. This bench finds that
// operational envelope.

#include <cstdio>

#include "rst/core/experiment.hpp"

int main() {
  const unsigned threads = rst::core::experiment_threads_from_env();
  constexpr int kRuns = 20;
  const double speeds[] = {0.8, 1.2, 1.6, 2.0, 2.4};

  std::printf("Approach speed vs stopping margin (action point 1.52 m, %d runs each)\n\n", kRuns);
  std::printf("  speed (m/s)  braking dist (m)  stop margin to camera (m)  overruns\n");

  double margin_at_12 = 0;
  double margin_at_24 = 0;
  int overruns_at_08 = 0;
  int overruns_at_24 = 0;
  for (double speed : speeds) {
    rst::core::TestbedConfig config;
    config.seed = 13000 + static_cast<std::uint64_t>(speed * 10);
    config.planner.target_speed_mps = speed;
    const auto summary = rst::core::run_emergency_brake_experiment(config, kRuns, threads);
    rst::sim::RunningStats margin;
    int overruns = 0;
    for (const auto& t : summary.trials) {
      if (!t.stopped_by_denm) {
        ++overruns;
        continue;
      }
      margin.add(t.stop_distance_to_camera_m);
      if (t.stop_distance_to_camera_m <= 0.05) ++overruns;  // reached the camera
    }
    overruns += static_cast<int>(summary.failures);
    std::printf("  %10.1f  %16.3f  %25.3f  %7d/%d\n", speed,
                summary.braking_distance_m.count() ? summary.braking_distance_m.mean() : 0.0,
                margin.count() ? margin.mean() : 0.0, overruns, kRuns);
    if (speed == 1.2) margin_at_12 = margin.mean();
    if (speed == 2.4) {
      margin_at_24 = margin.count() ? margin.mean() : 0.0;
      overruns_at_24 = overruns;
    }
    if (speed == 0.8) overruns_at_08 = overruns;
  }

  std::printf("\nKinematic budget: margin ~ action_point - v*(t_frame + t_chain) - v^2/2a.\n");
  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  check("paper's operating point (1.2 m/s) stops with healthy margin", margin_at_12 > 0.4);
  check("slow approach never overruns", overruns_at_08 == 0);
  check("fast approach (2.4 m/s) erodes or breaks the margin",
        margin_at_24 < margin_at_12 || overruns_at_24 > 0);
  return ok ? 0 : 1;
}
