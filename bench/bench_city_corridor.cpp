// City-scale campaign bench: runs the four self-checking city experiments
// (coverage raster, corridor handover, CBR-vs-density sweep, coverage-gap
// DENM delivery) at a scale above the tier-1 tests and reports wall-clock
// per experiment plus the headline metrics. The shape checks mirror the
// tier-1 assertions so a bench run doubles as a smoke test; exit status is
// non-zero when any check fails.
//
// RST_THREADS fans the CBR sweep cells over a TrialPool (0/unset = auto);
// every reported number and fingerprint is identical at any thread count.
// RST_PARTITIONS fans each city's per-receiver medium physics across
// partition domains (unset/1 = serial); fingerprints are identical at any
// partition count, and the final determinism section proves it by
// re-running the sweep serially.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "rst/core/experiment.hpp"
#include "rst/scenario/city.hpp"

namespace {

using namespace rst;

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

/// Coverage raster wall-clock for one obstacle-index setting, best of
/// `reps` so scheduler noise cannot fake a regression. Returns the map
/// fingerprint and index engagement through the out-params.
double raster_ms(const scenario::CitySpec& spec, int reps, std::uint64_t* fingerprint,
                 std::uint64_t* index_queries) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    scenario::CityScenario city{spec};
    const double step = 4.0 * static_cast<double>(spec.blocks_x * spec.blocks_x) / 16.0;
    const auto t0 = std::chrono::steady_clock::now();
    const auto map = scenario::measure_coverage(city, 0, step);
    const double ms = wall_ms_since(t0);
    if (ms < best) best = ms;
    *fingerprint = map.fingerprint();
    *index_queries = city.obstacles() != nullptr ? city.obstacles()->index_queries() : 0;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // --buildings-scale N: top of the obstacle-index scaling sweep (the wall
  // count grows linearly with the scale; scales run 1, 4, 16, ... up to N).
  long buildings_scale = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buildings-scale") == 0 && i + 1 < argc) {
      buildings_scale = std::strtol(argv[++i], nullptr, 10);
    }
  }
  if (buildings_scale < 1) buildings_scale = 1;

  const unsigned threads = core::experiment_threads_from_env();
  const unsigned partitions = core::experiment_partitions_from_env(1);
  std::printf("[threads: %u] [partitions: %u]\n\n", core::resolve_experiment_threads(threads),
              partitions);

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };

  // A city noticeably larger than the tier-1 fixtures: 8x8 blocks of
  // 120 m (~1 km on a side), buildings on, an RSU every other intersection.
  scenario::CitySpec spec;
  spec.seed = 20260808;
  spec.blocks_x = 8;
  spec.blocks_y = 8;
  spec.vehicles = 0;
  spec.rsu_every = 2;

  // --- Experiment 1: coverage raster ---------------------------------------
  {
    scenario::CityScenario city{spec};
    auto t0 = std::chrono::steady_clock::now();
    const auto map = scenario::measure_coverage(city, 0, 5.0);
    const double ms = wall_ms_since(t0);
    std::printf("=== Coverage raster (RSU 0, 5 m step) ===\n");
    std::printf("  %zu street samples, covered fraction %.3f, %.1f ms wall\n", map.samples.size(),
                map.covered_fraction, ms);
    std::printf("  fingerprint %016llx\n", static_cast<unsigned long long>(map.fingerprint()));
    check("raster produced samples", !map.samples.empty());
    check("corner RSU covers part but not all of the city",
          map.covered_fraction > 0.02 && map.covered_fraction < 0.9);
  }

  // --- Experiment 2: corridor handover --------------------------------------
  {
    scenario::CitySpec hs = spec;
    hs.rsu_corridor_only = true;  // a 5-RSU line along the arterial corridor
    auto t0 = std::chrono::steady_clock::now();
    const auto report =
        scenario::run_handover_experiment(hs, sim::SimTime::seconds(hs.extent_x_m() / 8.0 + 5.0));
    const double ms = wall_ms_since(t0);
    std::printf("\n=== Corridor handover (%.0f m drive) ===\n", hs.extent_x_m());
    std::printf("  %zu beacons heard, %d handovers, max service gap %.1f ms, "
                "max serving gap %.1f ms, %.1f ms wall\n",
                report.receptions.size(), report.handovers(),
                report.max_service_gap.to_seconds() * 1e3,
                report.max_serving_gap.to_seconds() * 1e3, ms);
    std::printf("  fingerprint %016llx\n", static_cast<unsigned long long>(report.fingerprint()));
    check("at least 3 handovers along the corridor", report.handovers() >= 3);
    check("service gap bounded below 500 ms",
          report.max_service_gap < sim::SimTime::milliseconds(500));
  }

  // --- Experiment 3: CBR vs density -----------------------------------------
  std::uint64_t sweep_fp = 0;
  {
    scenario::CitySpec cs;
    cs.seed = spec.seed;
    cs.blocks_x = 2;
    cs.blocks_y = 2;
    cs.block_m = 60.0;
    cs.buildings = false;
    cs.max_rsus = 1;
    cs.obu_cam_interval = sim::SimTime::milliseconds(20);
    const std::vector<int> densities{4, 12, 24, 40, 56};
    auto t0 = std::chrono::steady_clock::now();
    const auto curve =
        scenario::run_cbr_sweep(cs, densities, sim::SimTime::seconds(3), threads);
    const double ms = wall_ms_since(t0);
    sweep_fp = scenario::cbr_sweep_fingerprint(curve);
    std::printf("\n=== CBR vs density (20 ms CAM, 3 s per cell) ===\n");
    std::printf("  %8s  %8s  %12s  %12s\n", "vehicles", "CBR", "tx frames", "deliveries");
    bool monotone = true;
    for (std::size_t i = 0; i < curve.size(); ++i) {
      std::printf("  %8d  %8.3f  %12llu  %12llu\n", curve[i].vehicles, curve[i].cbr,
                  static_cast<unsigned long long>(curve[i].frames_on_air),
                  static_cast<unsigned long long>(curve[i].deliveries));
      if (i > 0 && curve[i].cbr < curve[i - 1].cbr) monotone = false;
    }
    std::printf("  %.1f ms wall, fingerprint %016llx\n", ms,
                static_cast<unsigned long long>(sweep_fp));
    check("CBR rises monotonically with density", monotone);
    check("densest cell loads the channel above the sparsest by 0.05",
          curve.back().cbr > curve.front().cbr + 0.05);

    scenario::CitySpec ds = cs;
    ds.enable_dcc = true;
    const auto dcc = scenario::run_cbr_sweep(ds, {densities.back()}, sim::SimTime::seconds(3),
                                             threads);
    std::printf("  DCC at %d vehicles: CBR %.3f (open loop %.3f)\n", densities.back(),
                dcc[0].cbr, curve.back().cbr);
    check("DCC caps the loaded channel below the open-loop CBR",
          dcc[0].cbr < curve.back().cbr);
  }

  // --- Experiment 4: coverage-gap DENM delivery -----------------------------
  {
    scenario::CitySpec gs;
    gs.seed = spec.seed;
    gs.blocks_x = 6;
    gs.blocks_y = 2;
    gs.path_loss_exponent = 3.5;
    gs.vehicle_speed_mps = 8.0;
    auto t0 = std::chrono::steady_clock::now();
    const auto report = scenario::run_delivery_experiment(gs, sim::SimTime::seconds(100));
    const double ms = wall_ms_since(t0);
    std::printf("\n=== Coverage-gap DENM delivery (%.0f m corridor) ===\n", gs.extent_x_m());
    std::printf("  near %d/%d, far %d/%d, first near %.1f s, first far %.1f s\n",
                report.near_delivered, report.near_targets, report.far_delivered,
                report.far_targets, report.first_near_delivery.to_seconds(),
                report.first_far_delivery.to_seconds());
    std::printf("  GN forwards %llu, KAF retransmissions %llu, best direct far budget %.1f dBm\n",
                static_cast<unsigned long long>(report.gn_forwarded),
                static_cast<unsigned long long>(report.kaf_retransmissions),
                report.best_direct_far_budget_dbm);
    std::printf("  %.1f ms wall, fingerprint %016llx\n", ms,
                static_cast<unsigned long long>(report.fingerprint()));
    check("the coverage gap is real (direct far budget below -100 dBm)",
          report.best_direct_far_budget_dbm < -100.0);
    check("near chain fully delivered", report.near_delivered == report.near_targets);
    check("far cluster fully delivered via carry + KAF",
          report.far_delivered == report.far_targets);
    check("store-carry-forward produced KAF retransmissions", report.kaf_retransmissions > 0);
  }

  // --- Obstacle index: walls vs wall-clock scaling curve --------------------
  //
  // One coverage raster per scale, indexed vs brute-force, over cities
  // whose building count grows linearly with the scale while the raster
  // step grows to hold the sample count roughly constant — so the curve
  // isolates the per-query wall-scan cost. Fingerprints must match bit for
  // bit at every scale, the counters must prove the indexed path really
  // ran, and at the top scale the index must win by >= 3x (the CI gate).
  {
    std::printf("\n=== Obstacle index scaling (up to %ldx buildings) ===\n", buildings_scale);
    std::printf("  %7s  %6s  %10s  %10s  %8s\n", "scale", "walls", "indexed ms", "brute ms",
                "speedup");
    double top_speedup = 0.0;
    long top_scale = 1;
    for (long scale = 1; scale <= buildings_scale; scale *= 4) {
      scenario::CitySpec os;
      os.seed = spec.seed;
      // 4x4 blocks at scale 1; block count (hence buildings and walls)
      // grows linearly with the scale.
      int side = 4;
      for (long s = scale; s > 1; s /= 4) side *= 2;
      os.blocks_x = side;
      os.blocks_y = side;
      os.vehicles = 0;
      os.max_rsus = 1;
      std::uint64_t fp_indexed = 0;
      std::uint64_t fp_brute = 0;
      std::uint64_t queries_indexed = 0;
      std::uint64_t queries_brute = 0;
      os.obstacle_index = true;
      const double ms_indexed = raster_ms(os, 3, &fp_indexed, &queries_indexed);
      os.obstacle_index = false;
      const double ms_brute = raster_ms(os, 3, &fp_brute, &queries_brute);
      const double speedup = ms_brute / ms_indexed;
      const std::size_t walls = static_cast<std::size_t>(side) * side * 4;
      std::printf("  %6ldx  %6zu  %10.2f  %10.2f  %7.2fx\n", scale, walls, ms_indexed, ms_brute,
                  speedup);
      check("indexed/brute coverage fingerprints identical", fp_indexed == fp_brute);
      check("indexed raster engaged the ray index", queries_indexed > 0);
      check("brute raster never touched the index", queries_brute == 0);
      if (scale >= top_scale) {
        top_scale = scale;
        top_speedup = speedup;
      }
    }
    // The >= 3x acceptance gate only makes sense once the wall count
    // dwarfs the per-sample fixed costs; it engages from the 256x scale
    // (16384 walls, the CI bench lane's setting) where the margin is
    // comfortably past noise. Smaller sweeps still enforce the
    // fingerprint and engagement checks at every scale.
    if (buildings_scale >= 256) {
      std::printf("  top-scale speedup %.2fx\n", top_speedup);
      check("obstacle index >= 3x faster at the largest building count", top_speedup >= 3.0);
    }
  }

  // --- Determinism: the sweep fingerprint must not depend on threads --------
  {
    scenario::CitySpec cs;
    cs.seed = spec.seed;
    cs.blocks_x = 2;
    cs.blocks_y = 2;
    cs.block_m = 60.0;
    cs.buildings = false;
    cs.max_rsus = 1;
    cs.obu_cam_interval = sim::SimTime::milliseconds(20);
    cs.partitions = 1;  // force serial: the sweep above adopted RST_PARTITIONS
    const auto single =
        scenario::run_cbr_sweep(cs, {4, 12, 24, 40, 56}, sim::SimTime::seconds(3), 1);
    std::printf("\n=== Determinism ===\n");
    check("CBR sweep fingerprint identical at 1 thread/1 partition vs env",
          scenario::cbr_sweep_fingerprint(single) == sweep_fp);
  }

  return ok ? 0 : 1;
}
