// A8: microbenchmarks of the wire codecs (google-benchmark). The ETSI
// stack encodes every CAM/DENM with the UPER-style codec; these benches
// establish that serialization is nowhere near the ms-scale latency budget.

#include <benchmark/benchmark.h>

#include "rst/its/messages/cam.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/core/testbed.hpp"
#include "rst/sim/scheduler.hpp"

#include <functional>

namespace {

using namespace rst::its;

Cam sample_cam() {
  Cam cam;
  cam.header.station_id = 42;
  cam.generation_delta_time = 1234;
  cam.basic.station_type = StationType::PassengerCar;
  cam.basic.reference_position.latitude = 411780000;
  cam.basic.reference_position.longitude = -86080000;
  cam.high_frequency.heading = Heading{900, 10};
  cam.high_frequency.speed = Speed::from_mps(1.2);
  LowFrequencyContainer lf;
  lf.path_history.points.assign(10, PathPoint{100, -100, 10});
  cam.low_frequency = lf;
  return cam;
}

Denm sample_denm() {
  Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 7};
  denm.management.detection_time = kSimEpochItsMs + 5000;
  denm.management.reference_time = kSimEpochItsMs + 5001;
  denm.management.event_position.latitude = 411780500;
  denm.management.event_position.longitude = -86079500;
  denm.management.station_type = StationType::RoadSideUnit;
  denm.situation = SituationContainer{.information_quality = 5,
                                      .event_type = EventType::of(Cause::CollisionRisk, 2),
                                      .linked_cause = {}};
  LocationContainer loc;
  loc.event_speed = Speed::from_mps(1.0);
  loc.traces.push_back(PathHistory{{{10, 10, 5}, {20, 20, 5}, {30, 30, 5}}});
  denm.location = loc;
  return denm;
}

void BM_CamEncode(benchmark::State& state) {
  const Cam cam = sample_cam();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.encode());
  }
}
BENCHMARK(BM_CamEncode);

void BM_CamDecode(benchmark::State& state) {
  const auto bytes = sample_cam().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cam::decode(bytes));
  }
}
BENCHMARK(BM_CamDecode);

void BM_DenmEncode(benchmark::State& state) {
  const Denm denm = sample_denm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(denm.encode());
  }
}
BENCHMARK(BM_DenmEncode);

void BM_DenmDecode(benchmark::State& state) {
  const auto bytes = sample_denm().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Denm::decode(bytes));
  }
}
BENCHMARK(BM_DenmDecode);

void BM_GnPacketRoundTrip(benchmark::State& state) {
  GnPacket pkt;
  pkt.type = GnPacketType::Gbc;
  pkt.sequence_number = 5;
  pkt.source.address = GnAddress::from_station(900);
  pkt.forwarder = pkt.source;
  pkt.destination_area = WireGeoArea{411780000, -86080000, 100, 100, 0, 0};
  pkt.payload = sample_denm().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GnPacket::decode(pkt.encode()));
  }
}
BENCHMARK(BM_GnPacketRoundTrip);

void BM_PerConstrainedInts(benchmark::State& state) {
  for (auto _ : state) {
    rst::asn1::PerEncoder e;
    for (int i = 0; i < 100; ++i) e.constrained(i, 0, 4096);
    benchmark::DoNotOptimize(e.finish());
  }
}
BENCHMARK(BM_PerConstrainedInts);

void BM_SchedulerThroughput(benchmark::State& state) {
  // Events per second of the discrete-event core (chained self-scheduling,
  // the dominant pattern in the testbed).
  for (auto _ : state) {
    rst::sim::Scheduler sched;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sched.schedule_in(rst::sim::SimTime::microseconds(10), tick);
    };
    sched.schedule_in(rst::sim::SimTime::microseconds(10), tick);
    sched.run();
    benchmark::DoNotOptimize(sched.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_FullTrialEndToEnd(benchmark::State& state) {
  // Wall-clock cost of simulating one complete emergency-braking trial
  // (~6 s of simulated time across the whole stack).
  std::uint64_t seed = 1;
  for (auto _ : state) {
    rst::core::TestbedConfig config;
    config.seed = seed++;
    rst::core::TestbedScenario scenario{config};
    benchmark::DoNotOptimize(scenario.run_emergency_brake_trial());
  }
}
BENCHMARK(BM_FullTrialEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
