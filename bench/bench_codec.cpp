// A8: microbenchmarks of the wire codecs (google-benchmark). The ETSI
// stack encodes every CAM/DENM with the UPER-style codec; these benches
// establish that serialization is nowhere near the ms-scale latency budget.

#include <benchmark/benchmark.h>

#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/its/messages/cam.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/core/testbed.hpp"
#include "rst/sim/scheduler.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

namespace {

using namespace rst::its;

Cam sample_cam() {
  Cam cam;
  cam.header.station_id = 42;
  cam.generation_delta_time = 1234;
  cam.basic.station_type = StationType::PassengerCar;
  cam.basic.reference_position.latitude = 411780000;
  cam.basic.reference_position.longitude = -86080000;
  cam.high_frequency.heading = Heading{900, 10};
  cam.high_frequency.speed = Speed::from_mps(1.2);
  LowFrequencyContainer lf;
  lf.path_history.points.assign(10, PathPoint{100, -100, 10});
  cam.low_frequency = lf;
  return cam;
}

Denm sample_denm() {
  Denm denm;
  denm.header.station_id = 900;
  denm.management.action_id = {900, 7};
  denm.management.detection_time = kSimEpochItsMs + 5000;
  denm.management.reference_time = kSimEpochItsMs + 5001;
  denm.management.event_position.latitude = 411780500;
  denm.management.event_position.longitude = -86079500;
  denm.management.station_type = StationType::RoadSideUnit;
  denm.situation = SituationContainer{.information_quality = 5,
                                      .event_type = EventType::of(Cause::CollisionRisk, 2),
                                      .linked_cause = {}};
  LocationContainer loc;
  loc.event_speed = Speed::from_mps(1.0);
  loc.traces.push_back(PathHistory{{{10, 10, 5}, {20, 20, 5}, {30, 30, 5}}});
  denm.location = loc;
  return denm;
}

void BM_CamEncode(benchmark::State& state) {
  const Cam cam = sample_cam();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.encode());
  }
}
BENCHMARK(BM_CamEncode);

void BM_CamDecode(benchmark::State& state) {
  const auto bytes = sample_cam().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Cam::decode(bytes));
  }
}
BENCHMARK(BM_CamDecode);

void BM_DenmEncode(benchmark::State& state) {
  const Denm denm = sample_denm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(denm.encode());
  }
}
BENCHMARK(BM_DenmEncode);

void BM_DenmDecode(benchmark::State& state) {
  const auto bytes = sample_denm().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Denm::decode(bytes));
  }
}
BENCHMARK(BM_DenmDecode);

void BM_GnPacketRoundTrip(benchmark::State& state) {
  GnPacket pkt;
  pkt.type = GnPacketType::Gbc;
  pkt.sequence_number = 5;
  pkt.source.address = GnAddress::from_station(900);
  pkt.forwarder = pkt.source;
  pkt.destination_area = WireGeoArea{411780000, -86080000, 100, 100, 0, 0};
  pkt.payload = sample_denm().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GnPacket::decode(pkt.encode()));
  }
}
BENCHMARK(BM_GnPacketRoundTrip);

void BM_PerConstrainedInts(benchmark::State& state) {
  for (auto _ : state) {
    rst::asn1::PerEncoder e;
    for (int i = 0; i < 100; ++i) e.constrained(i, 0, 4096);
    benchmark::DoNotOptimize(e.finish());
  }
}
BENCHMARK(BM_PerConstrainedInts);

void BM_SchedulerThroughput(benchmark::State& state) {
  // Events per second of the discrete-event core: chained self-scheduling
  // of never-cancelled events, the dominant pattern in the testbed. The
  // callback captures 32 bytes (a `this` pointer plus a few scalars, like
  // the radio/medium/service timers do). Uses the fire-and-forget path,
  // which is the idiomatic API for events that are never cancelled.
  struct Tick {
    rst::sim::Scheduler* sched;
    int* remaining;
    std::uint64_t ballast[2];  // typical extra captured state
    void operator()() const {
      benchmark::DoNotOptimize(ballast[0] + ballast[1]);
      if (--*remaining > 0) {
        sched->post_in(rst::sim::SimTime::microseconds(10), *this);
      }
    }
  };
  for (auto _ : state) {
    rst::sim::Scheduler sched;
    int remaining = 10000;
    sched.post_in(rst::sim::SimTime::microseconds(10), Tick{&sched, &remaining, {1, 2}});
    sched.run();
    benchmark::DoNotOptimize(sched.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // The DCC/CBF pattern: most scheduled events are cancelled and
  // rescheduled before they fire. Exercises handle allocation (pooled)
  // and cancelled-entry purging at the heap top.
  for (auto _ : state) {
    rst::sim::Scheduler sched;
    std::vector<rst::sim::EventHandle> handles;
    handles.reserve(64);
    int fired = 0;
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 64; ++i) {
        handles.push_back(sched.schedule_in(
            rst::sim::SimTime::microseconds(100 + i), [&fired] { ++fired; }));
      }
      // Cancel all but one, then drain up to the survivor.
      for (std::size_t i = 0; i + 1 < handles.size(); ++i) handles[i].cancel();
      sched.run();
      handles.clear();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100 * 64);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_MediumBroadcast(benchmark::State& state) {
  // Cost of one 802.11p broadcast delivered to N receivers, end to end
  // through the MAC/PHY pipeline. With the shared-payload Frame this is
  // free of per-receiver payload copies.
  const auto n_receivers = static_cast<std::size_t>(state.range(0));
  rst::sim::Scheduler sched;
  rst::sim::RandomStream rng{1234, "bench_broadcast"};
  rst::dot11p::ChannelModel channel;
  channel.path_loss = std::make_shared<rst::dot11p::LogDistanceModel>(
      rst::dot11p::LogDistanceModel::its_g5(2.0));
  channel.shadowing_sigma_db = 0.0;
  rst::dot11p::Medium medium{sched, rng.child("medium"), channel};

  std::vector<std::unique_ptr<rst::dot11p::Radio>> radios;
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i <= n_receivers; ++i) {
    // Sender at the origin, receivers on a 10 m circle (all in range).
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(n_receivers + 1);
    const rst::geo::Vec2 pos = i == 0 ? rst::geo::Vec2{0.0, 0.0}
                                      : rst::geo::Vec2{10.0 * std::cos(angle), 10.0 * std::sin(angle)};
    radios.push_back(std::make_unique<rst::dot11p::Radio>(
        medium, rst::dot11p::RadioConfig{}, [pos] { return pos; },
        rng.child("radio" + std::to_string(i)), "radio" + std::to_string(i)));
    if (i > 0) {
      radios.back()->set_receive_callback(
          [&delivered](const rst::dot11p::Frame& f, const rst::dot11p::RxInfo&) {
            delivered += f.payload.size();
          });
    }
  }

  rst::dot11p::Frame frame;
  frame.payload.assign(300, 0xAB);
  for (auto _ : state) {
    radios[0]->send(frame);
    sched.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * n_receivers);
}
BENCHMARK(BM_MediumBroadcast)->Arg(2)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ObstacleLoss(benchmark::State& state) {
  // One ObstacleShadowingModel::loss_db evaluation over a square building
  // grid (four walls per building). Args: wall count in {16, 256, 4096},
  // indexed (1) vs brute-force (0), deep-NLOS diagonal (1) vs short LOS
  // street ray (0). The indexed/brute answers are bit-identical (checked
  // here per run); only the wall-clock should move.
  const auto n_walls = static_cast<std::size_t>(state.range(0));
  const bool indexed = state.range(1) != 0;
  const bool deep_nlos = state.range(2) != 0;

  const std::size_t buildings = n_walls / 4;
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(buildings))));
  std::vector<rst::dot11p::Wall> walls;
  walls.reserve(n_walls);
  for (std::size_t b = 0; b < buildings; ++b) {
    const double x0 = static_cast<double>(b % side) * 100.0 + 20.0;
    const double y0 = static_cast<double>(b / side) * 100.0 + 20.0;
    const double x1 = x0 + 60.0;
    const double y1 = y0 + 60.0;
    walls.push_back({{x0, y0}, {x1, y0}, 12.0});
    walls.push_back({{x1, y0}, {x1, y1}, 12.0});
    walls.push_back({{x1, y1}, {x0, y1}, 12.0});
    walls.push_back({{x0, y1}, {x0, y0}, 12.0});
  }
  const double extent = static_cast<double>(side) * 100.0;

  auto base = std::make_unique<rst::dot11p::LogDistanceModel>(
      rst::dot11p::LogDistanceModel::its_g5(2.8));
  const rst::dot11p::ObstacleShadowingModel model{std::move(base), walls, indexed};
  auto check_base = std::make_unique<rst::dot11p::LogDistanceModel>(
      rst::dot11p::LogDistanceModel::its_g5(2.8));
  const rst::dot11p::ObstacleShadowingModel check{std::move(check_base), std::move(walls),
                                                  !indexed};

  // Deep NLOS: the full-map diagonal crosses every building row. LOS: a
  // short hop along the open street between building rows.
  const rst::geo::Vec2 tx = deep_nlos ? rst::geo::Vec2{0.0, 0.0} : rst::geo::Vec2{0.0, 5.0};
  const rst::geo::Vec2 rx =
      deep_nlos ? rst::geo::Vec2{extent, extent} : rst::geo::Vec2{90.0, 5.0};
  if (model.loss_db(tx, rx) != check.loss_db(tx, rx)) {
    state.SkipWithError("indexed/brute obstacle loss diverged");
    return;
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(model.loss_db(tx, rx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObstacleLoss)
    ->ArgsProduct({{16, 256, 4096}, {0, 1}, {0, 1}})
    ->ArgNames({"walls", "indexed", "nlos"});

void BM_TraceRecordTyped(benchmark::State& state) {
  // Steady-state cost of one typed trace event (the instrumentation tax on
  // every pipeline stage): a POD write into the pre-sized ring, no strings.
  rst::sim::Trace trace;
  trace.set_event_capacity(1 << 20);
  std::uint64_t i = 0;
  for (auto _ : state) {
    trace.record_event(rst::sim::SimTime::nanoseconds(static_cast<std::int64_t>(i)),
                       rst::sim::Stage::DenmTx, 900, rst::sim::pack_action(900, 1));
    if (++i == (1 << 20)) {
      state.PauseTiming();
      trace.clear();
      i = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordTyped);

void BM_FullTrialEndToEnd(benchmark::State& state) {
  // Wall-clock cost of simulating one complete emergency-braking trial
  // (~6 s of simulated time across the whole stack).
  std::uint64_t seed = 1;
  for (auto _ : state) {
    rst::core::TestbedConfig config;
    config.seed = seed++;
    rst::core::TestbedScenario scenario{config};
    benchmark::DoNotOptimize(scenario.run_emergency_brake_trial());
  }
}
BENCHMARK(BM_FullTrialEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
