// Dense-fleet medium scaling: N stations CAM-beaconing at 10 Hz for 10
// simulated seconds, once through the legacy linear-scan medium, once
// through the spatially-indexed medium (grid culling + cached link
// budgets + O(1) interference accounting), and — when partitions > 1 —
// once more with the indexed medium's per-receiver physics fanned across
// a partition-domain worker team. Prints wall-clock per mode and the
// speedups, plus delivery stats as a sanity check that the spatial run
// still simulates a loaded channel rather than a silent one. The
// partitioned run must reproduce the serial spatial run's counters bit
// for bit; any drift fails the bench.
//
// Usage: bench_dense_fleet [--partitions P] [N ...]
//        (default sizes: 64 256 1024; P defaults to RST_PARTITIONS, 1 = off)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "rst/core/experiment.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/sim/partitioned_scheduler.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace {

using namespace rst;

constexpr double kBeaconHz = 10.0;
constexpr std::int64_t kSimSeconds = 10;
constexpr std::size_t kCamBytes = 300;

struct RunStats {
  double wall_ms{0.0};
  dot11p::Medium::Stats medium;
  std::uint64_t rx_total{0};
};

RunStats run_fleet(std::size_t n, bool spatial, unsigned partitions) {
  sim::Scheduler sched;
  sim::RandomStream rng{987654321, "dense_fleet"};

  // Dense-urban propagation (exponent 3.2): the hearing radius at the
  // -95 dBm floor is ~200 m, so a station's neighbourhood is a few dozen
  // stations while the fleet spans kilometres — the regime the spatial
  // index is built for. Flatter exponents inflate the radius until nearly
  // every link is physically relevant and no index can help. Shadowing
  // keeps a per-link Gaussian draw in the budget so the partitioned
  // fan-out has real math to parallelise, not just comparisons.
  dot11p::ChannelModel channel;
  channel.path_loss = std::make_shared<dot11p::LogDistanceModel>(
      dot11p::LogDistanceModel::its_g5(3.2));
  channel.shadowing_sigma_db = 3.0;
  channel.per_link_streams = spatial;  // the legacy baseline stays untouched
  channel.spatial_index = spatial;
  channel.power_floor_dbm = -95.0;
  dot11p::Medium medium{sched, rng.child("medium"), channel};

  std::unique_ptr<sim::PartitionedScheduler> engine;
  if (spatial && partitions > 1) {
    sim::PartitionedScheduler::Config pcfg;
    pcfg.partitions = partitions;
    engine = std::make_unique<sim::PartitionedScheduler>(pcfg);
    medium.set_partition_engine(engine.get());
  }

  // Square lattice at 50 m pitch: the geometry of a saturated urban
  // corridor. Each station hears a neighbourhood; the fleet as a whole is
  // far wider than one hearing radius, so culling has real work to do.
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<std::unique_ptr<dot11p::Radio>> radios;
  std::uint64_t rx_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 pos{static_cast<double>(i % side) * 50.0,
                        static_cast<double>(i / side) * 50.0};
    radios.push_back(std::make_unique<dot11p::Radio>(
        medium, dot11p::RadioConfig{}, [pos] { return pos; },
        rng.child("radio" + std::to_string(i)), "radio" + std::to_string(i)));
    radios.back()->set_receive_callback(
        [&rx_total](const dot11p::Frame&, const dot11p::RxInfo&) { ++rx_total; });
  }

  // 10 Hz CAM cadence, transmission phases spread across the period the
  // way ETSI CAM generation decorrelates stations.
  const auto period = sim::SimTime::from_seconds(1.0 / kBeaconHz);
  for (std::size_t i = 0; i < n; ++i) {
    const auto phase = sim::SimTime::microseconds(
        static_cast<std::int64_t>(i) * 100'000 / static_cast<std::int64_t>(n));
    for (std::int64_t k = 0; k < kSimSeconds * static_cast<std::int64_t>(kBeaconHz); ++k) {
      sched.post_at(phase + period * k, [&radios, i] {
        dot11p::Frame f;
        f.payload.assign(kCamBytes, 0xCA);
        f.ac = dot11p::AccessCategory::BestEffort;
        radios[i]->send(std::move(f));
      });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sched.run_until(sim::SimTime::seconds(kSimSeconds));
  const auto t1 = std::chrono::steady_clock::now();

  RunStats out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.medium = medium.stats();
  out.rx_total = rx_total;
  return out;
}

bool stats_identical(const dot11p::Medium::Stats& a, const dot11p::Medium::Stats& b) {
  return a.frames_transmitted == b.frames_transmitted && a.deliveries == b.deliveries &&
         a.dropped_half_duplex == b.dropped_half_duplex &&
         a.dropped_below_sensitivity == b.dropped_below_sensitivity &&
         a.dropped_error == b.dropped_error && a.culled_below_floor == b.culled_below_floor &&
         a.budget_cache_hits == b.budget_cache_hits &&
         a.budget_cache_misses == b.budget_cache_misses;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned partitions = rst::core::experiment_partitions_from_env(1);
  std::vector<std::size_t> fleet_sizes;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      continue;
    }
    fleet_sizes.push_back(static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10)));
  }
  if (fleet_sizes.empty()) fleet_sizes = {64, 256, 1024};

  std::printf("dense-fleet medium scaling: %lld s simulated, %.0f Hz CAM, %zu-byte PSDU",
              static_cast<long long>(kSimSeconds), kBeaconHz, kCamBytes);
  if (partitions > 1) std::printf("  [partitions: %u]", partitions);
  std::printf("\n\n");
  std::printf("%6s  %12s  %12s  %8s", "N", "linear (ms)", "spatial (ms)", "speedup");
  if (partitions > 1) std::printf("  %14s  %10s", "partition (ms)", "par-speedup");
  std::printf("  %14s  %14s  %12s\n", "tx frames", "deliveries", "culled");

  for (const std::size_t n : fleet_sizes) {
    const RunStats linear = run_fleet(n, /*spatial=*/false, 1);
    const RunStats spatial = run_fleet(n, /*spatial=*/true, 1);
    const double speedup = linear.wall_ms / spatial.wall_ms;
    std::printf("%6zu  %12.1f  %12.1f  %7.2fx", n, linear.wall_ms, spatial.wall_ms, speedup);
    const RunStats* checked = &spatial;
    RunStats part;
    if (partitions > 1) {
      part = run_fleet(n, /*spatial=*/true, partitions);
      std::printf("  %14.1f  %9.2fx", part.wall_ms, spatial.wall_ms / part.wall_ms);
      checked = &part;
      if (!stats_identical(spatial.medium, part.medium) || spatial.rx_total != part.rx_total) {
        std::printf("\n  !! partitioned run diverged from the serial spatial run\n");
        return 1;
      }
    }
    std::printf("  %14llu  %14llu  %12llu\n",
                static_cast<unsigned long long>(checked->medium.frames_transmitted),
                static_cast<unsigned long long>(checked->medium.deliveries),
                static_cast<unsigned long long>(checked->medium.culled_below_floor));
    if (checked->rx_total != checked->medium.deliveries) {
      std::printf("  !! rx callback count %llu disagrees with medium deliveries\n",
                  static_cast<unsigned long long>(checked->rx_total));
      return 1;
    }
  }
  return 0;
}
