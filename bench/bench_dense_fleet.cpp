// Dense-fleet medium scaling: N stations CAM-beaconing at 10 Hz for 10
// simulated seconds, once through the legacy linear-scan medium and once
// through the spatially-indexed medium (grid culling + cached link
// budgets + O(1) interference accounting). Prints wall-clock per mode and
// the speedup, plus delivery stats as a sanity check that the spatial run
// still simulates a loaded channel rather than a silent one.
//
// Usage: bench_dense_fleet [N ...]   (default: 64 256 1024)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace {

using namespace rst;

constexpr double kBeaconHz = 10.0;
constexpr std::int64_t kSimSeconds = 10;
constexpr std::size_t kCamBytes = 300;

struct RunStats {
  double wall_ms{0.0};
  dot11p::Medium::Stats medium;
  std::uint64_t rx_total{0};
};

RunStats run_fleet(std::size_t n, bool spatial) {
  sim::Scheduler sched;
  sim::RandomStream rng{987654321, "dense_fleet"};

  // Dense-urban propagation (exponent 3.2): the hearing radius at the
  // -95 dBm floor is ~200 m, so a station's neighbourhood is a few dozen
  // stations while the fleet spans kilometres — the regime the spatial
  // index is built for. Flatter exponents inflate the radius until nearly
  // every link is physically relevant and no index can help.
  dot11p::ChannelModel channel;
  channel.path_loss = std::make_shared<dot11p::LogDistanceModel>(
      dot11p::LogDistanceModel::its_g5(3.2));
  channel.shadowing_sigma_db = 3.0;
  channel.per_link_streams = spatial;  // the legacy baseline stays untouched
  channel.spatial_index = spatial;
  channel.power_floor_dbm = -95.0;
  dot11p::Medium medium{sched, rng.child("medium"), channel};

  // Square lattice at 50 m pitch: the geometry of a saturated urban
  // corridor. Each station hears a neighbourhood; the fleet as a whole is
  // far wider than one hearing radius, so culling has real work to do.
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<std::unique_ptr<dot11p::Radio>> radios;
  std::uint64_t rx_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 pos{static_cast<double>(i % side) * 50.0,
                        static_cast<double>(i / side) * 50.0};
    radios.push_back(std::make_unique<dot11p::Radio>(
        medium, dot11p::RadioConfig{}, [pos] { return pos; },
        rng.child("radio" + std::to_string(i)), "radio" + std::to_string(i)));
    radios.back()->set_receive_callback(
        [&rx_total](const dot11p::Frame&, const dot11p::RxInfo&) { ++rx_total; });
  }

  // 10 Hz CAM cadence, transmission phases spread across the period the
  // way ETSI CAM generation decorrelates stations.
  const auto period = sim::SimTime::from_seconds(1.0 / kBeaconHz);
  for (std::size_t i = 0; i < n; ++i) {
    const auto phase = sim::SimTime::microseconds(
        static_cast<std::int64_t>(i) * 100'000 / static_cast<std::int64_t>(n));
    for (std::int64_t k = 0; k < kSimSeconds * static_cast<std::int64_t>(kBeaconHz); ++k) {
      sched.post_at(phase + period * k, [&radios, i] {
        dot11p::Frame f;
        f.payload.assign(kCamBytes, 0xCA);
        f.ac = dot11p::AccessCategory::BestEffort;
        radios[i]->send(std::move(f));
      });
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sched.run_until(sim::SimTime::seconds(kSimSeconds));
  const auto t1 = std::chrono::steady_clock::now();

  RunStats out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.medium = medium.stats();
  out.rx_total = rx_total;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> fleet_sizes;
  for (int i = 1; i < argc; ++i) {
    fleet_sizes.push_back(static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10)));
  }
  if (fleet_sizes.empty()) fleet_sizes = {64, 256, 1024};

  std::printf("dense-fleet medium scaling: %lld s simulated, %.0f Hz CAM, %zu-byte PSDU\n\n",
              static_cast<long long>(kSimSeconds), kBeaconHz, kCamBytes);
  std::printf("%6s  %12s  %12s  %8s  %14s  %14s  %12s\n", "N", "linear (ms)", "spatial (ms)",
              "speedup", "tx frames", "deliveries", "culled");

  for (const std::size_t n : fleet_sizes) {
    const RunStats linear = run_fleet(n, /*spatial=*/false);
    const RunStats spatial = run_fleet(n, /*spatial=*/true);
    const double speedup = linear.wall_ms / spatial.wall_ms;
    std::printf("%6zu  %12.1f  %12.1f  %7.2fx  %14llu  %14llu  %12llu\n", n, linear.wall_ms,
                spatial.wall_ms, speedup,
                static_cast<unsigned long long>(spatial.medium.frames_transmitted),
                static_cast<unsigned long long>(spatial.medium.deliveries),
                static_cast<unsigned long long>(spatial.medium.culled_below_floor));
    if (spatial.rx_total != spatial.medium.deliveries) {
      std::printf("  !! rx callback count %llu disagrees with medium deliveries\n",
                  static_cast<unsigned long long>(spatial.rx_total));
      return 1;
    }
  }
  return 0;
}
