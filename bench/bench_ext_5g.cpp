// Extension A5 (paper §V): "We are currently installing a 5G module in the
// robotic vehicles, to compare the same detection-to-action delay over a
// different interface and network." Compares the RSU->vehicle warning hop
// over ITS-G5 (802.11p broadcast) against cellular profiles, and composes
// the resulting end-to-end detection-to-action estimate.

#include <cstdio>
#include <vector>

#include "rst/cellular/cellular_link.hpp"
#include "rst/core/experiment.hpp"

namespace {

rst::sim::RunningStats measure_cellular(const rst::cellular::CellularConfig& config,
                                        std::uint64_t seed, int messages) {
  using namespace rst;
  using namespace rst::sim::literals;
  sim::Scheduler sched;
  cellular::CellularNetwork net{sched, sim::RandomStream{seed, "5g"}, config};
  auto& rsu = net.create_endpoint("rsu");
  auto& car = net.create_endpoint("car");
  (void)rsu;

  sim::RunningStats latency;
  std::vector<sim::SimTime> sent(messages);
  car.set_receive_callback([&](const std::vector<std::uint8_t>& payload, const std::string&) {
    const std::size_t i = payload[0] | (payload[1] << 8);
    latency.add((sched.now() - sent[i]).to_milliseconds());
  });
  for (int i = 0; i < messages; ++i) {
    sched.schedule_at(50_ms * i, [&, i] {
      sent[i] = sched.now();
      net.send("rsu", "car",
               {static_cast<std::uint8_t>(i & 0xff), static_cast<std::uint8_t>(i >> 8)});
    });
  }
  sched.run();
  return latency;
}

}  // namespace

int main() {
  constexpr int kMessages = 500;

  // Reference: the ITS-G5 hop measured in the full testbed campaign.
  rst::core::TestbedConfig config;
  config.seed = 31337;
  const auto testbed = rst::core::run_emergency_brake_experiment(config, 30);
  const double its_g5_hop = testbed.rsu_to_obu_ms.mean();
  const double non_radio_budget =
      testbed.detection_to_rsu_ms.mean() + testbed.obu_to_actuator_ms.mean();

  const auto embb = measure_cellular(rst::cellular::CellularConfig{}, 1, kMessages);
  const auto urllc = measure_cellular(rst::cellular::CellularConfig::urllc(), 2, kMessages);

  std::printf("Warning-hop latency by interface (RSU -> vehicle):\n\n");
  std::printf("  %-28s mean %6.2f ms   min %6.2f   max %6.2f\n", "ITS-G5 / IEEE 802.11p",
              its_g5_hop, testbed.rsu_to_obu_ms.min(), testbed.rsu_to_obu_ms.max());
  std::printf("  %-28s mean %6.2f ms   min %6.2f   max %6.2f\n", "5G (eMBB-like profile)",
              embb.mean(), embb.min(), embb.max());
  std::printf("  %-28s mean %6.2f ms   min %6.2f   max %6.2f\n", "5G (URLLC-like profile)",
              urllc.mean(), urllc.min(), urllc.max());

  std::printf("\nComposed detection-to-action estimate (non-radio budget %.1f ms):\n", non_radio_budget);
  std::printf("  over ITS-G5: %6.1f ms\n", non_radio_budget + its_g5_hop);
  std::printf("  over eMBB:   %6.1f ms\n", non_radio_budget + embb.mean());
  std::printf("  over URLLC:  %6.1f ms\n", non_radio_budget + urllc.mean());

  // Full-testbed comparison: the cellular bearer delivers by push to the
  // vehicle modem, so it also removes the OBU polling loop from the chain.
  std::printf("\nFull-testbed detection-to-action by bearer (15 trials each):\n");
  std::printf("  %-28s %-12s %-12s %-12s %s\n", "bearer", "det->RSU", "radio hop", "to actuators",
              "total (ms)");
  struct Row {
    rst::core::WarningPath path;
    const char* name;
    double total;
  };
  std::vector<Row> rows{{rst::core::WarningPath::ItsG5, "ITS-G5 + polling", 0},
                        {rst::core::WarningPath::CellularEmbb, "5G eMBB + push", 0},
                        {rst::core::WarningPath::CellularUrllc, "5G URLLC + push", 0}};
  for (auto& row : rows) {
    rst::core::TestbedConfig c;
    c.seed = 90210;
    c.warning_path = row.path;
    const auto s = rst::core::run_emergency_brake_experiment(c, 15);
    row.total = s.total_ms.mean();
    std::printf("  %-28s %10.1f   %10.1f   %10.1f   %8.1f\n", row.name,
                s.detection_to_rsu_ms.mean(), s.rsu_to_obu_ms.mean(),
                s.obu_to_actuator_ms.mean(), s.total_ms.mean());
  }

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks ===\n");
  check("ITS-G5 direct broadcast beats the eMBB cellular path", its_g5_hop < embb.mean());
  check("URLLC narrows the gap to a few ms", urllc.mean() < 6.0);
  check("even over eMBB, detection-to-action stays under 100 ms",
        non_radio_budget + embb.mean() < 100.0);
  check("push delivery largely offsets the slower eMBB radio (full testbed)",
        rows[1].total < rows[0].total + 20.0);
  check("URLLC + push beats ITS-G5 + polling end-to-end", rows[2].total < rows[0].total);
  return ok ? 0 : 1;
}
