// Extension A4 (paper §V): "carry out more measurements to produce a more
// comprehensive CDF of end-to-end latency, and possibly model it with an
// appropriate distribution so that it can be used by the community."
// Runs a 300-trial campaign and fits candidate parametric families by
// moment matching, ranking them with the Kolmogorov-Smirnov statistic.

#include <cstdio>

#include "rst/core/experiment.hpp"
#include "rst/sim/stats.hpp"

int main() {
  rst::core::TestbedConfig config;
  config.seed = 60000;
  constexpr int kRuns = 300;

  std::printf("Fitting the end-to-end latency distribution (%d trials)...\n\n", kRuns);
  const auto summary = rst::core::run_emergency_brake_experiment(config, kRuns);
  const auto samples = summary.total_samples_ms();
  std::printf("  samples: %zu  mean %.1f ms  sd %.1f  min %.1f  max %.1f\n\n", samples.size(),
              summary.total_ms.mean(), summary.total_ms.stddev(), summary.total_ms.min(),
              summary.total_ms.max());

  const auto fits = rst::sim::fit_distributions(samples);
  std::printf("  %-22s %-12s %-12s %s\n", "family", "p1", "p2", "KS statistic");
  for (const auto& f : fits) {
    std::printf("  %-22s %-12.4f %-12.4f %.4f\n", f.family.c_str(), f.p1, f.p2, f.ks_statistic);
  }

  const auto& best = fits.front();
  std::printf("\n  best fit: %s (KS %.4f)\n", best.family.c_str(), best.ks_statistic);
  std::printf("  fitted CDF checkpoints: F(40)=%.2f F(60)=%.2f F(80)=%.2f F(100)=%.2f\n",
              best.cdf(40), best.cdf(60), best.cdf(80), best.cdf(100));

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Checks ===\n");
  check("all trials succeeded", summary.failures == 0);
  check("a family fits with KS < 0.15", best.ks_statistic < 0.15);
  check("fitted model puts ~all mass under 100 ms", best.cdf(100.0) > 0.97);
  return ok ? 0 : 1;
}
