// Extension A11: hazard trigger policy — the paper's fixed Action-Point
// threshold vs kinematic collision prediction (closest point of approach
// against the CAM-known protagonist, "assess a potential collision from
// consulting the LDM", §III-A). Geometry: the camera watches the crossing
// road; the protagonist approaches the intersection on its own road and is
// known to the infrastructure only through its CAMs.

#include <cmath>
#include <cstdio>

#include "rst/core/testbed.hpp"

namespace {

using namespace rst;
using namespace rst::sim::literals;

struct Outcome {
  bool stopped{false};
  double trigger_time_s{0};
  double stop_distance_to_conflict_m{0};
  double min_separation_m{0};
};

Outcome run_mode(roadside::HazardTriggerMode mode, std::uint64_t seed, bool gnss = false,
                 double gnss_bias_sigma_m = 0.8) {
  core::TestbedConfig config;
  config.seed = seed;
  // Camera at the intersection, watching the crossing road (east).
  config.camera_position = {0, 8.0};
  config.camera_facing_rad = M_PI / 2;
  config.hazard.trigger_mode = mode;
  // In CPA mode widen the DENM destination around the conflict point.
  config.hazard.destination_radius_m = 150.0;
  config.use_gnss = gnss;
  config.gnss.initial_bias_sigma_m = gnss_bias_sigma_m;

  core::TestbedScenario scenario{config};
  // Crossing road user: reaches the camera's 1.52 m action point late, at
  // about the same time the protagonist reaches the intersection.
  scenario.add_road_user({7.8, 8.0}, 3 * M_PI / 2, 1.0, roadside::Presentation::StopSign);

  const auto r = scenario.run_emergency_brake_trial(20_s);
  Outcome out;
  out.stopped = scenario.dynamics().power_cut() && scenario.dynamics().stopped();
  const auto* trig = scenario.trace().find("hazard_service", "", sim::SimTime::zero());
  out.trigger_time_s = trig ? trig->when.to_seconds() : -1.0;
  out.stop_distance_to_conflict_m = geo::distance(scenario.dynamics().position(), {0, 8.0});
  out.min_separation_m = scenario.min_separation_m();
  (void)r;
  return out;
}

}  // namespace

int main() {
  std::printf("Hazard trigger policy at a watched crossing (protagonist known via CAMs)\n\n");

  const Outcome action_point = run_mode(roadside::HazardTriggerMode::ActionPointDistance, 51);
  const Outcome cpa = run_mode(roadside::HazardTriggerMode::CpaPrediction, 51);

  const auto row = [](const char* name, const Outcome& o) {
    std::printf("  %-22s stopped=%-3s  DENM trigger at %5.2f s  stop margin %5.2f m  min sep %5.2f m\n",
                name, o.stopped ? "yes" : "NO", o.trigger_time_s, o.stop_distance_to_conflict_m,
                o.min_separation_m);
  };
  row("action-point (paper)", action_point);
  row("CPA prediction", cpa);

  // Robustness: the protagonist's CAMs now carry GNSS error instead of
  // ground truth — the prediction must still hold up.
  const Outcome cpa_gnss = run_mode(roadside::HazardTriggerMode::CpaPrediction, 51, true);
  row("CPA + GNSS positions", cpa_gnss);

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks ===\n");
  check("both policies stop the protagonist", action_point.stopped && cpa.stopped);
  check("CPA warns earlier than the fixed threshold",
        cpa.trigger_time_s > 0 && cpa.trigger_time_s < action_point.trigger_time_s - 0.5);
  check("earlier warning leaves a larger stopping margin",
        cpa.stop_distance_to_conflict_m > action_point.stop_distance_to_conflict_m + 0.3);
  check("both avoid an actual collision", action_point.min_separation_m > 0.55 &&
                                              cpa.min_separation_m > 0.55);
  check("CPA survives GNSS-grade position error",
        cpa_gnss.stopped && cpa_gnss.min_separation_m > 0.55);
  return ok ? 0 : 1;
}
