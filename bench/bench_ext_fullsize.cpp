// Extension A7 (paper §IV-B outlook): "Using parameters of the full-size
// vehicles, such as stopping power, weight and frontal area, models can be
// drawn to map braking distances observed in the testbed to real-world
// ones." Maps the measured 1/10-scale braking behaviour to full size under
// Froude similarity and compares against a physical braking model.

#include <cstdio>

#include "rst/core/experiment.hpp"
#include "rst/core/scale_model.hpp"

int main() {
  using namespace rst::core;

  TestbedConfig config;
  config.seed = 50505;
  const auto summary = run_emergency_brake_experiment(config, 20);
  const double model_speed = config.planner.target_speed_mps;
  const double model_distance = summary.braking_distance_m.mean();
  const double model_decel = implied_deceleration_mps2(model_speed, model_distance);

  std::printf("Testbed measurement: v = %.2f m/s, braking distance %.2f m, implied decel %.2f m/s^2\n\n",
              model_speed, model_distance, model_decel);

  constexpr double kScale = 10.0;
  const double full_speed = froude_equivalent_speed_mps(model_speed, kScale);
  const double froude_distance = froude_equivalent_distance_m(model_distance, kScale);
  std::printf("Froude mapping (1/%.0f scale): equivalent speed %.2f m/s (%.1f km/h),\n", kScale,
              full_speed, full_speed * 3.6);
  std::printf("  scaled braking distance %.2f m\n\n", froude_distance);

  const auto car = FullSizeVehicle::passenger_car();
  const auto truck = FullSizeVehicle::heavy_truck();
  std::printf("Physical model at the equivalent speed (no reaction time):\n");
  const double car_distance = full_size_braking_distance_m(car, full_speed);
  const double truck_distance = full_size_braking_distance_m(truck, full_speed);
  std::printf("  passenger car:  %.2f m (mu=%.2f)\n", car_distance, car.friction_mu);
  std::printf("  heavy truck:    %.2f m (mu=%.2f)\n", truck_distance, truck.friction_mu);
  std::printf("  with 58.4 ms network-aided 'reaction': car %.2f m\n\n",
              full_size_braking_distance_m(car, full_speed, 0.0584));

  std::printf("Urban reference: 50 km/h emergency stop\n");
  const double v50 = 50.0 / 3.6;
  std::printf("  passenger car: %.2f m braking + %.2f m travelled during the 58.4 ms\n",
              full_size_braking_distance_m(car, v50), v50 * 0.0584);
  std::printf("  vs a ~1.2 s human reaction: %.2f m travelled before braking\n\n", v50 * 1.2);

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("=== Checks ===\n");
  check("testbed decel within the coast-down regime (1..5 m/s^2)",
        model_decel > 1.0 && model_decel < 5.0);
  check("Froude speed scales by sqrt(10)", std::abs(full_speed / model_speed - std::sqrt(10.0)) < 1e-9);
  check("truck stops longer than car", truck_distance > car_distance);
  check("network reaction (58 ms) adds far less than human reaction (1.2 s)",
        v50 * 0.0584 < 0.1 * (v50 * 1.2));
  return ok ? 0 : 1;
}
