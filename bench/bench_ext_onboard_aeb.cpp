// Extension A10: on-board AEB vs network-aided braking. The paper's
// motivation: in-car ADAS "may fail in complex scenarios, such as
// intersections" — a LiDAR cannot see around a blind corner, while the
// road-side infrastructure can. Two experiments:
//   1) open road, stationary obstacle ahead: the on-board AEB works;
//   2) blind corner, crossing road user: AEB sees the hazard only at the
//      last moment (occlusion), infrastructure warns far earlier.

#include <cmath>
#include <cstdio>

#include "rst/core/testbed.hpp"

namespace {

using namespace rst;
using namespace rst::sim::literals;

core::TestbedConfig blind_corner_config(std::uint64_t seed) {
  core::TestbedConfig config;
  config.seed = seed;
  config.enable_lidar_aeb = true;
  // Wall along the protagonist's right side hiding the crossing road.
  config.walls.push_back({.a = {0.8, 7.2}, .b = {6.0, 7.2}, .obstruction_loss_db = 35.0});
  config.walls.push_back({.a = {0.8, 7.2}, .b = {0.8, 1.0}, .obstruction_loss_db = 35.0});
  config.hazard.action_point_distance_m = 2.0;
  return config;
}

}  // namespace

int main() {
  std::printf("=== (1) Open road, stationary obstacle: on-board AEB ===\n");
  double aeb_stop_margin = 0;
  {
    core::TestbedConfig config;
    config.seed = 3001;
    config.enable_lidar_aeb = true;
    core::TestbedScenario scenario{config};
    scenario.add_static_obstacle({0, 7.0}, roadside::Presentation::BodyShell);
    scenario.start_services();
    scenario.hazard().stop();  // network assistance off: AEB alone
    scenario.scheduler().run_until(15_s);
    const bool stopped = scenario.dynamics().power_cut() && scenario.dynamics().stopped();
    const double gap = geo::distance(scenario.dynamics().position(), {0, 7.0});
    aeb_stop_margin = stopped && scenario.aeb()->triggered() ? gap : 0.0;
    std::printf("  AEB stop: %s, final gap to obstacle %.2f m (trigger: %s)\n",
                stopped ? "yes" : "NO", gap, scenario.aeb()->triggered() ? "AEB" : "none");
  }

  std::printf("\n=== (2) Blind corner, crossing road user ===\n");
  double aeb_only_separation = 0;
  double v2x_separation = 0;
  // A fast crossing road user timed to meet the protagonist at the
  // intersection: it emerges from behind the wall too late for on-board
  // sensing to matter, but the infrastructure has already seen the
  // protagonist reach the action point and warned it.
  const geo::Vec2 user_start{13.4, 8.0};
  const double user_speed = 2.0;
  {
    core::TestbedScenario scenario{blind_corner_config(3002)};
    scenario.add_road_user(user_start, 3 * M_PI / 2, user_speed,
                           roadside::Presentation::StopSign);
    scenario.start_services();
    scenario.hazard().stop();  // AEB alone
    scenario.scheduler().run_until(15_s);
    aeb_only_separation = scenario.min_separation_m();
    std::printf("  AEB only:        min separation %.2f m -> %s\n", aeb_only_separation,
                aeb_only_separation < 0.55 ? "COLLISION" : "safe");
  }
  {
    core::TestbedScenario scenario{blind_corner_config(3002)};
    scenario.add_road_user(user_start, 3 * M_PI / 2, user_speed,
                           roadside::Presentation::StopSign);
    const auto r = scenario.run_emergency_brake_trial(15_s);
    v2x_separation = scenario.min_separation_m();
    std::printf("  AEB + V2X infra: min separation %.2f m -> %s (warning total %.1f ms)\n",
                v2x_separation, v2x_separation < 0.55 ? "COLLISION" : "safe", r.meas_total_ms);
  }

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks ===\n");
  check("on open road the AEB stops short of the obstacle", aeb_stop_margin > 0.1);
  check("at the blind corner, AEB alone gets dangerously close",
        aeb_only_separation < v2x_separation);
  check("infrastructure warning keeps a safe separation", v2x_separation > 0.55);
  return ok ? 0 : 1;
}
