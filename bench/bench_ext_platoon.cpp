// Extension A6 (paper §V): detection-to-action delay for an entire
// connected platoon, including multi-hop DENM forwarding and the
// multi-technology arrangement (5G-capable leader, 802.11p followers).

#include <algorithm>
#include <cstdio>

#include "rst/core/platoon.hpp"
#include "rst/sim/stats.hpp"

namespace {

struct Row {
  double worst_ms{0};
  double min_gap_m{1e9};
  bool all_stopped{true};
};

Row run_config(rst::core::PlatoonConfig config, int repeats) {
  Row row;
  rst::sim::RunningStats worst;
  for (int i = 0; i < repeats; ++i) {
    config.seed += 17;
    rst::core::PlatoonScenario scenario{config};
    const auto result = scenario.run_emergency_stop();
    row.all_stopped = row.all_stopped && result.all_stopped;
    row.min_gap_m = std::min(row.min_gap_m, result.min_gap_m);
    worst.add(result.worst_detection_to_action_ms);
  }
  row.worst_ms = worst.mean();
  return row;
}

}  // namespace

int main() {
  constexpr int kRepeats = 10;

  std::printf("Platoon-level detection-to-action (mean worst-vehicle delay, %d runs each)\n\n",
              kRepeats);
  std::printf("  size   802.11p direct   802.11p multi-hop   5G leader + 802.11p\n");

  double direct_at_8 = 0;
  double multihop_at_8 = 0;
  double mixed_at_8 = 0;
  bool all_stopped = true;
  for (int n : {2, 4, 8}) {
    rst::core::PlatoonConfig direct;
    direct.seed = 100 + n;
    direct.n_vehicles = n;
    const Row a = run_config(direct, kRepeats);

    rst::core::PlatoonConfig multihop = direct;
    multihop.seed = 200 + n;
    multihop.spacing_m = 12.0;
    multihop.radio.tx_power_dbm = -18.0;
    multihop.radio.cs_threshold_dbm = -80.0;
    const Row b = run_config(multihop, kRepeats);

    rst::core::PlatoonConfig mixed = direct;
    mixed.seed = 300 + n;
    mixed.leader_uses_cellular = true;
    const Row c = run_config(mixed, kRepeats);

    all_stopped = all_stopped && a.all_stopped && b.all_stopped && c.all_stopped;
    std::printf("  %4d   %11.1f ms   %14.1f ms   %15.1f ms\n", n, a.worst_ms, b.worst_ms,
                c.worst_ms);
    if (n == 8) {
      direct_at_8 = a.worst_ms;
      multihop_at_8 = b.worst_ms;
      mixed_at_8 = c.worst_ms;
    }
  }

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  // Rear-end safety: with the paper's 1.2 m spacing, is the skew in
  // per-vehicle reaction times (polling phase, forwarding) ever enough to
  // close the inter-vehicle gap during the stop?
  rst::core::PlatoonConfig tight;
  tight.seed = 999;
  tight.n_vehicles = 6;
  tight.spacing_m = 1.2;
  const Row tight_row = run_config(tight, kRepeats);
  std::printf("\nRear-end check (6 vehicles, 1.2 m spacing, 10 runs):\n");
  std::printf("  independent cruise: min bumper-to-bumper gap %.2f m\n", tight_row.min_gap_m);

  rst::core::PlatoonConfig cacc = tight;
  cacc.seed = 1999;
  cacc.use_cacc = true;
  cacc.spacing_m = 1.4;
  const Row cacc_row = run_config(cacc, kRepeats);
  std::printf("  CAM-fed CACC following: min gap %.2f m (gap actively regulated)\n",
              cacc_row.min_gap_m);

  std::printf("\n=== Shape checks ===\n");
  check("every vehicle stopped in every configuration", all_stopped && tight_row.all_stopped);
  check("multi-hop forwarding costs more than direct broadcast", multihop_at_8 > direct_at_8);
  check("mixed 5G+forwarding sits between direct and deep multi-hop",
        mixed_at_8 > direct_at_8 && mixed_at_8 < multihop_at_8 + 100.0);
  check("even an 8-vehicle multi-hop platoon reacts within 1 s", multihop_at_8 < 1000.0);
  check("no rear-end at 1.2 m spacing (reaction-time skew stays small)",
        tight_row.min_gap_m > 0.0);
  check("CACC platoon stops cleanly too", cacc_row.all_stopped && cacc_row.min_gap_m > 0.0);
  return ok ? 0 : 1;
}
