// Extension A13: GeoNetworking relay around the blind corner. When the
// building shadows the direct RSU->vehicle radio path (the same wall that
// blocks the optical LOS), a parked ETSI-capable vehicle with line of
// sight to both sides forwards the geo-broadcast DENM — multi-hop
// GeoNetworking recovering connectivity that single-hop 802.11p loses.

#include <cstdio>
#include <map>
#include <memory>

#include "rst/core/its_station.hpp"
#include "rst/geo/geodesy.hpp"
#include "rst/sim/stats.hpp"

namespace {

using namespace rst;
using namespace rst::sim::literals;

struct RelayResult {
  double delivery{0};
  sim::RunningStats latency_ms{};
  std::uint64_t relay_forwards{0};
};

RelayResult run(bool with_relay, std::uint64_t seed) {
  sim::Scheduler sched;
  sim::RandomStream rng{seed, "relay_bench"};
  geo::LocalFrame frame{{41.1780, -8.6080}};

  // Geometry: RSU at the intersection corner, the protagonist's OBU down
  // the shadowed street, a thick building wall between them. The relay is
  // parked at the intersection mouth with LOS to both.
  // The building occupies the quadrant x > 5, y < 30; the streets are the
  // L-shaped region around it. The relay parks at the corner mouth with
  // line of sight into both streets.
  const geo::Vec2 rsu_pos{40, 40};
  const geo::Vec2 obu_pos{0, -60};
  const geo::Vec2 relay_pos{0, 36};
  std::vector<dot11p::Wall> walls{{.a = {5, 30}, .b = {80, 30}, .obstruction_loss_db = 60.0},
                                  {.a = {5, 30}, .b = {5, -80}, .obstruction_loss_db = 60.0}};

  dot11p::ChannelModel channel;
  channel.path_loss = std::make_shared<dot11p::ObstacleShadowingModel>(
      std::make_unique<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.5)),
      std::move(walls));
  channel.shadowing_sigma_db = 2.0;
  dot11p::Medium medium{sched, rng.child("medium"), channel};
  middleware::HttpLan lan{sched, rng.child("lan")};

  core::ItsStationConfig rsu_config;
  rsu_config.station_id = 900;
  rsu_config.station_type = its::StationType::RoadSideUnit;
  rsu_config.name = "rsu";
  core::ItsStation rsu{sched,        medium, lan, frame, rsu_config,
                       [rsu_pos] { return its::EgoState{rsu_pos, 0, 0}; },
                       rng.child("rsu"), nullptr};
  core::ItsStationConfig obu_config;
  obu_config.station_id = 42;
  obu_config.name = "obu";
  core::ItsStation obu{sched,        medium, lan, frame, obu_config,
                       [obu_pos] { return its::EgoState{obu_pos, 0, 0}; },
                       rng.child("obu"), nullptr};
  std::unique_ptr<core::ItsStation> relay;
  if (with_relay) {
    core::ItsStationConfig relay_config;
    relay_config.station_id = 77;
    relay_config.name = "relay";
    relay = std::make_unique<core::ItsStation>(
        sched, medium, lan, frame, relay_config,
        [relay_pos] { return its::EgoState{relay_pos, 0, 0}; }, rng.child("relay"), nullptr);
  }

  constexpr int kMessages = 100;
  std::map<std::uint16_t, sim::SimTime> sent_at;
  RelayResult result;
  int received = 0;
  obu.den().set_denm_callback([&](const its::Denm& denm, const its::GnDeliveryMeta& meta, bool) {
    const auto it = sent_at.find(denm.management.action_id.sequence_number);
    if (it == sent_at.end()) return;
    ++received;
    result.latency_ms.add((meta.delivered_at - it->second).to_milliseconds());
  });
  for (int i = 0; i < kMessages; ++i) {
    sched.schedule_at(50_ms * i, [&, i] {
      its::DenmRequest request;
      request.event_type = its::EventType::of(its::Cause::CollisionRisk, 2);
      request.event_position = {0, -40};
      request.destination_area = geo::GeoArea::circle({0, -40}, 120.0);
      sent_at[static_cast<std::uint16_t>(i + 1)] = sched.now();
      (void)rsu.den().trigger(request);
    });
  }
  sched.run_until(50_ms * kMessages + 2_s);
  result.delivery = static_cast<double>(received) / kMessages;
  if (relay) result.relay_forwards = relay->router().stats().forwarded;
  return result;
}

}  // namespace

int main() {
  std::printf("DENM delivery around the blind corner (60 dB wall, 100 DENMs)\n\n");
  const RelayResult direct = run(false, 31);
  const RelayResult relayed = run(true, 32);
  std::printf("  without relay: delivery %5.1f%%\n", 100.0 * direct.delivery);
  std::printf("  with relay:    delivery %5.1f%%, latency %.2f ms mean / %.2f max, %llu forwards\n",
              100.0 * relayed.delivery,
              relayed.latency_ms.count() ? relayed.latency_ms.mean() : 0.0,
              relayed.latency_ms.count() ? relayed.latency_ms.max() : 0.0,
              static_cast<unsigned long long>(relayed.relay_forwards));

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks ===\n");
  check("the wall kills the direct path", direct.delivery < 0.1);
  check("the relay restores delivery", relayed.delivery > 0.95);
  // The extra latency is the contention-based-forwarding timer: with a
  // single candidate forwarder nobody beats the relay to it, so the full
  // CBF delay (~ max_delay * (1 - progress)) elapses before the rebroadcast
  // — still far inside the 100 ms budget.
  check("the relayed warning still fits the 100 ms budget",
        relayed.latency_ms.count() && relayed.latency_ms.mean() < 100.0);
  check("the relay actually forwarded the packets",
        relayed.relay_forwards >= static_cast<std::uint64_t>(90));
  return ok ? 0 : 1;
}
