// Fig. 10 reproduction: "video frames to obtain detection-to-stop period".
// The paper reads the road-side camera recording: in run #4 the vehicle
// crosses the 1.52 m action point, is detected at 1.45 m (the ~4 FPS
// processing quantises the crossing), and comes to a stop ~200 ms of video
// later. This bench replays a trial and prints the same frame-style log,
// then checks the detection-margin effect of the 4 FPS processing.

#include <cstdio>

#include "rst/core/experiment.hpp"

int main() {
  rst::core::TestbedConfig config;
  config.seed = 2024;
  rst::core::TestbedScenario scenario{config};
  const auto r = scenario.run_emergency_brake_trial();
  if (!r.stopped_by_denm) {
    std::printf("trial failed\n");
    return 1;
  }

  const auto mmss = [](rst::sim::SimTime t) {
    const auto ms = t.count_ns() / 1'000'000;
    return std::pair<long, long>{ms / 1000, ms % 1000};
  };

  std::printf("Fig. 10: video-frame reading of one run (S:ms timestamps)\n\n");
  const auto [s1, ms1] = mmss(r.t_cross_actual);
  const auto [s2, ms2] = mmss(r.t_detection);
  const auto [s6, ms6] = mmss(r.t_halt);
  std::printf("  %02ld:%03ld  vehicle crosses the %.2f m action point\n", s1, ms1,
              config.hazard.action_point_distance_m);
  std::printf("  %02ld:%03ld  detection output: vehicle flagged at %.2f m\n", s2, ms2,
              r.detection_distance_m);
  std::printf("  %02ld:%03ld  vehicle has come to a stop (%.2f m from camera)\n", s6, ms6,
              r.stop_distance_to_camera_m);
  std::printf("\n  crossing -> detection   %6.1f ms (frame quantisation at ~4 FPS)\n",
              (r.t_detection - r.t_cross_actual).to_milliseconds());
  std::printf("  detection -> full stop  %6.1f ms\n",
              (r.t_halt - r.t_detection).to_milliseconds());
  std::printf("  (paper run #4: action point 1.52 m, detected at 1.45 m, stop 200 ms after)\n\n");

  // Aggregate over runs: the detection margin (estimated distance below the
  // threshold at the detection instant) is bounded by speed / frame rate.
  rst::core::TestbedConfig campaign = config;
  campaign.seed = 3030;
  const auto summary = rst::core::run_emergency_brake_experiment(campaign, 30);
  rst::sim::RunningStats margin;
  rst::sim::RunningStats detect_to_stop_ms;
  for (const auto& t : summary.trials) {
    if (t.stopped_by_denm) {
      margin.add(campaign.hazard.action_point_distance_m - t.detection_distance_m);
      detect_to_stop_ms.add((t.t_halt - t.t_detection).to_milliseconds());
    }
  }
  std::printf("Detection margin over 30 runs: mean %.3f m, max %.3f m\n", margin.mean(),
              margin.max());
  std::printf("Detection-to-full-stop over 30 runs: mean %.0f ms, min %.0f, max %.0f\n",
              detect_to_stop_ms.mean(), detect_to_stop_ms.min(), detect_to_stop_ms.max());
  const double frame_travel = campaign.planner.target_speed_mps *
                              campaign.detection.processing_period.to_seconds();
  std::printf("Upper bound from 4 FPS processing: speed x period = %.3f m (+ noise)\n\n",
              frame_travel);

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("=== Shape checks vs paper ===\n");
  check("detection occurs below the action-point threshold (late, like 1.45 < 1.52)",
        margin.mean() > 0.0);
  // A single missed detection frame (p ~ 3%) doubles the margin, so the
  // bound is two processed frames of travel plus estimator noise.
  check("margin bounded by two processed frames of travel (+noise)",
        margin.max() < 2.0 * frame_travel + 0.15);
  check("detection-to-stop period below 1 s",
        (r.t_halt - r.t_detection).to_milliseconds() < 1000.0);
  return ok ? 0 : 1;
}
