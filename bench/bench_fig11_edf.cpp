// Fig. 11 reproduction: empirical distribution function of the total
// detection-to-actuation delay samples. The paper plots the EDF of its five
// Table II totals (60% between 44-55 ms, 40% between 70-71 ms) and, as
// future work, wants "a more comprehensive CDF of end-to-end latency".
// This bench prints the 5-sample EDF and a 200-run EDF.

#include <cstdio>

#include "rst/core/experiment.hpp"
#include "rst/sim/stats.hpp"

namespace {

void print_edf(const rst::sim::Edf& edf) {
  for (const auto& [x, f] : edf.steps()) {
    const int bar = static_cast<int>(f * 50);
    std::printf("  %7.1f ms  %5.2f  |", x, f);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // RST_THREADS fans the trial sweeps over a worker pool (0/unset = auto);
  // every reported number is identical at any thread count.
  const unsigned threads = rst::core::experiment_threads_from_env();
  std::printf("[threads: %u]\n\n", rst::core::resolve_experiment_threads(threads));

  rst::core::TestbedConfig config;
  config.seed = 42;

  std::printf("=== Fig. 11a: EDF of the paper-protocol 5-run campaign ===\n");
  const auto small = rst::core::run_emergency_brake_experiment(config, 5, threads);
  const rst::sim::Edf small_edf{small.total_samples_ms()};
  print_edf(small_edf);

  std::printf("\n=== Fig. 11b: comprehensive EDF, 200 runs (paper future work) ===\n");
  rst::core::TestbedConfig big_config = config;
  big_config.seed = 5000;
  const auto big = rst::core::run_emergency_brake_experiment(big_config, 200, threads);
  const rst::sim::Edf edf{big.total_samples_ms()};
  rst::sim::Histogram hist{30.0, 100.0, 14};
  for (double v : big.total_samples_ms()) hist.add(v);
  std::printf("%s\n", hist.render(46).c_str());
  std::printf("  quantiles: p10 %.1f  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f ms\n",
              edf.quantile(0.10), edf.quantile(0.50), edf.quantile(0.90), edf.quantile(0.99),
              edf.sorted_samples().back());

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks vs paper ===\n");
  check("5-run EDF is a valid distribution function (ends at 1.0)",
        small_edf.steps().back().second == 1.0);
  check("most probability mass between 40 and 80 ms", edf.fraction_in(40, 80) > 0.8);
  check("no sample above 100 ms (headline claim)", edf.at(100.0) == 1.0);
  check("median within 45..70 ms (paper avg 58.4)",
        edf.quantile(0.5) > 45 && edf.quantile(0.5) < 70);
  check("spread covers tens of ms (poll-phase driven)",
        edf.quantile(0.95) - edf.quantile(0.05) > 20.0);
  return ok ? 0 : 1;
}
