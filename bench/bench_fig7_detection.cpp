// Fig. 7 reproduction: the paper's exploration of how to get a steady,
// reliable YOLO detection of the scale vehicle. The bare robot flickers as
// 'motorbike', the Traxxas body shell oscillates between 'car' and 'truck'
// with short range, and the cardboard stop sign is resilient. Here the
// photographic figure becomes a measurable detection-reliability sweep.

#include <cstdio>
#include <map>
#include <string>

#include "rst/roadside/camera.hpp"
#include "rst/roadside/yolo_sim.hpp"
#include "rst/sim/scheduler.hpp"

namespace {

struct SweepResult {
  double detection_rate{0};
  std::map<std::string, int> labels;
  double max_detected_distance{0};
};

SweepResult sweep(rst::roadside::Presentation presentation, double distance_m, int frames,
                  std::uint64_t seed) {
  using namespace rst;
  sim::Scheduler sched;
  roadside::RoadsideCamera camera{sched, {.position = {0, 0}, .facing_rad = 0.0}};
  geo::Vec2 object_pos{0, distance_m};
  camera.add_object({1, [&object_pos] { return object_pos; }, presentation, "car"});
  roadside::YoloSimulator yolo{sim::RandomStream{seed, "fig7"}};

  SweepResult result;
  int detections = 0;
  for (int i = 0; i < frames; ++i) {
    const auto frame = camera.capture();
    for (const auto& det : yolo.detect(frame)) {
      ++detections;
      ++result.labels[det.label];
      result.max_detected_distance = std::max(result.max_detected_distance, distance_m);
    }
  }
  result.detection_rate = static_cast<double>(detections) / frames;
  return result;
}

const char* name(rst::roadside::Presentation p) {
  switch (p) {
    case rst::roadside::Presentation::BareRobot: return "bare robot";
    case rst::roadside::Presentation::BodyShell: return "Traxxas body shell";
    case rst::roadside::Presentation::StopSign: return "cardboard stop sign";
  }
  return "?";
}

}  // namespace

int main() {
  using rst::roadside::Presentation;
  constexpr int kFrames = 2000;
  const double distances[] = {0.9, 1.5, 2.0, 2.4, 3.0, 4.0, 5.0};

  std::printf("Fig. 7: detection reliability per presentation (per-frame detection rate)\n\n");
  std::printf("%-22s", "distance (m):");
  for (double d : distances) std::printf(" %6.1f", d);
  std::printf("\n");

  std::map<Presentation, double> rate_at_1m5;
  for (Presentation p : {Presentation::BareRobot, Presentation::BodyShell, Presentation::StopSign}) {
    std::printf("%-22s", name(p));
    for (double d : distances) {
      const auto r = sweep(p, d, kFrames, 99);
      std::printf(" %5.0f%%", 100.0 * r.detection_rate);
      if (d == 1.5) rate_at_1m5[p] = r.detection_rate;
    }
    std::printf("\n");
  }

  std::printf("\nPer-frame class labels at 1.5 m (%d frames):\n", kFrames);
  for (Presentation p : {Presentation::BareRobot, Presentation::BodyShell, Presentation::StopSign}) {
    const auto r = sweep(p, 1.5, kFrames, 123);
    std::printf("  %-22s", name(p));
    for (const auto& [label, count] : r.labels) {
      std::printf(" %s:%d", label.c_str(), count);
    }
    std::printf("\n");
  }

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("\n=== Shape checks vs paper ===\n");
  check("stop sign detected most reliably",
        rate_at_1m5[Presentation::StopSign] > rate_at_1m5[Presentation::BodyShell] &&
            rate_at_1m5[Presentation::StopSign] > rate_at_1m5[Presentation::BareRobot]);
  check("body shell better than bare robot",
        rate_at_1m5[Presentation::BodyShell] > rate_at_1m5[Presentation::BareRobot]);
  check("stop sign detection rate above 90%", rate_at_1m5[Presentation::StopSign] > 0.9);
  const auto shell_labels = sweep(Presentation::BodyShell, 1.5, kFrames, 123).labels;
  check("body shell oscillates between car and truck",
        shell_labels.count("car") == 1 && shell_labels.count("truck") == 1);
  const auto bare = sweep(Presentation::BareRobot, 3.0, kFrames, 5);
  check("bare robot undetectable beyond ~2 m", bare.detection_rate == 0.0);
  return ok ? 0 : 1;
}
