// Table I reproduction: the DENM cause/sub-cause code registry the paper
// excerpts from EN 302 637-3 (codes 9, 10, 97, 99 and the stationary-vehicle
// codes its §II-C discusses). Spec content — regenerated from the library's
// registry so any drift from the standard set fails visibly.

#include <cstdio>

#include "rst/its/messages/cause_code.hpp"

int main() {
  using namespace rst::its;
  std::printf("Table I: available cause codes (from EN 302 637-3)\n");
  std::printf("%-6s %-45s %-5s %s\n", "Cause", "Cause description", "Sub", "Sub cause description");
  std::printf("%.110s\n",
              "--------------------------------------------------------------------------------"
              "------------------------------");
  std::uint8_t last_cause = 255;
  for (const auto& e : cause_code_registry()) {
    const bool first = e.cause_code != last_cause;
    std::printf("%-6s %-45s %-5u %s\n",
                first ? std::to_string(e.cause_code).c_str() : "",
                first ? std::string{e.cause_description}.c_str() : "",
                e.sub_cause_code, std::string{e.sub_cause_description}.c_str());
    last_cause = e.cause_code;
  }

  std::printf("\nPaper Table I rows spot-check:\n");
  const struct {
    std::uint8_t cause, sub;
  } checks[] = {{9, 0}, {10, 0}, {97, 1}, {97, 2}, {97, 3}, {97, 4},
                {99, 1}, {99, 2}, {99, 3}, {99, 4}, {99, 5}, {99, 6}, {99, 7}};
  bool all_present = true;
  for (const auto& c : checks) {
    const auto desc = describe_sub_cause(c.cause, c.sub);
    const bool present = desc != "unknown";
    all_present = all_present && present;
    std::printf("  cause %3u / sub %u -> %s\n", c.cause, c.sub, std::string{desc}.c_str());
  }
  std::printf("\n%s\n", all_present ? "OK: every paper Table I row is present."
                                    : "MISMATCH: registry is missing paper rows!");
  return all_present ? 0 : 1;
}
