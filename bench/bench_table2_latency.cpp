// Table II reproduction: time-interval measurements of the emergency
// braking chain (paper §IV-A). Runs the paper's 5-trial campaign, then a
// 50-trial campaign for tighter statistics, and checks the paper's shape
// claims: the wireless hop is a minimal part (~1.6 ms avg), the total
// averages ~58 ms and never exceeds 100 ms.

#include <cstdio>

#include "rst/core/experiment.hpp"

int main() {
  // RST_THREADS fans the trial sweeps over a worker pool (0/unset = auto);
  // every reported number is identical at any thread count.
  const unsigned threads = rst::core::experiment_threads_from_env();
  std::printf("[threads: %u]\n\n", rst::core::resolve_experiment_threads(threads));

  rst::core::TestbedConfig config;
  config.seed = 42;

  std::printf("=== Table II: 5-run campaign (paper protocol) ===\n");
  const auto paper_scale = rst::core::run_emergency_brake_experiment(config, 5, threads);
  std::printf("%s\n", rst::core::format_table2(paper_scale).c_str());

  std::printf("=== Extended 50-run campaign ===\n");
  rst::core::TestbedConfig extended = config;
  extended.seed = 4242;
  const auto ext = rst::core::run_emergency_brake_experiment(extended, 50, threads);
  const auto row = [](const char* label, const rst::sim::RunningStats& s, double paper_avg) {
    std::printf("  %-28s mean %6.1f ms  sd %5.1f  min %6.1f  max %6.1f   (paper avg %.1f)\n",
                label, s.mean(), s.stddev(), s.min(), s.max(), paper_avg);
  };
  row("#2->#3 detection -> RSU", ext.detection_to_rsu_ms, 27.6);
  row("#3->#4 RSU -> OBU (air)", ext.rsu_to_obu_ms, 1.6);
  row("#4->#5 OBU -> actuators", ext.obu_to_actuator_ms, 29.2);
  row("total  #2->#5", ext.total_ms, 58.4);
  const auto ci = rst::sim::bootstrap_mean_ci(ext.total_samples_ms());
  std::printf("  total mean 95%% bootstrap CI: [%.1f, %.1f] ms (paper avg 58.4 inside: %s)\n",
              ci.lower, ci.upper, (58.4 >= ci.lower - 5 && 58.4 <= ci.upper + 5) ? "~yes" : "no");
  std::printf("  failures: %zu / 50\n\n", ext.failures);

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("=== Shape checks vs paper ===\n");
  check("wireless hop (#3->#4) mean below 5 ms", ext.rsu_to_obu_ms.mean() < 5.0);
  check("wireless hop is the smallest component",
        ext.rsu_to_obu_ms.mean() < ext.detection_to_rsu_ms.mean() &&
            ext.rsu_to_obu_ms.mean() < ext.obu_to_actuator_ms.mean());
  check("detection->RSU in the tens of ms (15..45)",
        ext.detection_to_rsu_ms.mean() > 15 && ext.detection_to_rsu_ms.mean() < 45);
  check("OBU->actuators in the tens of ms (15..45)",
        ext.obu_to_actuator_ms.mean() > 15 && ext.obu_to_actuator_ms.mean() < 45);
  check("total mean within 40..80 ms", ext.total_ms.mean() > 40 && ext.total_ms.mean() < 80);
  check("no trial exceeded 100 ms", ext.total_ms.max() < 100.0);
  check("all 50 trials stopped via DENM", ext.failures == 0);
  return ok ? 0 : 1;
}
