// Table III reproduction: distance travelled from detection to halt
// (paper §IV-B). Runs the paper's 7-trial campaign and an extended one,
// and checks the paper's claims: average ~0.36 m, small variance
// (paper: 0.0022), and under one vehicle length (~0.53 m).

#include <cstdio>

#include "rst/core/experiment.hpp"

int main() {
  // RST_THREADS fans the trial sweeps over a worker pool (0/unset = auto);
  // every reported number is identical at any thread count.
  const unsigned threads = rst::core::experiment_threads_from_env();
  std::printf("[threads: %u]\n\n", rst::core::resolve_experiment_threads(threads));

  rst::core::TestbedConfig config;
  config.seed = 777;

  std::printf("=== Table III: 7-run campaign (paper protocol) ===\n");
  const auto paper_scale = rst::core::run_emergency_brake_experiment(config, 7, threads);
  std::printf("%s\n", rst::core::format_table3(paper_scale).c_str());

  std::printf("=== Extended 60-run campaign ===\n");
  rst::core::TestbedConfig extended = config;
  extended.seed = 7777;
  const auto ext = rst::core::run_emergency_brake_experiment(extended, 60, threads);
  const auto& d = ext.braking_distance_m;
  std::printf("  braking distance: mean %.3f m  sd %.3f  min %.2f  max %.2f  var %.4f\n",
              d.mean(), d.stddev(), d.min(), d.max(), d.population_variance());
  std::printf("  (paper: avg 0.36 m over 7 runs, variance 0.0022, range 0.31-0.43)\n");
  std::printf("  vehicle length: %.2f m\n\n", extended.vehicle_params.length_m);

  bool ok = true;
  const auto check = [&](const char* what, bool cond) {
    std::printf("  [%s] %s\n", cond ? "ok" : "FAIL", what);
    ok = ok && cond;
  };
  std::printf("=== Shape checks vs paper ===\n");
  check("mean braking distance within 0.25..0.50 m", d.mean() > 0.25 && d.mean() < 0.50);
  check("average below one vehicle length", d.mean() < extended.vehicle_params.length_m);
  check("variance small (< 0.01)", d.population_variance() < 0.01);
  check("every run stopped", ext.failures == 0);
  return ok ? 0 : 1;
}
