# Empty dependencies file for bench_ablation_channel.
# This may be replaced when dependencies are built.
