file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dcc.dir/bench/bench_ablation_dcc.cpp.o"
  "CMakeFiles/bench_ablation_dcc.dir/bench/bench_ablation_dcc.cpp.o.d"
  "bench/bench_ablation_dcc"
  "bench/bench_ablation_dcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
