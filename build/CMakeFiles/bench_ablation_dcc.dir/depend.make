# Empty dependencies file for bench_ablation_dcc.
# This may be replaced when dependencies are built.
