file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fps.dir/bench/bench_ablation_fps.cpp.o"
  "CMakeFiles/bench_ablation_fps.dir/bench/bench_ablation_fps.cpp.o.d"
  "bench/bench_ablation_fps"
  "bench/bench_ablation_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
