# Empty compiler generated dependencies file for bench_ablation_fps.
# This may be replaced when dependencies are built.
