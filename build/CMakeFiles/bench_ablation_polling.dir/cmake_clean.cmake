file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_polling.dir/bench/bench_ablation_polling.cpp.o"
  "CMakeFiles/bench_ablation_polling.dir/bench/bench_ablation_polling.cpp.o.d"
  "bench/bench_ablation_polling"
  "bench/bench_ablation_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
