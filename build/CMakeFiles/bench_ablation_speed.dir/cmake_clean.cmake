file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_speed.dir/bench/bench_ablation_speed.cpp.o"
  "CMakeFiles/bench_ablation_speed.dir/bench/bench_ablation_speed.cpp.o.d"
  "bench/bench_ablation_speed"
  "bench/bench_ablation_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
