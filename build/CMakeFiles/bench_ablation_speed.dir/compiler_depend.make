# Empty compiler generated dependencies file for bench_ablation_speed.
# This may be replaced when dependencies are built.
