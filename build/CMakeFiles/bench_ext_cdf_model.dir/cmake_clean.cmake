file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cdf_model.dir/bench/bench_ext_cdf_model.cpp.o"
  "CMakeFiles/bench_ext_cdf_model.dir/bench/bench_ext_cdf_model.cpp.o.d"
  "bench/bench_ext_cdf_model"
  "bench/bench_ext_cdf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cdf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
