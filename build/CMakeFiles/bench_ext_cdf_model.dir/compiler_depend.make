# Empty compiler generated dependencies file for bench_ext_cdf_model.
# This may be replaced when dependencies are built.
