file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cpa.dir/bench/bench_ext_cpa.cpp.o"
  "CMakeFiles/bench_ext_cpa.dir/bench/bench_ext_cpa.cpp.o.d"
  "bench/bench_ext_cpa"
  "bench/bench_ext_cpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
