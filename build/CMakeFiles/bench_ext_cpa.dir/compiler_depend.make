# Empty compiler generated dependencies file for bench_ext_cpa.
# This may be replaced when dependencies are built.
