file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fullsize.dir/bench/bench_ext_fullsize.cpp.o"
  "CMakeFiles/bench_ext_fullsize.dir/bench/bench_ext_fullsize.cpp.o.d"
  "bench/bench_ext_fullsize"
  "bench/bench_ext_fullsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fullsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
