# Empty dependencies file for bench_ext_fullsize.
# This may be replaced when dependencies are built.
