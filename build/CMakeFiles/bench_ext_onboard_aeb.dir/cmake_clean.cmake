file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_onboard_aeb.dir/bench/bench_ext_onboard_aeb.cpp.o"
  "CMakeFiles/bench_ext_onboard_aeb.dir/bench/bench_ext_onboard_aeb.cpp.o.d"
  "bench/bench_ext_onboard_aeb"
  "bench/bench_ext_onboard_aeb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_onboard_aeb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
