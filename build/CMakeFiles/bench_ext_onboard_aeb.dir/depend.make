# Empty dependencies file for bench_ext_onboard_aeb.
# This may be replaced when dependencies are built.
