file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_platoon.dir/bench/bench_ext_platoon.cpp.o"
  "CMakeFiles/bench_ext_platoon.dir/bench/bench_ext_platoon.cpp.o.d"
  "bench/bench_ext_platoon"
  "bench/bench_ext_platoon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_platoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
