# Empty dependencies file for bench_ext_platoon.
# This may be replaced when dependencies are built.
