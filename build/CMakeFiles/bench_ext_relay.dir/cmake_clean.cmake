file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_relay.dir/bench/bench_ext_relay.cpp.o"
  "CMakeFiles/bench_ext_relay.dir/bench/bench_ext_relay.cpp.o.d"
  "bench/bench_ext_relay"
  "bench/bench_ext_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
