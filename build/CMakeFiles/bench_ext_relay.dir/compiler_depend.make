# Empty compiler generated dependencies file for bench_ext_relay.
# This may be replaced when dependencies are built.
