file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_frames.dir/bench/bench_fig10_frames.cpp.o"
  "CMakeFiles/bench_fig10_frames.dir/bench/bench_fig10_frames.cpp.o.d"
  "bench/bench_fig10_frames"
  "bench/bench_fig10_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
