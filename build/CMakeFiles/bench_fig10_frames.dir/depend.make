# Empty dependencies file for bench_fig10_frames.
# This may be replaced when dependencies are built.
