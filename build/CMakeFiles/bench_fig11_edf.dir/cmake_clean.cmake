file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_edf.dir/bench/bench_fig11_edf.cpp.o"
  "CMakeFiles/bench_fig11_edf.dir/bench/bench_fig11_edf.cpp.o.d"
  "bench/bench_fig11_edf"
  "bench/bench_fig11_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
