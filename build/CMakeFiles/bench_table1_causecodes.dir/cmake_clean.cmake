file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_causecodes.dir/bench/bench_table1_causecodes.cpp.o"
  "CMakeFiles/bench_table1_causecodes.dir/bench/bench_table1_causecodes.cpp.o.d"
  "bench/bench_table1_causecodes"
  "bench/bench_table1_causecodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_causecodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
