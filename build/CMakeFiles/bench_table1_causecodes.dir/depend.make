# Empty dependencies file for bench_table1_causecodes.
# This may be replaced when dependencies are built.
