
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_braking.cpp" "CMakeFiles/bench_table3_braking.dir/bench/bench_table3_braking.cpp.o" "gcc" "CMakeFiles/bench_table3_braking.dir/bench/bench_table3_braking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/rst_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/roadside/CMakeFiles/rst_roadside.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/rst_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/its/CMakeFiles/rst_its.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rst_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11p/CMakeFiles/rst_dot11p.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/rst_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rst_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
