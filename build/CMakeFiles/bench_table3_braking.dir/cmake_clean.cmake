file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_braking.dir/bench/bench_table3_braking.cpp.o"
  "CMakeFiles/bench_table3_braking.dir/bench/bench_table3_braking.cpp.o.d"
  "bench/bench_table3_braking"
  "bench/bench_table3_braking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_braking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
