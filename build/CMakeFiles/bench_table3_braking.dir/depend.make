# Empty dependencies file for bench_table3_braking.
# This may be replaced when dependencies are built.
