file(REMOVE_RECURSE
  "CMakeFiles/blind_corner_intersection.dir/blind_corner_intersection.cpp.o"
  "CMakeFiles/blind_corner_intersection.dir/blind_corner_intersection.cpp.o.d"
  "blind_corner_intersection"
  "blind_corner_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blind_corner_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
