# Empty dependencies file for blind_corner_intersection.
# This may be replaced when dependencies are built.
