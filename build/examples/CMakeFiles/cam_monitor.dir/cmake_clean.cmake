file(REMOVE_RECURSE
  "CMakeFiles/cam_monitor.dir/cam_monitor.cpp.o"
  "CMakeFiles/cam_monitor.dir/cam_monitor.cpp.o.d"
  "cam_monitor"
  "cam_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cam_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
