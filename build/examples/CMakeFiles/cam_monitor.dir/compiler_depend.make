# Empty compiler generated dependencies file for cam_monitor.
# This may be replaced when dependencies are built.
