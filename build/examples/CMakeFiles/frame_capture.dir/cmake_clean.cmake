file(REMOVE_RECURSE
  "CMakeFiles/frame_capture.dir/frame_capture.cpp.o"
  "CMakeFiles/frame_capture.dir/frame_capture.cpp.o.d"
  "frame_capture"
  "frame_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
