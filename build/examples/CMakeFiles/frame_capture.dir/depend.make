# Empty dependencies file for frame_capture.
# This may be replaced when dependencies are built.
