file(REMOVE_RECURSE
  "CMakeFiles/intersection_watch.dir/intersection_watch.cpp.o"
  "CMakeFiles/intersection_watch.dir/intersection_watch.cpp.o.d"
  "intersection_watch"
  "intersection_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersection_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
