# Empty compiler generated dependencies file for intersection_watch.
# This may be replaced when dependencies are built.
