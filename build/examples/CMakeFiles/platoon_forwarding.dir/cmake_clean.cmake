file(REMOVE_RECURSE
  "CMakeFiles/platoon_forwarding.dir/platoon_forwarding.cpp.o"
  "CMakeFiles/platoon_forwarding.dir/platoon_forwarding.cpp.o.d"
  "platoon_forwarding"
  "platoon_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
