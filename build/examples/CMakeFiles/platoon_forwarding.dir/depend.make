# Empty dependencies file for platoon_forwarding.
# This may be replaced when dependencies are built.
