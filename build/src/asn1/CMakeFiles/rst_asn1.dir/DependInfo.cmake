
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asn1/bitbuffer.cpp" "src/asn1/CMakeFiles/rst_asn1.dir/bitbuffer.cpp.o" "gcc" "src/asn1/CMakeFiles/rst_asn1.dir/bitbuffer.cpp.o.d"
  "/root/repo/src/asn1/per.cpp" "src/asn1/CMakeFiles/rst_asn1.dir/per.cpp.o" "gcc" "src/asn1/CMakeFiles/rst_asn1.dir/per.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
