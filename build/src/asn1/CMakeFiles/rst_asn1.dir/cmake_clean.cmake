file(REMOVE_RECURSE
  "CMakeFiles/rst_asn1.dir/bitbuffer.cpp.o"
  "CMakeFiles/rst_asn1.dir/bitbuffer.cpp.o.d"
  "CMakeFiles/rst_asn1.dir/per.cpp.o"
  "CMakeFiles/rst_asn1.dir/per.cpp.o.d"
  "librst_asn1.a"
  "librst_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
