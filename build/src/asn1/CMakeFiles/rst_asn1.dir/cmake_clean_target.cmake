file(REMOVE_RECURSE
  "librst_asn1.a"
)
