# Empty compiler generated dependencies file for rst_asn1.
# This may be replaced when dependencies are built.
