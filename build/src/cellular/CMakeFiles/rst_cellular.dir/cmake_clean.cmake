file(REMOVE_RECURSE
  "CMakeFiles/rst_cellular.dir/cellular_link.cpp.o"
  "CMakeFiles/rst_cellular.dir/cellular_link.cpp.o.d"
  "librst_cellular.a"
  "librst_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
