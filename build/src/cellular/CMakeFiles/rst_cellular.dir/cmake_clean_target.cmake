file(REMOVE_RECURSE
  "librst_cellular.a"
)
