# Empty dependencies file for rst_cellular.
# This may be replaced when dependencies are built.
