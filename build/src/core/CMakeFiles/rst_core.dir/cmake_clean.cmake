file(REMOVE_RECURSE
  "CMakeFiles/rst_core.dir/config_io.cpp.o"
  "CMakeFiles/rst_core.dir/config_io.cpp.o.d"
  "CMakeFiles/rst_core.dir/experiment.cpp.o"
  "CMakeFiles/rst_core.dir/experiment.cpp.o.d"
  "CMakeFiles/rst_core.dir/its_station.cpp.o"
  "CMakeFiles/rst_core.dir/its_station.cpp.o.d"
  "CMakeFiles/rst_core.dir/platoon.cpp.o"
  "CMakeFiles/rst_core.dir/platoon.cpp.o.d"
  "CMakeFiles/rst_core.dir/scale_model.cpp.o"
  "CMakeFiles/rst_core.dir/scale_model.cpp.o.d"
  "CMakeFiles/rst_core.dir/testbed.cpp.o"
  "CMakeFiles/rst_core.dir/testbed.cpp.o.d"
  "librst_core.a"
  "librst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
