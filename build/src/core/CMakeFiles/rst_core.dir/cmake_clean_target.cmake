file(REMOVE_RECURSE
  "librst_core.a"
)
