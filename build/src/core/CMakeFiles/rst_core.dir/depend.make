# Empty dependencies file for rst_core.
# This may be replaced when dependencies are built.
