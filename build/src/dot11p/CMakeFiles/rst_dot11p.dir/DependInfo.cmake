
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dot11p/channel.cpp" "src/dot11p/CMakeFiles/rst_dot11p.dir/channel.cpp.o" "gcc" "src/dot11p/CMakeFiles/rst_dot11p.dir/channel.cpp.o.d"
  "/root/repo/src/dot11p/medium.cpp" "src/dot11p/CMakeFiles/rst_dot11p.dir/medium.cpp.o" "gcc" "src/dot11p/CMakeFiles/rst_dot11p.dir/medium.cpp.o.d"
  "/root/repo/src/dot11p/phy_params.cpp" "src/dot11p/CMakeFiles/rst_dot11p.dir/phy_params.cpp.o" "gcc" "src/dot11p/CMakeFiles/rst_dot11p.dir/phy_params.cpp.o.d"
  "/root/repo/src/dot11p/radio.cpp" "src/dot11p/CMakeFiles/rst_dot11p.dir/radio.cpp.o" "gcc" "src/dot11p/CMakeFiles/rst_dot11p.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rst_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
