file(REMOVE_RECURSE
  "CMakeFiles/rst_dot11p.dir/channel.cpp.o"
  "CMakeFiles/rst_dot11p.dir/channel.cpp.o.d"
  "CMakeFiles/rst_dot11p.dir/medium.cpp.o"
  "CMakeFiles/rst_dot11p.dir/medium.cpp.o.d"
  "CMakeFiles/rst_dot11p.dir/phy_params.cpp.o"
  "CMakeFiles/rst_dot11p.dir/phy_params.cpp.o.d"
  "CMakeFiles/rst_dot11p.dir/radio.cpp.o"
  "CMakeFiles/rst_dot11p.dir/radio.cpp.o.d"
  "librst_dot11p.a"
  "librst_dot11p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_dot11p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
