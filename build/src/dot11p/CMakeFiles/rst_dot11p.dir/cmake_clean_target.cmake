file(REMOVE_RECURSE
  "librst_dot11p.a"
)
