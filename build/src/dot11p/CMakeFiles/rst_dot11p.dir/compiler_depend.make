# Empty compiler generated dependencies file for rst_dot11p.
# This may be replaced when dependencies are built.
