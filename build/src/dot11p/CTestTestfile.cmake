# CMake generated Testfile for 
# Source directory: /root/repo/src/dot11p
# Build directory: /root/repo/build/src/dot11p
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
