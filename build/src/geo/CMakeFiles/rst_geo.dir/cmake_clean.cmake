file(REMOVE_RECURSE
  "CMakeFiles/rst_geo.dir/geo_area.cpp.o"
  "CMakeFiles/rst_geo.dir/geo_area.cpp.o.d"
  "CMakeFiles/rst_geo.dir/geodesy.cpp.o"
  "CMakeFiles/rst_geo.dir/geodesy.cpp.o.d"
  "librst_geo.a"
  "librst_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
