file(REMOVE_RECURSE
  "librst_geo.a"
)
