# Empty compiler generated dependencies file for rst_geo.
# This may be replaced when dependencies are built.
