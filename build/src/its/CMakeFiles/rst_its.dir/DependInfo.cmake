
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/its/dcc/adaptive_dcc.cpp" "src/its/CMakeFiles/rst_its.dir/dcc/adaptive_dcc.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/dcc/adaptive_dcc.cpp.o.d"
  "/root/repo/src/its/dcc/channel_probe.cpp" "src/its/CMakeFiles/rst_its.dir/dcc/channel_probe.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/dcc/channel_probe.cpp.o.d"
  "/root/repo/src/its/dcc/reactive_dcc.cpp" "src/its/CMakeFiles/rst_its.dir/dcc/reactive_dcc.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/dcc/reactive_dcc.cpp.o.d"
  "/root/repo/src/its/facilities/ca_basic_service.cpp" "src/its/CMakeFiles/rst_its.dir/facilities/ca_basic_service.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/facilities/ca_basic_service.cpp.o.d"
  "/root/repo/src/its/facilities/den_basic_service.cpp" "src/its/CMakeFiles/rst_its.dir/facilities/den_basic_service.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/facilities/den_basic_service.cpp.o.d"
  "/root/repo/src/its/facilities/ldm.cpp" "src/its/CMakeFiles/rst_its.dir/facilities/ldm.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/facilities/ldm.cpp.o.d"
  "/root/repo/src/its/messages/cam.cpp" "src/its/CMakeFiles/rst_its.dir/messages/cam.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/messages/cam.cpp.o.d"
  "/root/repo/src/its/messages/cause_code.cpp" "src/its/CMakeFiles/rst_its.dir/messages/cause_code.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/messages/cause_code.cpp.o.d"
  "/root/repo/src/its/messages/data_elements.cpp" "src/its/CMakeFiles/rst_its.dir/messages/data_elements.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/messages/data_elements.cpp.o.d"
  "/root/repo/src/its/messages/denm.cpp" "src/its/CMakeFiles/rst_its.dir/messages/denm.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/messages/denm.cpp.o.d"
  "/root/repo/src/its/network/btp.cpp" "src/its/CMakeFiles/rst_its.dir/network/btp.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/network/btp.cpp.o.d"
  "/root/repo/src/its/network/btp_mux.cpp" "src/its/CMakeFiles/rst_its.dir/network/btp_mux.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/network/btp_mux.cpp.o.d"
  "/root/repo/src/its/network/geonet.cpp" "src/its/CMakeFiles/rst_its.dir/network/geonet.cpp.o" "gcc" "src/its/CMakeFiles/rst_its.dir/network/geonet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rst_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rst_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11p/CMakeFiles/rst_dot11p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
