file(REMOVE_RECURSE
  "CMakeFiles/rst_its.dir/dcc/adaptive_dcc.cpp.o"
  "CMakeFiles/rst_its.dir/dcc/adaptive_dcc.cpp.o.d"
  "CMakeFiles/rst_its.dir/dcc/channel_probe.cpp.o"
  "CMakeFiles/rst_its.dir/dcc/channel_probe.cpp.o.d"
  "CMakeFiles/rst_its.dir/dcc/reactive_dcc.cpp.o"
  "CMakeFiles/rst_its.dir/dcc/reactive_dcc.cpp.o.d"
  "CMakeFiles/rst_its.dir/facilities/ca_basic_service.cpp.o"
  "CMakeFiles/rst_its.dir/facilities/ca_basic_service.cpp.o.d"
  "CMakeFiles/rst_its.dir/facilities/den_basic_service.cpp.o"
  "CMakeFiles/rst_its.dir/facilities/den_basic_service.cpp.o.d"
  "CMakeFiles/rst_its.dir/facilities/ldm.cpp.o"
  "CMakeFiles/rst_its.dir/facilities/ldm.cpp.o.d"
  "CMakeFiles/rst_its.dir/messages/cam.cpp.o"
  "CMakeFiles/rst_its.dir/messages/cam.cpp.o.d"
  "CMakeFiles/rst_its.dir/messages/cause_code.cpp.o"
  "CMakeFiles/rst_its.dir/messages/cause_code.cpp.o.d"
  "CMakeFiles/rst_its.dir/messages/data_elements.cpp.o"
  "CMakeFiles/rst_its.dir/messages/data_elements.cpp.o.d"
  "CMakeFiles/rst_its.dir/messages/denm.cpp.o"
  "CMakeFiles/rst_its.dir/messages/denm.cpp.o.d"
  "CMakeFiles/rst_its.dir/network/btp.cpp.o"
  "CMakeFiles/rst_its.dir/network/btp.cpp.o.d"
  "CMakeFiles/rst_its.dir/network/btp_mux.cpp.o"
  "CMakeFiles/rst_its.dir/network/btp_mux.cpp.o.d"
  "CMakeFiles/rst_its.dir/network/geonet.cpp.o"
  "CMakeFiles/rst_its.dir/network/geonet.cpp.o.d"
  "librst_its.a"
  "librst_its.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_its.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
