file(REMOVE_RECURSE
  "librst_its.a"
)
