# Empty dependencies file for rst_its.
# This may be replaced when dependencies are built.
