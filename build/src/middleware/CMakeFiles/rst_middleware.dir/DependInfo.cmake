
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/ascii_map.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/ascii_map.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/ascii_map.cpp.o.d"
  "/root/repo/src/middleware/frame_log.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/frame_log.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/frame_log.cpp.o.d"
  "/root/repo/src/middleware/http.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/http.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/http.cpp.o.d"
  "/root/repo/src/middleware/kv.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/kv.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/kv.cpp.o.d"
  "/root/repo/src/middleware/message_bus.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/message_bus.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/message_bus.cpp.o.d"
  "/root/repo/src/middleware/ntp.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/ntp.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/ntp.cpp.o.d"
  "/root/repo/src/middleware/openc2x_api.cpp" "src/middleware/CMakeFiles/rst_middleware.dir/openc2x_api.cpp.o" "gcc" "src/middleware/CMakeFiles/rst_middleware.dir/openc2x_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rst_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/its/CMakeFiles/rst_its.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rst_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11p/CMakeFiles/rst_dot11p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
