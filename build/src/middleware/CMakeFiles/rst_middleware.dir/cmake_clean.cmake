file(REMOVE_RECURSE
  "CMakeFiles/rst_middleware.dir/ascii_map.cpp.o"
  "CMakeFiles/rst_middleware.dir/ascii_map.cpp.o.d"
  "CMakeFiles/rst_middleware.dir/frame_log.cpp.o"
  "CMakeFiles/rst_middleware.dir/frame_log.cpp.o.d"
  "CMakeFiles/rst_middleware.dir/http.cpp.o"
  "CMakeFiles/rst_middleware.dir/http.cpp.o.d"
  "CMakeFiles/rst_middleware.dir/kv.cpp.o"
  "CMakeFiles/rst_middleware.dir/kv.cpp.o.d"
  "CMakeFiles/rst_middleware.dir/message_bus.cpp.o"
  "CMakeFiles/rst_middleware.dir/message_bus.cpp.o.d"
  "CMakeFiles/rst_middleware.dir/ntp.cpp.o"
  "CMakeFiles/rst_middleware.dir/ntp.cpp.o.d"
  "CMakeFiles/rst_middleware.dir/openc2x_api.cpp.o"
  "CMakeFiles/rst_middleware.dir/openc2x_api.cpp.o.d"
  "librst_middleware.a"
  "librst_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
