file(REMOVE_RECURSE
  "librst_middleware.a"
)
