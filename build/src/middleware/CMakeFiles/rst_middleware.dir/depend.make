# Empty dependencies file for rst_middleware.
# This may be replaced when dependencies are built.
