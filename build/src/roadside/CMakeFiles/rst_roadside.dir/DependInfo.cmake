
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadside/associator.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/associator.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/associator.cpp.o.d"
  "/root/repo/src/roadside/camera.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/camera.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/camera.cpp.o.d"
  "/root/repo/src/roadside/collision_predictor.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/collision_predictor.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/collision_predictor.cpp.o.d"
  "/root/repo/src/roadside/hazard_service.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/hazard_service.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/hazard_service.cpp.o.d"
  "/root/repo/src/roadside/object_detection_service.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/object_detection_service.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/object_detection_service.cpp.o.d"
  "/root/repo/src/roadside/tracker.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/tracker.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/tracker.cpp.o.d"
  "/root/repo/src/roadside/yolo_sim.cpp" "src/roadside/CMakeFiles/rst_roadside.dir/yolo_sim.cpp.o" "gcc" "src/roadside/CMakeFiles/rst_roadside.dir/yolo_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rst_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/rst_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/its/CMakeFiles/rst_its.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rst_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11p/CMakeFiles/rst_dot11p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
