file(REMOVE_RECURSE
  "CMakeFiles/rst_roadside.dir/associator.cpp.o"
  "CMakeFiles/rst_roadside.dir/associator.cpp.o.d"
  "CMakeFiles/rst_roadside.dir/camera.cpp.o"
  "CMakeFiles/rst_roadside.dir/camera.cpp.o.d"
  "CMakeFiles/rst_roadside.dir/collision_predictor.cpp.o"
  "CMakeFiles/rst_roadside.dir/collision_predictor.cpp.o.d"
  "CMakeFiles/rst_roadside.dir/hazard_service.cpp.o"
  "CMakeFiles/rst_roadside.dir/hazard_service.cpp.o.d"
  "CMakeFiles/rst_roadside.dir/object_detection_service.cpp.o"
  "CMakeFiles/rst_roadside.dir/object_detection_service.cpp.o.d"
  "CMakeFiles/rst_roadside.dir/tracker.cpp.o"
  "CMakeFiles/rst_roadside.dir/tracker.cpp.o.d"
  "CMakeFiles/rst_roadside.dir/yolo_sim.cpp.o"
  "CMakeFiles/rst_roadside.dir/yolo_sim.cpp.o.d"
  "librst_roadside.a"
  "librst_roadside.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_roadside.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
