file(REMOVE_RECURSE
  "librst_roadside.a"
)
