# Empty dependencies file for rst_roadside.
# This may be replaced when dependencies are built.
