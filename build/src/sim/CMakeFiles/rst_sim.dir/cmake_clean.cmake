file(REMOVE_RECURSE
  "CMakeFiles/rst_sim.dir/random.cpp.o"
  "CMakeFiles/rst_sim.dir/random.cpp.o.d"
  "CMakeFiles/rst_sim.dir/scheduler.cpp.o"
  "CMakeFiles/rst_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/rst_sim.dir/stats.cpp.o"
  "CMakeFiles/rst_sim.dir/stats.cpp.o.d"
  "CMakeFiles/rst_sim.dir/trace.cpp.o"
  "CMakeFiles/rst_sim.dir/trace.cpp.o.d"
  "librst_sim.a"
  "librst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
