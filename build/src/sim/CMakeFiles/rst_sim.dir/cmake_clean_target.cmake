file(REMOVE_RECURSE
  "librst_sim.a"
)
