# Empty dependencies file for rst_sim.
# This may be replaced when dependencies are built.
