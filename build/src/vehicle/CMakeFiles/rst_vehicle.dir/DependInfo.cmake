
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vehicle/cacc.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/cacc.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/cacc.cpp.o.d"
  "/root/repo/src/vehicle/control_module.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/control_module.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/control_module.cpp.o.d"
  "/root/repo/src/vehicle/dynamics.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/dynamics.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/dynamics.cpp.o.d"
  "/root/repo/src/vehicle/gnss.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/gnss.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/gnss.cpp.o.d"
  "/root/repo/src/vehicle/imu.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/imu.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/imu.cpp.o.d"
  "/root/repo/src/vehicle/lidar.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/lidar.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/lidar.cpp.o.d"
  "/root/repo/src/vehicle/line_detection.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/line_detection.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/line_detection.cpp.o.d"
  "/root/repo/src/vehicle/message_handler.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/message_handler.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/message_handler.cpp.o.d"
  "/root/repo/src/vehicle/motion_planner.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/motion_planner.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/motion_planner.cpp.o.d"
  "/root/repo/src/vehicle/track.cpp" "src/vehicle/CMakeFiles/rst_vehicle.dir/track.cpp.o" "gcc" "src/vehicle/CMakeFiles/rst_vehicle.dir/track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/rst_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/rst_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/its/CMakeFiles/rst_its.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/rst_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11p/CMakeFiles/rst_dot11p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
