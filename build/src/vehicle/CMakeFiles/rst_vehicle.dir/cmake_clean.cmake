file(REMOVE_RECURSE
  "CMakeFiles/rst_vehicle.dir/cacc.cpp.o"
  "CMakeFiles/rst_vehicle.dir/cacc.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/control_module.cpp.o"
  "CMakeFiles/rst_vehicle.dir/control_module.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/dynamics.cpp.o"
  "CMakeFiles/rst_vehicle.dir/dynamics.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/gnss.cpp.o"
  "CMakeFiles/rst_vehicle.dir/gnss.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/imu.cpp.o"
  "CMakeFiles/rst_vehicle.dir/imu.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/lidar.cpp.o"
  "CMakeFiles/rst_vehicle.dir/lidar.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/line_detection.cpp.o"
  "CMakeFiles/rst_vehicle.dir/line_detection.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/message_handler.cpp.o"
  "CMakeFiles/rst_vehicle.dir/message_handler.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/motion_planner.cpp.o"
  "CMakeFiles/rst_vehicle.dir/motion_planner.cpp.o.d"
  "CMakeFiles/rst_vehicle.dir/track.cpp.o"
  "CMakeFiles/rst_vehicle.dir/track.cpp.o.d"
  "librst_vehicle.a"
  "librst_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rst_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
