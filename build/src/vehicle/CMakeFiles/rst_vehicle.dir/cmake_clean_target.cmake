file(REMOVE_RECURSE
  "librst_vehicle.a"
)
