# Empty dependencies file for rst_vehicle.
# This may be replaced when dependencies are built.
