file(REMOVE_RECURSE
  "CMakeFiles/ascii_map_test.dir/ascii_map_test.cpp.o"
  "CMakeFiles/ascii_map_test.dir/ascii_map_test.cpp.o.d"
  "ascii_map_test"
  "ascii_map_test.pdb"
  "ascii_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascii_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
