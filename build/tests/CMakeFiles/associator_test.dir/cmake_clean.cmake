file(REMOVE_RECURSE
  "CMakeFiles/associator_test.dir/associator_test.cpp.o"
  "CMakeFiles/associator_test.dir/associator_test.cpp.o.d"
  "associator_test"
  "associator_test.pdb"
  "associator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/associator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
