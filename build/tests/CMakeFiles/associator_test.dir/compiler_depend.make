# Empty compiler generated dependencies file for associator_test.
# This may be replaced when dependencies are built.
