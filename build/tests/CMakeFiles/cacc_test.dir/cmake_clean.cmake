file(REMOVE_RECURSE
  "CMakeFiles/cacc_test.dir/cacc_test.cpp.o"
  "CMakeFiles/cacc_test.dir/cacc_test.cpp.o.d"
  "cacc_test"
  "cacc_test.pdb"
  "cacc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cacc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
