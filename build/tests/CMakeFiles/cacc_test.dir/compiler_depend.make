# Empty compiler generated dependencies file for cacc_test.
# This may be replaced when dependencies are built.
