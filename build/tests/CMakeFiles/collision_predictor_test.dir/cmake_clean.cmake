file(REMOVE_RECURSE
  "CMakeFiles/collision_predictor_test.dir/collision_predictor_test.cpp.o"
  "CMakeFiles/collision_predictor_test.dir/collision_predictor_test.cpp.o.d"
  "collision_predictor_test"
  "collision_predictor_test.pdb"
  "collision_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
