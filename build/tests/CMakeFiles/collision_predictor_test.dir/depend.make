# Empty dependencies file for collision_predictor_test.
# This may be replaced when dependencies are built.
