file(REMOVE_RECURSE
  "CMakeFiles/dcc_test.dir/dcc_test.cpp.o"
  "CMakeFiles/dcc_test.dir/dcc_test.cpp.o.d"
  "dcc_test"
  "dcc_test.pdb"
  "dcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
