# Empty compiler generated dependencies file for dcc_test.
# This may be replaced when dependencies are built.
