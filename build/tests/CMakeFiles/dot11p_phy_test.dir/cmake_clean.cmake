file(REMOVE_RECURSE
  "CMakeFiles/dot11p_phy_test.dir/dot11p_phy_test.cpp.o"
  "CMakeFiles/dot11p_phy_test.dir/dot11p_phy_test.cpp.o.d"
  "dot11p_phy_test"
  "dot11p_phy_test.pdb"
  "dot11p_phy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot11p_phy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
