# Empty compiler generated dependencies file for dot11p_phy_test.
# This may be replaced when dependencies are built.
