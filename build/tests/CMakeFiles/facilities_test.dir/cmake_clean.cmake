file(REMOVE_RECURSE
  "CMakeFiles/facilities_test.dir/facilities_test.cpp.o"
  "CMakeFiles/facilities_test.dir/facilities_test.cpp.o.d"
  "facilities_test"
  "facilities_test.pdb"
  "facilities_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facilities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
