file(REMOVE_RECURSE
  "CMakeFiles/frame_log_test.dir/frame_log_test.cpp.o"
  "CMakeFiles/frame_log_test.dir/frame_log_test.cpp.o.d"
  "frame_log_test"
  "frame_log_test.pdb"
  "frame_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
