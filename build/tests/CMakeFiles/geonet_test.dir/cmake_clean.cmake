file(REMOVE_RECURSE
  "CMakeFiles/geonet_test.dir/geonet_test.cpp.o"
  "CMakeFiles/geonet_test.dir/geonet_test.cpp.o.d"
  "geonet_test"
  "geonet_test.pdb"
  "geonet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geonet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
