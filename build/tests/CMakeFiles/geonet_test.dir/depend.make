# Empty dependencies file for geonet_test.
# This may be replaced when dependencies are built.
