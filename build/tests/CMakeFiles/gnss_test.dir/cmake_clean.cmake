file(REMOVE_RECURSE
  "CMakeFiles/gnss_test.dir/gnss_test.cpp.o"
  "CMakeFiles/gnss_test.dir/gnss_test.cpp.o.d"
  "gnss_test"
  "gnss_test.pdb"
  "gnss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
