# Empty dependencies file for gnss_test.
# This may be replaced when dependencies are built.
