file(REMOVE_RECURSE
  "CMakeFiles/integration_testbed_test.dir/integration_testbed_test.cpp.o"
  "CMakeFiles/integration_testbed_test.dir/integration_testbed_test.cpp.o.d"
  "integration_testbed_test"
  "integration_testbed_test.pdb"
  "integration_testbed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
