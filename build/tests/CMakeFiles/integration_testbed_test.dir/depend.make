# Empty dependencies file for integration_testbed_test.
# This may be replaced when dependencies are built.
