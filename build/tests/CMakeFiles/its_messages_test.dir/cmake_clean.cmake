file(REMOVE_RECURSE
  "CMakeFiles/its_messages_test.dir/its_messages_test.cpp.o"
  "CMakeFiles/its_messages_test.dir/its_messages_test.cpp.o.d"
  "its_messages_test"
  "its_messages_test.pdb"
  "its_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/its_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
