# Empty compiler generated dependencies file for its_messages_test.
# This may be replaced when dependencies are built.
