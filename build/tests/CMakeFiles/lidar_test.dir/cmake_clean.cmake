file(REMOVE_RECURSE
  "CMakeFiles/lidar_test.dir/lidar_test.cpp.o"
  "CMakeFiles/lidar_test.dir/lidar_test.cpp.o.d"
  "lidar_test"
  "lidar_test.pdb"
  "lidar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
