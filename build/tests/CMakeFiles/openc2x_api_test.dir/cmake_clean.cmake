file(REMOVE_RECURSE
  "CMakeFiles/openc2x_api_test.dir/openc2x_api_test.cpp.o"
  "CMakeFiles/openc2x_api_test.dir/openc2x_api_test.cpp.o.d"
  "openc2x_api_test"
  "openc2x_api_test.pdb"
  "openc2x_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openc2x_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
