# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for openc2x_api_test.
