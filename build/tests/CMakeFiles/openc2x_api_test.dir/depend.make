# Empty dependencies file for openc2x_api_test.
# This may be replaced when dependencies are built.
