file(REMOVE_RECURSE
  "CMakeFiles/roadside_test.dir/roadside_test.cpp.o"
  "CMakeFiles/roadside_test.dir/roadside_test.cpp.o.d"
  "roadside_test"
  "roadside_test.pdb"
  "roadside_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadside_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
