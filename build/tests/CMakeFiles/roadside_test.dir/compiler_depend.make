# Empty compiler generated dependencies file for roadside_test.
# This may be replaced when dependencies are built.
