# Empty compiler generated dependencies file for vehicle_test.
# This may be replaced when dependencies are built.
