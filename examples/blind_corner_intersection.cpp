// The motivating use case of the paper (Fig. 1): two vehicles approach an
// intersection with a blind corner — no visual or radio line-of-sight
// between them. A road-side camera + edge node + RSU watch the crossing
// road and warn the ETSI ITS-capable protagonist vehicle with a DENM.
//
// The example runs the scenario twice:
//   1) infrastructure assistance OFF -> the vehicles meet at the corner;
//   2) infrastructure assistance ON  -> the protagonist stops in time.

#include <cmath>
#include <cstdio>

#include "rst/core/testbed.hpp"

namespace {

rst::core::TestbedConfig blind_corner_config(std::uint64_t seed) {
  using rst::geo::Vec2;
  rst::core::TestbedConfig config;
  config.seed = seed;

  // Protagonist drives north along x=0; the crossing road runs east-west
  // at y=8. A building wall south-east of the intersection blocks both
  // view and radio LOS between the two inflowing roads.
  config.track_start = {0, 0};
  config.track_end = {0, 10};
  config.vehicle_start = {0, 0.5};
  config.camera_position = {0, 8.0};
  config.camera_facing_rad = M_PI;  // looking south along the protagonist's road
  config.rsu_position = {0.5, 8.5};
  config.walls.push_back({.a = Vec2{0.8, 7.2}, .b = Vec2{6.0, 7.2}, .obstruction_loss_db = 35.0});
  config.walls.push_back({.a = Vec2{0.8, 7.2}, .b = Vec2{0.8, 1.0}, .obstruction_loss_db = 35.0});

  // Stop a little earlier than the lab default: give the intersection margin.
  config.hazard.action_point_distance_m = 2.0;
  return config;
}

double run_once(bool with_infrastructure, std::uint64_t seed, double* total_ms) {
  rst::core::TestbedScenario scenario{blind_corner_config(seed)};
  // The non-ITS road user: crosses the intersection westwards through the
  // camera's region of interest, timed to meet the protagonist.
  scenario.add_road_user({6.0, 8.0}, 3 * M_PI / 2, 1.0, rst::roadside::Presentation::StopSign);

  if (!with_infrastructure) {
    scenario.start_services();
    scenario.hazard().stop();
    scenario.scheduler().run_until(rst::sim::SimTime::seconds(12));
  } else {
    const auto r = scenario.run_emergency_brake_trial(rst::sim::SimTime::seconds(14));
    if (total_ms) *total_ms = r.meas_total_ms;
  }
  return scenario.min_separation_m();
}

}  // namespace

int main() {
  std::printf("=== Blind-corner intersection (paper Fig. 1 use case) ===\n\n");

  double unused = 0;
  const double separation_without = run_once(false, 42, &unused);
  std::printf("Without infrastructure: minimum separation %.2f m  -> %s\n", separation_without,
              separation_without < 0.55 ? "COLLISION (within one vehicle length)"
                                        : "near miss");

  double total_ms = 0;
  const double separation_with = run_once(true, 42, &total_ms);
  std::printf("With infrastructure:    minimum separation %.2f m  -> %s\n", separation_with,
              separation_with < 0.55 ? "COLLISION" : "safe stop");
  std::printf("  network-aided detection-to-action delay: %.1f ms\n", total_ms);

  return separation_with > separation_without ? 0 : 1;
}
