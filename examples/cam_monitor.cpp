// CAM generation rules + LDM inspection: the textual equivalent of the
// OpenC2X Server/Web Interface that "represents graphically the
// georeferenced information contained in the LDM" (paper §III-D).
//
// Runs the testbed and periodically dumps the RSU's Local Dynamic Map
// while the vehicle drives, showing the CAM-derived vehicle entry, the
// dynamics-triggered CAM rate adaptation, and the DEN event appearing in
// the LDM once the hazard is advertised.

#include <cstdio>

#include "rst/core/testbed.hpp"
#include "rst/middleware/ascii_map.hpp"

namespace {

/// Renders the RSU's world view like the OpenC2X web interface would.
std::string render_map(rst::core::TestbedScenario& scenario) {
  rst::middleware::AsciiMap map{{-3, -1}, {3, 10}, 49, 23};
  map.plot_line(scenario.config().track_start, scenario.config().track_end, '.');
  map.plot(scenario.config().camera_position, 'C');
  map.plot(scenario.config().rsu_position, 'R');
  for (const auto& v : scenario.rsu().ldm().vehicles()) map.plot(v.position, 'V');
  for (const auto& e : scenario.rsu().ldm().events()) map.plot(e.event_position, '!');
  for (const auto& o : scenario.rsu().ldm().perceived_objects()) map.plot(o.position, 'o');
  map.legend('V', "vehicle (from CAMs)");
  map.legend('!', "DEN event");
  map.legend('o', "camera-perceived object");
  map.legend('C', "road-side camera");
  map.legend('R', "RSU");
  map.legend('.', "line on the floor");
  return map.render();
}

}  // namespace

int main() {
  rst::core::TestbedConfig config;
  config.seed = 5;
  rst::core::TestbedScenario scenario{config};
  scenario.start_services();

  auto& sched = scenario.scheduler();
  for (int second = 1; second <= 8; ++second) {
    sched.run_until(rst::sim::SimTime::seconds(second));
    std::printf("---- t = %d s ----\n%s", second, scenario.rsu().ldm().dump().c_str());
    if (second % 4 == 0) std::printf("%s", render_map(scenario).c_str());
  }

  const auto& ca_tx = scenario.obu().ca().stats();
  const auto& ca_rx = scenario.rsu().ca().stats();
  std::printf("\nCA service: OBU sent %llu CAMs (%llu dynamics-triggered), RSU received %llu\n",
              static_cast<unsigned long long>(ca_tx.cams_sent),
              static_cast<unsigned long long>(ca_tx.dynamics_triggers),
              static_cast<unsigned long long>(ca_rx.cams_received));
  std::printf("current T_GenCam at OBU: %s\n",
              scenario.obu().ca().current_t_gen_cam().to_string().c_str());

  const auto& den_rx = scenario.obu().den().stats();
  std::printf("DEN service: OBU received %llu DENMs (%llu duplicates discarded)\n",
              static_cast<unsigned long long>(den_rx.denms_received),
              static_cast<unsigned long long>(den_rx.duplicates_discarded));

  const auto& medium = scenario.medium().stats();
  std::printf("Radio medium: %llu frames transmitted, %llu delivered, %llu lost to errors\n",
              static_cast<unsigned long long>(medium.frames_transmitted),
              static_cast<unsigned long long>(medium.deliveries),
              static_cast<unsigned long long>(medium.dropped_error));
  return 0;
}
