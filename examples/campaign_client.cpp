// Campaign client: submits one campaign to a running campaign_server and
// prints the response.
//
//   campaign_client --port 4750 --spec scenario.conf --trials 20 --seed 1
//
// --spec - reads the spec from stdin. --artifact-only prints just the
// byte-stable block between OK and ENDARTIFACT (what the CI smoke test
// diffs across submissions). --expect-all-hits exits non-zero unless the
// server reports misses=0 executed=0 — i.e. the campaign was served
// entirely from the result store.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rst/server/campaign.hpp"
#include "rst/server/protocol.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--spec PATH|-] [--trials N] [--seed N]\n"
               "          [--artifact-only] [--expect-all-hits]\n",
               argv0);
  return 2;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_stream(std::FILE* f) {
  std::string text;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) text.append(chunk, n);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 4750;
  std::string spec_path;
  int trials = 1;
  std::uint64_t seed = 1;
  bool artifact_only = false;
  bool expect_all_hits = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--spec") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      spec_path = v;
    } else if (arg == "--trials") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      trials = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--artifact-only") {
      artifact_only = true;
    } else if (arg == "--expect-all-hits") {
      expect_all_hits = true;
    } else {
      return usage(argv[0]);
    }
  }

  rst::server::CampaignRequest request;
  request.trials = trials;
  request.base_seed = seed;
  if (spec_path.empty() || spec_path == "-") {
    request.spec = read_stream(stdin);
  } else {
    std::FILE* f = std::fopen(spec_path.c_str(), "rb");
    if (!f) {
      std::fprintf(stderr, "campaign_client: cannot read %s\n", spec_path.c_str());
      return 1;
    }
    request.spec = read_stream(f);
    std::fclose(f);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }
  if (!send_all(fd, rst::server::format_campaign_request(request)) ||
      !send_all(fd, "QUIT\n")) {
    std::fprintf(stderr, "campaign_client: send failed\n");
    ::close(fd);
    return 1;
  }

  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) response.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);

  // Walk the response line by line: OK opens the artifact block,
  // ENDARTIFACT closes it, the STATS trailer carries the hit accounting.
  bool in_artifact = false;
  bool saw_ok = false;
  bool all_hits = false;
  bool failed = false;
  std::size_t pos = 0;
  while (pos < response.size()) {
    const auto nl = response.find('\n', pos);
    const std::string line =
        response.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? response.size() : nl + 1;
    if (line.rfind("OK ", 0) == 0) {
      saw_ok = true;
      in_artifact = true;
      if (!artifact_only) std::printf("%s\n", line.c_str());
      continue;
    }
    if (line == "ENDARTIFACT") {
      in_artifact = false;
      if (!artifact_only) std::printf("%s\n", line.c_str());
      continue;
    }
    if (line.rfind("REJECTED", 0) == 0 || line.rfind("ERROR", 0) == 0) {
      failed = true;
      std::fprintf(stderr, "%s\n", line.c_str());
      continue;
    }
    if (line.rfind("STATS ", 0) == 0) {
      all_hits = line.find(" misses=0 ") != std::string::npos &&
                 line.find(" executed=0") != std::string::npos;
    }
    if (in_artifact || !artifact_only) std::printf("%s\n", line.c_str());
  }

  if (failed || !saw_ok) return 1;
  if (expect_all_hits && !all_hits) {
    std::fprintf(stderr, "campaign_client: expected an all-cache-hit campaign\n");
    return 3;
  }
  return 0;
}
