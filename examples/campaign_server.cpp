// Campaign server: thin POSIX TCP front-end over rst::server::LineSession.
//
// Accepts one connection at a time (the engine itself is single-threaded on
// the transport side; parallelism lives in its TrialPool worker fleet) and
// speaks the line-delimited protocol documented in rst/server/protocol.hpp.
//
//   campaign_server --port 4750 --store results.seg --threads 0 --queue 8
//
// --port 0 picks an ephemeral port; the bound port is printed as
// `LISTENING <port>` on stdout so scripts (and the CI smoke test) can
// discover it. --max-conns N exits after serving N connections, which lets
// the smoke test run the server without needing to kill it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rst/server/campaign_engine.hpp"
#include "rst/server/protocol.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--store PATH] [--threads N] [--queue N]\n"
               "          [--drop-oldest] [--max-conns N]\n"
               "  --port N       TCP port to listen on (0 = ephemeral; default 4750)\n"
               "  --store PATH   result-store segment file (default: in-memory only)\n"
               "  --threads N    trial workers (0 = hardware concurrency; default 0)\n"
               "  --queue N      admission queue capacity (default 8)\n"
               "  --drop-oldest  shed the oldest queued campaign instead of rejecting\n"
               "  --max-conns N  exit after serving N connections (0 = forever)\n",
               argv0);
  return 2;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Serves one connection: reads lines, feeds the session, writes responses.
void serve(int fd, rst::server::CampaignEngine& engine) {
  rst::server::LineSession session{engine};
  std::string inbuf;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    inbuf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    std::size_t nl;
    while (open && (nl = inbuf.find('\n', pos)) != std::string::npos) {
      std::string line = inbuf.substr(pos, nl - pos);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      pos = nl + 1;
      std::string out;
      try {
        open = session.consume_line(line, [&](const std::string& reply) {
          out += reply;
          out += '\n';
        });
      } catch (const std::exception& e) {
        // An engine failure (e.g. a ResultStore append on a full disk) must
        // not take the whole server down. Tell this client and drop only its
        // connection — the response stream may already be mid-artifact, so
        // it cannot be safely resumed.
        out += "ERROR ";
        out += e.what();
        out += "\nDONE\n";
        open = false;
      }
      if (!out.empty() && !send_all(fd, out)) open = false;
    }
    inbuf.erase(0, pos);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int port = 4750;
  unsigned threads = 0;
  std::size_t queue = 8;
  std::string store_path;
  bool drop_oldest = false;
  long max_conns = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--port") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--store") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      store_path = v;
    } else if (arg == "--threads") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--queue") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      queue = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--drop-oldest") {
      drop_oldest = true;
    } else if (arg == "--max-conns") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      max_conns = std::atol(v);
    } else {
      return usage(argv[0]);
    }
  }

  rst::server::CampaignEngineConfig config;
  config.threads = threads;
  config.queue_capacity = queue;
  config.overflow = drop_oldest
                        ? rst::server::CampaignEngineConfig::OverflowPolicy::DropOldest
                        : rst::server::CampaignEngineConfig::OverflowPolicy::Reject;
  config.store_path = store_path;
  rst::server::CampaignEngine engine{config};

  ::signal(SIGPIPE, SIG_IGN);  // a departed client must not kill the server
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    std::perror("listen");
    ::close(listener);
    return 1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  std::printf("LISTENING %d\n", static_cast<int>(ntohs(addr.sin_port)));
  std::fflush(stdout);

  long served = 0;
  while (max_conns == 0 || served < max_conns) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    serve(fd, engine);
    ::close(fd);
    ++served;
  }
  ::close(listener);
  std::printf("SERVED %ld\n", served);
  return 0;
}
