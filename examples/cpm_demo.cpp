// Collective perception demo: an occluded pedestrian behind a wall is
// visible only to a road-side camera. With the CP service off the vehicle
// threads the crossing blind; with CPM on the RSU shares its percepts over
// the air, the OBU fuses them into its LDM, and the collision predictor
// brakes the vehicle seconds before direct line of sight opens.
//
// The same scenario backs the tier-1 suites cpm_scenario_test and
// cpm_differential_test; this binary just narrates one on/off pair.

#include <cstdio>

#include "rst/scenario/cpm_scenarios.hpp"

int main() {
  std::printf("=== Collective perception: occluded pedestrian ===\n\n");

  const auto off = rst::scenario::run_occluded_pedestrian(42, /*cpm_enable=*/false);
  std::printf("CPM off: braked=%s  min separation %.2f m\n", off.braked ? "yes" : "no",
              off.min_separation_m);

  const auto on = rst::scenario::run_occluded_pedestrian(42, /*cpm_enable=*/true);
  std::printf("CPM on:  braked=%s  min separation %.2f m\n", on.braked ? "yes" : "no",
              on.min_separation_m);
  if (on.fused) {
    std::printf("  first remote percept fused at t=%.2f s\n", on.t_first_fusion.to_seconds());
  }
  if (on.braked) {
    std::printf("  emergency stop at t=%.2f s\n", on.t_brake.to_seconds());
  }
  if (on.los_seen) {
    std::printf("  direct line of sight opened at t=%.2f s (%.2f s after the stop)\n",
                on.t_los.to_seconds(), (on.t_los - on.t_brake).to_seconds());
  }
  std::printf("  CPMs sent %zu, objects published %zu, objects fused %zu\n", on.cpms_sent,
              on.objects_published, on.objects_fused);

  return on.braked && !off.braked ? 0 : 1;
}
