// Frame capture: runs one emergency-braking trial with monitor taps on
// both radios (the tcpdump-on-monitor-interface methodology of real
// 802.11p experimentation), prints the decoded over-the-air timeline, and
// demonstrates the capture's binary round-trip.

#include <cstdio>

#include "rst/core/testbed.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/middleware/frame_log.hpp"

int main() {
  rst::core::TestbedConfig config;
  config.seed = 3;
  rst::core::TestbedScenario scenario{config};
  rst::middleware::FrameLog log{scenario.scheduler()};
  log.attach(scenario.rsu().radio());
  log.attach(scenario.obu().radio());

  const auto r = scenario.run_emergency_brake_trial();
  if (!r.stopped_by_denm) {
    std::printf("trial failed\n");
    return 1;
  }

  std::printf("Over-the-air timeline (%zu frames captured):\n\n", log.frames().size());
  std::printf("  %-12s %-10s %-8s %s\n", "time", "rssi", "bytes", "content");
  for (const auto& frame : log.frames()) {
    std::string content = "unparsed";
    try {
      const auto pkt = rst::its::GnPacket::decode(frame.payload);
      const auto parsed = rst::its::BtpHeader::parse(pkt.payload);
      if (parsed.header.destination_port == rst::its::kBtpPortCam) {
        const auto cam = rst::its::Cam::decode(parsed.payload);
        content = "CAM from station " + std::to_string(cam.header.station_id) +
                  " (v=" + std::to_string(cam.high_frequency.speed.to_mps()) + " m/s)";
      } else if (parsed.header.destination_port == rst::its::kBtpPortDenm) {
        const auto denm = rst::its::Denm::decode(parsed.payload);
        const auto cause = denm.situation ? denm.situation->event_type.cause_code : 0;
        content = "DENM action " +
                  std::to_string(denm.management.action_id.originating_station) + "/" +
                  std::to_string(denm.management.action_id.sequence_number) + " cause " +
                  std::to_string(cause) + " (" + std::string{rst::its::describe_cause(cause)} + ")";
      }
    } catch (const rst::asn1::DecodeError&) {
    }
    std::printf("  %-12s %6.1f dBm %5zu B  %s\n", frame.when.to_string().c_str(), frame.rssi_dbm,
                frame.payload.size(), content.c_str());
  }

  const auto summary = log.summarize();
  std::printf("\nsummary: %zu frames = %zu CAMs + %zu DENMs + %zu other\n", summary.total,
              summary.cams, summary.denms, summary.other);

  const auto serialized = log.serialize();
  const auto replay = rst::middleware::FrameLog::parse(serialized);
  std::printf("capture serialized to %zu bytes; re-parsed %zu frames — %s\n", serialized.size(),
              replay.size(), replay.size() == log.frames().size() ? "round-trip OK" : "MISMATCH");
  return replay.size() == log.frames().size() ? 0 : 1;
}
