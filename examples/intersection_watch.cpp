// Intersection watch: the full Fig. 1 arrangement of the paper with the
// kinematic hazard assessment. The road-side camera monitors the crossing
// road; the ETSI-capable protagonist is known to the infrastructure only
// through its CAMs (LDM); when the CPA predictor flags a conflict between
// the camera-tracked road user and the protagonist, a DENM goes out and
// the protagonist brakes — long before any fixed distance threshold fires.

#include <cmath>
#include <cstdio>

#include "rst/core/testbed.hpp"
#include "rst/middleware/ascii_map.hpp"

namespace {

std::string render(rst::core::TestbedScenario& scenario, rst::geo::Vec2 user) {
  rst::middleware::AsciiMap map{{-2, -1}, {10, 11}, 61, 25};
  map.plot_line(scenario.config().track_start, scenario.config().track_end, '.');
  map.plot_line({0, 8}, {9.5, 8}, '-');  // the crossing road
  map.plot(scenario.config().camera_position, 'C');
  map.plot(user, 'u');
  map.plot(scenario.dynamics().position(), 'P');
  for (const auto& e : scenario.rsu().ldm().events()) map.plot(e.event_position, '!');
  map.legend('P', "protagonist (ETSI ITS, CAMs)");
  map.legend('u', "crossing road user (camera-tracked)");
  map.legend('!', "advertised DEN event (predicted conflict point)");
  map.legend('C', "camera (watching the crossing road, east)");
  return map.render();
}

}  // namespace

int main() {
  rst::core::TestbedConfig config;
  config.seed = 7;
  config.camera_position = {0, 8.0};
  config.camera_facing_rad = M_PI / 2;  // east, along the crossing road
  config.hazard.trigger_mode = rst::roadside::HazardTriggerMode::CpaPrediction;
  config.hazard.destination_radius_m = 150.0;

  rst::core::TestbedScenario scenario{config};
  scenario.add_road_user({7.8, 8.0}, 3 * M_PI / 2, 1.0, rst::roadside::Presentation::StopSign);
  scenario.start_services();

  auto& sched = scenario.scheduler();
  for (int second = 1; second <= 8; ++second) {
    sched.run_until(rst::sim::SimTime::seconds(second));
    const rst::geo::Vec2 user{7.8 - 1.0 * second, 8.0};
    if (second == 2 || second == 4 || second == 6) {
      std::printf("---- t = %d s ----\n%s\n", second, render(scenario, user).c_str());
    }
  }

  const auto* predicted = scenario.trace().find("hazard_service", "collision predicted");
  const auto* stopped = scenario.trace().find("control", "power cut commanded");
  if (predicted && stopped) {
    std::printf("collision predicted at %s; protagonist power cut at %s\n",
                predicted->when.to_string().c_str(), stopped->when.to_string().c_str());
    std::printf("protagonist halted %.2f m short of the conflict point\n",
                rst::geo::distance(scenario.dynamics().position(), {0, 8.0}));
    return 0;
  }
  std::printf("no conflict was predicted (unexpected)\n");
  return 1;
}
