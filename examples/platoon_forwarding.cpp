// Platoon extension (paper §V future work): a line of connected scale
// vehicles follows a leader; the road-side infrastructure advertises an
// emergency event and the detection-to-action delay is evaluated for the
// entire platoon. Three arrangements are compared:
//   a) full-power 802.11p — every OBU hears the RSU directly;
//   b) range-limited 802.11p — the DENM geo-broadcast is forwarded down
//      the platoon by GeoNetworking contention-based forwarding;
//   c) 5G-capable leader + 802.11p intra-platoon forwarding (the paper's
//      multi-technology arrangement).

#include <cstdio>

#include "rst/core/platoon.hpp"

namespace {

void report(const char* title, const rst::core::PlatoonResult& result) {
  std::printf("%s\n", title);
  for (const auto& v : result.vehicles) {
    std::printf("  vehicle %d: %s, detection-to-action %6.1f ms\n", v.index,
                v.stopped ? "stopped" : "STILL MOVING", v.detection_to_action_ms);
  }
  std::printf("  platoon-level (worst) detection-to-action: %.1f ms\n\n",
              result.worst_detection_to_action_ms);
}

}  // namespace

int main() {
  std::printf("=== Connected platoon emergency stop ===\n\n");

  {
    rst::core::PlatoonConfig config;
    config.seed = 11;
    config.n_vehicles = 5;
    rst::core::PlatoonScenario scenario{config};
    report("(a) 802.11p, full power (single hop):", scenario.run_emergency_stop());
  }
  {
    rst::core::PlatoonConfig config;
    config.seed = 12;
    config.n_vehicles = 5;
    config.spacing_m = 12.0;
    config.radio.tx_power_dbm = -18.0;  // shrink radio range to a couple of gaps
    config.radio.cs_threshold_dbm = -80.0;
    rst::core::PlatoonScenario scenario{config};
    report("(b) 802.11p, range-limited (multi-hop GeoNetworking forwarding):",
           scenario.run_emergency_stop());
  }
  {
    rst::core::PlatoonConfig config;
    config.seed = 13;
    config.n_vehicles = 5;
    config.leader_uses_cellular = true;
    rst::core::PlatoonScenario scenario{config};
    report("(c) 5G leader + 802.11p intra-platoon forwarding:", scenario.run_emergency_stop());
  }
  return 0;
}
