// Quickstart: assemble the default scale testbed, run one emergency-braking
// trial and print the step-by-step latency breakdown (the measurement chain
// of the paper's Fig. 4).
//
// Build & run:  ./examples/quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "rst/core/testbed.hpp"

int main(int argc, char** argv) {
  rst::core::TestbedConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  rst::core::TestbedScenario scenario{config};
  scenario.trace().set_echo(true);  // watch the chain unfold

  std::printf("=== Emergency-braking trial (seed %llu) ===\n",
              static_cast<unsigned long long>(config.seed));
  const rst::core::TrialResult r = scenario.run_emergency_brake_trial();

  if (!r.stopped_by_denm) {
    std::printf("Trial failed: the vehicle did not stop via DENM.\n");
    return 1;
  }

  std::printf("\n--- Step instants (simulation clock) ---\n");
  std::printf("  step 1  action point crossed       %s\n", r.t_cross_actual.to_string().c_str());
  std::printf("  step 2  YOLO detection output      %s\n", r.t_detection.to_string().c_str());
  std::printf("  step 3  RSU sends DENM             %s\n", r.t_rsu_send.to_string().c_str());
  std::printf("  step 4  OBU receives DENM          %s\n", r.t_obu_receive.to_string().c_str());
  std::printf("  step 5  power-cut commanded        %s\n", r.t_power_cut.to_string().c_str());
  std::printf("  step 6  vehicle at standstill      %s\n", r.t_halt.to_string().c_str());

  std::printf("\n--- NTP-measured intervals (what the paper's Table II reports) ---\n");
  std::printf("  detection -> RSU DENM     %6.1f ms   (paper avg 27.6)\n", r.meas_detection_to_rsu_ms);
  std::printf("  RSU DENM  -> OBU          %6.1f ms   (paper avg  1.6)\n", r.meas_rsu_to_obu_ms);
  std::printf("  OBU       -> actuators    %6.1f ms   (paper avg 29.2)\n", r.meas_obu_to_actuator_ms);
  std::printf("  total detection->action   %6.1f ms   (paper avg 58.4, always < 100)\n",
              r.meas_total_ms);

  std::printf("\n--- Braking (paper Table III) ---\n");
  std::printf("  braking distance          %6.2f m    (paper avg 0.36)\n", r.braking_distance_m);
  std::printf("  final distance to camera  %6.2f m\n", r.stop_distance_to_camera_m);
  return 0;
}
