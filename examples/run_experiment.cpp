// Command-line experiment runner: the tool a testbed operator would use to
// run measurement campaigns with different knobs, the way the paper's
// authors ran their five (Table II) and seven (Table III) trials.
//
// Usage:
//   run_experiment [--trials N] [--seed S] [--threads T] [--poll-ms P]
//                  [--fps F] [--speed V] [--action-point D]
//                  [--bearer its-g5|embb|urllc] [--csv] [--trace-out FILE]
//                  [--fault-plan FILE]
//
// Prints the Table II/III style summary; --csv additionally dumps one line
// per trial for external analysis. --threads fans the trials out over a
// worker pool (0 = hardware concurrency, 1 = serial; the default is the
// RST_THREADS environment variable, else auto) — results are identical at
// any thread count. --trace-out runs one extra trial at the base seed and
// writes its full stage timeline as Chrome trace-event JSON (open in
// Perfetto / chrome://tracing). --fault-plan installs a deterministic
// fault-injection schedule from a config file of `fault = ...` clauses
// (plus any other override keys, e.g. watchdog = true); see
// examples/degraded_run.conf.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "rst/core/config_io.hpp"
#include "rst/core/experiment.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--trials N] [--seed S] [--threads T] [--poll-ms P] [--fps F]\n"
      "          [--speed V] [--action-point D] [--bearer its-g5|embb|urllc] [--csv]\n"
      "          [--config FILE] [--fault-plan FILE] [--list-config-keys] [--trace-out FILE]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  int trials = 10;
  unsigned threads = rst::core::experiment_threads_from_env();
  rst::core::TestbedConfig config;
  config.seed = 1;
  bool csv = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      trials = std::atoi(next());
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--poll-ms") {
      config.message_handler.poll_period = rst::sim::SimTime::milliseconds(std::atol(next()));
    } else if (arg == "--fps") {
      config.detection.processing_period =
          rst::sim::SimTime::from_milliseconds(1000.0 / std::atof(next()));
    } else if (arg == "--speed") {
      config.planner.target_speed_mps = std::atof(next());
    } else if (arg == "--action-point") {
      config.hazard.action_point_distance_m = std::atof(next());
    } else if (arg == "--bearer") {
      const std::string bearer = next();
      if (bearer == "its-g5") {
        config.warning_path = rst::core::WarningPath::ItsG5;
      } else if (bearer == "embb") {
        config.warning_path = rst::core::WarningPath::CellularEmbb;
      } else if (bearer == "urllc") {
        config.warning_path = rst::core::WarningPath::CellularUrllc;
      } else {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--config" || arg == "--fault-plan") {
      // A fault plan is just a config file whose keys are fault clauses
      // (and typically the watchdog knobs), so both flags share the parser.
      std::ifstream file{next()};
      if (!file) {
        std::fprintf(stderr, "cannot open %s file\n", arg.c_str() + 2);
        return 2;
      }
      std::string text{std::istreambuf_iterator<char>{file}, std::istreambuf_iterator<char>{}};
      try {
        const auto n = rst::core::apply_config_overrides(config, text);
        std::printf("applied %zu config override(s)\n", n);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--list-config-keys") {
      for (const auto& [key, help] : rst::core::config_override_keys()) {
        std::printf("  %-24s %s\n", key.c_str(), help.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }
  if (trials < 1) {
    usage(argv[0]);
    return 2;
  }

  std::printf("Running %d emergency-braking trials (seed %llu, %u thread%s)...\n\n", trials,
              static_cast<unsigned long long>(config.seed),
              rst::core::resolve_experiment_threads(threads),
              rst::core::resolve_experiment_threads(threads) == 1 ? "" : "s");
  const auto summary = rst::core::run_emergency_brake_experiment(config, trials, threads);
  std::printf("%s\n%s\n", rst::core::format_table2(summary, trials).c_str(),
              rst::core::format_table3(summary, trials).c_str());
  if (summary.failures > 0) {
    std::printf("WARNING: %zu trial(s) did not stop via DENM\n", summary.failures);
  }
  if (summary.total_ms.count() >= 2) {
    const auto ci = rst::sim::bootstrap_mean_ci(summary.total_samples_ms());
    std::printf("total delay mean %.1f ms, 95%% bootstrap CI [%.1f, %.1f]\n", ci.point, ci.lower,
                ci.upper);
  }
  std::printf("\n%s", summary.metrics.format().c_str());

  if (!trace_out.empty()) {
    // One dedicated trial at the base seed: its typed stage timeline is the
    // Fig. 4 pipeline rendered as a Chrome/Perfetto trace.
    rst::core::TestbedScenario scenario{config};
    (void)scenario.run_emergency_brake_trial();
    std::ofstream out{trace_out};
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 2;
    }
    out << scenario.trace().to_chrome_trace_json();
    std::printf("wrote %zu stage event(s) to %s\n", scenario.trace().events().size(),
                trace_out.c_str());
  }

  if (csv) {
    std::printf("\ntrial,detection_to_rsu_ms,rsu_to_obu_ms,obu_to_actuator_ms,total_ms,"
                "braking_distance_m,stopped\n");
    int index = 0;
    for (const auto& t : summary.trials) {
      std::printf("%d,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n", index++, t.meas_detection_to_rsu_ms,
                  t.meas_rsu_to_obu_ms, t.meas_obu_to_actuator_ms, t.meas_total_ms,
                  t.braking_distance_m, t.stopped_by_denm ? 1 : 0);
    }
  }
  return summary.failures == 0 ? 0 : 1;
}
