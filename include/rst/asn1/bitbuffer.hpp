#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rst::asn1 {

/// Error thrown on malformed input during decoding.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// MSB-first bit writer backing the UPER encoder.
class BitWriter {
 public:
  void write_bit(bool b);
  /// Writes the low `nbits` of `value`, MSB first. nbits in [0, 64].
  void write_bits(std::uint64_t value, unsigned nbits);
  void write_bytes(const std::uint8_t* data, std::size_t n);
  /// Pads the final partial byte with zero bits and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_{0};
};

/// MSB-first bit reader backing the UPER decoder.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_{data}, size_bits_{size_bytes * 8} {}
  explicit BitReader(const std::vector<std::uint8_t>& buf) : BitReader{buf.data(), buf.size()} {}

  [[nodiscard]] bool read_bit();
  /// Reads `nbits` (<= 64) MSB-first.
  [[nodiscard]] std::uint64_t read_bits(unsigned nbits);
  void read_bytes(std::uint8_t* out, std::size_t n);

  [[nodiscard]] std::size_t bits_remaining() const { return size_bits_ - pos_; }
  [[nodiscard]] std::size_t bit_position() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_bits_;
  std::size_t pos_{0};
};

}  // namespace rst::asn1
