#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rst::asn1 {

/// Error thrown on malformed input during decoding.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// MSB-first bit writer backing the UPER encoder.
///
/// `write_bits`/`write_bytes` operate whole bytes at a time (head / body /
/// tail split around byte boundaries) instead of looping per bit, so an
/// encoded CAM costs tens of byte stores rather than hundreds of calls
/// through `write_bit`.
class BitWriter {
 public:
  BitWriter() = default;
  /// Pre-reserves output capacity; encoders that know their rough message
  /// size (CAM ~90 B, DENM ~120 B) avoid vector regrowth entirely.
  explicit BitWriter(std::size_t capacity_bytes) { bytes_.reserve(capacity_bytes); }

  void reserve_bytes(std::size_t capacity_bytes) { bytes_.reserve(capacity_bytes); }

  void write_bit(bool b);
  /// Writes the low `nbits` of `value`, MSB first. nbits in [0, 64].
  void write_bits(std::uint64_t value, unsigned nbits);
  void write_bytes(const std::uint8_t* data, std::size_t n);
  /// Pads the final partial byte with zero bits and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() const& { return bytes_; }
  /// Rvalue overload: moves the buffer out without copying. The writer is
  /// left empty; reuse requires reassignment.
  [[nodiscard]] std::vector<std::uint8_t> finish() && { return std::move(bytes_); }

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_{0};
};

/// MSB-first bit reader backing the UPER decoder. Reads whole bytes at a
/// time inside `read_bits`/`read_bytes` (mirroring BitWriter).
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_{data}, size_bits_{size_bytes * 8} {}
  explicit BitReader(const std::vector<std::uint8_t>& buf) : BitReader{buf.data(), buf.size()} {}

  [[nodiscard]] bool read_bit();
  /// Reads `nbits` (<= 64) MSB-first.
  [[nodiscard]] std::uint64_t read_bits(unsigned nbits);
  void read_bytes(std::uint8_t* out, std::size_t n);

  [[nodiscard]] std::size_t bits_remaining() const { return size_bits_ - pos_; }
  [[nodiscard]] std::size_t bit_position() const { return pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_bits_;
  std::size_t pos_{0};
};

}  // namespace rst::asn1
