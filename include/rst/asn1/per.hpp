#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rst/asn1/bitbuffer.hpp"

namespace rst::asn1 {

/// Unaligned-PER style encoder (ITU-T X.691 subset).
///
/// Implements the encodings the ETSI ITS CAM/DENM schemas need:
/// constrained whole numbers, extensible constrained integers, enumerateds,
/// booleans, optional-presence bitmaps (caller-driven), length determinants,
/// OCTET/IA5 strings and SEQUENCE OF with constrained counts.
class PerEncoder {
 public:
  PerEncoder() = default;
  /// Pre-reserves output capacity (bytes) to avoid buffer regrowth when
  /// the caller knows the approximate encoded size.
  explicit PerEncoder(std::size_t capacity_hint_bytes) : w_{capacity_hint_bytes} {}

  void boolean(bool v) { w_.write_bit(v); }

  /// Constrained whole number in [lo, hi] (X.691 §10.5, unaligned).
  void constrained(std::int64_t v, std::int64_t lo, std::int64_t hi);

  /// Extensible constrained integer ("(lo..hi, ...)"): one extension bit,
  /// then either the root encoding or an unconstrained value.
  void constrained_ext(std::int64_t v, std::int64_t lo, std::int64_t hi);

  /// Semi-constrained / unconstrained integer with length determinant
  /// (X.691 §10.8/§12.2.6): minimal octets, two's complement.
  void unconstrained(std::int64_t v);

  /// Enumerated with `count` root values (no extension marker).
  void enumerated(std::uint32_t index, std::uint32_t count);

  /// General length determinant (X.691 §10.9, unaligned variant without
  /// fragmentation; supports lengths < 16384).
  void length(std::size_t n);

  void octet_string(const std::vector<std::uint8_t>& v);
  /// Fixed-size OCTET STRING (no length determinant on the wire).
  void fixed_octet_string(const std::uint8_t* data, std::size_t n);
  void ia5_string(const std::string& s);

  void bits(std::uint64_t value, unsigned nbits) { w_.write_bits(value, nbits); }

  [[nodiscard]] std::vector<std::uint8_t> finish() const& { return w_.finish(); }
  /// Rvalue overload: moves the encoded buffer out without copying.
  [[nodiscard]] std::vector<std::uint8_t> finish() && { return std::move(w_).finish(); }
  [[nodiscard]] std::size_t bit_count() const { return w_.bit_count(); }

 private:
  BitWriter w_;
};

/// Unaligned-PER style decoder matching PerEncoder.
///
/// Constructed from an rvalue vector it takes ownership (safe with
/// temporaries). Constructed from an lvalue vector or a pointer it is a
/// non-owning view — the caller's buffer must outlive the decoder. The
/// view mode is what makes an N-receiver broadcast decode without copying
/// the payload once per receiver.
class PerDecoder {
 public:
  explicit PerDecoder(std::vector<std::uint8_t>&& buf) : owned_{std::move(buf)}, r_{owned_} {}
  explicit PerDecoder(const std::vector<std::uint8_t>& buf) : r_{buf} {}
  PerDecoder(const std::uint8_t* data, std::size_t n) : r_{data, n} {}
  PerDecoder(const PerDecoder&) = delete;
  PerDecoder& operator=(const PerDecoder&) = delete;

  [[nodiscard]] bool boolean() { return r_.read_bit(); }
  [[nodiscard]] std::int64_t constrained(std::int64_t lo, std::int64_t hi);
  [[nodiscard]] std::int64_t constrained_ext(std::int64_t lo, std::int64_t hi);
  [[nodiscard]] std::int64_t unconstrained();
  [[nodiscard]] std::uint32_t enumerated(std::uint32_t count);
  [[nodiscard]] std::size_t length();
  [[nodiscard]] std::vector<std::uint8_t> octet_string();
  void fixed_octet_string(std::uint8_t* out, std::size_t n);
  [[nodiscard]] std::string ia5_string();
  [[nodiscard]] std::uint64_t bits(unsigned nbits) { return r_.read_bits(nbits); }

  [[nodiscard]] std::size_t bits_remaining() const { return r_.bits_remaining(); }

 private:
  std::vector<std::uint8_t> owned_;
  BitReader r_;
};

/// Number of bits needed to encode values in [0, range-1]; 0 when range==1.
[[nodiscard]] unsigned bits_for_range(std::uint64_t range);

}  // namespace rst::asn1
