#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

namespace rst {

/// Immutable, cheaply-shareable byte buffer.
///
/// Frame payloads travel through the whole stack (GeoNetworking encode ->
/// DCC gate -> MAC queue -> medium -> N receivers -> decode); storing them
/// behind a `shared_ptr<const vector>` means every hand-off and an
/// N-receiver broadcast share one buffer instead of copying it. Mutation
/// happens only by installing a new buffer (copy-on-write at the single
/// construction/assignment point), so concurrent readers in parallel
/// trials never race.
///
/// The type converts implicitly to `const std::vector<uint8_t>&` so codec
/// and BTP entry points that take a vector keep working unchanged, and it
/// counts buffer materializations (`buffer_count`) so tests can assert
/// that a broadcast performs zero payload copies.
class Bytes {
 public:
  Bytes() = default;
  Bytes(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : p_{bytes.empty() ? nullptr
                         : std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes))} {
    if (p_) buffers_created_.fetch_add(1, std::memory_order_relaxed);
  }
  Bytes(std::initializer_list<std::uint8_t> il) : Bytes{std::vector<std::uint8_t>{il}} {}

  Bytes& operator=(std::vector<std::uint8_t> bytes) {
    *this = Bytes{std::move(bytes)};
    return *this;
  }
  Bytes& operator=(std::initializer_list<std::uint8_t> il) {
    *this = Bytes{il};
    return *this;
  }

  /// Zero-copy view of the underlying buffer.
  [[nodiscard]] const std::vector<std::uint8_t>& vec() const { return p_ ? *p_ : empty_vec(); }
  operator const std::vector<std::uint8_t>&() const { return vec(); }  // NOLINT

  [[nodiscard]] const std::uint8_t* data() const { return vec().data(); }
  [[nodiscard]] std::size_t size() const { return p_ ? p_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] auto begin() const { return vec().begin(); }
  [[nodiscard]] auto end() const { return vec().end(); }

  /// Replaces the contents with `n` copies of `value` (fresh buffer).
  void assign(std::size_t n, std::uint8_t value) {
    *this = Bytes{std::vector<std::uint8_t>(n, value)};
  }
  void clear() { p_.reset(); }

  /// Identity of the shared storage: equal ids mean physically shared
  /// bytes (used by tests to prove copy-free broadcast).
  [[nodiscard]] const void* storage_id() const { return p_.get(); }
  [[nodiscard]] long use_count() const { return p_.use_count(); }

  /// Process-wide count of buffer materializations. A broadcast to N
  /// receivers must raise this by exactly 1 (the sender's encode).
  [[nodiscard]] static std::uint64_t buffer_count() {
    return buffers_created_.load(std::memory_order_relaxed);
  }

  friend bool operator==(const Bytes& a, const Bytes& b) {
    return a.p_ == b.p_ || a.vec() == b.vec();
  }
  friend bool operator==(const Bytes& a, const std::vector<std::uint8_t>& b) {
    return a.vec() == b;
  }

 private:
  static const std::vector<std::uint8_t>& empty_vec() {
    static const std::vector<std::uint8_t> kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const std::vector<std::uint8_t>> p_;
  inline static std::atomic<std::uint64_t> buffers_created_{0};
};

}  // namespace rst
