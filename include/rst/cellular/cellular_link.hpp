#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"
#include "rst/sim/stats.hpp"

namespace rst::cellular {

/// Latency/loss model of a cellular (5G-like) access + core network.
///
/// The paper's future work installs a 5G module on the robotic vehicle "to
/// compare the same detection-to-action delay over a different interface
/// and network". This model captures the structural difference from
/// 802.11p ad-hoc broadcast: scheduled uplink access, a core-network
/// traversal, and scheduled downlink delivery — each with its own latency
/// distribution.
struct CellularConfig {
  /// Uplink scheduling + transmission (UE -> gNB).
  sim::SimTime uplink_mean{sim::SimTime::milliseconds(9)};
  sim::SimTime uplink_sigma{sim::SimTime::milliseconds(3)};
  /// Core / edge routing.
  sim::SimTime core_mean{sim::SimTime::milliseconds(4)};
  sim::SimTime core_sigma{sim::SimTime::milliseconds(1)};
  /// Downlink scheduling + transmission (gNB -> UE).
  sim::SimTime downlink_mean{sim::SimTime::milliseconds(7)};
  sim::SimTime downlink_sigma{sim::SimTime::milliseconds(2)};
  /// Hard floor on each component (propagation + minimum processing).
  sim::SimTime component_floor{sim::SimTime::microseconds(500)};
  double loss_probability{0.001};

  /// A URLLC-grade profile (configured grants, edge breakout).
  [[nodiscard]] static CellularConfig urllc();
};

class CellularNetwork;

/// One attached UE / application server.
class CellularEndpoint {
 public:
  using ReceiveCallback =
      std::function<void(const std::vector<std::uint8_t>& payload, const std::string& from)>;

  void set_receive_callback(ReceiveCallback cb) { receive_ = std::move(cb); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class CellularNetwork;
  CellularEndpoint(CellularNetwork& net, std::string name) : net_{&net}, name_{std::move(name)} {}
  CellularNetwork* net_;
  std::string name_;
  ReceiveCallback receive_;
};

/// The network: creates endpoints and carries unicast datagrams between
/// them with uplink+core+downlink latency and loss.
class CellularNetwork {
 public:
  CellularNetwork(sim::Scheduler& sched, sim::RandomStream rng, CellularConfig config = {});

  CellularEndpoint& create_endpoint(const std::string& name);
  [[nodiscard]] CellularEndpoint* endpoint(const std::string& name);

  /// Sends `payload` from `from` to `to`; drops silently on loss or when
  /// `to` is unknown / has no receive callback (see Stats::undeliverable).
  void send(const std::string& from, const std::string& to, std::vector<std::uint8_t> payload);

  /// Delivery accounting. At any quiescent point (no payload in flight)
  /// `sent == delivered + lost + undeliverable`; `latency_ms` samples only
  /// completed deliveries (never lost or undeliverable payloads).
  struct Stats {
    std::uint64_t sent{0};
    std::uint64_t delivered{0};
    std::uint64_t lost{0};
    /// Addressed to a missing endpoint or one without a receive callback
    /// (checked at send time and again at delivery time).
    std::uint64_t undeliverable{0};
    sim::RunningStats latency_ms{};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  sim::Scheduler& sched_;
  sim::RandomStream rng_;
  CellularConfig config_;
  std::map<std::string, std::unique_ptr<CellularEndpoint>> endpoints_;
  Stats stats_;
};

}  // namespace rst::cellular
