#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rst/core/testbed.hpp"

namespace rst::core {

/// Applies `key = value` overrides (one per line, `#` comments) to a
/// TestbedConfig — the persistent-experiment-description format consumed
/// by `examples/run_experiment --config`. Unknown keys throw
/// std::invalid_argument naming the key. Returns the number of overrides
/// applied.
std::size_t apply_config_overrides(TestbedConfig& config, const std::string& text);

/// The keys apply_config_overrides understands, with one-line help.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> config_override_keys();

// --- Shared `key = value` spec-format plumbing ---
//
// The testbed config file and the scenario::CitySpec file share one syntax
// (one `key = value` per line, `#` comments, whitespace-insensitive); these
// helpers keep the two parsers byte-for-byte consistent on errors and edge
// cases.

/// Splits `text` into stripped (key, value) pairs and invokes `apply` for
/// each. Throws std::invalid_argument on a line without '='. Returns the
/// number of pairs applied.
std::size_t for_each_spec_override(
    const std::string& text,
    const std::function<void(const std::string& key, const std::string& value)>& apply);

/// Scalar parsers with uniform "config override '<key>': ..." diagnostics.
[[nodiscard]] double parse_spec_double(const std::string& value, const std::string& key);
[[nodiscard]] std::int64_t parse_spec_int(const std::string& value, const std::string& key);
[[nodiscard]] bool parse_spec_bool(const std::string& value, const std::string& key);

/// %.17g rendering — the shortest printf format that round-trips every
/// finite double through strtod/stod exactly. All spec writers (CitySpec
/// files, fault clauses, campaign canonicalization) share this one helper
/// so formatted specs re-parse to bit-identical values.
[[nodiscard]] std::string format_spec_double(double v);

/// Canonical form of a `key = value` spec: comments and blank lines
/// dropped, keys and values stripped and re-joined as `key = value\n`,
/// keys sorted (stable sort, so repeated keys — e.g. `fault` clauses —
/// keep their relative order and last-wins semantics), and any value that
/// parses completely as a double re-rendered with format_spec_double.
/// Canonicalization is a fixed point: canonicalize_spec(canonicalize_spec
/// (s)) == canonicalize_spec(s), which makes the canonical text a stable
/// content-address input. Throws std::invalid_argument on a line without
/// '=' (same diagnostic as for_each_spec_override); it does NOT validate
/// keys — apply the result to a config to do that.
[[nodiscard]] std::string canonicalize_spec(const std::string& text);

}  // namespace rst::core
