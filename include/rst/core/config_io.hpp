#pragma once

#include <string>
#include <vector>

#include "rst/core/testbed.hpp"

namespace rst::core {

/// Applies `key = value` overrides (one per line, `#` comments) to a
/// TestbedConfig — the persistent-experiment-description format consumed
/// by `examples/run_experiment --config`. Unknown keys throw
/// std::invalid_argument naming the key. Returns the number of overrides
/// applied.
std::size_t apply_config_overrides(TestbedConfig& config, const std::string& text);

/// The keys apply_config_overrides understands, with one-line help.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> config_override_keys();

}  // namespace rst::core
