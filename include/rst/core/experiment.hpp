#pragma once

#include <string>
#include <vector>

#include "rst/core/testbed.hpp"
#include "rst/sim/metrics.hpp"
#include "rst/sim/stats.hpp"

namespace rst::core {

/// Aggregated results over a set of emergency-braking trials.
struct ExperimentSummary {
  std::vector<TrialResult> trials;
  sim::RunningStats detection_to_rsu_ms{};
  sim::RunningStats rsu_to_obu_ms{};
  sim::RunningStats obu_to_actuator_ms{};
  sim::RunningStats total_ms{};
  sim::RunningStats braking_distance_m{};
  std::size_t failures{0};
  /// Cross-trial observability: per-stage latency histograms (p50/p95/p99)
  /// and trial counters, fed from the same seed-ordered pass as the
  /// RunningStats so the registry is thread-count independent.
  sim::MetricsRegistry metrics{};

  [[nodiscard]] std::vector<double> total_samples_ms() const;
  [[nodiscard]] std::vector<double> braking_samples_m() const;
};

/// Runs `n` independent emergency-braking trials (fresh testbed per trial,
/// seeds seed+0..n-1) and aggregates the paper's Table II/III quantities.
///
/// `threads` fans the trials out over a sim::TrialPool: 0 (the default)
/// selects hardware_concurrency, 1 keeps the legacy serial path. Trials are
/// collected in seed order and the summary stats are accumulated from that
/// ordered vector, so the result — including the format_table2/format_table3
/// renderings — is identical at any thread count.
[[nodiscard]] ExperimentSummary run_emergency_brake_experiment(const TestbedConfig& base_config,
                                                               int n_trials, unsigned threads = 0);

/// Builds the summary (RunningStats + MetricsRegistry) from an already
/// seed-ordered trial vector — the single aggregation pass shared by
/// run_emergency_brake_experiment and the campaign server's cache-hit
/// path, so a summary rebuilt from stored trial records is bit-identical
/// to the one the cold run produced.
[[nodiscard]] ExperimentSummary aggregate_experiment_summary(std::vector<TrialResult> trials);

/// Resolves the thread-count knob: 0 -> hardware_concurrency (at least 1).
[[nodiscard]] unsigned resolve_experiment_threads(unsigned threads);

/// Thread-count knob for benches and examples: reads the RST_THREADS
/// environment variable (0 = auto); returns `fallback` when unset or
/// unparsable.
[[nodiscard]] unsigned experiment_threads_from_env(unsigned fallback = 0);

/// Partition-count knob for benches and scenarios: reads the RST_PARTITIONS
/// environment variable; returns `fallback` when unset or unparsable
/// (1 = serial medium).
[[nodiscard]] unsigned experiment_partitions_from_env(unsigned fallback = 1);

/// Renders a Table II-style report (paper rows vs measured) to a string.
[[nodiscard]] std::string format_table2(const ExperimentSummary& summary, int max_rows = 5);

/// Renders a Table III-style report.
[[nodiscard]] std::string format_table3(const ExperimentSummary& summary, int max_rows = 7);

}  // namespace rst::core
