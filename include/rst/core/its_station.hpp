#pragma once

#include <memory>
#include <string>

#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/its/dcc/channel_probe.hpp"
#include "rst/its/dcc/reactive_dcc.hpp"
#include "rst/its/facilities/ca_basic_service.hpp"
#include "rst/its/facilities/cpm_service.hpp"
#include "rst/its/facilities/den_basic_service.hpp"
#include "rst/its/facilities/ldm.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/btp_mux.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/middleware/http.hpp"
#include "rst/middleware/ntp.hpp"
#include "rst/middleware/openc2x_api.hpp"
#include "rst/sim/trace.hpp"

namespace rst::core {

/// Configuration of one OpenC2X-class ITS station (OBU or RSU).
struct ItsStationConfig {
  its::StationId station_id{1};
  its::StationType station_type{its::StationType::PassengerCar};
  /// Also the station's hostname on the HTTP LAN.
  std::string name{"station"};
  dot11p::RadioConfig radio{};
  its::GeoNetConfig geonet{};
  its::CaConfig ca{};
  its::DenConfig den{};
  /// Collective Perception service (opt-in; off keeps the stack and every
  /// default-path artifact byte-identical to a CPM-less build).
  bool enable_cpm{false};
  its::CpmConfig cpm{};
  /// Gate all transmissions through a reactive DCC (TS 102 687).
  bool enable_dcc{false};
  its::dcc::ReactiveDccConfig dcc{};
  middleware::NtpClock::Config ntp{};
  /// Stack processing between radio delivery and the facilities layer
  /// (decode, BTP dispatch, OpenC2X internal queueing).
  sim::SimTime stack_rx_mean{sim::SimTime::microseconds(800)};
  sim::SimTime stack_rx_sigma{sim::SimTime::microseconds(250)};
  sim::SimTime stack_rx_min{sim::SimTime::microseconds(300)};
};

/// A complete ETSI ITS station as the paper deploys it: an 802.11p radio
/// (PC Engines APU2 + WLE200NX class), GeoNetworking + BTP, the CA and DEN
/// basic services, an LDM, an NTP-disciplined wall clock, and the
/// OpenC2X-style HTTP API through which applications integrate.
class ItsStation {
 public:
  ItsStation(sim::Scheduler& sched, dot11p::Medium& medium, middleware::HttpLan& lan,
             const geo::LocalFrame& frame, ItsStationConfig config,
             its::GeoNetRouter::EgoProvider ego, sim::RandomStream rng,
             sim::Trace* trace = nullptr);
  ItsStation(const ItsStation&) = delete;
  ItsStation& operator=(const ItsStation&) = delete;

  [[nodiscard]] its::StationId id() const { return config_.station_id; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  [[nodiscard]] dot11p::Radio& radio() { return *radio_; }
  [[nodiscard]] its::GeoNetRouter& router() { return *router_; }
  /// BTP demux: applications may register additional ports next to the
  /// standard CAM/DENM services.
  [[nodiscard]] its::BtpMux& btp() { return mux_; }
  [[nodiscard]] its::CaBasicService& ca() { return *ca_; }
  [[nodiscard]] its::DenBasicService& den() { return *den_; }
  [[nodiscard]] its::Ldm& ldm() { return *ldm_; }
  [[nodiscard]] middleware::HttpHost& http() { return *http_; }
  [[nodiscard]] middleware::OpenC2xApi& api() { return *api_; }
  [[nodiscard]] middleware::NtpClock& clock() { return *clock_; }
  [[nodiscard]] const middleware::NtpClock& clock() const { return *clock_; }
  /// Non-null when enable_dcc is set.
  [[nodiscard]] its::dcc::ReactiveDcc* dcc() { return dcc_.get(); }
  /// Non-null when enable_cpm is set.
  [[nodiscard]] its::CpmService* cpm() { return cpm_.get(); }

  /// Sets the vehicle-data provider feeding the CA service and starts
  /// CAM generation.
  void start_cam(its::CaBasicService::VehicleDataProvider provider);

  /// Textual stack diagnostics (also served as `GET /status` on the HTTP
  /// API — the OpenC2X web interface's status page).
  [[nodiscard]] std::string status_report() const;

 private:
  sim::Scheduler& sched_;
  ItsStationConfig config_;
  sim::RandomStream rng_;
  sim::Trace* trace_;

  std::unique_ptr<dot11p::Radio> radio_;
  std::unique_ptr<its::GeoNetRouter> router_;
  its::BtpMux mux_;
  std::unique_ptr<its::Ldm> ldm_;
  std::unique_ptr<its::CaBasicService> ca_;
  std::unique_ptr<its::DenBasicService> den_;
  std::unique_ptr<its::CpmService> cpm_;
  std::unique_ptr<its::dcc::ChannelProbe> probe_;
  std::unique_ptr<its::dcc::ReactiveDcc> dcc_;
  std::unique_ptr<middleware::NtpClock> clock_;
  std::unique_ptr<middleware::HttpHost> http_;
  std::unique_ptr<middleware::OpenC2xApi> api_;
  /// Slot the lazily-installed CAM vehicle-data provider is written into.
  std::shared_ptr<its::CaBasicService::VehicleDataProvider> cam_provider_slot_;
};

}  // namespace rst::core
