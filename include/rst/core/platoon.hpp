#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "rst/cellular/cellular_link.hpp"
#include "rst/core/its_station.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/middleware/message_bus.hpp"
#include "rst/vehicle/cacc.hpp"
#include "rst/vehicle/dynamics.hpp"
#include "rst/vehicle/message_handler.hpp"

namespace rst::core {

/// Configuration of the platoon extension (paper §V: "extend the testbed to
/// support connected platoons … and evaluate the detection-to-action delay
/// for the entire platoon", including the multi-technology arrangement
/// where "the platoon leader is 5G-capable while intra-platoon message
/// forwarding is based on IEEE 802.11p").
struct PlatoonConfig {
  std::uint64_t seed{1};
  int n_vehicles{4};
  double spacing_m{1.2};
  double speed_mps{1.2};
  vehicle::VehicleParams vehicle_params{};
  /// OBU polling period of each vehicle's stop logic.
  sim::SimTime poll_period{sim::SimTime::milliseconds(50)};
  /// When true, followers regulate their gap with CACC fed by the
  /// predecessor's CAMs (instead of independent cruise control).
  bool use_cacc{false};
  vehicle::CaccConfig cacc{};

  /// When true the RSU reaches only the leader, over a cellular link; the
  /// leader re-advertises the event on 802.11p for the rest of the platoon.
  bool leader_uses_cellular{false};
  cellular::CellularConfig cellular{};

  /// Radio parameters; lower tx power forces multi-hop GeoNetworking
  /// forwarding down the platoon.
  dot11p::RadioConfig radio{};
  double path_loss_exponent{2.1};
  double shadowing_sigma_db{2.0};

  /// DENM repetition by the originator.
  std::optional<sim::SimTime> denm_repetition{sim::SimTime::milliseconds(100)};
  geo::GeoPosition origin{41.1780, -8.6080};
  geo::Vec2 rsu_position{2.0, 10.0};
};

/// Per-vehicle outcome of a platoon emergency-stop run.
struct PlatoonVehicleResult {
  int index{0};
  bool stopped{false};
  /// Event-detection (trigger) to power-cut-command latency.
  double detection_to_action_ms{0};
};

struct PlatoonResult {
  std::vector<PlatoonVehicleResult> vehicles;
  /// Detection-to-action of the slowest vehicle (the platoon-level metric).
  double worst_detection_to_action_ms{0};
  bool all_stopped{false};
  /// Smallest bumper-to-bumper gap between adjacent vehicles observed
  /// during the stop; negative means a rear-end collision occurred.
  double min_gap_m{0};
};


/// A line of connected scale vehicles cruising behind a leader; at a
/// configurable instant the road-side infrastructure advertises an
/// emergency event and every vehicle must brake. Exercises DENM
/// repetition, GeoBroadcast forwarding (with reduced radio range) and the
/// mixed 5G-leader / 802.11p-followers arrangement.
class PlatoonScenario {
 public:
  explicit PlatoonScenario(PlatoonConfig config);
  ~PlatoonScenario();
  PlatoonScenario(const PlatoonScenario&) = delete;
  PlatoonScenario& operator=(const PlatoonScenario&) = delete;

  /// Runs the scenario: cruise for `warmup`, trigger the event, then run
  /// until all vehicles halted or `timeout` elapses.
  PlatoonResult run_emergency_stop(sim::SimTime warmup = sim::SimTime::seconds(2),
                                   sim::SimTime timeout = sim::SimTime::seconds(10));

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] ItsStation& rsu() { return *rsu_; }
  [[nodiscard]] ItsStation& vehicle_obu(int i) { return *units_.at(i)->obu; }
  [[nodiscard]] vehicle::VehicleDynamics& vehicle_dynamics(int i) {
    return *units_.at(i)->dynamics;
  }
  [[nodiscard]] int size() const { return static_cast<int>(units_.size()); }

 private:
  struct Unit {
    std::unique_ptr<vehicle::VehicleDynamics> dynamics;
    std::unique_ptr<middleware::MessageBus> bus;
    std::unique_ptr<middleware::HttpHost> host;
    std::unique_ptr<vehicle::MessageHandler> handler;
    std::unique_ptr<ItsStation> obu;
    std::unique_ptr<vehicle::CaccController> cacc;
    sim::EventHandle cruise_timer;
    sim::SimTime power_cut_at{};
    bool power_cut{false};
  };

  void cruise_tick(Unit& unit);

  PlatoonConfig config_;
  sim::Scheduler sched_;
  sim::Trace trace_;
  sim::RandomStream rng_;
  geo::LocalFrame frame_;
  std::unique_ptr<dot11p::Medium> medium_;
  std::unique_ptr<middleware::HttpLan> lan_;
  std::unique_ptr<cellular::CellularNetwork> cellular_;
  std::unique_ptr<ItsStation> rsu_;
  std::vector<std::unique_ptr<Unit>> units_;
};

}  // namespace rst::core
