#pragma once

namespace rst::core {

/// Parameters of a full-size vehicle used to map testbed braking
/// observations to real-world stopping distances (paper §IV-B outlook:
/// "Using parameters of the full-size vehicles, such as stopping power,
/// weight and frontal area, models can be drawn to map braking distances
/// observed in the testbed to real-world ones").
struct FullSizeVehicle {
  double mass_kg{1500};
  double frontal_area_m2{2.2};
  double drag_coefficient{0.30};
  /// Tyre-road friction available for braking.
  double friction_mu{0.8};
  /// Fraction of the friction limit the braking system sustains.
  double brake_efficiency{0.9};

  [[nodiscard]] static FullSizeVehicle passenger_car() { return {}; }
  [[nodiscard]] static FullSizeVehicle heavy_truck() {
    return {.mass_kg = 18000, .frontal_area_m2 = 9.0, .drag_coefficient = 0.6,
            .friction_mu = 0.65, .brake_efficiency = 0.85};
  }
};

/// Stopping distance of a full-size vehicle from `speed_mps`, integrating
/// friction braking + aerodynamic drag, plus a driver/system `reaction_s`
/// dead time at constant speed.
[[nodiscard]] double full_size_braking_distance_m(const FullSizeVehicle& vehicle, double speed_mps,
                                                  double reaction_s = 0.0);

/// Dynamic-similarity (Froude) speed mapping: the full-size speed whose
/// dynamics correspond to `model_speed_mps` on a 1/`scale` model.
[[nodiscard]] double froude_equivalent_speed_mps(double model_speed_mps, double scale);

/// Geometric mapping of a braking distance observed on the 1/`scale`
/// testbed to full size under Froude similarity (distances scale by
/// `scale` when speeds scale by sqrt(scale) and decelerations match).
[[nodiscard]] double froude_equivalent_distance_m(double model_distance_m, double scale);

/// The deceleration implied by a measured braking distance (v^2 / 2d).
[[nodiscard]] double implied_deceleration_mps2(double speed_mps, double braking_distance_m);

}  // namespace rst::core
