#pragma once

#include <map>
#include <memory>
#include <vector>

#include "rst/cellular/cellular_link.hpp"
#include "rst/core/its_station.hpp"
#include "rst/dot11p/channel.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/middleware/message_bus.hpp"
#include "rst/roadside/hazard_service.hpp"
#include "rst/sim/fault_plan.hpp"
#include "rst/sim/metrics.hpp"
#include "rst/roadside/object_detection_service.hpp"
#include "rst/vehicle/control_module.hpp"
#include "rst/vehicle/dynamics.hpp"
#include "rst/vehicle/line_detection.hpp"
#include "rst/vehicle/gnss.hpp"
#include "rst/vehicle/lidar.hpp"
#include "rst/vehicle/message_handler.hpp"
#include "rst/vehicle/motion_planner.hpp"
#include "rst/vehicle/track.hpp"

namespace rst::sim {
class PartitionedScheduler;
}  // namespace rst::sim

namespace rst::core {

/// Which bearer carries the warning from the RSU to the vehicle. ItsG5 is
/// the paper's deployment (802.11p broadcast + OBU polling); the cellular
/// options realise the §V future-work comparison ("installing a 5G module
/// in the robotic vehicles, to compare the same detection-to-action delay
/// over a different interface and network") — push-based delivery to a
/// 5G modem on the vehicle, no HTTP polling loop.
enum class WarningPath : std::uint8_t { ItsG5, CellularEmbb, CellularUrllc };

/// Full configuration of the scale testbed (Fig. 8 of the paper): geometry,
/// vehicle, road-side infrastructure, ITS stations and channel.
struct TestbedConfig {
  std::uint64_t seed{1};
  WarningPath warning_path{WarningPath::ItsG5};
  /// Deterministic fault-injection schedule. Empty (the default) means no
  /// injector is constructed at all: every component hook is a strict
  /// no-op and the simulation is byte-identical to a build without the
  /// subsystem. Clauses parse from config files via `fault = ...` lines.
  sim::FaultPlan fault_plan{};

  // --- Geometry (local east-north metres) ---
  geo::GeoPosition origin{41.1780, -8.6080};  // the lab's anchor coordinate
  geo::Vec2 track_start{0, 0};
  geo::Vec2 track_end{0, 10};
  geo::Vec2 vehicle_start{0, 0.5};
  geo::Vec2 camera_position{0, 8.0};
  double camera_facing_rad{M_PI};  // facing south, towards the inbound car
  geo::Vec2 rsu_position{0.5, 8.0};

  // --- Vehicle side ---
  vehicle::VehicleParams vehicle_params{};
  vehicle::MotionPlanner::Config planner{};
  vehicle::LineCameraSensor::Config line_sensor{};
  vehicle::ControlModule::Config control{};
  vehicle::MessageHandler::Config message_handler{};
  roadside::Presentation presentation{roadside::Presentation::StopSign};
  /// On-board sensing: the Hokuyo LiDAR + AEB fallback (off by default to
  /// isolate the network-aided chain, as in the paper's measurements).
  bool enable_lidar_aeb{false};
  vehicle::ScanningLidarConfig lidar{};
  vehicle::AebConfig aeb{};
  /// Route the OBU's advertised positions (CAM reference position, GN
  /// position vectors) through a GNSS receiver model instead of ground
  /// truth — what a real deployment would do.
  bool use_gnss{false};
  vehicle::GnssConfig gnss{};

  // --- Road side ---
  roadside::RoadsideCamera::Config camera{};  // position/facing overridden
  roadside::YoloSimulator::Config yolo{};
  roadside::ObjectDetectionService::Config detection{};
  roadside::HazardAdvertisementService::Config hazard{};

  // --- ITS stations ---
  ItsStationConfig obu{.station_id = 42,
                       .station_type = its::StationType::PassengerCar,
                       .name = "obu"};
  ItsStationConfig rsu{.station_id = 900,
                       .station_type = its::StationType::RoadSideUnit,
                       .name = "rsu"};
  bool enable_cam{true};

  // --- Collective Perception (ETSI CPM, TS 103 324 style) ---
  /// Both stations publish their LDM percepts as CPMs and fuse remote
  /// ones: the RSU's detection stream feeds its LDM continuously and the
  /// OBU runs the collision predictor on every fused percept. Opt-in; off
  /// (the default) keeps every artifact byte-identical to a CPM-less run.
  bool cpm_enable{false};
  sim::SimTime cpm_interval{sim::SimTime::milliseconds(250)};
  sim::SimTime cpm_object_lifetime{sim::SimTime::milliseconds(1500)};
  sim::SimTime cpm_redundancy_window{sim::SimTime::milliseconds(500)};

  // --- Radio channel ---
  double path_loss_exponent{2.1};
  double shadowing_sigma_db{2.0};
  std::vector<dot11p::Wall> walls{};
  /// Ray-index the walls (geo::ObstacleGrid); off keeps the brute-force
  /// wall scan. Results are bit-identical either way.
  bool obstacle_index{true};

  // --- Medium scaling (dense fleets; see README "Scaling the medium") ---
  /// Counter-based per-link stochastic streams; delivery outcomes become
  /// independent of attach order and fleet size.
  bool medium_per_link_streams{false};
  /// Spatial-grid receiver culling (implies per-link streams). Outcomes are
  /// identical to per-link without the grid — culling only skips links whose
  /// deterministic budget is already below `medium_power_floor_dbm`.
  bool medium_spatial_index{false};
  /// Link budget (dBm) below which a link is out of range in per-link mode.
  double medium_power_floor_dbm{-110.0};
  /// Culling/partition grid cell size in metres; 0 derives one hearing
  /// radius from the power floor. One knob governs both the spatial-index
  /// query geometry and the cell -> domain mapping of partitioned runs.
  double medium_grid_cell_m{0.0};
  /// Medium partition domains (needs medium_spatial_index). 0 adopts the
  /// RST_PARTITIONS environment variable (unset = serial), 1 forces serial;
  /// results are bit-identical to serial at any count.
  int medium_partitions{0};

  // --- Wired middleware ---
  middleware::HttpLan::Config lan{};
  middleware::MessageBus::Config bus{};
  middleware::NtpClock::Config edge_ntp{};
  middleware::NtpClock::Config jetson_ntp{};

  /// Throws std::invalid_argument naming the offending field when the
  /// configuration cannot describe a runnable testbed. Called by
  /// TestbedScenario's constructor.
  void validate() const;
};

/// Result of one emergency-braking trial (the measurement chain of
/// Fig. 4 / §IV-A of the paper).
struct TrialResult {
  bool stopped_by_denm{false};
  bool timed_out{false};

  // True (simulation-clock) step instants.
  sim::SimTime t_cross_actual{};   ///< step 1: vehicle geometrically at the Action Point
  sim::SimTime t_detection{};      ///< step 2: YOLO output flags the crossing
  sim::SimTime t_rsu_send{};       ///< step 3: RSU transmits the DENM
  sim::SimTime t_obu_receive{};    ///< step 4: OBU facilities receive the DENM
  sim::SimTime t_power_cut{};      ///< step 5: ECU commands the actuators
  sim::SimTime t_halt{};           ///< step 6: vehicle at standstill

  // NTP-measured intervals (include residual clock error, like the paper).
  double meas_detection_to_rsu_ms{0};  ///< step 2 -> 3
  double meas_rsu_to_obu_ms{0};        ///< step 3 -> 4
  double meas_obu_to_actuator_ms{0};   ///< step 4 -> 5
  double meas_total_ms{0};             ///< step 2 -> 5

  double braking_distance_m{0};        ///< travel from detection to halt (Table III)
  double stop_distance_to_camera_m{0};
  double detection_distance_m{0};      ///< estimated distance at the trigger
  double speed_at_detection_mps{0};
};

/// The assembled laboratory testbed: one protagonist scale vehicle with an
/// OBU, one road-side infrastructure (camera + edge node + RSU), a shared
/// 802.11p medium and a wired LAN — everything Fig. 3 of the paper shows.
class TestbedScenario {
 public:
  explicit TestbedScenario(TestbedConfig config);
  ~TestbedScenario();
  TestbedScenario(const TestbedScenario&) = delete;
  TestbedScenario& operator=(const TestbedScenario&) = delete;

  /// Runs one complete trial: the vehicle line-follows towards the camera,
  /// the infrastructure detects the Action-Point crossing, triggers the
  /// DENM and the vehicle stops. Returns the measured chain.
  TrialResult run_emergency_brake_trial(sim::SimTime timeout = sim::SimTime::seconds(30));

  /// Adds a non-ITS road user moving at constant velocity (blind-corner
  /// use-case: the vehicle the camera must perceive for the protagonist).
  /// Visible to the road-side camera and to the on-board LiDAR (subject to
  /// FOV, range and wall occlusion).
  void add_road_user(geo::Vec2 start, double heading_rad, double speed_mps,
                     roadside::Presentation presentation);

  /// Adds a stationary obstacle (e.g. a broken-down vehicle) visible to
  /// both the camera and the LiDAR.
  void add_static_obstacle(geo::Vec2 position, roadside::Presentation presentation,
                           double radius_m = 0.15);

  /// Smallest protagonist-to-road-user separation seen so far (metres);
  /// infinity when no road user exists.
  [[nodiscard]] double min_separation_m() const { return min_separation_; }

  // --- Component access (the public API surface examples build on) ---
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }
  [[nodiscard]] const geo::LocalFrame& frame() const { return frame_; }
  [[nodiscard]] dot11p::Medium& medium() { return *medium_; }
  [[nodiscard]] vehicle::VehicleDynamics& dynamics() { return *dynamics_; }
  [[nodiscard]] vehicle::MotionPlanner& planner() { return *planner_; }
  [[nodiscard]] vehicle::MessageHandler& message_handler() { return *message_handler_; }
  [[nodiscard]] vehicle::Track& track() { return *track_; }
  [[nodiscard]] vehicle::ScanningLidar* lidar() { return lidar_.get(); }
  [[nodiscard]] vehicle::AebController* aeb() { return aeb_.get(); }
  [[nodiscard]] vehicle::GnssReceiver* gnss() { return gnss_.get(); }
  [[nodiscard]] roadside::RoadsideCamera& camera() { return *camera_; }
  [[nodiscard]] roadside::ObjectDetectionService& detection() { return *detection_; }
  [[nodiscard]] roadside::HazardAdvertisementService& hazard() { return *hazard_; }
  [[nodiscard]] ItsStation& obu() { return *obu_; }
  [[nodiscard]] ItsStation& rsu() { return *rsu_; }
  [[nodiscard]] middleware::NtpClock& edge_clock() { return *edge_clock_; }
  [[nodiscard]] middleware::NtpClock& jetson_clock() { return *jetson_clock_; }
  [[nodiscard]] middleware::HttpLan& lan() { return *lan_; }
  /// Null when the configured fault plan is empty.
  [[nodiscard]] sim::FaultInjector* fault_injector() { return faults_.get(); }
  /// cpm.* counters when cpm_enable is set (empty registry otherwise).
  [[nodiscard]] sim::MetricsRegistry& metrics() { return metrics_; }

  /// Starts every service (also done by run_emergency_brake_trial).
  void start_services();

 private:
  struct RoadUser {
    geo::Vec2 start;
    geo::Vec2 velocity;
    sim::SimTime t0;
  };

  void schedule_separation_probe();
  void feed_rsu_ldm(const roadside::DetectionBatch& batch);
  void on_fused_percept(const its::PerceivedObject& object);

  TestbedConfig config_;
  sim::Scheduler sched_;
  sim::Trace trace_;
  sim::RandomStream rng_;
  geo::LocalFrame frame_;
  std::unique_ptr<sim::FaultInjector> faults_;

  std::unique_ptr<sim::PartitionedScheduler> engine_;
  std::unique_ptr<dot11p::Medium> medium_;
  std::unique_ptr<middleware::HttpLan> lan_;
  std::unique_ptr<middleware::MessageBus> vehicle_bus_;
  std::unique_ptr<middleware::MessageBus> edge_bus_;

  std::unique_ptr<vehicle::Track> track_;
  std::unique_ptr<vehicle::VehicleDynamics> dynamics_;
  std::unique_ptr<vehicle::LineCameraSensor> line_sensor_;
  std::unique_ptr<vehicle::MotionPlanner> planner_;
  std::unique_ptr<vehicle::ControlModule> control_;
  std::unique_ptr<middleware::HttpHost> jetson_host_;
  std::unique_ptr<vehicle::MessageHandler> message_handler_;
  std::unique_ptr<middleware::NtpClock> jetson_clock_;
  std::unique_ptr<vehicle::ScanningLidar> lidar_;
  std::unique_ptr<vehicle::AebController> aeb_;
  std::unique_ptr<vehicle::GnssReceiver> gnss_;

  std::unique_ptr<roadside::RoadsideCamera> camera_;
  std::unique_ptr<roadside::YoloSimulator> yolo_;
  std::unique_ptr<roadside::ObjectDetectionService> detection_;
  std::unique_ptr<middleware::HttpHost> edge_host_;
  std::unique_ptr<roadside::HazardAdvertisementService> hazard_;
  std::unique_ptr<middleware::NtpClock> edge_clock_;

  std::unique_ptr<ItsStation> obu_;
  std::unique_ptr<ItsStation> rsu_;
  std::unique_ptr<cellular::CellularNetwork> cellular_;

  std::vector<RoadUser> road_users_;
  double min_separation_{std::numeric_limits<double>::infinity()};
  bool services_started_{false};
  std::uint32_t next_object_id_{1};

  sim::MetricsRegistry metrics_;
  /// Per-object motion estimate of the detections -> RSU-LDM feed: the
  /// YOLO range rate is radial only, so world-frame velocity comes from
  /// finite differences over the detection stream.
  struct FeedTrack {
    geo::Vec2 position{};
    geo::Vec2 velocity{};
    sim::SimTime at{};
  };
  std::map<std::uint32_t, FeedTrack> cpm_feed_tracks_;
  bool cpm_stop_latched_{false};
};

}  // namespace rst::core
