#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "rst/geo/vec2.hpp"
#include "rst/sim/random.hpp"

namespace rst::geo {
class ObstacleGrid;
}

namespace rst::dot11p {

/// Deterministic (position-only) part of a propagation model.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;
  /// Path loss in dB between transmitter and receiver positions.
  [[nodiscard]] virtual double loss_db(geo::Vec2 tx, geo::Vec2 rx) const = 0;

  /// Lower bound on the loss between any two positions `distance_m` apart.
  /// The spatial index inverts this to derive a conservative culling radius:
  /// over-estimating loss here would cull radios that can still hear, so
  /// models whose loss is not a pure function of distance must override it
  /// with a true lower bound. The default evaluates the model along an
  /// arbitrary axis, which is exact for the distance-radial models above.
  [[nodiscard]] virtual double min_loss_db(double distance_m) const {
    return loss_db({0.0, 0.0}, {distance_m, 0.0});
  }
};

/// Friis free-space loss at 5.9 GHz (ITS-G5 band).
class FreeSpaceModel final : public PathLossModel {
 public:
  explicit FreeSpaceModel(double frequency_hz = 5.9e9);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

 private:
  double fixed_term_db_;
};

/// Log-distance model: loss(d) = loss(d0) + 10 n log10(d/d0).
class LogDistanceModel final : public PathLossModel {
 public:
  LogDistanceModel(double exponent, double reference_loss_db, double reference_distance_m = 1.0);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

  /// Convenience: log-distance anchored to free space at 1 m, 5.9 GHz.
  [[nodiscard]] static LogDistanceModel its_g5(double exponent = 2.2);

 private:
  double exponent_;
  double reference_loss_db_;
  double reference_distance_m_;
};

/// Dual-slope log-distance model (common VANET fit, e.g. Cheng et al.):
/// exponent n1 up to the breakpoint distance, n2 beyond it. Captures the
/// ground-reflection breakpoint of 5.9 GHz V2X links.
class DualSlopeModel final : public PathLossModel {
 public:
  DualSlopeModel(double near_exponent, double far_exponent, double breakpoint_m,
                 double reference_loss_db, double reference_distance_m = 1.0);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

  /// Anchored to free space at 1 m, 5.9 GHz; typical highway fit
  /// (n1 = 2.0 to ~100 m, n2 = 3.8 beyond).
  [[nodiscard]] static DualSlopeModel its_g5(double near_exponent = 2.0,
                                             double far_exponent = 3.8,
                                             double breakpoint_m = 100.0);

 private:
  double near_exponent_;
  double far_exponent_;
  double breakpoint_m_;
  double reference_loss_db_;
  double reference_distance_m_;
};

/// An opaque wall segment; any link whose LOS ray crosses it incurs an
/// extra obstruction loss. Models the paper's blind-corner scenario
/// ("vehicles do not have Line-of-Sight visually nor wirelessly").
struct Wall {
  geo::Vec2 a;
  geo::Vec2 b;
  double obstruction_loss_db{20.0};
};

/// Decorates a base model with obstacle (NLOS) losses from wall segments.
///
/// City-scale obstacle maps (the scenario generator emits four walls per
/// building) make this the inner loop of every link-budget evaluation. By
/// default the walls are held in a `geo::ObstacleGrid` ray index: a query
/// walks only the grid cells along the tx-rx ray, deduplicates the walls it
/// finds there and applies the same bounding-box reject and exact
/// `segments_intersect` test, in the same ascending-wall order, as the
/// brute-force scan — so `loss_db`/`is_nlos`/`walls_crossed` are
/// bit-identical to the O(walls) path at O(cells-along-ray) cost
/// (obstacle_index_test proves it on random soups and adversarial rays).
/// `use_index = false` keeps the brute-force scan, as the equivalence
/// baseline and for tiny wall sets.
///
/// The index is immutable after construction and queries use per-thread
/// scratch only, so the medium's domain-parallel phases may evaluate link
/// budgets through this model concurrently without locks.
class ObstacleShadowingModel final : public PathLossModel {
 public:
  /// `index_cell_m == 0` derives the grid cell size from the wall geometry
  /// (`geo::ObstacleGrid::derive_cell_size`).
  ObstacleShadowingModel(std::unique_ptr<PathLossModel> base, std::vector<Wall> walls,
                         bool use_index = true, double index_cell_m = 0.0);
  ~ObstacleShadowingModel() override;
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;
  /// Walls only ever add loss, so the base model's bound stays valid.
  [[nodiscard]] double min_loss_db(double distance_m) const override;

  /// True when the segment tx-rx crosses at least one wall.
  [[nodiscard]] bool is_nlos(geo::Vec2 tx, geo::Vec2 rx) const;

  /// Walls crossed by the segment tx-rx (the NLOS "depth" of a link).
  [[nodiscard]] std::size_t walls_crossed(geo::Vec2 tx, geo::Vec2 rx) const;

  /// Total loss and NLOS depth in one wall pass, with the identical
  /// accumulation order as `loss_db` — the memoizable unit of work behind
  /// the medium's epoch-validated NLOS memo.
  struct LossDepth {
    double loss_db{0.0};
    std::uint32_t depth{0};
  };
  [[nodiscard]] LossDepth loss_and_depth(geo::Vec2 tx, geo::Vec2 rx) const;

  [[nodiscard]] const std::vector<Wall>& walls() const { return walls_; }
  [[nodiscard]] bool index_enabled() const { return grid_ != nullptr; }
  /// Null when the model runs brute force.
  [[nodiscard]] const geo::ObstacleGrid* index() const { return grid_.get(); }
  /// Queries served through the ray index so far — the engagement proof for
  /// benches and CI (relaxed counter: queries may come from domain-phase
  /// workers). Always 0 in brute-force mode.
  [[nodiscard]] std::uint64_t index_queries() const {
    return index_queries_.load(std::memory_order_relaxed);
  }

 private:
  struct WallBox {
    double min_x, min_y, max_x, max_y;
  };

  template <typename OnWall>
  void for_each_crossing(geo::Vec2 tx, geo::Vec2 rx, OnWall&& on_wall) const;

  std::unique_ptr<PathLossModel> base_;
  std::vector<Wall> walls_;
  std::vector<WallBox> boxes_;  // parallel to walls_
  std::unique_ptr<const geo::ObstacleGrid> grid_;  // null = brute force
  mutable std::atomic<std::uint64_t> index_queries_{0};
};

/// True when segments ab and cd intersect (shared endpoints, T-touches and
/// collinear overlaps count; see geo::segments_intersect for the pinned
/// contract — this forwards to it).
[[nodiscard]] bool segments_intersect(geo::Vec2 a, geo::Vec2 b, geo::Vec2 c, geo::Vec2 d);

/// Small-scale fading applied per transmission per receiver.
enum class FadingModel : std::uint8_t {
  None,
  /// Nakagami-m amplitude fading (m=1 is Rayleigh; m>=3 near-LOS). The
  /// received power is scaled by a unit-mean gamma draw with shape m.
  Nakagami,
};

/// Full channel = deterministic path loss + log-normal shadowing sigma +
/// optional small-scale fading. The stochastic draws are made per
/// transmission per receiver by the Medium.
struct ChannelModel {
  std::shared_ptr<const PathLossModel> path_loss;
  double shadowing_sigma_db{0.0};
  FadingModel fading{FadingModel::None};
  /// Nakagami shape parameter (ignored unless fading == Nakagami).
  double nakagami_m{3.0};

  // --- Dense-fleet scaling knobs (README "Scaling the medium") ---
  //
  // Both knobs are opt-in; with both off the Medium behaves bit-identically
  // to the original full-fan-out implementation.

  /// Draw shadowing/fading/PER from counter-based streams keyed on
  /// (tx MAC, rx MAC, tx sequence) instead of the shared medium-order
  /// streams, and treat links whose deterministic link budget is below
  /// `power_floor_dbm` as out of range (no draw, no interference, counted
  /// as dropped_below_sensitivity). Delivery outcomes become independent of
  /// receiver iteration order — the precondition for spatial culling.
  /// Implied by spatial_index.
  bool per_link_streams{false};
  /// Cull receivers through a uniform spatial hash grid instead of the full
  /// radio fan-out. Requires per_link_streams semantics (auto-enabled) and
  /// must not change any delivery outcome relative to per_link_streams
  /// alone: the grid radius is derived by inverting
  /// PathLossModel::min_loss_db at power_floor_dbm.
  bool spatial_index{false};
  /// Links below this deterministic receive power (dBm, path loss and
  /// antenna gains only) are never considered. Keep a healthy margin below
  /// rx_sensitivity_dbm so post-shadowing/fading upside cannot matter:
  /// default is 15 dB under the default -95 dBm sensitivity (> 5 sigma of
  /// typical shadowing).
  double power_floor_dbm{-110.0};
  /// Grid cell edge; 0 derives it from the inverted power floor range.
  double cell_size_m{0.0};
  /// How often the grid re-reads every radio's position (amortised into
  /// begin_transmission, no standing event). Zero means the 100 ms default.
  sim::SimTime reindex_period{};
  /// Upper bound on station speed, used to pad the query radius against
  /// positions that are up to one reindex period stale. Stations moving
  /// faster than this can be culled while audible.
  double max_station_speed_mps{50.0};
};

}  // namespace rst::dot11p
