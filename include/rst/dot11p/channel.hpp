#pragma once

#include <memory>
#include <vector>

#include "rst/geo/vec2.hpp"
#include "rst/sim/random.hpp"

namespace rst::dot11p {

/// Deterministic (position-only) part of a propagation model.
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;
  /// Path loss in dB between transmitter and receiver positions.
  [[nodiscard]] virtual double loss_db(geo::Vec2 tx, geo::Vec2 rx) const = 0;
};

/// Friis free-space loss at 5.9 GHz (ITS-G5 band).
class FreeSpaceModel final : public PathLossModel {
 public:
  explicit FreeSpaceModel(double frequency_hz = 5.9e9);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

 private:
  double fixed_term_db_;
};

/// Log-distance model: loss(d) = loss(d0) + 10 n log10(d/d0).
class LogDistanceModel final : public PathLossModel {
 public:
  LogDistanceModel(double exponent, double reference_loss_db, double reference_distance_m = 1.0);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

  /// Convenience: log-distance anchored to free space at 1 m, 5.9 GHz.
  [[nodiscard]] static LogDistanceModel its_g5(double exponent = 2.2);

 private:
  double exponent_;
  double reference_loss_db_;
  double reference_distance_m_;
};

/// Dual-slope log-distance model (common VANET fit, e.g. Cheng et al.):
/// exponent n1 up to the breakpoint distance, n2 beyond it. Captures the
/// ground-reflection breakpoint of 5.9 GHz V2X links.
class DualSlopeModel final : public PathLossModel {
 public:
  DualSlopeModel(double near_exponent, double far_exponent, double breakpoint_m,
                 double reference_loss_db, double reference_distance_m = 1.0);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

  /// Anchored to free space at 1 m, 5.9 GHz; typical highway fit
  /// (n1 = 2.0 to ~100 m, n2 = 3.8 beyond).
  [[nodiscard]] static DualSlopeModel its_g5(double near_exponent = 2.0,
                                             double far_exponent = 3.8,
                                             double breakpoint_m = 100.0);

 private:
  double near_exponent_;
  double far_exponent_;
  double breakpoint_m_;
  double reference_loss_db_;
  double reference_distance_m_;
};

/// An opaque wall segment; any link whose LOS ray crosses it incurs an
/// extra obstruction loss. Models the paper's blind-corner scenario
/// ("vehicles do not have Line-of-Sight visually nor wirelessly").
struct Wall {
  geo::Vec2 a;
  geo::Vec2 b;
  double obstruction_loss_db{20.0};
};

/// Decorates a base model with obstacle (NLOS) losses from wall segments.
class ObstacleShadowingModel final : public PathLossModel {
 public:
  ObstacleShadowingModel(std::unique_ptr<PathLossModel> base, std::vector<Wall> walls);
  [[nodiscard]] double loss_db(geo::Vec2 tx, geo::Vec2 rx) const override;

  /// True when the segment tx-rx crosses at least one wall.
  [[nodiscard]] bool is_nlos(geo::Vec2 tx, geo::Vec2 rx) const;

 private:
  std::unique_ptr<PathLossModel> base_;
  std::vector<Wall> walls_;
};

/// True when segments ab and cd properly intersect (shared endpoints count).
[[nodiscard]] bool segments_intersect(geo::Vec2 a, geo::Vec2 b, geo::Vec2 c, geo::Vec2 d);

/// Small-scale fading applied per transmission per receiver.
enum class FadingModel : std::uint8_t {
  None,
  /// Nakagami-m amplitude fading (m=1 is Rayleigh; m>=3 near-LOS). The
  /// received power is scaled by a unit-mean gamma draw with shape m.
  Nakagami,
};

/// Full channel = deterministic path loss + log-normal shadowing sigma +
/// optional small-scale fading. The stochastic draws are made per
/// transmission per receiver by the Medium.
struct ChannelModel {
  std::shared_ptr<const PathLossModel> path_loss;
  double shadowing_sigma_db{0.0};
  FadingModel fading{FadingModel::None};
  /// Nakagami shape parameter (ignored unless fading == Nakagami).
  double nakagami_m{3.0};
};

}  // namespace rst::dot11p
