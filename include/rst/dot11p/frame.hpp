#pragma once

#include <cstdint>

#include "rst/bytes.hpp"
#include "rst/dot11p/phy_params.hpp"
#include "rst/sim/time.hpp"

namespace rst::dot11p {

/// Link-layer broadcast address.
inline constexpr std::uint64_t kBroadcastMac = 0xffffffffffffULL;

/// A MAC frame as seen by the link layer user (GeoNetworking). All ITS-G5
/// CAM/DENM traffic is broadcast in OCB mode, so there is no dst/ACK.
/// The payload is a shared immutable buffer: queueing, transmission and
/// delivery to any number of receivers never copy the bytes.
struct Frame {
  std::uint64_t src_mac{0};
  Bytes payload;  // LLC payload (GeoNetworking packet)
  AccessCategory ac{AccessCategory::Video};
};

/// Reception metadata delivered with a frame.
struct RxInfo {
  double rssi_dbm{0};
  double sinr_db{0};
  sim::SimTime rx_time{};
  std::uint64_t src_mac{0};
};

}  // namespace rst::dot11p
