#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rst/dot11p/channel.hpp"
#include "rst/dot11p/frame.hpp"
#include "rst/geo/spatial_grid.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::sim {
class FaultInjector;
class PartitionedScheduler;
}

namespace rst::dot11p {

class Radio;

/// The shared radio environment: propagation, interference and frame
/// delivery between all attached radios.
///
/// Model: when a radio transmits, the receive power at every other radio is
/// drawn once (path loss + log-normal shadowing) and reused both for
/// carrier-sense busy indications and for the reception decision at the end
/// of the airtime. Reception fails if the receiver transmitted during the
/// frame (half-duplex), if the power is below sensitivity, or by a
/// SINR-dependent packet error draw where interference is the sum of all
/// time-overlapping transmissions. Hidden terminals arise naturally from
/// per-receiver carrier sensing.
///
/// Two execution paths share that model:
///
///  - Legacy (default): receivers visited in attach order, stochastic draws
///    from two medium-wide streams in visit order, interference by linear
///    scan over in-flight transmissions. Bit-identical to the original
///    implementation.
///  - Per-link (`ChannelModel::per_link_streams`): draws come from
///    counter-based streams keyed on (tx MAC, rx MAC, tx sequence), links
///    whose deterministic budget is below `power_floor_dbm` are out of
///    range, interference is a per-receiver running accumulator (O(1) per
///    SINR evaluation), and deterministic link budgets are cached per
///    (tx, rx) slot pair under position epochs. With
///    `ChannelModel::spatial_index` also set, receivers are culled through
///    a uniform spatial hash grid, which cannot change any outcome — it
///    only skips links already below the power floor.
class Medium {
 public:
  Medium(sim::Scheduler& sched, sim::RandomStream rng, ChannelModel channel);
  ~Medium();

  void attach(Radio* radio);
  void detach(Radio* radio);

  /// Hands out locally-administered MAC addresses to attaching radios.
  /// Per-medium (not process-global) so concurrent scenarios in different
  /// threads never share mutable state and every scenario sees the same
  /// address sequence regardless of what ran before it in the process.
  [[nodiscard]] std::uint64_t allocate_mac() { return next_mac_++; }

  /// Called by Radio when its MAC wins channel access. `psdu_bytes` is the
  /// on-air PSDU size (payload + MAC overhead).
  void begin_transmission(Radio* tx, Frame frame, std::size_t psdu_bytes);

  /// Deterministic receive power (dBm) ignoring the shadowing draw; used by
  /// link-budget introspection and tests.
  [[nodiscard]] double mean_rx_power_dbm(const Radio& tx, const Radio& rx) const;

  /// Conservative hearing radius for `tx` in per-link mode: the distance at
  /// which the best-case link budget falls to the configured power floor
  /// (infinite when the path-loss model cannot bound it). Exposed for tests
  /// and capacity planning.
  [[nodiscard]] double cull_radius_m(const Radio& tx) const;

  struct Stats {
    std::uint64_t frames_transmitted{0};
    std::uint64_t deliveries{0};
    std::uint64_t dropped_half_duplex{0};
    std::uint64_t dropped_below_sensitivity{0};
    std::uint64_t dropped_error{0};
    /// Of dropped_below_sensitivity, how many links were never evaluated
    /// because their deterministic budget sat below the power floor
    /// (bulk-culled by the grid or floor-checked individually). Always 0 in
    /// legacy mode.
    std::uint64_t culled_below_floor{0};
    /// Link-budget cache performance (per-link mode only).
    std::uint64_t budget_cache_hits{0};
    std::uint64_t budget_cache_misses{0};
    /// Epoch-validated NLOS memo performance (legacy mode with an
    /// ObstacleShadowingModel only — the per-link path's budget cache
    /// already memoizes the full loss there). Both 0 otherwise.
    std::uint64_t nlos_memo_hits{0};
    std::uint64_t nlos_memo_misses{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const ChannelModel& channel() const { return channel_; }

  /// Subscribes the medium to a fault plan (injection point "medium":
  /// RadioBlackout / RadioAttenuation windows). Null detaches; the default
  /// path is a single pointer check per transmission. The extra attenuation
  /// is applied after the stochastic draws (legacy) / to the deterministic
  /// budget (per-link), so the draw sequence is unchanged by the hook.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  /// Runs the per-receiver physics of every transmission begin/finish as
  /// spatial-domain phases on the engine's worker team (domain = the
  /// `geo::SpatialGrid::cell_domain` of the receiver's cell). Requires the
  /// spatial index; a null engine (or one with a single partition) keeps
  /// the serial per-link path. Bit-identical to the serial path by
  /// construction: the parallel phase only computes pure per-link values
  /// (counter-keyed draws, epoch-validated budgets), and all side effects
  /// are applied serially in the canonical ascending-slot order.
  void set_partition_engine(sim::PartitionedScheduler* engine);
  [[nodiscard]] sim::PartitionedScheduler* partition_engine() const { return engine_; }
  /// Parallel begin/finish phases dispatched so far (0 in serial mode, or
  /// when every fan-out stayed below the parallel threshold). Deliberately
  /// outside Stats so serial and partitioned Stats stay byte-comparable;
  /// equivalence tests use it to prove the partitioned path really ran.
  [[nodiscard]] std::uint64_t partitioned_phases() const { return partitioned_phases_; }

  /// Cell size of the culling/partitioning grid (0 until the grid exists).
  [[nodiscard]] double grid_cell_size_m() const;

 private:
  struct Transmission {
    Radio* tx;
    std::uint32_t tx_slot{0};
    Frame frame;  // payload shared, not copied, across all receivers
    std::size_t psdu_bytes;
    Mcs mcs{Mcs::Qpsk12};  // snapshot: the sender may detach mid-flight
    std::uint64_t seq{0};  // transmitter's frame sequence (per-link stream key)
    sim::SimTime start;
    sim::SimTime end;
    /// Receiver snapshot taken at transmission start, parallel to
    /// `rx_power_dbm` (flat arrays instead of a per-transmission map).
    /// A detached radio's slot is nulled, never erased, so indices stay
    /// stable for the interference lookup.
    std::vector<Radio*> receivers;
    std::vector<double> rx_power_dbm;
    /// Per-link mode: receiver slot ids and the running interference tally
    /// (mW, excluding this transmission's own power) parallel to
    /// `receivers`. Legacy mode leaves these empty.
    std::vector<std::uint32_t> rx_slots;
    std::vector<double> interference_mw;
  };

  /// An in-flight transmission heard by a radio, indexed from the hearing
  /// radio's slot so detach and interference updates are O(in-flight).
  struct ActiveRx {
    Transmission* t;
    std::uint32_t index;  // into t->receivers / t->rx_power_dbm
  };

  /// Medium-side per-radio state. Slots are reused through a free list, so
  /// a slot index stays valid for the whole attach..detach lifetime.
  struct Slot {
    Radio* radio{nullptr};
    geo::Vec2 pos{};               // last recorded position
    std::uint32_t epoch{0};        // bumped whenever `pos` is re-recorded
    double interference_mw{0.0};   // running sum of in-flight rx powers here
    double cull_radius_m{-1.0};    // cached inverted budget as transmitter
    double cull_budget_db{0.0};    // budget the radius was derived from
    std::vector<ActiveRx> active;  // in-flight transmissions hearing us
    std::vector<Transmission*> own;  // our own in-flight transmissions
  };

  struct CachedBudget {
    std::uint32_t tx_epoch;
    std::uint32_t rx_epoch;
    double mean_dbm;
  };

  /// Legacy-path memo of an obstacle model evaluation for one (tx, rx) slot
  /// pair, valid while both slots' motion epochs are unchanged. Stores the
  /// *finished* total loss — re-associating a cached base with cached wall
  /// terms would change the floating-point sum and break bit-identity with
  /// the unmemoized walk.
  struct CachedNlos {
    std::uint32_t tx_epoch;
    std::uint32_t rx_epoch;
    double loss_db;
    std::uint32_t depth;
  };

  /// Verdict of one receiver's reception decision, precomputable because
  /// every input (snapshot powers, interference tallies, tx history,
  /// counter-keyed PER draw) is fixed when the finish event starts.
  enum class RxVerdict : std::uint8_t {
    kSkip,  // detached mid-flight
    kBelowSensitivity,
    kHalfDuplex,
    kError,
    kDeliver,
  };

  void begin_transmission_legacy(const std::shared_ptr<Transmission>& t);
  void begin_transmission_per_link(const std::shared_ptr<Transmission>& t);
  void finish_transmission(const std::shared_ptr<Transmission>& t);
  void finish_transmission_legacy(const std::shared_ptr<Transmission>& t);
  void finish_transmission_per_link(const std::shared_ptr<Transmission>& t);
  [[nodiscard]] double interference_mw(const Transmission& t, Radio* rx) const;

  /// Re-reads a radio's position; bumps its epoch (and moves its grid bin)
  /// when it changed. Returns the slot's recorded position.
  geo::Vec2 refresh_slot(std::uint32_t slot_id);
  /// Amortised full reposition sweep: runs at most once per reindex period,
  /// from begin_transmission, so recorded positions are never staler than
  /// one period (covered by the speed-bound query padding).
  void maybe_reindex();
  /// Deterministic link budget via the epoch-validated (tx, rx) cache.
  [[nodiscard]] double cached_budget_dbm(std::uint32_t tx_slot, std::uint32_t rx_slot);
  /// Legacy-path deterministic receive power. When the channel carries an
  /// obstacle model, the wall walk is served through the epoch-validated
  /// NLOS memo so static tx/rx pairs never re-walk; otherwise identical to
  /// `mean_rx_power_dbm`.
  [[nodiscard]] double legacy_mean_dbm(Radio* tx, std::uint32_t tx_slot, Radio* rx,
                                       std::uint32_t rx_slot);
  /// Admits one receiver into transmission `t` (power draw, CS busy,
  /// interference accounting). Shared by the culled and full-fan-out
  /// per-link paths.
  void admit_receiver_per_link(const std::shared_ptr<Transmission>& t, std::uint32_t rx_slot);
  /// Stochastic per-link receive power: deterministic mean plus the
  /// counter-keyed shadowing/fading draws. Pure — safe from any thread.
  [[nodiscard]] double draw_link_power_dbm(double mean_dbm, std::uint64_t tx_mac,
                                           std::uint64_t rx_mac, std::uint64_t seq) const;
  /// Side-effect half of receiver admission (interference seeding and
  /// tallies, snapshot pushes, carrier sense). Always serial.
  void apply_admission(const std::shared_ptr<Transmission>& t, std::uint32_t rx_slot, double p);
  /// Reception decision for receiver `i` of `t`; reads shared state but
  /// never writes it, so domain phases may evaluate receivers in parallel.
  [[nodiscard]] RxVerdict compute_rx_verdict(const Transmission& t, std::size_t i,
                                             double noise_mw, double& sinr_db) const;
  void apply_rx_verdict(const std::shared_ptr<Transmission>& t, std::size_t i, RxVerdict v,
                        double sinr_db);
  /// Domain-parallel variants of the per-link begin/finish fan-out; used
  /// when a partition engine is attached and the fan-out is wide enough to
  /// amortize a phase dispatch.
  void begin_candidates_partitioned(const std::shared_ptr<Transmission>& t);
  void finish_receivers_partitioned(const std::shared_ptr<Transmission>& t, double noise_mw);
  /// Epoch-validated budget lookup against one domain's cache shard; the
  /// hit/miss sequence per (tx, rx) pair is identical to the shared-cache
  /// path because epochs are monotone (see cached_budget_dbm).
  [[nodiscard]] double cached_budget_dbm_sharded(std::uint32_t tx_slot, std::uint32_t rx_slot,
                                                 std::uint32_t domain);
  [[nodiscard]] std::uint32_t slot_domain(std::uint32_t slot_id) const;
  [[nodiscard]] bool partitioned_active() const {
    return engine_ != nullptr && grid_ != nullptr && domains_ > 1;
  }
  [[nodiscard]] std::uint64_t link_key(std::uint64_t tx_mac, std::uint64_t rx_mac,
                                       std::uint64_t seq) const;
  void remove_active(Slot& slot, const Transmission* t, std::uint32_t index);
  [[nodiscard]] std::shared_ptr<Transmission> acquire_transmission();
  void release_transmission(const std::shared_ptr<Transmission>& t);
  void ensure_grid(const RadioConfig& first_cfg);
  [[nodiscard]] double invert_range_m(double budget_db) const;
  [[nodiscard]] double slot_cull_radius_m(Slot& slot);

  sim::Scheduler& sched_;
  sim::RandomStream shadow_rng_;
  sim::RandomStream per_rng_;
  sim::RandomStream link_rng_;
  ChannelModel channel_;
  bool per_link_;  // channel_.per_link_streams || channel_.spatial_index
  std::vector<Radio*> radios_;  // attach order; the legacy iteration order
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t attached_count_{0};
  std::vector<std::shared_ptr<Transmission>> transmissions_;  // legacy scan
  std::vector<std::shared_ptr<Transmission>> pool_;  // per-link reuse
  std::unordered_map<std::uint64_t, CachedBudget> budget_cache_;
  /// Legacy-path NLOS memo, keyed (tx_slot << 32) | rx_slot. Non-null
  /// obstacle_model_ (set once in the constructor) is its enable switch.
  const ObstacleShadowingModel* obstacle_model_{nullptr};
  std::unordered_map<std::uint64_t, CachedNlos> nlos_cache_;
  std::unique_ptr<geo::SpatialGrid> grid_;
  std::vector<std::uint32_t> scratch_candidates_;
  sim::SimTime last_reindex_{};
  sim::SimTime reindex_period_{};
  double max_antenna_gain_dbi_{0.0};
  sim::FaultInjector* faults_{nullptr};
  /// Fault attenuation (dB) snapshotted once per transmission start.
  double tx_fault_db_{0.0};
  Stats stats_;
  /// Partitioned execution (set_partition_engine): domain-sharded budget
  /// caches plus per-domain stats scratch (merged serially after each
  /// phase) and per-candidate result arrays. Begin and finish keep
  /// separate scratch so a delivery that immediately transmits (finish
  /// apply reentering begin) cannot clobber in-use state.
  sim::PartitionedScheduler* engine_{nullptr};
  std::uint32_t domains_{0};
  std::uint64_t partitioned_phases_{0};
  std::vector<std::unordered_map<std::uint64_t, CachedBudget>> budget_shards_;
  struct DomainScratch {
    std::uint64_t cache_hits{0};
    std::uint64_t cache_misses{0};
  };
  std::vector<DomainScratch> domain_scratch_;
  std::vector<std::uint32_t> cand_domain_;
  std::vector<double> cand_power_dbm_;
  std::vector<std::uint8_t> cand_admit_;
  std::vector<std::uint32_t> finish_domain_;
  std::vector<RxVerdict> finish_verdict_;
  std::vector<double> finish_sinr_db_;
  std::uint64_t next_mac_{0x020000000001ULL};  // locally administered
};

}  // namespace rst::dot11p
