#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rst/dot11p/channel.hpp"
#include "rst/dot11p/frame.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::dot11p {

class Radio;

/// The shared radio environment: propagation, interference and frame
/// delivery between all attached radios.
///
/// Model: when a radio transmits, the receive power at every other radio is
/// drawn once (path loss + log-normal shadowing) and reused both for
/// carrier-sense busy indications and for the reception decision at the end
/// of the airtime. Reception fails if the receiver transmitted during the
/// frame (half-duplex), if the power is below sensitivity, or by a
/// SINR-dependent packet error draw where interference is the sum of all
/// time-overlapping transmissions. Hidden terminals arise naturally from
/// per-receiver carrier sensing.
class Medium {
 public:
  Medium(sim::Scheduler& sched, sim::RandomStream rng, ChannelModel channel);

  void attach(Radio* radio);
  void detach(Radio* radio);

  /// Hands out locally-administered MAC addresses to attaching radios.
  /// Per-medium (not process-global) so concurrent scenarios in different
  /// threads never share mutable state and every scenario sees the same
  /// address sequence regardless of what ran before it in the process.
  [[nodiscard]] std::uint64_t allocate_mac() { return next_mac_++; }

  /// Called by Radio when its MAC wins channel access. `psdu_bytes` is the
  /// on-air PSDU size (payload + MAC overhead).
  void begin_transmission(Radio* tx, Frame frame, std::size_t psdu_bytes);

  /// Deterministic receive power (dBm) ignoring the shadowing draw; used by
  /// link-budget introspection and tests.
  [[nodiscard]] double mean_rx_power_dbm(const Radio& tx, const Radio& rx) const;

  struct Stats {
    std::uint64_t frames_transmitted{0};
    std::uint64_t deliveries{0};
    std::uint64_t dropped_half_duplex{0};
    std::uint64_t dropped_below_sensitivity{0};
    std::uint64_t dropped_error{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const ChannelModel& channel() const { return channel_; }

 private:
  struct Transmission {
    Radio* tx;
    Frame frame;  // payload shared, not copied, across all receivers
    std::size_t psdu_bytes;
    sim::SimTime start;
    sim::SimTime end;
    /// Receiver snapshot taken at transmission start, parallel to
    /// `rx_power_dbm` (flat arrays instead of a per-transmission map).
    /// A detached radio's slot is nulled, never erased, so indices stay
    /// stable for the interference lookup.
    std::vector<Radio*> receivers;
    std::vector<double> rx_power_dbm;
  };

  void finish_transmission(const std::shared_ptr<Transmission>& t);
  [[nodiscard]] double interference_mw(const Transmission& t, Radio* rx) const;

  sim::Scheduler& sched_;
  sim::RandomStream shadow_rng_;
  sim::RandomStream per_rng_;
  ChannelModel channel_;
  std::vector<Radio*> radios_;
  std::vector<std::shared_ptr<Transmission>> transmissions_;
  Stats stats_;
  std::uint64_t next_mac_{0x020000000001ULL};  // locally administered
};

}  // namespace rst::dot11p
