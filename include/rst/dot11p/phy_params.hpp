#pragma once

#include <cstddef>
#include <cstdint>

#include "rst/sim/time.hpp"

namespace rst::dot11p {

/// Modulation and coding schemes of IEEE 802.11p on a 10 MHz channel
/// (ITS-G5 access layer, EN 302 663). Default for CAM/DENM is Qpsk12
/// (6 Mbit/s), the ITS-G5 default transfer rate.
enum class Mcs : std::uint8_t {
  Bpsk12,   // 3 Mbit/s
  Bpsk34,   // 4.5 Mbit/s
  Qpsk12,   // 6 Mbit/s
  Qpsk34,   // 9 Mbit/s
  Qam16_12, // 12 Mbit/s
  Qam16_34, // 18 Mbit/s
  Qam64_23, // 24 Mbit/s
  Qam64_34, // 27 Mbit/s
};

/// Data bits carried per 8 us OFDM symbol for each MCS.
[[nodiscard]] unsigned data_bits_per_symbol(Mcs mcs);
/// Nominal data rate in Mbit/s.
[[nodiscard]] double data_rate_mbps(Mcs mcs);

/// 802.11p @ 10 MHz timing (all values double those of 20 MHz 802.11a).
inline constexpr sim::SimTime kSymbolDuration = sim::SimTime::microseconds(8);
inline constexpr sim::SimTime kPreambleDuration = sim::SimTime::microseconds(32);
inline constexpr sim::SimTime kSignalDuration = sim::SimTime::microseconds(8);
inline constexpr sim::SimTime kSlotTime = sim::SimTime::microseconds(13);
inline constexpr sim::SimTime kSifs = sim::SimTime::microseconds(32);

/// PSDU service + tail bits added by the PHY.
inline constexpr unsigned kServiceBits = 16;
inline constexpr unsigned kTailBits = 6;

/// MAC framing overhead added to the payload handed down by the LLC:
/// 802.11 QoS data header (26 B) + FCS (4 B) + LLC/SNAP (8 B).
inline constexpr std::size_t kMacOverheadBytes = 38;

/// Airtime of a frame whose PSDU is `psdu_bytes` long at the given MCS
/// (preamble + SIGNAL + data symbols).
[[nodiscard]] sim::SimTime frame_airtime(std::size_t psdu_bytes, Mcs mcs);

/// EDCA parameter set for the ITS-G5 control channel (EN 302 663 Table B.3).
struct EdcaParams {
  unsigned aifsn;
  unsigned cw_min;  // contention window (slots), lower bound
  unsigned cw_max;
};

enum class AccessCategory : std::uint8_t { Voice = 0, Video = 1, BestEffort = 2, Background = 3 };
inline constexpr std::size_t kAccessCategoryCount = 4;

[[nodiscard]] EdcaParams edca_params(AccessCategory ac);
[[nodiscard]] sim::SimTime aifs(AccessCategory ac);

/// Default radio configuration used by the testbed OBU/RSU (matches the
/// Compex WLE200NX class of hardware the paper deployed).
struct RadioConfig {
  double tx_power_dbm{23.0};
  double noise_figure_db{6.0};
  /// Carrier-sense (energy detection) threshold.
  double cs_threshold_dbm{-85.0};
  /// Minimum power to attempt frame decoding at all.
  double rx_sensitivity_dbm{-95.0};
  Mcs mcs{Mcs::Qpsk12};
  double antenna_gain_dbi{2.0};
  /// MAC transmit queue bound per access category; the oldest frame is
  /// dropped on overflow (stale awareness is worthless).
  std::size_t max_queue_per_ac{64};
};

/// Thermal noise floor for a 10 MHz channel, plus receiver noise figure.
[[nodiscard]] double noise_floor_dbm(double noise_figure_db);

/// Packet error rate for a PSDU of `psdu_bytes` at the given SINR, using an
/// AWGN BER approximation per modulation with a convolutional-coding gain.
[[nodiscard]] double packet_error_rate(double sinr_db, std::size_t psdu_bytes, Mcs mcs);

[[nodiscard]] double dbm_to_mw(double dbm);
[[nodiscard]] double mw_to_dbm(double mw);

/// Dimensionless dB gain/loss to a linear power ratio. Numerically the same
/// map as dbm_to_mw, but for quantities (noise figures, coding gains, SINR)
/// that are ratios, not absolute powers referenced to 1 mW — use this at
/// dB-ratio call sites so the units stay honest.
[[nodiscard]] double db_to_ratio(double db);

}  // namespace rst::dot11p
