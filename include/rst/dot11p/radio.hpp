#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>

#include "rst/dot11p/frame.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/phy_params.hpp"
#include "rst/geo/vec2.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::dot11p {

/// An ITS-G5 radio: 802.11p PHY plus an EDCA (CSMA/CA) MAC in OCB mode.
///
/// Broadcast-only (matching CAM/DENM traffic): no RTS/CTS, no ACK, no
/// retransmission, contention window stays at CWmin. Four independent EDCA
/// queues contend; an internal collision resolves in favour of whichever
/// attempt fires first in the event queue (the standard's priority order is
/// preserved statistically through the shorter AIFS/CW of higher ACs).
class Radio {
 public:
  using ReceiveCallback = std::function<void(const Frame&, const RxInfo&)>;
  using PositionProvider = std::function<geo::Vec2()>;

  Radio(Medium& medium, RadioConfig config, PositionProvider position, sim::RandomStream rng,
        std::string name);
  ~Radio();
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  /// Queues a frame for transmission on its access category.
  void send(Frame frame);

  void set_receive_callback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }

  /// Monitoring tap invoked for every successfully received frame, in
  /// addition to the receive callback (frame capture / sniffers).
  void set_promiscuous_tap(ReceiveCallback tap) { tap_ = std::move(tap); }

  [[nodiscard]] geo::Vec2 position() const { return position_(); }
  [[nodiscard]] const RadioConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t mac_address() const { return mac_; }
  [[nodiscard]] bool is_transmitting() const { return transmitting_; }

  struct Stats {
    std::uint64_t tx_frames{0};
    std::uint64_t rx_frames{0};
    std::uint64_t queue_len_peak{0};
    std::uint64_t queue_drops{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Total time the channel has been perceived busy (carrier sensed or own
  /// transmission) since construction. The DCC channel probe differentiates
  /// this to compute the channel busy ratio.
  [[nodiscard]] sim::SimTime cumulative_busy_time() const;

  // --- Medium-facing interface (not for application use) ---
  void on_cs_busy_delta(int delta);
  void on_tx_complete();
  void deliver(const Frame& frame, const RxInfo& info);
  /// True if this radio transmitted during any part of [start, end].
  [[nodiscard]] bool was_transmitting_during(sim::SimTime start, sim::SimTime end) const;
  /// Settles carrier-sense state when the medium detaches this radio while
  /// `cs_busy_decrements` in-flight frames still hold it busy. Adjusts the
  /// busy bookkeeping only — no countdown resumption, no new events — so it
  /// is safe to call from the destructor's detach.
  void settle_detach(int cs_busy_decrements);
  /// Slot index assigned by the medium at attach (stable until detach).
  void set_medium_slot(std::uint32_t slot) { medium_slot_ = slot; }
  [[nodiscard]] std::uint32_t medium_slot() const { return medium_slot_; }

 private:
  struct AcState {
    std::deque<Frame> queue;
    int backoff_slots{-1};
    sim::SimTime countdown_start{};
    sim::EventHandle attempt;
  };

  [[nodiscard]] bool channel_busy() const { return busy_count_ > 0 || transmitting_; }
  void schedule_attempt(AccessCategory ac);
  void cancel_countdowns();
  void resume_countdowns();
  void transmit(AccessCategory ac);

  Medium& medium_;
  RadioConfig config_;
  PositionProvider position_;
  sim::RandomStream rng_;
  std::string name_;
  std::uint64_t mac_;

  /// Busy-time bookkeeping shared by MAC and the DCC probe.
  void update_busy_accounting(bool busy_now);

  std::array<AcState, kAccessCategoryCount> acs_{};
  int busy_count_{0};
  bool transmitting_{false};
  sim::SimTime idle_since_{};
  sim::SimTime busy_accumulated_{};
  sim::SimTime busy_since_{};
  bool was_busy_{false};
  /// Recent tx intervals, fixed ring so the hot path never touches the heap.
  std::array<std::pair<sim::SimTime, sim::SimTime>, 16> tx_history_{};
  std::size_t tx_history_size_{0};
  std::size_t tx_history_next_{0};
  sim::SimTime current_tx_start_{};
  std::uint32_t medium_slot_{0};

  ReceiveCallback receive_cb_;
  ReceiveCallback tap_;
  Stats stats_;
};

}  // namespace rst::dot11p
