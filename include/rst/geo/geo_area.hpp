#pragma once

#include "rst/geo/vec2.hpp"

namespace rst::geo {

/// Geographic area shapes per ETSI EN 302 931 (used by GeoNetworking
/// GeoBroadcast destination areas and by the DENM relevance area).
enum class AreaShape { Circle, Rectangle, Ellipse };

/// A geo-area in the local east-north frame.
///
/// EN 302 931 defines a "geometric function" F over point coordinates
/// (x, y) relative to the area centre, rotated by the area azimuth:
///   circle/ellipse: F = 1 - (x/a)^2 - (y/b)^2
///   rectangle:      F = min(1 - (x/a)^2, 1 - (y/b)^2)
/// with F > 0 inside, F = 0 on the border, F < 0 outside.
struct GeoArea {
  AreaShape shape{AreaShape::Circle};
  Vec2 center;
  /// Semi-distance along the azimuth direction (metres). For a circle this
  /// is the radius and `b` is ignored.
  double a{0};
  /// Semi-distance perpendicular to the azimuth direction (metres).
  double b{0};
  /// Azimuth of the long axis, radians clockwise from north.
  double azimuth_rad{0};

  [[nodiscard]] static GeoArea circle(Vec2 center, double radius_m) {
    return {AreaShape::Circle, center, radius_m, radius_m, 0.0};
  }
  [[nodiscard]] static GeoArea rectangle(Vec2 center, double a, double b, double azimuth_rad = 0.0) {
    return {AreaShape::Rectangle, center, a, b, azimuth_rad};
  }
  [[nodiscard]] static GeoArea ellipse(Vec2 center, double a, double b, double azimuth_rad = 0.0) {
    return {AreaShape::Ellipse, center, a, b, azimuth_rad};
  }

  /// EN 302 931 geometric function at point p.
  [[nodiscard]] double geometric_function(Vec2 p) const;
  [[nodiscard]] bool contains(Vec2 p) const { return geometric_function(p) >= 0.0; }
  /// Loose bounding radius used by forwarding heuristics.
  [[nodiscard]] double bounding_radius() const;
};

}  // namespace rst::geo
