#pragma once

#include <cstdint>

#include "rst/geo/vec2.hpp"

namespace rst::geo {

/// Geographic position in degrees (WGS84).
struct GeoPosition {
  double latitude_deg{0};
  double longitude_deg{0};
};

/// ETSI ITS encodes positions in units of 0.1 micro-degree
/// (Latitude/Longitude DEs of TS 102 894-2). These helpers convert between
/// degrees and the wire representation.
[[nodiscard]] constexpr std::int32_t to_its_tenth_microdegree(double deg) {
  return static_cast<std::int32_t>(deg * 1e7 + (deg >= 0 ? 0.5 : -0.5));
}
[[nodiscard]] constexpr double from_its_tenth_microdegree(std::int32_t v) {
  return static_cast<double>(v) * 1e-7;
}

/// Great-circle distance (haversine) in metres.
[[nodiscard]] double haversine_m(GeoPosition a, GeoPosition b);

/// Small-area local tangent frame anchored at an origin; equirectangular
/// projection, accurate to millimetres over the few-hundred-metre extents
/// the scale testbed (and a real intersection) covers.
class LocalFrame {
 public:
  explicit LocalFrame(GeoPosition origin);

  [[nodiscard]] GeoPosition origin() const { return origin_; }
  /// Geographic -> local east-north metres.
  [[nodiscard]] Vec2 to_local(GeoPosition p) const;
  /// Local east-north metres -> geographic.
  [[nodiscard]] GeoPosition to_geo(Vec2 p) const;

 private:
  GeoPosition origin_;
  double metres_per_deg_lat_;
  double metres_per_deg_lon_;
};

}  // namespace rst::geo
