#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rst/geo/vec2.hpp"

namespace rst::geo {

/// True when segments ab and cd intersect. The contract, pinned by
/// obstacle_index_test before any index is allowed to rely on it:
///  - proper (transversal) crossings are true;
///  - touching counts: a shared endpoint, or an endpoint lying anywhere on
///    the other segment (T-junctions), is true;
///  - collinear segments are true iff their overlap is non-empty (a single
///    shared point counts), false when collinear but disjoint;
///  - zero-length segments degenerate to points: true iff the point lies on
///    the other segment (two coincident points are true);
///  - the test is exact for exactly-representable inputs — orientation signs
///    and bounding checks only, no constructed intersection point.
[[nodiscard]] bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// A 2-D segment with a caller-meaningful identity (its index).
struct Segment {
  Vec2 a;
  Vec2 b;
};

/// Static-obstacle ray-acceleration structure: segments bucketed into a
/// uniform cell grid (same floor/key conventions as `SpatialGrid`), queried
/// by a supercover walk that visits only the cells a tx->rx ray passes
/// through. Candidates are deduplicated (a segment spans every cell its
/// bounding box overlaps) and yielded in ascending segment-index order, so a
/// caller applying the exact `segments_intersect` test per candidate gets
/// answers — including floating-point accumulation order — bit-identical to
/// a brute-force scan in index order, at O(cells-along-ray) instead of
/// O(segments).
///
/// The structure is immutable after construction: queries touch only const
/// data plus per-thread scratch, so concurrent readers (the medium's
/// domain-parallel phases) need no locks. Steady-state queries are
/// allocation-free once each querying thread's scratch has reached its
/// high-water capacity (obstacle_alloc_test).
class ObstacleGrid {
 public:
  /// `cell_size_m == 0` derives a size from the segment geometry
  /// (`derive_cell_size`).
  explicit ObstacleGrid(std::vector<Segment> segments, double cell_size_m = 0.0);

  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t occupied_cells() const { return cells_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// Cell-size heuristic: the mean dominant extent of a segment, clamped to
  /// [4 m, 1024 m]. One cell then holds a handful of segments and a typical
  /// segment spans one or two cells, which keeps both the bin fan-out and
  /// the dedup set small. Correctness never depends on the choice — any
  /// positive size yields the same answers.
  [[nodiscard]] static double derive_cell_size(const std::vector<Segment>& segments);

  /// Visits a superset of the stored segments crossing ray a->b — every
  /// segment binned in a cell the ray walk passes through — exactly once, in
  /// ascending index order. Callers must re-apply the exact intersection
  /// test; candidates that merely share a cell with the ray are included.
  template <typename Visit>
  void for_each_candidate(Vec2 a, Vec2 b, Visit&& visit) const {
    if (segments_.empty()) return;
    std::vector<std::uint32_t>& seen = query_scratch();
    seen.clear();
    walk_ray_cells(a, b, [&](std::uint64_t key) {
      const auto it = cells_.find(key);
      if (it == cells_.end()) return;
      for (std::uint32_t i = it->second.begin; i != it->second.end; ++i) {
        seen.push_back(ids_[i]);
      }
    });
    dedup_ascending(seen);
    for (const std::uint32_t id : seen) visit(id);
  }

  /// Number of stored segments crossing ray a->b (exact test applied).
  [[nodiscard]] std::size_t crossings(Vec2 a, Vec2 b) const;

 private:
  struct Range {
    std::uint32_t begin{0};
    std::uint32_t end{0};
  };

  [[nodiscard]] std::int32_t cell_coord(double v) const;
  [[nodiscard]] static std::uint64_t key(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }

  /// Supercover walk: invokes `cell` for (at least) every grid cell that
  /// contains a point of segment a->b under the floor mapping. Walks the
  /// x-columns the segment spans and, per column, the y-band the segment
  /// covers there, padded by an epsilon far above interpolation rounding —
  /// floating-point error can only add candidate cells, never lose the cell
  /// holding a true crossing.
  template <typename Cell>
  void walk_ray_cells(Vec2 a, Vec2 b, Cell&& cell) const {
    if (b.x < a.x) {
      const Vec2 tmp = a;
      a = b;
      b = tmp;
    }
    const double dx = b.x - a.x;
    const double y_min = a.y < b.y ? a.y : b.y;
    const double y_max = a.y < b.y ? b.y : a.y;
    const double eps =
        1e-9 * (std::abs(a.x) + std::abs(a.y) + std::abs(b.x) + std::abs(b.y) + cell_size_m_ + 1.0);
    const std::int32_t cx0 = cell_coord(a.x);
    const std::int32_t cx1 = cell_coord(b.x);
    for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
      double lo = y_min;
      double hi = y_max;
      if (dx > 0.0) {
        // The segment's y-band over this column's x-interval; endpoints of a
        // linear function sit at the clipped interval ends. Clamping keeps
        // the interpolation inside the segment's overall band.
        const double x_lo = std::max(a.x, cx * cell_size_m_);
        const double x_hi = std::min(b.x, (cx + 1) * cell_size_m_);
        const double slope = (b.y - a.y) / dx;
        const double y0 = std::clamp(a.y + (x_lo - a.x) * slope, y_min, y_max);
        const double y1 = std::clamp(a.y + (x_hi - a.x) * slope, y_min, y_max);
        lo = y0 < y1 ? y0 : y1;
        hi = y0 < y1 ? y1 : y0;
      }
      const std::int32_t cy0 = cell_coord(lo - eps);
      const std::int32_t cy1 = cell_coord(hi + eps);
      for (std::int32_t cy = cy0; cy <= cy1; ++cy) cell(key(cx, cy));
    }
  }

  /// Per-thread candidate scratch: queries from concurrent domain-phase
  /// workers never share it, and it keeps its high-water capacity so warmed
  /// threads stop allocating.
  [[nodiscard]] static std::vector<std::uint32_t>& query_scratch();
  static void dedup_ascending(std::vector<std::uint32_t>& ids);

  double cell_size_m_{0.0};
  std::vector<Segment> segments_;
  /// CSR bins: cell key -> contiguous id range in `ids_`. Built once;
  /// queries only `find`.
  std::unordered_map<std::uint64_t, Range> cells_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace rst::geo
