#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rst/geo/vec2.hpp"

namespace rst::geo {

/// Uniform spatial hash grid over 2-D points, keyed by opaque 32-bit ids.
///
/// The grid is the culling structure behind the scalable radio medium: ids
/// are radio slots, cells are square bins of `cell_size_m`, and a disc query
/// visits only the bins overlapping the disc instead of every id. The caller
/// owns the id -> position mapping and passes the recorded position back in
/// (`move`, `remove`), so the grid itself stores nothing but bins.
///
/// Queries never allocate; `insert`/`move` allocate only while a bin grows
/// past its high-water capacity, so a warmed-up grid with bounded occupancy
/// churn is allocation-free in steady state.
class SpatialGrid {
 public:
  struct Cell {
    std::int32_t x{0};
    std::int32_t y{0};
    [[nodiscard]] friend bool operator==(Cell a, Cell b) { return a.x == b.x && a.y == b.y; }
  };

  explicit SpatialGrid(double cell_size_m) : cell_size_m_{cell_size_m} {}

  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }

  [[nodiscard]] Cell cell_of(Vec2 p) const {
    return Cell{static_cast<std::int32_t>(std::floor(p.x / cell_size_m_)),
                static_cast<std::int32_t>(std::floor(p.y / cell_size_m_))};
  }

  /// Deterministic cell -> domain mapping for spatially partitioned
  /// execution: a pure function of the cell coordinates and the domain
  /// count, so every process/thread assigns the same domain to the same
  /// cell. The coordinates are mixed (splitmix64-style) before the
  /// reduction so regular lattices spread evenly across domains instead
  /// of striping.
  [[nodiscard]] static std::uint32_t cell_domain(Cell c, std::uint32_t domains) {
    if (domains <= 1) return 0;
    std::uint64_t h = key(c) + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::uint32_t>(h % domains);
  }

  void insert(std::uint32_t id, Vec2 p) { bin_of(cell_of(p)).push_back(id); }

  void remove(std::uint32_t id, Vec2 recorded_p) { erase_from(cell_of(recorded_p), id); }

  /// Re-bins `id` after a position change; `from` must be the position the
  /// id was inserted/last moved with. Returns true when the id crossed a
  /// cell boundary (the signal that cached link budgets keyed on this id's
  /// epoch must be recomputed).
  bool move(std::uint32_t id, Vec2 from, Vec2 to) {
    const Cell a = cell_of(from);
    const Cell b = cell_of(to);
    if (a == b) return false;
    erase_from(a, id);
    bin_of(b).push_back(id);
    return true;
  }

  /// Visits every id whose cell overlaps the disc (center, radius). The
  /// visit set is a superset of the ids within `radius` of `center`: ids in
  /// overlapping cells but outside the disc are visited too, so callers must
  /// re-check exact distances when it matters.
  template <typename Visit>
  void for_each_in_disc(Vec2 center, double radius, Visit&& visit) const {
    const Cell lo = cell_of({center.x - radius, center.y - radius});
    const Cell hi = cell_of({center.x + radius, center.y + radius});
    for (std::int32_t cy = lo.y; cy <= hi.y; ++cy) {
      for (std::int32_t cx = lo.x; cx <= hi.x; ++cx) {
        const auto it = bins_.find(key(Cell{cx, cy}));
        if (it == bins_.end()) continue;
        for (const std::uint32_t id : it->second) visit(id);
      }
    }
  }

  [[nodiscard]] std::size_t occupied_cells() const {
    std::size_t n = 0;
    for (const auto& [k, bin] : bins_) n += bin.empty() ? 0 : 1;
    return n;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [k, bin] : bins_) n += bin.size();
    return n;
  }

 private:
  [[nodiscard]] static std::uint64_t key(Cell c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.y));
  }

  [[nodiscard]] std::vector<std::uint32_t>& bin_of(Cell c) { return bins_[key(c)]; }

  void erase_from(Cell c, std::uint32_t id) {
    auto& bin = bins_[key(c)];
    for (auto& slot : bin) {
      if (slot == id) {
        slot = bin.back();  // order within a bin is irrelevant
        bin.pop_back();
        return;
      }
    }
  }

  double cell_size_m_;
  /// Bins keep their capacity when emptied, so cell churn stops allocating
  /// once every bin has seen its peak occupancy.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> bins_;
};

}  // namespace rst::geo
