#pragma once

#include <cmath>

namespace rst::geo {

/// 2-D vector in metres, local East-North frame (x = east, y = north).
struct Vec2 {
  double x{0};
  double y{0};

  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double k) { x *= k; y *= k; return *this; }

  [[nodiscard]] friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  [[nodiscard]] friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  [[nodiscard]] friend constexpr Vec2 operator*(Vec2 a, double k) { return {a.x * k, a.y * k}; }
  [[nodiscard]] friend constexpr Vec2 operator*(double k, Vec2 a) { return {a.x * k, a.y * k}; }
  [[nodiscard]] friend constexpr Vec2 operator/(Vec2 a, double k) { return {a.x / k, a.y / k}; }
  [[nodiscard]] friend constexpr bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 when `o` is counter-clockwise from *this.
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Rotates counter-clockwise by `angle_rad`.
  [[nodiscard]] Vec2 rotated(double angle_rad) const {
    const double c = std::cos(angle_rad);
    const double s = std::sin(angle_rad);
    return {c * x - s * y, s * x + c * y};
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Heading in radians measured clockwise from north (ITS convention),
/// for a velocity/direction vector in the east-north frame.
[[nodiscard]] inline double heading_from_vector(Vec2 v) {
  double h = std::atan2(v.x, v.y);  // atan2(east, north)
  if (h < 0) h += 2.0 * M_PI;
  return h;
}

/// Unit vector for an ITS heading (clockwise from north).
[[nodiscard]] inline Vec2 vector_from_heading(double heading_rad) {
  return {std::sin(heading_rad), std::cos(heading_rad)};
}

}  // namespace rst::geo
