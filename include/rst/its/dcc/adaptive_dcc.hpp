#pragma once

#include <deque>
#include <string>

#include "rst/dot11p/frame.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/its/dcc/channel_probe.hpp"
#include "rst/sim/trace.hpp"

namespace rst::its::dcc {

struct AdaptiveDccConfig {
  /// Target channel busy ratio the population converges to (TS 102 687
  /// adaptive approach; LIMERIC's delta_target).
  double target_cbr{0.68};
  /// Linear convergence gains: r += alpha * (target - cbr) * r_max bounded
  /// by beta * r (LIMERIC's alpha/beta).
  double alpha{0.016};
  double beta{0.0012};
  /// Message rate bounds in Hz.
  double rate_min_hz{0.75};
  double rate_max_hz{25.0};
  std::size_t queue_capacity{8};
  sim::SimTime queued_packet_lifetime{sim::SimTime::milliseconds(750)};
};

/// Adaptive DCC (TS 102 687 §5.4 / LIMERIC): instead of a state table,
/// every station runs a linear controller on its own message rate so the
/// aggregate channel load converges to the target CBR, with equal rates at
/// the fixed point (fairness by construction).
class AdaptiveDcc {
 public:
  using Config = AdaptiveDccConfig;

  AdaptiveDcc(sim::Scheduler& sched, dot11p::Radio& radio, ChannelProbe& probe,
              Config config = {}, sim::Trace* trace = nullptr, std::string name = "adaptive_dcc");
  ~AdaptiveDcc();
  AdaptiveDcc(const AdaptiveDcc&) = delete;
  AdaptiveDcc& operator=(const AdaptiveDcc&) = delete;

  /// Submits a frame; sent when the rate-derived gate allows.
  void send(dot11p::Frame frame);

  /// Channel-load feed (wired to the probe; public for tests).
  void on_channel_load(double cbr);

  [[nodiscard]] double rate_hz() const { return rate_hz_; }
  [[nodiscard]] sim::SimTime current_min_gap() const {
    return sim::SimTime::from_seconds(1.0 / rate_hz_);
  }

  struct Stats {
    std::uint64_t passed{0};
    std::uint64_t queued{0};
    std::uint64_t dropped_queue_full{0};
    std::uint64_t dropped_expired{0};
    std::uint64_t rate_updates{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Pending {
    dot11p::Frame frame;
    sim::SimTime enqueued;
  };

  void try_dequeue();

  sim::Scheduler& sched_;
  dot11p::Radio& radio_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;

  double rate_hz_;
  sim::SimTime last_tx_{-sim::SimTime::seconds(1)};
  std::deque<Pending> queue_;
  sim::EventHandle gate_timer_;
  Stats stats_;
};

}  // namespace rst::its::dcc
