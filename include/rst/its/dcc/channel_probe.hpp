#pragma once

#include <deque>
#include <functional>

#include "rst/dot11p/radio.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::its::dcc {


struct ChannelProbeConfig {
  sim::SimTime window{sim::SimTime::milliseconds(100)};
  /// Exponential smoothing factor applied to each new window sample:
  /// cbr = (1-alpha)*cbr + alpha*sample.
  double alpha{0.5};
};

/// Channel busy ratio probe (ETSI TS 102 687 / EN 302 663 §4.4): samples
/// the fraction of time the radio perceived the channel busy over fixed
/// measurement windows and exposes the smoothed CBR used by the DCC
/// algorithms.
class ChannelProbe {
 public:
  using Config = ChannelProbeConfig;

  using Listener = std::function<void(double cbr)>;

  ChannelProbe(sim::Scheduler& sched, const dot11p::Radio& radio, Config config = {});
  ~ChannelProbe();
  ChannelProbe(const ChannelProbe&) = delete;
  ChannelProbe& operator=(const ChannelProbe&) = delete;

  void start();
  void stop();

  /// Smoothed channel busy ratio in [0, 1].
  [[nodiscard]] double cbr() const { return cbr_; }
  /// Most recent raw window sample.
  [[nodiscard]] double last_sample() const { return last_sample_; }
  [[nodiscard]] std::uint64_t windows_measured() const { return windows_; }

  /// Invoked after every measurement window with the smoothed CBR.
  void set_listener(Listener listener) { listener_ = std::move(listener); }

 private:
  void sample();

  sim::Scheduler& sched_;
  const dot11p::Radio& radio_;
  Config config_;
  bool running_{false};
  sim::EventHandle timer_;
  sim::SimTime busy_at_window_start_{};
  double cbr_{0};
  double last_sample_{0};
  std::uint64_t windows_{0};
  Listener listener_;
};

}  // namespace rst::its::dcc
