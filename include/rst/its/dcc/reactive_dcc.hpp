#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>

#include "rst/dot11p/frame.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/its/dcc/channel_probe.hpp"
#include "rst/sim/trace.hpp"

namespace rst::its::dcc {

/// Reactive DCC states (ETSI TS 102 687 §5.3, reactive approach): the
/// measured channel load selects the state; each state prescribes a
/// minimum gap between own transmissions (T_off / packet rate limit).
enum class DccState : std::uint8_t { Relaxed = 0, Active1 = 1, Active2 = 2, Active3 = 3, Restrictive = 4 };

[[nodiscard]] const char* to_string(DccState s);

/// State table entry: CBR threshold to *enter* the state (from below) and
/// the minimum inter-transmission gap enforced while in it.
struct DccStateParams {
  double cbr_up_threshold;
  sim::SimTime min_gap;
};

/// Default reactive table (TS 102 687 v1.1.1 Annex A flavour).
[[nodiscard]] const std::array<DccStateParams, 5>& default_dcc_table();


struct ReactiveDccConfig {
  std::array<DccStateParams, 5> table = default_dcc_table();
  /// Consecutive below-threshold windows required to step the state down
  /// (up-transitions are immediate); avoids oscillation.
  int down_hysteresis_windows{5};
  std::size_t queue_capacity_per_profile{8};
  sim::SimTime queued_packet_lifetime{sim::SimTime::milliseconds(500)};
};

/// Reactive DCC gatekeeper: sits between the networking layer and the
/// radio, enforcing the per-state minimum gap. Four priority queues (DCC
/// profiles DP0..DP3, mapped from the access category) so that DENMs (DP0)
/// preempt CAMs when the channel is congested. Queued packets older than
/// their lifetime are dropped.
class ReactiveDcc {
 public:
  using Config = ReactiveDccConfig;

  ReactiveDcc(sim::Scheduler& sched, dot11p::Radio& radio, ChannelProbe& probe, Config config = {},
              sim::Trace* trace = nullptr, std::string name = "dcc");
  ~ReactiveDcc();
  ReactiveDcc(const ReactiveDcc&) = delete;
  ReactiveDcc& operator=(const ReactiveDcc&) = delete;

  /// Submits a frame; transmitted immediately if the gate is open,
  /// otherwise queued by DCC profile.
  void send(dot11p::Frame frame);

  /// Channel-load feed driving the state machine; normally wired to the
  /// ChannelProbe at construction, exposed for direct testing.
  void on_channel_load(double cbr);

  [[nodiscard]] DccState state() const { return state_; }
  [[nodiscard]] sim::SimTime current_min_gap() const;

  struct Stats {
    std::uint64_t passed{0};
    std::uint64_t queued{0};
    std::uint64_t dropped_queue_full{0};
    std::uint64_t dropped_expired{0};
    std::uint64_t state_changes{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Pending {
    dot11p::Frame frame;
    sim::SimTime enqueued;
  };

  void try_dequeue();
  [[nodiscard]] static std::size_t profile_of(dot11p::AccessCategory ac) {
    return static_cast<std::size_t>(ac);  // DP0..DP3 <-> AC_VO..AC_BK
  }

  sim::Scheduler& sched_;
  dot11p::Radio& radio_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;

  DccState state_{DccState::Relaxed};
  int below_windows_{0};
  sim::SimTime last_tx_{-sim::SimTime::seconds(1)};
  std::array<std::deque<Pending>, 4> queues_{};
  sim::EventHandle gate_timer_;
  Stats stats_;
};

}  // namespace rst::its::dcc
