#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "rst/its/facilities/ldm.hpp"
#include "rst/its/messages/cam.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/sim/trace.hpp"

namespace rst::its {

/// Snapshot of the originating station handed to the CA service on every
/// generation check.
struct CaVehicleData {
  geo::Vec2 position{};
  double heading_rad{0};
  double speed_mps{0};
  double longitudinal_accel_mps2{0};
  DriveDirection drive_direction{DriveDirection::Forward};
};

/// CA basic service configuration (EN 302 637-2 §6.1.3 generation rules).
struct CaConfig {
  sim::SimTime t_gen_cam_min{sim::SimTime::milliseconds(100)};
  sim::SimTime t_gen_cam_max{sim::SimTime::milliseconds(1000)};
  /// Number of consecutive dynamics-triggered CAMs that keep the reduced
  /// T_GenCam before it relaxes back to t_gen_cam_max (N_GenCam).
  int n_gen_cam{3};
  double heading_delta_deg{4.0};
  double position_delta_m{4.0};
  double speed_delta_mps{0.5};
  StationType station_type{StationType::PassengerCar};
  double vehicle_length_m{0.53};  // paper: the 1/10-scale car measures ~53 cm
  double vehicle_width_m{0.30};
  /// The low-frequency container (exterior lights + path history) is
  /// attached at most once per this interval (EN 302 637-2 §6.1.3: 500 ms).
  sim::SimTime lf_container_interval{sim::SimTime::milliseconds(500)};
  /// Minimum travelled distance between recorded path-history points.
  double path_point_spacing_m{1.0};
  std::size_t max_path_points{23};  // EN 302 637-2 recommends ~23 for CAMs
};

/// Cooperative Awareness basic service: cyclic CAM generation following the
/// standard's dynamics-based trigger rules, single-hop broadcast transport,
/// and reception into the LDM.
class CaBasicService {
 public:
  using VehicleDataProvider = std::function<CaVehicleData()>;
  using CamCallback = std::function<void(const Cam&, const GnDeliveryMeta&)>;

  CaBasicService(sim::Scheduler& sched, GeoNetRouter& router, StationId station_id,
                 VehicleDataProvider provider, CaConfig config, Ldm* ldm = nullptr,
                 sim::Trace* trace = nullptr);

  /// Begins periodic generation. Idempotent.
  void start();
  void stop();

  /// Sends one CAM immediately, outside the generation rules (the manual
  /// CAM trigger of the OpenC2X web interface).
  void send_now();

  /// Feed of BTP payloads arriving on port 2001 (wired by the station).
  void on_btp_payload(const std::vector<std::uint8_t>& cam_bytes, const GnDeliveryMeta& meta);

  void set_cam_callback(CamCallback cb) { cam_cb_ = std::move(cb); }

  /// Builds the CAM that would be sent right now (exposed for tests).
  /// `include_lf` attaches the low-frequency container.
  [[nodiscard]] Cam build_cam(bool include_lf = false) const;

  struct Stats {
    std::uint64_t cams_sent{0};
    std::uint64_t cams_received{0};
    std::uint64_t decode_errors{0};
    std::uint64_t dynamics_triggers{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] sim::SimTime current_t_gen_cam() const { return t_gen_cam_; }

 private:
  void check_generation();
  void send_cam(const CaVehicleData& data);

  sim::Scheduler& sched_;
  GeoNetRouter& router_;
  StationId station_id_;
  VehicleDataProvider provider_;
  CaConfig config_;
  Ldm* ldm_;
  sim::Trace* trace_;

  bool running_{false};
  sim::EventHandle check_timer_;
  sim::SimTime t_gen_cam_;
  int dynamic_cam_countdown_{0};
  std::optional<CaVehicleData> last_sent_;
  sim::SimTime last_sent_time_{};
  sim::SimTime last_lf_time_{-sim::SimTime::seconds(3600)};
  /// Recent ego positions for the path-history DF (most recent first).
  std::deque<geo::Vec2> path_points_;
  CamCallback cam_cb_;
  Stats stats_;
};

}  // namespace rst::its
