#pragma once

#include <functional>
#include <vector>

#include "rst/its/facilities/ldm.hpp"
#include "rst/its/messages/cpm.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/sim/metrics.hpp"
#include "rst/sim/trace.hpp"

namespace rst::its {

/// Collective Perception service configuration (TS 103 324 style).
struct CpmConfig {
  /// T_GenCpm: fixed generation period (the standard runs 100 ms..1 s).
  sim::SimTime interval{sim::SimTime::milliseconds(250)};
  std::size_t max_objects{kCpmMaxPerceivedObjects};
  /// Redundancy mitigation: an own percept is skipped when another station
  /// announced an object within `redundancy_gating_m` of it less than
  /// `redundancy_window` ago (half-open window, like the LDM lifetime).
  sim::SimTime redundancy_window{sim::SimTime::milliseconds(500)};
  double redundancy_gating_m{0.9};
  /// Fusion dedup: a remote percept within this distance of a live LDM
  /// object is treated as the same physical object (the associator's
  /// gating-distance convention).
  double fusion_gating_m{0.9};
  /// Heading gate for the dedup match: when both the remote percept and
  /// the LDM candidate are moving, their velocity headings must agree to
  /// within this angle or they count as distinct objects.
  double fusion_heading_gate_rad{1.0472};  // 60 deg
  /// Speed below which an object counts as stationary for the heading gate.
  double fusion_moving_speed_mps{0.05};
  /// Remote percepts below this confidence are dropped at the fusion
  /// boundary (the testbed wires this to the hazard gate min_confidence).
  double fusion_min_confidence{0.0};
  /// Transport: SHB by default; GBC scoped to a circle around the sender
  /// when `use_gbc` is set (multi-hop dissemination).
  bool use_gbc{false};
  double destination_radius_m{150.0};
  StationType station_type{StationType::Unknown};
};

/// Collective Perception basic service: periodically publishes the
/// station's locally sensed LDM perceived objects as CPM perceived-object
/// containers, and fuses remote percepts from received CPMs back into the
/// LDM with provenance, dedup, and confidence gating — so hazard logic and
/// the collision predictor consume the fused picture.
class CpmService {
 public:
  /// Invoked for every remote percept accepted into the local LDM.
  using FusedCallback = std::function<void(const PerceivedObject&, const GnDeliveryMeta&)>;

  CpmService(sim::Scheduler& sched, GeoNetRouter& router, StationId station_id, CpmConfig config,
             Ldm* ldm = nullptr, sim::Trace* trace = nullptr);

  /// Begins periodic generation. Idempotent.
  void start();
  void stop();

  /// Sends one CPM immediately, outside the generation cadence. Returns
  /// the number of objects published (0 means nothing was sent).
  std::size_t send_now();

  /// Feed of BTP payloads arriving on port 2009 (wired by the station).
  void on_btp_payload(const std::vector<std::uint8_t>& cpm_bytes, const GnDeliveryMeta& meta);

  void set_fused_callback(FusedCallback cb) { fused_cb_ = std::move(cb); }
  /// Attaches cpm.* counters (objects published/fused/deduped/gated/
  /// redundancy-skipped/expired). Null detaches.
  void set_metrics(sim::MetricsRegistry* metrics);

  /// Builds the CPM that would be sent right now (exposed for tests);
  /// applies redundancy mitigation but records no stats.
  [[nodiscard]] Cpm build_cpm() const;

  /// Synthesises the LDM object id for a remote percept: high bit marks
  /// remote provenance, then the low 15 bits of the source station and the
  /// 16-bit wire object id, so percepts from distinct stations never clash
  /// with each other or with local sensing ids.
  [[nodiscard]] static std::uint32_t remote_object_id(StationId source, std::uint16_t wire_id) {
    return 0x80000000u | ((source & 0x7fffu) << 16) | wire_id;
  }

  struct Stats {
    std::uint64_t cpms_sent{0};
    std::uint64_t cpms_received{0};
    std::uint64_t decode_errors{0};
    std::uint64_t objects_published{0};
    std::uint64_t objects_redundancy_skipped{0};
    std::uint64_t objects_fused{0};
    std::uint64_t objects_deduped{0};
    std::uint64_t objects_gated{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const CpmConfig& config() const { return config_; }

 private:
  /// A perceived-object announcement heard from another station, kept for
  /// the redundancy-mitigation window.
  struct RemoteAnnouncement {
    geo::Vec2 position{};
    sim::SimTime heard{};
    StationId station{0};
  };

  void generate();
  Cpm build(std::uint64_t* redundancy_skipped) const;
  [[nodiscard]] bool recently_announced_by_peer(const geo::Vec2& position) const;
  void prune_announcements();
  void publish_expired_delta();

  sim::Scheduler& sched_;
  GeoNetRouter& router_;
  StationId station_id_;
  CpmConfig config_;
  Ldm* ldm_;
  sim::Trace* trace_;

  bool running_{false};
  sim::EventHandle timer_;
  std::vector<RemoteAnnouncement> announcements_;
  FusedCallback fused_cb_;
  sim::MetricsRegistry* metrics_{nullptr};
  std::uint64_t expired_baseline_{0};
  Stats stats_;
};

}  // namespace rst::its
