#pragma once

#include <functional>
#include <map>
#include <optional>

#include "rst/its/facilities/ldm.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"
#include "rst/sim/trace.hpp"

namespace rst::its {

/// Application request to originate (or update) a DEN event
/// (EN 302 637-3 AppDENM_trigger / AppDENM_update interface).
struct DenmRequest {
  EventType event_type{};
  std::uint8_t information_quality{3};
  geo::Vec2 event_position{};
  sim::SimTime validity{sim::SimTime::seconds(600)};
  /// When set, the DENM is repeated at this interval for
  /// `repetition_duration` (repetition by the originator, §8.2.1.5).
  std::optional<sim::SimTime> repetition_interval{};
  sim::SimTime repetition_duration{sim::SimTime::zero()};
  geo::GeoArea destination_area{};
  std::optional<RelevanceDistance> relevance_distance{};
  std::optional<RelevanceTrafficDirection> relevance_traffic_direction{};
  std::optional<double> event_speed_mps{};
  std::optional<double> event_heading_rad{};
  std::optional<AlacarteContainer> alacarte{};
  StationType station_type{StationType::RoadSideUnit};
};

/// State the receiver keeps per known ActionID.
struct ReceivedDenmState {
  TimestampIts reference_time{0};
  TimestampIts detection_time{0};
  bool terminated{false};
  sim::SimTime expires{};
  /// Stored copy + scope for keep-alive forwarding.
  Denm last_denm{};
  std::optional<geo::GeoArea> area{};
  sim::EventHandle kaf_timer{};
};

/// DEN service configuration.
struct DenConfig {
  /// Keep-alive forwarding (EN 302 637-3 §8.2.2): a receiver inside the
  /// relevance area retransmits a stored DENM if no fresher copy is heard
  /// within the keep-alive interval, keeping long-lived events alive for
  /// late arrivals even after the originator left.
  bool enable_kaf{false};
  /// Fallback interval when the DENM carries no transmissionInterval.
  sim::SimTime kaf_default_interval{sim::SimTime::seconds(1)};
};

/// Decentralized Environmental Notification basic service: origination
/// (trigger/update/terminate with repetition), geo-broadcast transport and
/// reception state machine with novelty filtering (EN 302 637-3 §8).
class DenBasicService {
 public:
  /// `is_update` distinguishes first reception of an event from an update
  /// with a newer reference time; terminations arrive with
  /// denm.is_termination() true.
  using DenmCallback =
      std::function<void(const Denm&, const GnDeliveryMeta&, bool is_update)>;

  DenBasicService(sim::Scheduler& sched, GeoNetRouter& router, StationId station_id,
                  sim::Trace* trace = nullptr, Ldm* ldm = nullptr, DenConfig config = {});
  ~DenBasicService();
  DenBasicService(const DenBasicService&) = delete;
  DenBasicService& operator=(const DenBasicService&) = delete;

  /// AppDENM_trigger: creates the event and transmits its first DENM.
  /// Returns the allocated ActionID.
  ActionId trigger(const DenmRequest& request);
  /// AppDENM_update: re-announces an owned event with a new reference time.
  void update(ActionId id, const DenmRequest& request);
  /// AppDENM_termination: broadcasts a cancellation for an owned event.
  void terminate(ActionId id);

  /// Negation (EN 302 637-3: termination by a station *other than* the
  /// originator, e.g. the infrastructure clearing a stale hazard it can
  /// observe is gone). Requires the event to have been received; returns
  /// false when the ActionID (or its scope) is unknown.
  bool negate(ActionId id);

  /// Feed of BTP payloads arriving on port 2002 (wired by the station).
  void on_btp_payload(const std::vector<std::uint8_t>& denm_bytes, const GnDeliveryMeta& meta);

  void set_denm_callback(DenmCallback cb) { denm_cb_ = std::move(cb); }

  /// Invoked on every DENM this service transmits (trigger, repetition,
  /// update, termination) — lets alternative bearers (e.g. a cellular V2N
  /// downlink) carry a copy of the message.
  using TransmitHook = std::function<void(const Denm&)>;
  void set_transmit_hook(TransmitHook hook) { transmit_hook_ = std::move(hook); }

  [[nodiscard]] StationId station_id() const { return station_id_; }
  [[nodiscard]] bool owns(ActionId id) const { return originated_.contains(key(id)); }
  [[nodiscard]] std::optional<ReceivedDenmState> received_state(ActionId id) const;

  struct Stats {
    std::uint64_t denms_sent{0};
    std::uint64_t repetitions{0};
    std::uint64_t denms_received{0};
    std::uint64_t duplicates_discarded{0};
    std::uint64_t stale_discarded{0};
    std::uint64_t decode_errors{0};
    std::uint64_t kaf_retransmissions{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct OriginatedEvent {
    DenmRequest request;
    Denm current;
    sim::SimTime expires{};
    sim::SimTime repetition_ends{};
    sim::EventHandle repetition_timer;
  };

  [[nodiscard]] static std::pair<StationId, std::uint16_t> key(ActionId id) {
    return {id.originating_station, id.sequence_number};
  }
  [[nodiscard]] Denm build_denm(ActionId id, const DenmRequest& request,
                                TimestampIts detection_time) const;
  void transmit(const Denm& denm, const geo::GeoArea& area);
  void schedule_repetition(ActionId id);
  void schedule_kaf(ActionId id);
  /// Drops originated events whose validity elapsed (cancels repetition).
  void expire_originated();

  sim::Scheduler& sched_;
  GeoNetRouter& router_;
  StationId station_id_;
  sim::Trace* trace_;
  Ldm* ldm_;
  DenConfig config_;

  std::uint16_t next_sequence_{1};
  std::map<std::pair<StationId, std::uint16_t>, OriginatedEvent> originated_;
  std::map<std::pair<StationId, std::uint16_t>, ReceivedDenmState> received_;
  DenmCallback denm_cb_;
  TransmitHook transmit_hook_;
  Stats stats_;
};

}  // namespace rst::its
