#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rst/geo/geo_area.hpp"
#include "rst/geo/geodesy.hpp"
#include "rst/its/messages/cam.hpp"
#include "rst/its/messages/denm.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::its {

/// LDM view of a remote ITS station, built from received CAMs.
struct LdmVehicleEntry {
  StationId station_id{0};
  StationType station_type{StationType::Unknown};
  geo::Vec2 position{};
  double speed_mps{0};
  double heading_rad{0};
  sim::SimTime last_update{};
  std::uint64_t cam_count{0};
};

/// LDM view of an active DEN event.
struct LdmEventEntry {
  ActionId action_id{};
  Denm denm{};
  geo::Vec2 event_position{};
  sim::SimTime received{};
  sim::SimTime expires{};
};

/// An object perceived by local sensors (the road-side camera path of the
/// paper: not every road user is ETSI ITS-capable, so the infrastructure
/// feeds camera detections into its LDM alongside CAM-derived entries).
struct PerceivedObject {
  std::uint32_t object_id{0};
  std::string classification;
  geo::Vec2 position{};
  geo::Vec2 velocity{};
  double confidence{0};
  sim::SimTime observed{};
  /// When the underlying sensor measurement was taken (<= observed).
  /// Left default it is stamped with the update time.
  sim::SimTime measured{};
  /// Originating station of a CPM-fused remote percept; 0 = local sensing.
  StationId source_station{0};
};

/// What changed in the LDM (facility-layer publish/subscribe, the IF.LDM
/// interface real LDMs expose to applications).
enum class LdmUpdateKind : std::uint8_t { Vehicle, Event, EventRemoved, PerceivedObject };

struct LdmUpdate {
  LdmUpdateKind kind{LdmUpdateKind::Vehicle};
  StationId station{0};       ///< Vehicle updates
  ActionId action{};          ///< Event / EventRemoved updates
  std::uint32_t object{0};    ///< PerceivedObject updates
};

/// Local Dynamic Map facility: stores CAM-derived station entries,
/// DENM-derived events and locally perceived objects, with expiry.
class Ldm {
 public:
  Ldm(sim::Scheduler& sched, const geo::LocalFrame& frame);

  using Subscriber = std::function<void(const LdmUpdate&)>;
  /// Registers a change listener; returns an id for unsubscribe().
  std::uint64_t subscribe(Subscriber subscriber);
  void unsubscribe(std::uint64_t id);

  void update_from_cam(const Cam& cam);
  /// Applies a DENM: inserts/updates the event, or removes it when the
  /// message carries a termination.
  void update_from_denm(const Denm& denm);
  void update_perceived_object(PerceivedObject object);

  [[nodiscard]] std::optional<LdmVehicleEntry> vehicle(StationId id) const;
  [[nodiscard]] std::vector<LdmVehicleEntry> vehicles() const;
  [[nodiscard]] std::vector<LdmVehicleEntry> vehicles_in(const geo::GeoArea& area) const;
  [[nodiscard]] std::vector<LdmEventEntry> events() const;
  [[nodiscard]] std::vector<LdmEventEntry> events_in(const geo::GeoArea& area) const;
  [[nodiscard]] std::vector<PerceivedObject> perceived_objects() const;
  [[nodiscard]] std::optional<PerceivedObject> perceived_object(std::uint32_t id) const;

  /// Drops expired entries; called internally on every mutation but
  /// also callable explicitly (e.g. before a bulk query).
  void garbage_collect();

  void set_vehicle_entry_lifetime(sim::SimTime t) { vehicle_lifetime_ = t; }
  void set_perceived_object_lifetime(sim::SimTime t) { object_lifetime_ = t; }
  [[nodiscard]] sim::SimTime perceived_object_lifetime() const { return object_lifetime_; }
  /// Perceived objects dropped by expiry since construction.
  [[nodiscard]] std::uint64_t perceived_objects_expired() const { return objects_expired_; }

  /// OpenC2X-style textual dump of the map contents (the paper's
  /// Server/Web Interface renders the LDM graphically; this is the
  /// text equivalent used by examples and debugging).
  [[nodiscard]] std::string dump() const;

 private:
  sim::Scheduler& sched_;
  const geo::LocalFrame& frame_;
  sim::SimTime vehicle_lifetime_{sim::SimTime::milliseconds(1100)};
  sim::SimTime object_lifetime_{sim::SimTime::milliseconds(1500)};
  void notify(const LdmUpdate& update);

  std::map<StationId, LdmVehicleEntry> vehicles_;
  std::map<std::pair<StationId, std::uint16_t>, LdmEventEntry> events_;
  std::map<std::uint32_t, PerceivedObject> objects_;
  std::uint64_t objects_expired_{0};
  std::vector<std::pair<std::uint64_t, Subscriber>> subscribers_;
  std::uint64_t next_subscriber_id_{1};
};

}  // namespace rst::its
