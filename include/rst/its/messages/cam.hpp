#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rst/its/messages/data_elements.hpp"
#include "rst/its/messages/pdu_header.hpp"

namespace rst::its {

/// CAM BasicContainer (EN 302 637-2 §B.1).
struct BasicContainer {
  StationType station_type{StationType::Unknown};
  ReferencePosition reference_position{};

  void encode(asn1::PerEncoder& e) const;
  static BasicContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const BasicContainer&, const BasicContainer&) = default;
};

/// DriveDirection DE.
enum class DriveDirection : std::uint8_t { Forward = 0, Backward = 1, Unavailable = 2 };

/// BasicVehicleContainerHighFrequency (EN 302 637-2 §B.2).
struct HighFrequencyContainer {
  Heading heading{};
  Speed speed{};
  DriveDirection drive_direction{DriveDirection::Unavailable};
  std::uint16_t vehicle_length_dm{1023};  // VehicleLengthValue, 1023 = unavailable
  std::uint8_t vehicle_width_dm{62};      // VehicleWidth, 62 = unavailable
  std::int16_t longitudinal_accel_dms2{161};  // 0.1 m/s^2, 161 = unavailable
  std::int32_t curvature{1023};               // CurvatureValue, 1023 = unavailable
  std::int16_t yaw_rate_001degps{32767};      // YawRateValue, 32767 = unavailable

  void encode(asn1::PerEncoder& e) const;
  static HighFrequencyContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const HighFrequencyContainer&, const HighFrequencyContainer&) = default;
};

/// BasicVehicleContainerLowFrequency (EN 302 637-2 §B.3).
struct LowFrequencyContainer {
  std::uint8_t exterior_lights{0};  // ExteriorLights bit string (8 bits)
  PathHistory path_history{};

  void encode(asn1::PerEncoder& e) const;
  static LowFrequencyContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const LowFrequencyContainer&, const LowFrequencyContainer&) = default;
};

/// Cooperative Awareness Message (EN 302 637-2).
struct Cam {
  ItsPduHeader header{.protocol_version = 2, .message_id = MessageId::Cam, .station_id = 0};
  std::uint16_t generation_delta_time{0};  // TimestampIts mod 65536
  BasicContainer basic{};
  HighFrequencyContainer high_frequency{};
  std::optional<LowFrequencyContainer> low_frequency{};

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Cam decode(const std::vector<std::uint8_t>& buf);
  friend bool operator==(const Cam&, const Cam&) = default;
};

}  // namespace rst::its
