#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "rst/asn1/per.hpp"

namespace rst::its {

/// CauseCodeType DE values (EN 302 637-3 Table 10 / TS 102 894-2).
/// The subset the paper discusses (its Table I) plus the other standard
/// direct cause codes, so applications can advertise any standard event.
enum class Cause : std::uint8_t {
  Reserved = 0,
  TrafficCondition = 1,
  Accident = 2,
  Roadworks = 3,
  AdverseWeatherAdhesion = 6,
  HazardousLocationSurfaceCondition = 9,
  HazardousLocationObstacleOnTheRoad = 10,
  HazardousLocationAnimalOnTheRoad = 11,
  HumanPresenceOnTheRoad = 12,
  WrongWayDriving = 14,
  RescueAndRecoveryWorkInProgress = 15,
  AdverseWeatherExtremeWeather = 17,
  AdverseWeatherVisibility = 18,
  AdverseWeatherPrecipitation = 19,
  SlowVehicle = 26,
  DangerousEndOfQueue = 27,
  VehicleBreakdown = 91,
  PostCrash = 92,
  HumanProblem = 93,
  StationaryVehicle = 94,
  EmergencyVehicleApproaching = 95,
  HazardousLocationDangerousCurve = 96,
  CollisionRisk = 97,
  SignalViolation = 98,
  DangerousSituation = 99,
};

/// Sub-cause codes for Cause::CollisionRisk (paper Table I).
enum class CollisionRiskSubCause : std::uint8_t {
  Unavailable = 0,
  LongitudinalCollisionRisk = 1,
  CrossingCollisionRisk = 2,
  LateralCollisionRisk = 3,
  VulnerableRoadUser = 4,
};

/// Sub-cause codes for Cause::DangerousSituation (paper Table I).
enum class DangerousSituationSubCause : std::uint8_t {
  Unavailable = 0,
  EmergencyElectronicBrakeLights = 1,
  PreCrashSystemActivated = 2,
  EspActivated = 3,
  AbsActivated = 4,
  AebActivated = 5,
  BrakeWarningActivated = 6,
  CollisionRiskWarningActivated = 7,
};

/// Sub-cause codes for Cause::StationaryVehicle (paper §II-C example:
/// subCauseCode 1 = human problem, 2 = vehicle breakdown).
enum class StationaryVehicleSubCause : std::uint8_t {
  Unavailable = 0,
  HumanProblem = 1,
  VehicleBreakdown = 2,
  PostCrash = 3,
  PublicTransportStop = 4,
  CarryingDangerousGoods = 5,
};

/// EventType / CauseCode DF: the (causeCode, subCauseCode) pair carried in
/// the DENM Situation container.
struct EventType {
  std::uint8_t cause_code{0};
  std::uint8_t sub_cause_code{0};

  [[nodiscard]] static EventType of(Cause c, std::uint8_t sub = 0) {
    return {static_cast<std::uint8_t>(c), sub};
  }
  [[nodiscard]] Cause cause() const { return static_cast<Cause>(cause_code); }

  void encode(asn1::PerEncoder& e) const;
  static EventType decode(asn1::PerDecoder& d);
  friend auto operator<=>(const EventType&, const EventType&) = default;
};

/// One row of the cause-code registry (paper Table I reproduction).
struct CauseCodeEntry {
  std::uint8_t cause_code;
  std::string_view cause_description;
  std::uint8_t sub_cause_code;
  std::string_view sub_cause_description;
};

/// Full registry of the cause/sub-cause descriptions this library knows
/// (superset of the paper's Table I excerpt).
[[nodiscard]] const std::vector<CauseCodeEntry>& cause_code_registry();

/// Human-readable description of a direct cause code; "unknown" when the
/// code is not in the registry.
[[nodiscard]] std::string_view describe_cause(std::uint8_t cause_code);
/// Human-readable description of a (cause, sub-cause) pair.
[[nodiscard]] std::string_view describe_sub_cause(std::uint8_t cause_code, std::uint8_t sub_cause_code);

}  // namespace rst::its
