#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "rst/its/messages/data_elements.hpp"
#include "rst/its/messages/pdu_header.hpp"

namespace rst::its {

/// Upper bound on perceived-object containers per CPM (TS 103 324 allows
/// 128 before segmentation; segmentation is not modelled).
inline constexpr std::size_t kCpmMaxPerceivedObjects = 128;

/// ObjectClass codes carried on the wire (subset of the TS 103 324
/// ObjectClassDescription relevant to the testbed's YOLO label set).
/// Labels outside the mapping travel as Unknown (0).
[[nodiscard]] std::uint8_t cpm_class_from_label(std::string_view label);
[[nodiscard]] std::string_view cpm_label_from_class(std::uint8_t object_class);

/// CPM ManagementContainer: originating station kind and reference
/// position; all perceived-object offsets are relative to this position.
struct CpmManagementContainer {
  StationType station_type{StationType::Unknown};
  ReferencePosition reference_position{};

  void encode(asn1::PerEncoder& e) const;
  static CpmManagementContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const CpmManagementContainer&, const CpmManagementContainer&) = default;
};

/// One PerceivedObjectContainer entry: position/velocity relative to the
/// management container's reference position, plus age and confidence.
struct CpmPerceivedObject {
  std::uint16_t object_id{0};             ///< station-local object id
  std::uint16_t age_ms{0};                ///< measurement age, 0..1500 ms (clamped)
  std::int32_t x_offset_cm{0};            ///< east offset, -132768..132767 cm
  std::int32_t y_offset_cm{0};            ///< north offset, -132768..132767 cm
  std::int16_t x_speed_cms{0};            ///< east speed, -16383..16383 cm/s
  std::int16_t y_speed_cms{0};            ///< north speed, -16383..16383 cm/s
  std::uint8_t object_class{0};           ///< raw class code (see cpm_class_from_label)
  std::uint8_t confidence_pct{0};         ///< 0..100 percent

  void encode(asn1::PerEncoder& e) const;
  static CpmPerceivedObject decode(asn1::PerDecoder& d);
  friend bool operator==(const CpmPerceivedObject&, const CpmPerceivedObject&) = default;
};

/// Collective Perception Message (TS 103 324 style): management container
/// plus 0..128 perceived-object containers.
struct Cpm {
  ItsPduHeader header{.protocol_version = 2, .message_id = MessageId::Cpm, .station_id = 0};
  std::uint16_t generation_delta_time{0};  // TimestampIts mod 65536
  CpmManagementContainer management{};
  std::vector<CpmPerceivedObject> objects;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Cpm decode(const std::vector<std::uint8_t>& buf);
  friend bool operator==(const Cpm&, const Cpm&) = default;
};

}  // namespace rst::its
