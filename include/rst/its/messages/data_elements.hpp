#pragma once

#include <cstdint>
#include <vector>

#include "rst/asn1/per.hpp"
#include "rst/sim/time.hpp"

namespace rst::its {

/// ITS station identifier (StationID DE, 0..4294967295).
using StationId = std::uint32_t;

/// StationType DE (TS 102 894-2 §A.78).
enum class StationType : std::uint8_t {
  Unknown = 0,
  Pedestrian = 1,
  Cyclist = 2,
  Moped = 3,
  Motorcycle = 4,
  PassengerCar = 5,
  Bus = 6,
  LightTruck = 7,
  HeavyTruck = 8,
  Trailer = 9,
  SpecialVehicles = 10,
  Tram = 11,
  RoadSideUnit = 15,
};

/// TimestampIts DE: milliseconds since the ITS epoch (2004-01-01 UTC),
/// 42-bit range on the wire.
using TimestampIts = std::uint64_t;
inline constexpr TimestampIts kTimestampItsMax = 4398046511103ULL;

/// The simulation maps SimTime t=0 to this ITS timestamp (an arbitrary but
/// fixed instant), so absolute wire timestamps are deterministic.
inline constexpr TimestampIts kSimEpochItsMs = 600000000000ULL;

[[nodiscard]] constexpr TimestampIts to_timestamp_its(sim::SimTime t) {
  return kSimEpochItsMs + static_cast<TimestampIts>(t.count_ns() / 1'000'000);
}
[[nodiscard]] constexpr sim::SimTime from_timestamp_its(TimestampIts ts) {
  return sim::SimTime::milliseconds(static_cast<std::int64_t>(ts - kSimEpochItsMs));
}

/// GenerationDeltaTime DE of the CAM: TimestampIts mod 65536.
[[nodiscard]] constexpr std::uint16_t generation_delta_time(TimestampIts ts) {
  return static_cast<std::uint16_t>(ts % 65536);
}

/// Latitude/Longitude DEs in 0.1 micro-degree; the "unavailable" values
/// per TS 102 894-2.
inline constexpr std::int32_t kLatitudeUnavailable = 900000001;
inline constexpr std::int32_t kLongitudeUnavailable = 1800000001;

/// PosConfidenceEllipse DF.
struct PositionConfidenceEllipse {
  std::uint16_t semi_major_cm{4095};   // SemiAxisLength, 4095 = unavailable
  std::uint16_t semi_minor_cm{4095};
  std::uint16_t orientation_01deg{3601};  // HeadingValue, 3601 = unavailable

  void encode(asn1::PerEncoder& e) const;
  static PositionConfidenceEllipse decode(asn1::PerDecoder& d);
  friend bool operator==(const PositionConfidenceEllipse&, const PositionConfidenceEllipse&) = default;
};

/// Altitude DF (value in centimetres; 800001 = unavailable).
struct Altitude {
  std::int32_t value_cm{800001};
  std::uint8_t confidence{15};  // AltitudeConfidence, 15 = unavailable

  void encode(asn1::PerEncoder& e) const;
  static Altitude decode(asn1::PerDecoder& d);
  friend bool operator==(const Altitude&, const Altitude&) = default;
};

/// ReferencePosition DF.
struct ReferencePosition {
  std::int32_t latitude{kLatitudeUnavailable};    // 0.1 micro-degree
  std::int32_t longitude{kLongitudeUnavailable};  // 0.1 micro-degree
  PositionConfidenceEllipse confidence{};
  Altitude altitude{};

  void encode(asn1::PerEncoder& e) const;
  static ReferencePosition decode(asn1::PerDecoder& d);
  friend bool operator==(const ReferencePosition&, const ReferencePosition&) = default;
};

/// Heading DF (value in 0.1 degree, 3601 = unavailable).
struct Heading {
  std::uint16_t value_01deg{3601};
  std::uint8_t confidence_01deg{127};  // HeadingConfidence, 127 = unavailable

  void encode(asn1::PerEncoder& e) const;
  static Heading decode(asn1::PerDecoder& d);
  friend bool operator==(const Heading&, const Heading&) = default;
};

/// Speed DF (value in 0.01 m/s, 16383 = unavailable).
struct Speed {
  std::uint16_t value_cms{16383};
  std::uint8_t confidence_cms{127};  // SpeedConfidence, 127 = unavailable

  void encode(asn1::PerEncoder& e) const;
  static Speed decode(asn1::PerDecoder& d);
  friend bool operator==(const Speed&, const Speed&) = default;

  [[nodiscard]] static Speed from_mps(double mps, double confidence_mps = 0.05);
  [[nodiscard]] double to_mps() const { return value_cms * 0.01; }
};

/// ActionID DF: unique identifier of a DENM event.
struct ActionId {
  StationId originating_station{0};
  std::uint16_t sequence_number{0};

  void encode(asn1::PerEncoder& e) const;
  static ActionId decode(asn1::PerDecoder& d);
  friend auto operator<=>(const ActionId&, const ActionId&) = default;
};

/// PathPoint DF (delta position w.r.t. the previous point).
struct PathPoint {
  std::int32_t delta_latitude{0};    // 0.1 micro-degree, (-131072..131071)
  std::int32_t delta_longitude{0};
  std::int32_t delta_time_10ms{0};   // PathDeltaTime (1..65535), 0 = absent

  void encode(asn1::PerEncoder& e) const;
  static PathPoint decode(asn1::PerDecoder& d);
  friend bool operator==(const PathPoint&, const PathPoint&) = default;
};

/// PathHistory DF: up to 40 points.
struct PathHistory {
  std::vector<PathPoint> points;

  void encode(asn1::PerEncoder& e) const;
  static PathHistory decode(asn1::PerDecoder& d);
  friend bool operator==(const PathHistory&, const PathHistory&) = default;
};

void encode_timestamp_its(asn1::PerEncoder& e, TimestampIts ts);
[[nodiscard]] TimestampIts decode_timestamp_its(asn1::PerDecoder& d);

}  // namespace rst::its
