#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rst/its/messages/cause_code.hpp"
#include "rst/its/messages/data_elements.hpp"
#include "rst/its/messages/pdu_header.hpp"

namespace rst::its {

/// Termination DE of the DENM Management container.
enum class Termination : std::uint8_t { IsCancellation = 0, IsNegation = 1 };

/// RelevanceDistance DE.
enum class RelevanceDistance : std::uint8_t {
  LessThan50m = 0,
  LessThan100m = 1,
  LessThan200m = 2,
  LessThan500m = 3,
  LessThan1000m = 4,
  LessThan5km = 5,
  LessThan10km = 6,
  Over10km = 7,
};

/// RelevanceTrafficDirection DE.
enum class RelevanceTrafficDirection : std::uint8_t {
  AllTrafficDirections = 0,
  UpstreamTraffic = 1,
  DownstreamTraffic = 2,
  OppositeTraffic = 3,
};

/// DENM Management container (EN 302 637-3 §8.1.1; Fig. 2).
/// Mandatory in every DENM.
struct ManagementContainer {
  ActionId action_id{};
  TimestampIts detection_time{0};
  TimestampIts reference_time{0};
  std::optional<Termination> termination{};
  ReferencePosition event_position{};
  std::optional<RelevanceDistance> relevance_distance{};
  std::optional<RelevanceTrafficDirection> relevance_traffic_direction{};
  std::uint32_t validity_duration_s{600};  // ValidityDuration, DEFAULT 600
  std::optional<std::uint16_t> transmission_interval_ms{};  // 1..10000
  StationType station_type{StationType::Unknown};

  void encode(asn1::PerEncoder& e) const;
  static ManagementContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const ManagementContainer&, const ManagementContainer&) = default;
};

/// DENM Situation container (optional; §8.1.2). informationQuality and
/// eventType are mandatory within it (paper §II-C).
struct SituationContainer {
  std::uint8_t information_quality{0};  // 0..7, 0 = unavailable
  EventType event_type{};
  std::optional<EventType> linked_cause{};

  void encode(asn1::PerEncoder& e) const;
  static SituationContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const SituationContainer&, const SituationContainer&) = default;
};

/// DENM Location container (optional; §8.1.3). `traces` is mandatory within
/// it: itineraries leading to the event (paper §II-C).
struct LocationContainer {
  std::optional<Speed> event_speed{};
  std::optional<Heading> event_position_heading{};
  std::vector<PathHistory> traces;  // 1..7 entries

  void encode(asn1::PerEncoder& e) const;
  static LocationContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const LocationContainer&, const LocationContainer&) = default;
};

/// StationaryVehicleContainer subset used by the A-la-carte container.
struct StationaryVehicleContainer {
  std::optional<std::uint8_t> stationary_since{};  // StationarySince enum 0..3
  std::optional<std::uint8_t> number_of_occupants{};

  void encode(asn1::PerEncoder& e) const;
  static StationaryVehicleContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const StationaryVehicleContainer&, const StationaryVehicleContainer&) = default;
};

/// DENM A-la-carte container (optional; §8.1.4): lanePosition,
/// externalTemperature, stationaryVehicle (paper §II-C).
struct AlacarteContainer {
  std::optional<std::int8_t> lane_position{};        // -1..14
  std::optional<std::int8_t> external_temperature{}; // -60..67 degC
  std::optional<StationaryVehicleContainer> stationary_vehicle{};

  void encode(asn1::PerEncoder& e) const;
  static AlacarteContainer decode(asn1::PerDecoder& d);
  friend bool operator==(const AlacarteContainer&, const AlacarteContainer&) = default;
};

/// Decentralized Environmental Notification Message (EN 302 637-3, Fig. 2:
/// common header + Management + optional Situation/Location/A-la-carte).
struct Denm {
  ItsPduHeader header{.protocol_version = 2, .message_id = MessageId::Denm, .station_id = 0};
  ManagementContainer management{};
  std::optional<SituationContainer> situation{};
  std::optional<LocationContainer> location{};
  std::optional<AlacarteContainer> alacarte{};

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Denm decode(const std::vector<std::uint8_t>& buf);
  friend bool operator==(const Denm&, const Denm&) = default;

  /// True when this DENM is a cancellation/negation of a previous event.
  [[nodiscard]] bool is_termination() const { return management.termination.has_value(); }
};

}  // namespace rst::its
