#pragma once

#include <cstdint>

#include "rst/asn1/per.hpp"
#include "rst/its/messages/data_elements.hpp"

namespace rst::its {

/// MessageID DE of the ItsPduHeader.
enum class MessageId : std::uint8_t {
  Denm = 1,
  Cam = 2,
  Poi = 3,
  Spat = 4,
  Map = 5,
  Ivi = 6,
  Ev_rsr = 7,
  Cpm = 14,
};

/// ItsPduHeader DF: common header of every ETSI ITS facilities message
/// (Fig. 2 "Header": protocol version, message type, originating station).
struct ItsPduHeader {
  std::uint8_t protocol_version{2};
  MessageId message_id{MessageId::Cam};
  StationId station_id{0};

  void encode(asn1::PerEncoder& e) const;
  static ItsPduHeader decode(asn1::PerDecoder& d);
  friend bool operator==(const ItsPduHeader&, const ItsPduHeader&) = default;
};

}  // namespace rst::its
