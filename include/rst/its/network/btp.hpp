#pragma once

#include <cstdint>
#include <vector>

#include "rst/asn1/bitbuffer.hpp"

namespace rst::its {

/// Well-known BTP destination ports (EN 302 636-5-1 / TS 103 248).
inline constexpr std::uint16_t kBtpPortCam = 2001;
inline constexpr std::uint16_t kBtpPortDenm = 2002;
inline constexpr std::uint16_t kBtpPortCpm = 2009;

/// BTP-B header (non-interactive transport: destination port + port info).
/// This is the variant the ETSI facilities messages use.
struct BtpHeader {
  std::uint16_t destination_port{0};
  std::uint16_t destination_port_info{0};

  static constexpr std::size_t kSize = 4;

  /// Prepends the header to `payload` and returns the BTP PDU.
  [[nodiscard]] std::vector<std::uint8_t> prepend_to(const std::vector<std::uint8_t>& payload) const;

  struct Parsed;
  /// Splits a BTP PDU into header and payload (copies payload).
  [[nodiscard]] static Parsed parse(const std::vector<std::uint8_t>& pdu);
};

struct BtpHeader::Parsed {
  BtpHeader header;
  std::vector<std::uint8_t> payload;
};

}  // namespace rst::its
