#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"

namespace rst::its {

/// BTP demultiplexer: the thin layer between GeoNetworking delivery and the
/// facilities, dispatching payloads by destination port (EN 302 636-5-1).
/// Applications can register additional ports next to the standard CAM
/// (2001) and DENM (2002) services.
class BtpMux {
 public:
  using Handler =
      std::function<void(const std::vector<std::uint8_t>& payload, const GnDeliveryMeta& meta)>;

  /// Registers (or replaces) the handler for a destination port.
  void register_port(std::uint16_t port, Handler handler);
  void unregister_port(std::uint16_t port);
  [[nodiscard]] bool has_port(std::uint16_t port) const { return handlers_.contains(port); }

  /// GN delivery entry point: parses the BTP-B header and dispatches.
  /// Malformed PDUs and unknown ports are counted and dropped.
  void on_gn_payload(const std::vector<std::uint8_t>& btp_pdu, const GnDeliveryMeta& meta);

  struct Stats {
    std::uint64_t dispatched{0};
    std::uint64_t unknown_port{0};
    std::uint64_t parse_errors{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::map<std::uint16_t, Handler> handlers_;
  Stats stats_;
};

}  // namespace rst::its
