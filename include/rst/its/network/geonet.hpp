#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rst/asn1/per.hpp"
#include "rst/bytes.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/geo/geo_area.hpp"
#include "rst/geo/geodesy.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"
#include "rst/sim/time.hpp"
#include "rst/sim/trace.hpp"

namespace rst::its {

/// GeoNetworking address (EN 302 636-4-1 §6): we keep the 64-bit layout
/// abstract and derive it from the ITS station identifier.
struct GnAddress {
  std::uint64_t value{0};

  [[nodiscard]] static GnAddress from_station(std::uint32_t station_id) {
    return {0x0badc0de00000000ULL | station_id};
  }
  friend auto operator<=>(const GnAddress&, const GnAddress&) = default;
};

/// Long position vector (EN 302 636-4-1 §9.5.2): address + timestamped
/// geographic position and movement of a GeoAdhoc router.
struct LongPositionVector {
  GnAddress address{};
  std::uint32_t timestamp_ms{0};  // ms mod 2^32 at which the position was valid
  std::int32_t latitude{0};       // 0.1 micro-degree
  std::int32_t longitude{0};      // 0.1 micro-degree
  bool position_accurate{true};
  std::int16_t speed_cms{0};      // signed, 0.01 m/s
  std::uint16_t heading_01deg{0};

  void encode(asn1::PerEncoder& e) const;
  static LongPositionVector decode(asn1::PerDecoder& d);
  friend bool operator==(const LongPositionVector&, const LongPositionVector&) = default;
};

/// GeoNetworking packet (header) types we implement.
enum class GnPacketType : std::uint8_t {
  Beacon = 0,            ///< position advertisement, no payload
  Shb = 1,               ///< single-hop broadcast (CAM transport)
  Tsb = 2,               ///< topologically-scoped broadcast
  Gbc = 3,               ///< geographically-scoped broadcast (DENM transport)
  Guc = 4,               ///< geo-unicast to one station (greedy forwarding)
  LsRequest = 5,         ///< location service: who knows this address?
  LsReply = 6,           ///< location service: unicast answer to the requester
};
inline constexpr std::uint32_t kGnPacketTypeCount = 7;

/// Destination geo-area on the wire (EN 302 636-4-1 §9.8.5).
struct WireGeoArea {
  std::int32_t center_latitude{0};
  std::int32_t center_longitude{0};
  std::uint16_t distance_a_m{0};
  std::uint16_t distance_b_m{0};
  std::uint16_t angle_deg{0};
  std::uint8_t shape{0};  // 0 circle, 1 rectangle, 2 ellipse

  void encode(asn1::PerEncoder& e) const;
  static WireGeoArea decode(asn1::PerDecoder& d);
  friend bool operator==(const WireGeoArea&, const WireGeoArea&) = default;
};

/// A GeoNetworking PDU: basic + common header fields, the type-specific
/// extended header, and the BTP payload.
struct GnPacket {
  std::uint8_t version{1};
  GnPacketType type{GnPacketType::Shb};
  std::uint8_t traffic_class{2};
  std::uint8_t remaining_hop_limit{1};
  std::uint16_t lifetime_50ms{20};  // lifetime in units of 50 ms
  std::uint16_t sequence_number{0};  // TSB/GBC only
  LongPositionVector source{};
  /// Position of the most recent forwarder; equals `source` at origination.
  LongPositionVector forwarder{};
  std::optional<WireGeoArea> destination_area{};  // GBC only
  /// GUC only: the destination router and its last known position.
  std::optional<LongPositionVector> destination{};
  /// BTP payload; shared so forwarding/delivery hand-offs don't copy it.
  Bytes payload;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static GnPacket decode(const std::vector<std::uint8_t>& buf);
  friend bool operator==(const GnPacket&, const GnPacket&) = default;
};

/// Location table entry (EN 302 636-4-1 §8.1).
struct LocationTableEntry {
  LongPositionVector position_vector{};
  sim::SimTime last_update{};
  std::uint64_t packets_received{0};
};

/// Per-router ego state sampled at send time.
struct EgoState {
  geo::Vec2 position{};
  double speed_mps{0};
  double heading_rad{0};
};

/// Metadata handed to the upper layer with each delivered payload.
struct GnDeliveryMeta {
  GnAddress source{};
  geo::Vec2 source_position{};
  double rssi_dbm{0};
  std::uint8_t hops_traversed{0};
  sim::SimTime delivered_at{};
  /// GBC only: the destination area the packet was scoped to (local frame).
  std::optional<geo::GeoArea> destination_area{};
};

struct GeoNetConfig {
  std::uint8_t default_hop_limit{10};
  sim::SimTime beacon_interval{sim::SimTime::seconds(3)};
  bool enable_beaconing{false};
  sim::SimTime location_entry_lifetime{sim::SimTime::seconds(20)};
  sim::SimTime duplicate_entry_lifetime{sim::SimTime::seconds(10)};
  /// Contention-based forwarding timer bounds (EN 302 636-4-1 Annex F).
  sim::SimTime cbf_min_delay{sim::SimTime::milliseconds(1)};
  sim::SimTime cbf_max_delay{sim::SimTime::milliseconds(100)};
  /// Assumed maximum communication range for the CBF progress function.
  double cbf_max_range_m{120.0};
  /// Location-service request hop limit and pending-PDU buffer bounds.
  std::uint8_t ls_hop_limit{10};
  std::size_t ls_buffer_capacity{8};
  sim::SimTime ls_buffer_lifetime{sim::SimTime::seconds(2)};
};

/// GeoNetworking router bound to one radio interface.
///
/// Implements SHB (CAM transport), GBC with contention-based forwarding
/// inside the destination area and greedy progress outside it (DENM
/// transport), TSB flooding, GN beaconing, duplicate packet detection and
/// the location table.
class GeoNetRouter {
 public:
  using EgoProvider = std::function<EgoState()>;
  /// The PDU argument is a shared buffer; handlers that need the bytes
  /// beyond the call can retain a `Bytes` copy without a deep copy. It
  /// also converts implicitly to `const std::vector<uint8_t>&`, so
  /// vector-taking handlers keep working.
  using DeliveryHandler = std::function<void(const Bytes& btp_pdu, const GnDeliveryMeta& meta)>;

  GeoNetRouter(sim::Scheduler& sched, dot11p::Radio& radio, const geo::LocalFrame& frame,
               GnAddress address, EgoProvider ego, GeoNetConfig config, sim::RandomStream rng,
               sim::Trace* trace = nullptr);
  ~GeoNetRouter();
  GeoNetRouter(const GeoNetRouter&) = delete;
  GeoNetRouter& operator=(const GeoNetRouter&) = delete;

  /// Single-hop broadcast of a BTP PDU (CAM path).
  void send_shb(std::vector<std::uint8_t> btp_pdu, dot11p::AccessCategory ac);
  /// Topologically-scoped broadcast with a hop limit.
  void send_tsb(std::vector<std::uint8_t> btp_pdu, std::uint8_t hop_limit, dot11p::AccessCategory ac);
  /// Geo-broadcast into a destination area (DENM path).
  void send_gbc(std::vector<std::uint8_t> btp_pdu, const geo::GeoArea& area, dot11p::AccessCategory ac,
                std::optional<std::uint8_t> hop_limit = std::nullopt);
  /// Geo-unicast to a station. When the destination's position is unknown
  /// the PDU is buffered and a Location Service request is flooded
  /// (EN 302 636-4-1 §10.2.2); the buffered PDU is sent once the LS reply
  /// (or any packet from the destination) fills the location table.
  /// Returns false only when the LS buffer is full.
  bool send_guc(std::vector<std::uint8_t> btp_pdu, GnAddress destination,
                dot11p::AccessCategory ac, std::optional<std::uint8_t> hop_limit = std::nullopt);

  void set_delivery_handler(DeliveryHandler h) { deliver_ = std::move(h); }

  /// Redirects outgoing frames through a gate (e.g. a DCC gatekeeper)
  /// instead of handing them to the radio directly.
  using SendHook = std::function<void(dot11p::Frame)>;
  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }

  [[nodiscard]] GnAddress address() const { return address_; }
  /// Current ego state (position provider snapshot).
  [[nodiscard]] EgoState ego() const { return ego_(); }
  [[nodiscard]] const std::map<std::uint64_t, LocationTableEntry>& location_table() const {
    return location_table_;
  }
  [[nodiscard]] const geo::LocalFrame& local_frame() const { return frame_; }

  struct Stats {
    std::uint64_t originated{0};
    std::uint64_t delivered_up{0};
    std::uint64_t forwarded{0};
    std::uint64_t duplicates_dropped{0};
    std::uint64_t cbf_suppressed{0};
    std::uint64_t out_of_area_dropped{0};
    std::uint64_t lifetime_expired_dropped{0};
    std::uint64_t ls_requests_sent{0};
    std::uint64_t ls_replies_sent{0};
    std::uint64_t ls_buffer_dropped{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_frame(const dot11p::Frame& f, const dot11p::RxInfo& info);
  void handle_gbc(GnPacket pkt, const dot11p::RxInfo& info);
  void handle_guc(GnPacket pkt, const dot11p::RxInfo& info);
  void handle_ls_request(GnPacket pkt);
  void flush_ls_buffer(GnAddress destination);
  void transmit_guc(std::vector<std::uint8_t> btp_pdu, const LongPositionVector& destination,
                    dot11p::AccessCategory ac, std::optional<std::uint8_t> hop_limit);
  [[nodiscard]] LongPositionVector make_position_vector() const;
  [[nodiscard]] geo::GeoArea area_from_wire(const WireGeoArea& w) const;
  [[nodiscard]] WireGeoArea area_to_wire(const geo::GeoArea& a) const;
  [[nodiscard]] bool is_duplicate(GnAddress src, std::uint16_t seq);
  void remember(GnAddress src, std::uint16_t seq);
  void update_location_table(const LongPositionVector& pv);
  void broadcast(const GnPacket& pkt, dot11p::AccessCategory ac);
  void schedule_beacon();
  void prune_tables();

  sim::Scheduler& sched_;
  dot11p::Radio& radio_;
  const geo::LocalFrame& frame_;
  GnAddress address_;
  EgoProvider ego_;
  GeoNetConfig config_;
  sim::RandomStream rng_;
  sim::Trace* trace_;

  std::uint16_t next_sequence_{0};
  std::map<std::uint64_t, LocationTableEntry> location_table_;
  struct DpdEntry {
    sim::SimTime seen;
  };
  std::map<std::pair<std::uint64_t, std::uint16_t>, DpdEntry> dpd_;
  /// Pending CBF timers keyed by (source, sequence).
  std::map<std::pair<std::uint64_t, std::uint16_t>, sim::EventHandle> cbf_timers_;
  /// PDUs awaiting a location-service answer, keyed by destination.
  struct PendingGuc {
    std::vector<std::uint8_t> btp_pdu;
    dot11p::AccessCategory ac;
    std::optional<std::uint8_t> hop_limit;
    sim::SimTime queued;
  };
  std::map<std::uint64_t, std::vector<PendingGuc>> ls_buffer_;
  sim::EventHandle beacon_timer_;
  DeliveryHandler deliver_;
  SendHook send_hook_;
  Stats stats_;
};

}  // namespace rst::its
