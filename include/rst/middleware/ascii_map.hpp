#pragma once

#include <string>
#include <vector>

#include "rst/geo/vec2.hpp"

namespace rst::middleware {

/// Textual renderer for the testbed's geo-referenced state — the stand-in
/// for OpenC2X's Server/Web Interface, which "represents graphically the
/// georeferenced information contained in the LDM" (paper §III-D).
///
/// Entities are plotted on a character grid; later additions overwrite
/// earlier ones at the same cell, so draw background (walls, track) first.
class AsciiMap {
 public:
  /// Viewport corners in local metres and the grid resolution.
  AsciiMap(geo::Vec2 min_corner, geo::Vec2 max_corner, std::size_t columns = 61,
           std::size_t rows = 25);

  void plot(geo::Vec2 position, char symbol);
  void plot_line(geo::Vec2 a, geo::Vec2 b, char symbol);
  /// Adds a legend entry rendered under the grid.
  void legend(char symbol, const std::string& meaning);

  [[nodiscard]] std::string render() const;

 private:
  [[nodiscard]] bool to_cell(geo::Vec2 p, std::size_t& col, std::size_t& row) const;

  geo::Vec2 min_;
  geo::Vec2 max_;
  std::size_t columns_;
  std::size_t rows_;
  std::vector<std::string> grid_;
  std::vector<std::pair<char, std::string>> legend_;
};

}  // namespace rst::middleware
