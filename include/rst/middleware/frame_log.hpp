#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rst/bytes.hpp"
#include "rst/dot11p/radio.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::middleware {

/// One captured frame. The payload is shared with the radio's frame, so
/// tapping a busy channel does not copy every packet.
struct LoggedFrame {
  sim::SimTime when{};
  std::uint64_t src_mac{0};
  double rssi_dbm{0};
  Bytes payload;  // GN packet bytes

  friend bool operator==(const LoggedFrame&, const LoggedFrame&) = default;
};

/// Frame capture (the role tcpdump on the OBU's wireless monitor interface
/// plays in real 802.11p experimentation): taps one or more radios,
/// records every received frame with timestamp and RSSI, and serializes
/// the capture to a compact binary format for offline analysis.
class FrameLog {
 public:
  explicit FrameLog(sim::Scheduler& sched) : sched_{sched} {}

  /// Taps a radio (replaces any previous promiscuous tap on it).
  void attach(dot11p::Radio& radio);

  [[nodiscard]] const std::vector<LoggedFrame>& frames() const { return frames_; }
  void clear() { frames_.clear(); }

  /// Summary by decoded GN/BTP content: how many CAMs, DENMs, other.
  struct Summary {
    std::size_t total{0};
    std::size_t cams{0};
    std::size_t denms{0};
    std::size_t other{0};
  };
  [[nodiscard]] Summary summarize() const;

  /// Binary serialization of the capture (round-trippable via parse()).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::vector<LoggedFrame> parse(const std::vector<std::uint8_t>& data);

 private:
  sim::Scheduler& sched_;
  std::vector<LoggedFrame> frames_;
};

}  // namespace rst::middleware
