#pragma once

#include <functional>
#include <map>
#include <string>

#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::sim {
class FaultInjector;
}

namespace rst::middleware {

struct HttpRequest {
  std::string method{"POST"};
  std::string path;
  std::string body;
};

struct HttpResponse {
  int status{200};
  std::string body;
};

class HttpHost;

struct HttpLanConfig {
  sim::SimTime one_way_latency{sim::SimTime::microseconds(250)};
  sim::SimTime one_way_jitter{sim::SimTime::microseconds(150)};
  sim::SimTime server_processing{sim::SimTime::microseconds(400)};
  sim::SimTime server_processing_jitter{sim::SimTime::microseconds(300)};
  /// Probability that a request is lost (connection reset); callers see
  /// status 0 after a timeout.
  double loss_probability{0.0};
  sim::SimTime loss_timeout{sim::SimTime::milliseconds(100)};
};

/// A small switched LAN carrying the testbed's HTTP traffic (the paper's
/// applications talk to the OpenC2X stack over its HTTP API: the Jetson
/// polls the OBU with POST /request_denm; the edge node triggers the RSU
/// with POST /trigger_denm).
///
/// Requests experience one-way network latency in each direction plus
/// server-side handling time, all configurable; the response is delivered
/// asynchronously to the caller's callback.
class HttpLan {
 public:
  using Config = HttpLanConfig;

  HttpLan(sim::Scheduler& sched, sim::RandomStream rng, Config config = {});

  void attach(HttpHost& host);
  void detach(const std::string& hostname);

  using ResponseCallback = std::function<void(const HttpResponse&)>;
  /// Issues a request from any attached context to `hostname`.
  void request(const std::string& hostname, HttpRequest req, ResponseCallback cb);

  /// Subscribes the LAN to a fault plan. Injection points: HttpLoss /
  /// HttpStall match target "lan" (or wildcard); NodeDown matches the
  /// destination hostname — a downed host loses every request addressed to
  /// it until the window closes (crash → restart). NodeDown is evaluated
  /// both at request time and again at dispatch time, so a window that
  /// opens while a request is in flight still crashes the exchange (the
  /// host never dispatches; the caller sees the loss-timeout status-0
  /// response and the loss is counted). An HttpLoss clause draws
  /// from the LAN's own stream, worst-of-composed with the legacy
  /// `loss_probability` knob, so a whole-run clause is draw-for-draw
  /// equivalent to setting the knob.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }
  /// Requests that vanished (legacy loss knob, HttpLoss or NodeDown); the
  /// caller sees status 0 after `loss_timeout`.
  [[nodiscard]] std::uint64_t requests_lost() const { return requests_lost_; }

 private:
  [[nodiscard]] bool lose_request(const std::string& hostname);

  sim::Scheduler& sched_;
  sim::RandomStream rng_;
  Config config_;
  std::map<std::string, HttpHost*> hosts_;
  sim::FaultInjector* faults_{nullptr};
  std::uint64_t requests_{0};
  std::uint64_t requests_lost_{0};
};

/// One HTTP server on the LAN; handlers are registered per path.
class HttpHost {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpHost(HttpLan& lan, std::string hostname);
  ~HttpHost();
  HttpHost(const HttpHost&) = delete;
  HttpHost& operator=(const HttpHost&) = delete;

  void handle(const std::string& path, Handler handler);
  [[nodiscard]] const std::string& hostname() const { return hostname_; }

  /// Convenience client call originating from this host.
  void post(const std::string& hostname, const std::string& path, std::string body,
            HttpLan::ResponseCallback cb);

  // LAN-facing.
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& req) const;

 private:
  HttpLan& lan_;
  std::string hostname_;
  std::map<std::string, Handler> handlers_;
};

}  // namespace rst::middleware
