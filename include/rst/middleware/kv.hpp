#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rst::middleware {

/// Minimal key=value;key=value body codec used by the simulated HTTP API
/// (stand-in for the JSON bodies of the OpenC2X web interface).
class KvBody {
 public:
  KvBody() = default;
  /// Parses "a=1;b=xyz"; unknown/malformed fragments are skipped.
  static KvBody parse(const std::string& body);

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(const std::string& key) const;
  [[nodiscard]] std::optional<double> get_double(const std::string& key) const;

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] bool empty() const { return values_.empty(); }

 private:
  std::map<std::string, std::string> values_;
};

/// Lowercase hex encoding used to carry binary DENMs through HTTP bodies.
[[nodiscard]] std::string hex_encode(const std::vector<std::uint8_t>& data);
/// Throws std::invalid_argument on odd length or non-hex characters.
[[nodiscard]] std::vector<std::uint8_t> hex_decode(const std::string& hex);

}  // namespace rst::middleware
