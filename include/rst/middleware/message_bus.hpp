#pragma once

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::middleware {

struct MessageBusConfig {
  sim::SimTime base_latency{sim::SimTime::microseconds(300)};
  sim::SimTime jitter{sim::SimTime::microseconds(200)};
};

/// Publish/subscribe message bus modelling ROS topics on the Jetson
/// (the paper's vehicle pipeline passes camera frames, line coordinates
/// and steering commands between nodes as ROS topics).
///
/// Delivery is asynchronous with a configurable serialization/transport
/// latency; handlers receive `std::any` payloads (use the typed
/// subscribe/publish helpers).
class MessageBus {
 public:
  using Config = MessageBusConfig;

  MessageBus(sim::Scheduler& sched, sim::RandomStream rng, Config config = {});

  using Handler = std::function<void(const std::any&)>;

  /// Subscribes a raw handler; returns a subscription id usable for unsubscribe.
  std::uint64_t subscribe(const std::string& topic, Handler handler);
  void unsubscribe(const std::string& topic, std::uint64_t id);

  /// Publishes to all current subscribers after a latency draw per subscriber.
  void publish(const std::string& topic, std::any message);

  template <typename T>
  std::uint64_t subscribe_to(const std::string& topic, std::function<void(const T&)> handler) {
    return subscribe(topic, [h = std::move(handler)](const std::any& msg) {
      if (const T* v = std::any_cast<T>(&msg)) h(*v);
    });
  }

  [[nodiscard]] std::size_t subscriber_count(const std::string& topic) const;
  [[nodiscard]] std::uint64_t published_count() const { return published_; }

 private:
  struct Subscription {
    std::uint64_t id;
    Handler handler;
  };

  sim::Scheduler& sched_;
  sim::RandomStream rng_;
  Config config_;
  std::map<std::string, std::vector<Subscription>> topics_;
  std::uint64_t next_id_{1};
  std::uint64_t published_{0};
};

}  // namespace rst::middleware
