#pragma once

#include <string>

#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::middleware {

struct NtpClockConfig {
  /// Initial offset before the first sync.
  sim::SimTime initial_offset{sim::SimTime::milliseconds(0)};
  /// Clock frequency error in parts-per-million.
  double drift_ppm{5.0};
  /// Residual offset sigma after each successful sync.
  sim::SimTime sync_error_sigma{sim::SimTime::microseconds(300)};
  sim::SimTime sync_interval{sim::SimTime::seconds(16)};
  bool enable_sync{true};
};

/// Per-node wall clock disciplined by NTP.
///
/// The paper's measurement methodology relies on all platforms being
/// "connected to a Network Time Protocol server to reliably collect
/// timestamps". Each node's clock has an intrinsic frequency error
/// (drift) and an offset; periodic synchronisation pulls the offset back
/// to a residual error determined by the LAN's delay asymmetry. Interval
/// measurements taken across two nodes therefore carry a realistic
/// sync-error component, exactly as the testbed's do.
class NtpClock {
 public:
  using Config = NtpClockConfig;

  NtpClock(sim::Scheduler& sched, sim::RandomStream rng, std::string name, Config config = {});
  ~NtpClock();
  NtpClock(const NtpClock&) = delete;
  NtpClock& operator=(const NtpClock&) = delete;

  /// Local wall-clock reading: true time + current offset.
  [[nodiscard]] sim::SimTime now_wall() const;
  /// Current clock error relative to true (simulation) time.
  [[nodiscard]] sim::SimTime offset() const;

  /// Forces a synchronisation now (also scheduled periodically).
  void sync();

  [[nodiscard]] std::uint64_t sync_count() const { return sync_count_; }

 private:
  void schedule_sync();

  sim::Scheduler& sched_;
  sim::RandomStream rng_;
  std::string name_;
  Config config_;
  sim::SimTime offset_at_ref_;
  sim::SimTime ref_time_;
  sim::EventHandle sync_timer_;
  std::uint64_t sync_count_{0};
};

}  // namespace rst::middleware
