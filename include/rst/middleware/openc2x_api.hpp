#pragma once

#include <deque>
#include <string>

#include "rst/its/facilities/ca_basic_service.hpp"
#include "rst/its/facilities/den_basic_service.hpp"
#include "rst/its/facilities/ldm.hpp"
#include "rst/middleware/http.hpp"
#include "rst/middleware/kv.hpp"
#include "rst/sim/trace.hpp"

namespace rst::middleware {

/// OpenC2X-style HTTP API bound to a station's facilities layer.
///
/// Mirrors the integration points the paper uses (§III-D2):
///  * `POST /trigger_denm` — the road-side edge node calls this on the RSU
///    to originate a DENM. Body: kv with cause/subcause/x/y/… fields.
///  * `POST /request_denm` — the vehicle's Python-script equivalent polls
///    this on the OBU. Returns HTTP 200 with an empty body when no DENM is
///    pending, or the oldest undelivered DENM hex-encoded.
///  * `GET  /ldm` — textual dump of the LDM (the Web Interface stand-in).
///  * `POST /trigger_cam` — manual CAM transmission (web-interface button).
///  * `GET  /cam_table` — the CAM-derived station table of the LDM.
class OpenC2xApi {
 public:
  OpenC2xApi(HttpHost& host, const geo::LocalFrame& frame, its::DenBasicService& den,
             its::Ldm* ldm = nullptr, sim::Trace* trace = nullptr, std::string trace_name = {},
             its::CaBasicService* ca = nullptr, std::size_t max_inbox = 16);

  /// Number of received DENMs not yet fetched via /request_denm.
  [[nodiscard]] std::size_t pending_denms() const { return inbox_.size(); }

  struct Stats {
    /// DENMs evicted (oldest first) because the inbox was full when a new
    /// one arrived between polls.
    std::uint64_t denms_dropped{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Parses a /trigger_denm body into a DenmRequest (exposed for tests).
  [[nodiscard]] its::DenmRequest parse_trigger_body(const std::string& body) const;

 private:
  HttpResponse handle_trigger_denm(const HttpRequest& req);
  HttpResponse handle_request_denm(const HttpRequest& req);

  const geo::LocalFrame& frame_;
  its::DenBasicService& den_;
  its::CaBasicService* ca_;
  its::Ldm* ldm_;
  sim::Trace* trace_;
  std::string trace_name_;
  struct InboxEntry {
    its::Denm denm;
    sim::SimTime received;
  };
  std::deque<InboxEntry> inbox_;
  std::size_t max_inbox_;
  Stats stats_;
};

}  // namespace rst::middleware
