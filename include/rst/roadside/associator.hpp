#pragma once

#include <cstdint>
#include <vector>

#include "rst/geo/vec2.hpp"
#include "rst/sim/time.hpp"

namespace rst::roadside {

struct AssociatorConfig {
  /// Maximum distance between a detection and a track's predicted position
  /// for them to be associated.
  double gating_distance_m{0.9};
  /// Tracks not updated for this long are dropped.
  sim::SimTime track_timeout{sim::SimTime::milliseconds(1200)};
  /// Velocity smoothing factor for the constant-velocity prediction.
  double velocity_blend{0.4};
};

/// Frame-to-frame data association: real detectors output anonymous boxes,
/// so downstream services need track identities assigned by geometry.
/// Greedy nearest-neighbour assignment against constant-velocity track
/// predictions, with gating and track aging.
class DetectionAssociator {
 public:
  using Config = AssociatorConfig;

  explicit DetectionAssociator(Config config = {}) : config_{config} {}

  /// Associates one frame's detections (world positions) and returns the
  /// track id for each input, in order. Unmatched detections start new
  /// tracks.
  std::vector<std::uint32_t> associate(const std::vector<geo::Vec2>& detections,
                                       sim::SimTime now);

  [[nodiscard]] std::size_t active_tracks() const { return tracks_.size(); }

 private:
  struct Track {
    std::uint32_t id;
    geo::Vec2 position;
    geo::Vec2 velocity;
    sim::SimTime last_update;
  };

  Config config_;
  std::vector<Track> tracks_;
  std::uint32_t next_id_{1};
};

}  // namespace rst::roadside
