#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rst/dot11p/channel.hpp"
#include "rst/geo/vec2.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::sim {
class FaultInjector;
}

namespace rst::roadside {

/// How the scale vehicle presents itself to the road-side camera — the
/// three options the paper explored to get a steady detection (Fig. 7):
/// the bare robot (flickering 'motorbike'), the original Traxxas body
/// shell ('car'/'truck' oscillation, angle-sensitive), and the cardboard
/// stop sign on top (resilient).
enum class Presentation : std::uint8_t { BareRobot, BodyShell, StopSign };

/// An object the camera can observe.
struct CameraObject {
  std::uint32_t id{0};
  std::function<geo::Vec2()> position;
  Presentation presentation{Presentation::StopSign};
  std::string ground_truth_class{"car"};
};

/// One observed object within a captured frame.
struct ObservedObject {
  std::uint32_t id{0};
  double true_distance_m{0};
  double bearing_rad{0};  ///< relative to the camera axis
  Presentation presentation{Presentation::StopSign};
};

/// One captured frame.
struct CameraFrame {
  sim::SimTime capture_time{};
  std::uint64_t frame_number{0};
  std::vector<ObservedObject> objects;
};

/// The road-side ZED camera: fixed pose, horizontal field of view, maximum
/// range. `capture()` renders the currently visible objects. Frame pacing
/// is driven by the consumer (the ObjectDetectionService processes at
/// ~4 FPS, slower than the sensor's native rate, and always grabs the most
/// recent frame — so capture-on-demand is equivalent).
class RoadsideCamera {
 public:
  struct Config {
    geo::Vec2 position{};
    double facing_rad{0};           ///< ITS heading of the optical axis
    double fov_half_angle_rad{0.96};  ///< ZED ~110 deg horizontal FOV
    double max_range_m{12.0};
  };

  RoadsideCamera(sim::Scheduler& sched, Config config);

  void add_object(CameraObject object);
  void remove_object(std::uint32_t id);
  /// Walls block the optical line of sight (as they do for radio/LiDAR).
  void set_walls(std::vector<dot11p::Wall> walls) { walls_ = std::move(walls); }

  [[nodiscard]] CameraFrame capture();
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint64_t frames_captured() const { return frame_counter_; }

  /// Subscribes the camera to a fault plan (injection point "camera"):
  /// CameraFreeze replays the last pre-window frame's objects, CameraDrop
  /// returns empty frames with probability `severity`. Null detaches.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

  struct Stats {
    std::uint64_t frames_frozen{0};
    std::uint64_t frames_dropped{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  sim::Scheduler& sched_;
  Config config_;
  std::vector<CameraObject> objects_;
  std::vector<dot11p::Wall> walls_;
  std::uint64_t frame_counter_{0};
  sim::FaultInjector* faults_{nullptr};
  /// Object list of the last live frame, replayed during a freeze window.
  std::vector<ObservedObject> last_objects_;
  Stats stats_;
};

}  // namespace rst::roadside
