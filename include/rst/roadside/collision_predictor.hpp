#pragma once

#include <optional>
#include <vector>

#include "rst/geo/vec2.hpp"
#include "rst/its/facilities/ldm.hpp"

namespace rst::roadside {

/// Closest point of approach of two constant-velocity tracks.
struct CpaResult {
  double t_cpa_s{0};   ///< time of closest approach (clamped to >= 0)
  double d_cpa_m{0};   ///< separation at that time
};

/// CPA for objects at p1/p2 moving with v1/v2. If the tracks diverge from
/// the start, t_cpa is 0 and d_cpa the current separation.
[[nodiscard]] CpaResult closest_point_of_approach(geo::Vec2 p1, geo::Vec2 v1, geo::Vec2 p2,
                                                  geo::Vec2 v2);

/// One assessed threat between a camera-perceived road user and an
/// ETSI-capable vehicle known from CAMs.
struct CollisionThreat {
  its::StationId station_id{0};
  double t_cpa_s{0};
  double d_cpa_m{0};
  geo::Vec2 predicted_conflict_point{};
};


struct CollisionPredictorConfig {
  double horizon_s{5.0};
  double conflict_distance_m{1.5};
  /// Wide enough to tolerate camera-derived velocity noise at ~5 s horizons.
/// Ignore pairs whose current separation already exceeds this.
  double max_pair_distance_m{60.0};
};

/// Collision assessment the paper's Hazard Advertisement Service performs:
/// "the Object Detection Service identifies it and contacts the Hazard
/// Advertisement Service to assess a potential collision from consulting
/// the LDM." Pairs each perceived object with every LDM vehicle and flags
/// closest-point-of-approach conflicts inside the horizon.
class CollisionPredictor {
 public:
  using Config = CollisionPredictorConfig;

  explicit CollisionPredictor(Config config = {}) : config_{config} {}

  /// Assesses one perceived object (world position + velocity) against the
  /// LDM's CAM-known vehicles; returns the most imminent threat, if any.
  [[nodiscard]] std::optional<CollisionThreat> assess(
      geo::Vec2 object_position, geo::Vec2 object_velocity,
      const std::vector<its::LdmVehicleEntry>& vehicles) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace rst::roadside
