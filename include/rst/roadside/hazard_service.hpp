#pragma once

#include <map>
#include <optional>
#include <string>

#include "rst/its/facilities/ldm.hpp"
#include "rst/its/messages/cause_code.hpp"
#include "rst/middleware/http.hpp"
#include "rst/middleware/message_bus.hpp"
#include "rst/roadside/collision_predictor.hpp"
#include "rst/roadside/object_detection_service.hpp"
#include "rst/sim/trace.hpp"

namespace rst::roadside {

/// How the service decides to advertise a hazard.
enum class HazardTriggerMode : std::uint8_t {
  /// The paper's deployment: a road user crossing a fixed threshold
  /// distance to the camera (the "Action Point").
  ActionPointDistance,
  /// Kinematic assessment: closest point of approach between the
  /// perceived object and each CAM-known vehicle in the LDM.
  CpaPrediction,
};

struct HazardServiceConfig {
  HazardTriggerMode trigger_mode{HazardTriggerMode::ActionPointDistance};
  /// Threshold distance to the camera at which braking must be requested.
  double action_point_distance_m{1.52};
  /// CPA assessment parameters (CpaPrediction mode).
  CollisionPredictor::Config cpa{};
  /// The YOLO estimator's min-range default (paper §III-C2: below ~75 cm
  /// the "estimated distance defaults to 1.73m"). An object that was being
  /// tracked approaching and suddenly reports exactly this value is inside
  /// the minimum working range — i.e. very close — and must also trigger
  /// (the paper's reason for tying the threshold to "this value").
  double min_range_default_m{1.73};
  bool treat_min_range_default_as_crossing{true};
  /// Detection quality gates. With the defaults every detection is
  /// considered (the paper's deployment triggers on distance alone); raise
  /// them to make the decision robust against misclassification and
  /// confidence-collapse faults.
  double min_confidence{0.0};
  /// Only react to labels the hazard logic recognises as road users
  /// (car/truck/bus/motorbike/bicycle/person/stop sign).
  bool require_known_road_user{false};
  /// Decision + LDM-consult + request-marshalling time on the edge node.
  sim::SimTime processing_mean{sim::SimTime::milliseconds(25)};
  sim::SimTime processing_sigma{sim::SimTime::milliseconds(4)};
  sim::SimTime processing_min{sim::SimTime::milliseconds(12)};
  std::string rsu_hostname{"rsu"};
  /// When true, a collision risk (cause 97) is only advertised if the
  /// LDM knows an ETSI-capable protagonist vehicle; otherwise the event
  /// degrades to an obstacle warning (cause 10).
  bool require_cam_vehicle_for_collision_risk{false};
  /// Validity and repetition of the triggered DENM.
  sim::SimTime denm_validity{sim::SimTime::seconds(10)};
  std::optional<sim::SimTime> denm_repetition{};
  double destination_radius_m{100.0};
  /// Re-arm delay: after a trigger, further crossings are ignored until
  /// the object has left the region for at least this long.
  sim::SimTime rearm_delay{sim::SimTime::seconds(3)};
  /// Additionally scan the LDM for conflicts between pairs of CAM-known
  /// vehicles (paper §II-A: the infrastructure can also work purely "from
  /// CA Messages broadcast by vehicles").
  bool monitor_cam_pairs{false};
  sim::SimTime cam_pair_scan_period{sim::SimTime::milliseconds(250)};
};

/// The paper's Hazard Advertisement Service (edge node): watches the
/// detection stream for a road user crossing the Action Point, consults
/// the LDM to assess a potential collision with a protagonist vehicle,
/// and triggers the RSU's OpenC2X stack to send a DENM via
/// `POST /trigger_denm`.
class HazardAdvertisementService {
 public:
  using Config = HazardServiceConfig;

  HazardAdvertisementService(sim::Scheduler& sched, middleware::MessageBus& bus,
                             middleware::HttpHost& host, const geo::LocalFrame& frame,
                             geo::Vec2 camera_position, double camera_facing_rad,
                             sim::RandomStream rng, Config config = {},
                             its::Ldm* ldm = nullptr, sim::Trace* trace = nullptr,
                             std::string name = "hazard_service");

  void start();
  void stop();

  struct Stats {
    std::uint64_t batches_seen{0};
    std::uint64_t crossings_detected{0};
    std::uint64_t denms_triggered{0};
    std::uint64_t trigger_failures{0};
    /// Detections dropped by the confidence / known-road-user gates.
    std::uint64_t detections_gated{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Clears the trigger latch (new experiment run).
  void rearm();

 private:
  void on_detections(const DetectionBatch& batch);
  void scan_cam_pairs();
  void trigger_denm_at(geo::Vec2 event_position, its::EventType event, double event_speed_mps);
  void trigger_denm(const TrackedDetection& det, std::optional<geo::Vec2> event_position);
  /// World-frame position of a detection (camera pose + bearing + range).
  [[nodiscard]] geo::Vec2 world_position(const TrackedDetection& det) const;
  /// Updates and returns the smoothed world-frame velocity of an object.
  geo::Vec2 update_velocity(std::uint32_t object_id, geo::Vec2 position, sim::SimTime now);
  [[nodiscard]] bool crossing_detected(const TrackedDetection& det);

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  middleware::HttpHost& host_;
  const geo::LocalFrame& frame_;
  geo::Vec2 camera_position_;
  double camera_facing_rad_;
  sim::RandomStream rng_;
  Config config_;
  its::Ldm* ldm_;
  sim::Trace* trace_;
  std::string name_;
  bool running_{false};
  bool armed_{true};
  sim::SimTime last_trigger_{};
  /// Last estimated distance per tracked object (min-range inference).
  std::map<std::uint32_t, double> last_distance_;
  /// Smoothed world-frame motion per object (CPA mode).
  struct MotionState {
    geo::Vec2 position{};
    geo::Vec2 velocity{};
    sim::SimTime stamp{};
    bool has_velocity{false};
  };
  std::map<std::uint32_t, MotionState> motion_;
  CollisionPredictor predictor_{};
  sim::EventHandle cam_scan_timer_;
  Stats stats_;
};

}  // namespace rst::roadside
