#pragma once

#include <map>
#include <string>
#include <vector>

#include "rst/middleware/message_bus.hpp"
#include "rst/roadside/associator.hpp"
#include "rst/roadside/camera.hpp"
#include "rst/roadside/tracker.hpp"
#include "rst/roadside/yolo_sim.hpp"
#include "rst/sim/trace.hpp"

namespace rst::roadside {

/// One tracked detection enriched with motion information.
struct TrackedDetection {
  YoloDetection detection{};
  /// Smoothed range rate in m/s (negative = approaching the camera),
  /// from the per-object alpha-beta tracker; 0 until the track warms up.
  double range_rate_mps{0};
  /// Smoothed range from the same tracker.
  double tracked_range_m{0};
  sim::SimTime capture_time{};
  sim::SimTime output_time{};
};

/// Batch of detections published on the bus topic `detections`.
struct DetectionBatch {
  std::uint64_t frame_number{0};
  sim::SimTime capture_time{};
  sim::SimTime output_time{};
  std::vector<TrackedDetection> detections;
};

struct ObjectDetectionConfig {
  /// End-to-end period of the detection loop (4 FPS).
  sim::SimTime processing_period{sim::SimTime::milliseconds(250)};
  /// Inference latency between frame grab and detection output.
  sim::SimTime inference_mean{sim::SimTime::milliseconds(80)};
  sim::SimTime inference_sigma{sim::SimTime::milliseconds(12)};
  sim::SimTime inference_min{sim::SimTime::milliseconds(40)};
  RangeTracker::Config tracker{};
  /// Real detectors output anonymous boxes: when set, the simulator-side
  /// object identities are discarded and track ids are re-derived by
  /// frame-to-frame data association.
  bool anonymize_detections{false};
  AssociatorConfig associator{};
};

/// The paper's Object Detection Service: grabs the latest camera frame,
/// runs YOLO, determines the dynamics of the observed vehicles (motion
/// direction vector via range rate) and publishes the result.
///
/// The processing loop runs at ~4 FPS ("the processing is done at
/// approximately 4 Frames per Second, so a small error margin on detection
/// exists"), which quantises the action-point crossing instant.
class ObjectDetectionService {
 public:
  using Config = ObjectDetectionConfig;

  ObjectDetectionService(sim::Scheduler& sched, middleware::MessageBus& bus, RoadsideCamera& camera,
                         YoloSimulator& yolo, sim::RandomStream rng, Config config = {},
                         sim::Trace* trace = nullptr, std::string name = "object_detection");
  ~ObjectDetectionService();
  ObjectDetectionService(const ObjectDetectionService&) = delete;
  ObjectDetectionService& operator=(const ObjectDetectionService&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t frames_processed() const { return frames_; }
  [[nodiscard]] double effective_fps() const;

 private:
  void process_frame();

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  RoadsideCamera& camera_;
  YoloSimulator& yolo_;
  sim::RandomStream rng_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;
  bool running_{false};
  sim::EventHandle loop_timer_;
  std::uint64_t frames_{0};
  sim::SimTime started_at_{};
  RangeTracker tracker_;
  DetectionAssociator associator_;
};

}  // namespace rst::roadside
