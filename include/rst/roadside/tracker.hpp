#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "rst/sim/time.hpp"

namespace rst::roadside {

/// Smoothed range/range-rate estimate for one tracked object.
struct RangeEstimate {
  double range_m{0};
  double range_rate_mps{0};
  sim::SimTime stamp{};
  /// Number of measurements fused into this track.
  std::uint32_t updates{0};
};


struct RangeTrackerConfig {
  double alpha{0.55};
  double beta{0.18};
  /// Tracks not updated for this long are discarded (occlusion, exit).
  sim::SimTime track_timeout{sim::SimTime::milliseconds(1200)};
};

/// Per-object alpha-beta filter over the YOLO distance estimates.
///
/// The raw per-frame estimates carry a few centimetres of noise; a finite
/// difference over 250 ms frames turns that into ±0.25 m/s of range-rate
/// noise. The alpha-beta filter recovers a stable motion vector — the
/// "dynamics of the vehicles" the paper's Object Detection Service is
/// required to determine.
class RangeTracker {
 public:
  using Config = RangeTrackerConfig;

  explicit RangeTracker(Config config = {}) : config_{config} {}

  /// Fuses a measurement; returns the updated estimate.
  RangeEstimate update(std::uint32_t object_id, double measured_range_m, sim::SimTime now);

  /// Current estimate extrapolated to `now`; nullopt when unknown/stale.
  [[nodiscard]] std::optional<RangeEstimate> predict(std::uint32_t object_id,
                                                     sim::SimTime now) const;

  void drop(std::uint32_t object_id) { tracks_.erase(object_id); }
  [[nodiscard]] std::size_t active_tracks() const { return tracks_.size(); }

 private:
  Config config_;
  std::map<std::uint32_t, RangeEstimate> tracks_;
};

}  // namespace rst::roadside
