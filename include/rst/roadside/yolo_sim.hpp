#pragma once

#include <string>
#include <vector>

#include "rst/roadside/camera.hpp"
#include "rst/sim/random.hpp"

namespace rst::sim {
class FaultInjector;
}

namespace rst::roadside {

/// A single YOLO bounding-box result for one frame.
struct YoloDetection {
  std::uint32_t object_id{0};  ///< simulator-side identity (perfect tracking)
  std::string label;           ///< predicted class ("motorbike", "car", "stop sign", ...)
  double confidence{0};
  double estimated_distance_m{0};
  double bearing_rad{0};
};

struct ClassProfile {
  double detection_probability{0.9};
  double max_range_m{6.0};
  /// (label, weight) pairs the classifier samples from per frame.
  std::vector<std::pair<std::string, double>> labels;
  double confidence_mean{0.7};
  double confidence_sigma{0.12};
};

struct YoloConfig {
  double distance_noise_sigma_m{0.03};
  double min_working_distance_m{0.75};
  double default_distance_m{1.73};
  ClassProfile bare_robot{
      .detection_probability = 0.45,
      .max_range_m = 2.0,
      .labels = {{"motorbike", 0.75}, {"bicycle", 0.25}},
      .confidence_mean = 0.42,
      .confidence_sigma = 0.12,
  };
  ClassProfile body_shell{
      .detection_probability = 0.65,
      .max_range_m = 2.5,
      .labels = {{"car", 0.55}, {"truck", 0.45}},
      .confidence_mean = 0.55,
      .confidence_sigma = 0.12,
  };
  ClassProfile stop_sign{
      .detection_probability = 0.97,
      .max_range_m = 6.0,
      .labels = {{"stop sign", 1.0}},
      .confidence_mean = 0.88,
      .confidence_sigma = 0.05,
  };
};

/// Behavioural simulator of the YOLOv3/Darknet detector the paper runs on
/// the Jetson NX, reproducing the empirically observed quirks (§III-C2):
///  * per-frame detection is unreliable and class labels flicker for the
///    bare robot; the Traxxas body shell oscillates between car and truck;
///    the stop sign is detected resiliently;
///  * the usable recognition range depends on the presentation;
///  * distance estimation has a minimum working range: "YOLO can only
///    detect objects up to approximately 75 cm; under this value,
///    estimated distance defaults to 1.73 m".
class YoloSimulator {
 public:
  using ClassProfile = roadside::ClassProfile;

  using Config = YoloConfig;

  YoloSimulator(sim::RandomStream rng, Config config = {});

  /// Runs detection over one frame (no latency here; the caller models the
  /// inference pipeline timing).
  [[nodiscard]] std::vector<YoloDetection> detect(const CameraFrame& frame);

  [[nodiscard]] const ClassProfile& profile(Presentation p) const;
  [[nodiscard]] const Config& config() const { return config_; }

  /// Subscribes the detector to a fault plan (injection point "yolo"):
  /// YoloMiss suppresses detections with probability `severity` (on top of
  /// the profile's own miss rate), YoloMisclassify corrupts labels with
  /// probability `severity`, YoloConfidence multiplies confidences by
  /// 1-severity (collapse). All draws come from the injector's streams, so
  /// the detector's own stream is untouched outside fault windows.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

 private:
  sim::RandomStream rng_;
  Config config_;
  sim::FaultInjector* faults_{nullptr};
};

}  // namespace rst::roadside
