#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rst/core/its_station.hpp"
#include "rst/dot11p/channel.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/geo/geodesy.hpp"
#include "rst/geo/vec2.hpp"
#include "rst/middleware/http.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::sim {
class PartitionedScheduler;
}  // namespace rst::sim

namespace rst::scenario {

/// Deterministic description of a city-scale ITS-G5 workload: a Manhattan
/// street grid with an arterial corridor, buildings as NLOS obstacles,
/// RSUs with overlapping coverage and seeded vehicle flows. Everything a
/// run produces is a pure function of (seed, spec) — the generator and the
/// scenario draw only from named child streams of `seed`.
///
/// The defaults describe a small city usable in tier-1 tests; the spec
/// file format (`parse_city_spec`, same `key = value` syntax as the
/// testbed config) scales every knob up for benches and campaigns.
struct CitySpec {
  std::uint64_t seed{1};

  // --- Road network (local east-north metres) ---
  int blocks_x{4};
  int blocks_y{4};
  double block_m{120.0};
  double street_m{12.0};
  /// East-west street index carrying the arterial corridor (vehicle flows
  /// and the handover drive concentrate there); -1 selects the middle row.
  int corridor_row{-1};

  // --- Buildings (NLOS obstacles fed into the channel model) ---
  bool buildings{true};
  double building_loss_db{18.0};
  /// Building facade setback from the street edge.
  double building_setback_m{2.0};

  // --- RSUs ---
  /// An RSU at every Nth intersection along both axes.
  int rsu_every{2};
  /// Cap on the number of RSUs (placement order: south rows first, west to
  /// east); 0 means no cap. `max_rsus = 1` leaves a single RSU at the
  /// south-west corner — the coverage-gap topology.
  int max_rsus{0};
  /// Restrict RSU placement to corridor-row intersections (handover line).
  bool rsu_corridor_only{false};
  /// Fixed RSU CAM beacon period (both generation bounds pinned to it).
  sim::SimTime rsu_cam_interval{sim::SimTime::milliseconds(100)};

  // --- Vehicle flows ---
  int vehicles{8};
  double vehicle_speed_mps{8.0};
  double vehicle_speed_jitter_mps{2.0};
  sim::SimTime obu_cam_interval{sim::SimTime::milliseconds(100)};
  /// Gate every station's transmissions through a reactive DCC.
  bool enable_dcc{false};
  /// DEN keep-alive forwarding on vehicle stations (the store-carry-forward
  /// substrate of the delivery experiment).
  bool enable_kaf{false};
  /// Collective Perception service on every station (opt-in; the default
  /// keeps the four city fingerprints byte-identical to a CPM-less build).
  bool cpm_enable{false};
  sim::SimTime cpm_interval{sim::SimTime::milliseconds(250)};
  sim::SimTime cpm_object_lifetime{sim::SimTime::milliseconds(1500)};
  sim::SimTime cpm_redundancy_window{sim::SimTime::milliseconds(500)};

  // --- Radio channel ---
  /// Urban fits run hotter than the lab's 2.1 (City-Scale ITS-G5 reports
  /// street-canyon attenuation well above free space).
  double path_loss_exponent{3.2};
  double shadowing_sigma_db{0.0};
  double tx_power_dbm{23.0};
  /// Dense-fleet medium scaling (PR 3): per-link streams + grid culling.
  bool spatial_index{true};
  /// Ray-index the building walls (geo::ObstacleGrid); off falls back to
  /// the brute-force wall scan. Bit-identical either way — the knob exists
  /// for equivalence testing and tiny maps.
  bool obstacle_index{true};
  double power_floor_dbm{-110.0};
  /// Culling/partition grid cell size in metres; 0 derives one hearing
  /// radius from the power floor. One knob for both the spatial-index
  /// geometry and the cell -> partition-domain mapping.
  double grid_cell_m{0.0};

  // --- Partitioned execution (PR 7) ---
  /// Spatial partition domains for the medium's parallel phases. 0 adopts
  /// the RST_PARTITIONS environment variable (unset = serial), 1 forces a
  /// serial run; larger values fan per-receiver physics across a worker
  /// team. Results are bit-identical to serial at any partition count.
  int partitions{0};

  geo::GeoPosition origin{41.1780, -8.6080};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
  [[nodiscard]] int resolved_corridor_row() const;
  [[nodiscard]] double extent_x_m() const { return blocks_x * block_m; }
  [[nodiscard]] double extent_y_m() const { return blocks_y * block_m; }
};

/// Parses a city spec from `key = value` lines (same syntax, comment and
/// error conventions as the testbed config format). Unknown keys throw.
[[nodiscard]] CitySpec parse_city_spec(const std::string& text);
/// The keys parse_city_spec understands, with one-line help.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> city_spec_keys();
/// Renders a spec as `key = value` lines; parse_city_spec(format_city_spec(s))
/// reproduces every parseable field of `s` exactly (CAM intervals print in
/// whole milliseconds — the only granularity the parser accepts — and
/// `origin` has no spec key, so it keeps its default).
[[nodiscard]] std::string format_city_spec(const CitySpec& spec);

/// One vehicle's route: a polyline over street centerlines, traversed at
/// constant speed and closed into a loop (last waypoint connects back to
/// the first). `speed_mps == 0` parks the vehicle at the first waypoint.
struct VehicleFlow {
  std::vector<geo::Vec2> waypoints;
  double speed_mps{0.0};
  /// Starting offset along the loop, in metres of arc length.
  double phase_m{0.0};
};

/// Position along a flow at simulation time `t` (pure function — vehicle
/// motion needs no events).
[[nodiscard]] geo::Vec2 flow_position(const VehicleFlow& flow, sim::SimTime t);
/// Unit heading (radians clockwise from north) at time `t`.
[[nodiscard]] double flow_heading_rad(const VehicleFlow& flow, sim::SimTime t);

/// The generated static topology, before any station is constructed.
struct RoadNetwork {
  /// Intersection grid, row-major: index = iy * cols + ix.
  std::vector<geo::Vec2> intersections;
  /// Intersections per row (blocks_x + 1).
  int cols{0};
  std::vector<dot11p::Wall> building_walls;
  /// RSU placement in (row, column) order.
  std::vector<geo::Vec2> rsu_positions;
  /// Seeded vehicle flows (corridor runs alternate with block rings).
  std::vector<VehicleFlow> flows;
  double extent_x{0};
  double extent_y{0};
  /// y coordinate of the arterial corridor centerline.
  double corridor_y{0};

  [[nodiscard]] geo::Vec2 intersection(int ix, int iy) const;
};

/// Deterministic topology generation from (seed, spec).
[[nodiscard]] RoadNetwork generate_road_network(const CitySpec& spec);

/// The assembled city: one shared medium (spatial-indexed), buildings wired
/// into the channel model, an ITS station per RSU and per vehicle — all of
/// them running the full CAM/DENM/BTP/GN stack of `core::ItsStation`.
class CityScenario {
 public:
  static constexpr its::StationId kRsuIdBase = 900;
  static constexpr its::StationId kVehicleIdBase = 1;

  explicit CityScenario(CitySpec spec);
  ~CityScenario();
  CityScenario(const CityScenario&) = delete;
  CityScenario& operator=(const CityScenario&) = delete;

  [[nodiscard]] const CitySpec& spec() const { return spec_; }
  [[nodiscard]] const RoadNetwork& network() const { return net_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] dot11p::Medium& medium() { return *medium_; }
  /// Engine driving the medium's domain-parallel phases; null when the run
  /// is serial (resolved_partitions() <= 1 or no spatial index).
  [[nodiscard]] sim::PartitionedScheduler* partition_engine() { return engine_.get(); }
  /// Partition count in effect after resolving `spec.partitions` (0 = the
  /// RST_PARTITIONS environment variable, absent meaning serial).
  [[nodiscard]] int resolved_partitions() const;
  [[nodiscard]] const geo::LocalFrame& frame() const { return frame_; }
  /// Null when the spec has no buildings.
  [[nodiscard]] const dot11p::ObstacleShadowingModel* obstacles() const { return obstacles_; }

  [[nodiscard]] std::size_t rsu_count() const { return rsus_.size(); }
  [[nodiscard]] core::ItsStation& rsu(std::size_t i) { return *rsus_[i]; }
  [[nodiscard]] geo::Vec2 rsu_position(std::size_t i) const { return net_.rsu_positions[i]; }

  [[nodiscard]] std::size_t vehicle_count() const { return vehicles_.size(); }
  [[nodiscard]] core::ItsStation& vehicle(std::size_t i);
  [[nodiscard]] geo::Vec2 vehicle_position(std::size_t i) const;

  /// Adds one extra vehicle station following `flow`; call before start().
  /// Returns the vehicle index.
  std::size_t add_vehicle(VehicleFlow flow);

  /// Starts CAM generation on every station (RSUs beacon at the fixed
  /// `rsu_cam_interval`). Idempotent.
  void start();

 private:
  class VehicleEntry;

  CitySpec spec_;
  RoadNetwork net_;
  sim::RandomStream rng_;
  geo::LocalFrame frame_;
  sim::Scheduler sched_;
  std::unique_ptr<sim::PartitionedScheduler> engine_;
  std::unique_ptr<dot11p::Medium> medium_;
  std::unique_ptr<middleware::HttpLan> lan_;
  const dot11p::ObstacleShadowingModel* obstacles_{nullptr};
  std::vector<std::unique_ptr<core::ItsStation>> rsus_;
  std::vector<std::unique_ptr<VehicleEntry>> vehicles_;
  bool started_{false};
};

// --- Experiment 1: coverage / RSSI map -------------------------------------
//
// Deterministic link-budget raster over the street centerlines from one
// RSU, through the full channel model (log-distance + building walls). The
// City-Scale ITS-G5 invariants: power decays monotonically with distance
// along LOS rays, and every NLOS sample sits at least one wall loss below
// the LOS budget at the same distance.

struct CoverageSample {
  geo::Vec2 pos;
  double distance_m{0};
  double rssi_dbm{0};
  std::size_t walls_crossed{0};
};

struct CoverageMap {
  std::size_t rsu_index{0};
  geo::Vec2 rsu_pos;
  std::vector<CoverageSample> samples;
  /// Fraction of street samples at or above `sensitivity_dbm`.
  double covered_fraction{0};
  double sensitivity_dbm{-95.0};

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Rasterises the streets at `step_m` and measures the deterministic
/// receive power from RSU `rsu_index` through the medium's channel model.
[[nodiscard]] CoverageMap measure_coverage(CityScenario& city, std::size_t rsu_index,
                                           double step_m = 10.0);

// --- Experiment 2: RSU <-> OBU handover ------------------------------------

struct HandoverReport {
  struct Reception {
    sim::SimTime t;
    its::StationId rsu;
    double rssi_dbm;
  };
  std::vector<Reception> receptions;
  /// Serving-RSU timeline (hysteresis rule), deduplicated.
  std::vector<its::StationId> serving_sequence;
  /// Longest interval without a beacon from any RSU, from first reception
  /// to the end of the drive.
  sim::SimTime max_service_gap{};
  /// Longest interval without a beacon from the *serving* RSU while it was
  /// serving (the handover service interruption).
  sim::SimTime max_serving_gap{};

  [[nodiscard]] int handovers() const {
    return serving_sequence.empty() ? 0 : static_cast<int>(serving_sequence.size()) - 1;
  }
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Drives one OBU along the arterial corridor past the spec's RSU line and
/// reports beacon receptions, serving-RSU handovers (switch when another
/// RSU's beacon is `hysteresis_db` stronger than the last one heard from
/// the serving RSU) and service-gap latencies.
[[nodiscard]] HandoverReport run_handover_experiment(const CitySpec& spec, sim::SimTime duration,
                                                     double hysteresis_db = 3.0);

// --- Experiment 3: channel load (CBR) vs vehicle density --------------------

struct CbrPoint {
  int vehicles{0};
  /// Smoothed channel busy ratio at the monitor RSU at the end of the run.
  double cbr{0};
  std::uint64_t frames_on_air{0};
  std::uint64_t deliveries{0};

  friend bool operator==(const CbrPoint&, const CbrPoint&) = default;
};

/// Runs one city per density (spec.vehicles overridden), measures the CBR
/// at RSU 0 with a DCC channel probe, and returns the curve in density
/// order. `threads` fans the cells over a TrialPool; the result is
/// identical at any thread count.
[[nodiscard]] std::vector<CbrPoint> run_cbr_sweep(const CitySpec& base,
                                                  const std::vector<int>& densities,
                                                  sim::SimTime duration, unsigned threads = 1);

[[nodiscard]] std::uint64_t cbr_sweep_fingerprint(const std::vector<CbrPoint>& curve);

// --- Experiment 4: multi-hop GBC DENM delivery across a coverage gap --------

struct DeliveryReport {
  /// Relay chain inside RSU coverage (multi-hop GBC forwarding reaches it).
  int near_targets{0};
  int near_delivered{0};
  /// Cluster beyond the coverage gap (only a carrier crossing the gap and
  /// keep-alive-forwarding the DENM can reach it).
  int far_targets{0};
  int far_delivered{0};
  sim::SimTime first_near_delivery{};
  sim::SimTime first_far_delivery{};
  std::uint64_t gn_forwarded{0};
  std::uint64_t kaf_retransmissions{0};
  /// Deterministic precondition: best direct RSU -> far-cluster budget in
  /// dBm (must sit below sensitivity for the gap to be real).
  double best_direct_far_budget_dbm{0};

  [[nodiscard]] double far_ratio() const {
    return far_targets == 0 ? 0.0 : static_cast<double>(far_delivered) / far_targets;
  }
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Builds a corridor city from `spec` (vehicles are placed by the
/// experiment: a parked relay chain under the single RSU's coverage, a
/// parked cluster beyond the gap, and one mover crossing it), triggers a
/// repeated GBC DENM at the RSU scoped to the whole corridor, and measures
/// who received it and by which mechanism.
[[nodiscard]] DeliveryReport run_delivery_experiment(const CitySpec& spec, sim::SimTime duration);

}  // namespace rst::scenario
