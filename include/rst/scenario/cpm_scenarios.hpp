#pragma once

#include <cstdint>

#include "rst/sim/time.hpp"

namespace rst::scenario {

// --- CPM scenario 1: occluded pedestrian (network-aided NLOS sensing) -------

/// One run of the occluded-pedestrian scenario: the protagonist drives
/// north along a wall that blocks its (and its LiDAR's) line of sight to a
/// pedestrian approaching the track from the east. The RSU's camera sits
/// past the wall end with a clear view; with CPM enabled its percepts reach
/// the OBU, the on-board collision predictor flags the conflict and the
/// vehicle brakes long before line of sight ever opens.
struct OccludedPedestrianReport {
  bool cpm_enabled{false};
  /// Vehicle commanded a power cut (emergency stop).
  bool braked{false};
  sim::SimTime t_brake{};
  /// First instant the vehicle <-> pedestrian segment cleared the wall.
  bool los_seen{false};
  sim::SimTime t_los{};
  /// First remote percept fused into the OBU's LDM.
  bool fused{false};
  sim::SimTime t_first_fusion{};
  double min_separation_m{0};
  std::uint64_t objects_published{0};
  std::uint64_t objects_fused{0};
  std::uint64_t cpms_sent{0};
  std::uint64_t cpms_received{0};

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Runs the scenario for 10 simulated seconds. `partitions` forwards to
/// TestbedConfig::medium_partitions (0 adopts RST_PARTITIONS, 1 serial);
/// the report is bit-identical at any partition count.
[[nodiscard]] OccludedPedestrianReport run_occluded_pedestrian(std::uint64_t seed, bool cpm_enable,
                                                               int partitions = 0);

// --- CPM scenario 2: blind intersection (station-to-station percepts) -------

/// One run of the blind-intersection scenario: two L-shaped building walls
/// hide an eastbound cyclist from a northbound ITS vehicle. A parked
/// observer station sees the cyclist, publishes it over CPM, and the
/// vehicle's collision predictor fires on the fused percept while the
/// cyclist is still deep behind the corner.
struct BlindIntersectionReport {
  bool cpm_enabled{false};
  /// The vehicle's predictor flagged a conflict on a fused percept.
  bool threat_flagged{false};
  sim::SimTime t_threat{};
  /// Provenance of the percept that raised the threat (the observer's
  /// station id) — proves the hazard came over the air, not local sensing.
  std::uint32_t threat_source{0};
  bool b_braked{false};
  double min_gap_m{0};
  std::uint64_t cpms_sent{0};
  std::uint64_t cpms_received{0};
  std::uint64_t objects_fused{0};

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Runs the scenario for 6 simulated seconds on a serial medium.
[[nodiscard]] BlindIntersectionReport run_blind_intersection(std::uint64_t seed, bool cpm_enable);

}  // namespace rst::scenario
