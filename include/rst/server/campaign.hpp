#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "rst/core/testbed.hpp"

namespace rst::server {

/// Code-version constant mixed into every trial content address. Bump it
/// whenever a change alters what a (spec, seed) trial produces — stored
/// artifacts from older code then stop matching instead of serving stale
/// bytes. The repo's bit-reproducibility guarantee is what makes this a
/// sufficient cache key: same spec + same seed + same code ⇒ same bytes.
inline constexpr std::string_view kCodeVersion = "rst-campaign/1";

/// FNV-1a over a byte string, continuing from `h` (so keys compose:
/// fnv1a(b, fnv1a(a)) hashes a||b).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t h = 1469598103934665603ULL);

/// Content address of one trial: FNV-1a over (canonical spec bytes, seed
/// as 8 little-endian bytes, kCodeVersion). The spec MUST already be
/// canonical (core::canonicalize_spec) so equivalent spellings collide.
[[nodiscard]] std::uint64_t trial_key(const std::string& canonical_spec, std::uint64_t seed);

/// One campaign submission: a spec in the config_io `key = value` format
/// (fault clauses ride along as `fault = ...` lines), a trial count and a
/// base seed. Trial i runs at seed `base_seed + i`; a `seed = ...` line in
/// the spec is accepted but the per-trial seed always comes from here.
struct CampaignRequest {
  std::string spec;
  int trials{1};
  std::uint64_t base_seed{1};
};

/// Identity of a whole campaign (used for admission traces and the `OK
/// id=` response line): the trial-key construction extended with the
/// trial count and base seed.
[[nodiscard]] std::uint64_t campaign_id(const std::string& canonical_spec, int trials,
                                        std::uint64_t base_seed);

/// Serializes one trial result as a single `k=v`-token line: SimTimes as
/// integer nanoseconds, doubles via core::format_spec_double (%.17g), so
/// parse_trial_record(serialize_trial_record(...)) is bit-exact and the
/// line itself is a stable, content-addressable artifact.
[[nodiscard]] std::string serialize_trial_record(std::uint64_t seed,
                                                 const core::TrialResult& result);

/// Parsed form of a stored trial record.
struct TrialRecord {
  std::uint64_t seed{0};
  core::TrialResult result{};
};

/// Inverse of serialize_trial_record. Throws std::invalid_argument on a
/// malformed or incomplete record (a corrupted store entry must fail loud,
/// not decode into a plausible trial).
[[nodiscard]] TrialRecord parse_trial_record(const std::string& line);

}  // namespace rst::server
