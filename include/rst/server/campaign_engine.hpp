#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "rst/server/campaign.hpp"
#include "rst/server/result_store.hpp"
#include "rst/sim/metrics.hpp"
#include "rst/sim/trace.hpp"
#include "rst/sim/trial_pool.hpp"

namespace rst::server {

/// Engine configuration. `threads` follows the experiment convention
/// (0 = hardware concurrency, 1 = serial); the worker fleet is built once
/// at engine construction and reused across campaigns.
struct CampaignEngineConfig {
  unsigned threads{1};
  /// Bounded admission queue capacity; submissions beyond it are shed.
  std::size_t queue_capacity{8};
  /// What happens to a submission when the queue is full: reject the new
  /// arrival with a distinct status, or shed the oldest queued campaign to
  /// admit it (the PR 4 drop-oldest inbox style).
  enum class OverflowPolicy : std::uint8_t { Reject, DropOldest };
  OverflowPolicy overflow{OverflowPolicy::Reject};
  /// Result-store segment path; empty keeps the store in memory only.
  std::string store_path{};
  /// Upper bound on trials per campaign (spec-abuse guard).
  int max_trials{100'000};
};

/// Outcome of one campaign run. `artifact` is the deterministic response
/// body — one `TRIAL <i> <record>` line per trial in seed order followed by
/// the Table II/III renderings — and is byte-identical across worker
/// counts and across cold-run vs cache-hit paths (cache hits replay the
/// stored record bytes verbatim; tables are re-aggregated from parsed
/// records through the same seed-ordered pass either way).
struct CampaignOutcome {
  enum class Status : std::uint8_t { Ok, Rejected, Error };
  Status status{Status::Ok};
  std::string error{};         ///< parse/validation diagnostic when Error
  std::uint64_t id{0};         ///< campaign_id(canonical spec, trials, seed)
  std::string canonical_spec{};
  std::string artifact{};
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  std::uint64_t executed{0};   ///< trials actually simulated by this run
};

/// Long-running campaign server core: canonicalizes specs, content-
/// addresses every (spec, seed) trial into the ResultStore, schedules the
/// misses across a TrialPool worker fleet, and streams results + summaries
/// incrementally in seed order. All public entry points run on the caller's
/// thread (transports serialize on it); only the trial fan-out is parallel.
class CampaignEngine {
 public:
  using LineSink = std::function<void(const std::string& line)>;

  explicit CampaignEngine(CampaignEngineConfig config = {});

  /// Bounded admission. Admitted submissions wait in FIFO order for
  /// run_one(); under overload the configured OverflowPolicy applies and
  /// the shed campaign is counted + traced.
  enum class Admission : std::uint8_t { Admitted, Rejected };
  Admission submit(CampaignRequest request);

  /// Runs the oldest admitted campaign. Artifact lines stream through
  /// `sink` as trials complete — a trial's line is emitted as soon as it
  /// and every earlier trial are resolved, so the stream is identical at
  /// any worker count. Returns nullopt when the queue is empty.
  std::optional<CampaignOutcome> run_one(const LineSink& sink = {});

  /// submit() + run_one() in one call — the synchronous transport path.
  /// The overflow policy applies as in submit(): under Reject a full queue
  /// returns Status::Rejected without running; under DropOldest the stalest
  /// queued campaign is shed and this submission runs.
  CampaignOutcome execute(CampaignRequest request, const LineSink& sink = {});

  /// Compacts the result store and traces the pass. Returns bytes reclaimed.
  std::uint64_t compact_store();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t trials_executed() const { return trials_executed_; }
  [[nodiscard]] ResultStore& store() { return store_; }
  [[nodiscard]] sim::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] const CampaignEngineConfig& config() const { return config_; }

 private:
  CampaignOutcome run_campaign(const CampaignRequest& request, const LineSink& sink);
  /// Drop-oldest overflow: counts, traces, and pops the stalest queued campaign.
  void shed_oldest();
  /// Engine-lifetime logical clock for trace records (the engine has no
  /// simulation time; a monotone tick keeps the trace order meaningful).
  sim::SimTime tick() { return sim::SimTime::nanoseconds(static_cast<std::int64_t>(ticks_++)); }

  CampaignEngineConfig config_;
  ResultStore store_;
  std::deque<CampaignRequest> queue_;
  std::unique_ptr<sim::TrialPool> pool_;  ///< null when resolved threads == 1
  sim::MetricsRegistry metrics_;
  sim::Trace trace_;
  std::uint64_t trials_executed_{0};
  std::uint64_t ticks_{0};
};

}  // namespace rst::server
