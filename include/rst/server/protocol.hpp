#pragma once

#include <functional>
#include <string>

#include "rst/server/campaign_engine.hpp"

namespace rst::server {

/// Line-delimited campaign protocol, one session per connection. The same
/// state machine serves the in-process transport (tests feed lines and
/// capture the emitted response lines directly — no sockets, fully
/// deterministic) and the examples/campaign_server TCP front-end.
///
/// Client → server:
///   PING                          liveness probe
///   STATS                         one-line engine counters snapshot
///   COMPACT                       compact the result store
///   CAMPAIGN trials=<n> seed=<s>  open a submission; subsequent lines are
///     <spec lines…>               the config_io `key = value` spec
///   END                           close the submission and run it
///   QUIT                          end the session
///
/// Server → client, for a CAMPAIGN…END submission:
///   OK id=<hex16> trials=<n>
///   <artifact lines…>             TRIAL records + Table II/III, streamed
///   ENDARTIFACT
///   STATS hits=<h> misses=<m> executed=<e>
///   DONE
/// or `REJECTED overloaded` / `ERROR <message>` followed by DONE. The
/// artifact block between OK and ENDARTIFACT is the byte-stable portion:
/// identical across worker counts and cold vs cache-hit runs.
class LineSession {
 public:
  using LineSink = std::function<void(const std::string& line)>;

  explicit LineSession(CampaignEngine& engine) : engine_{&engine} {}

  /// Feeds one input line (without its newline); response lines are pushed
  /// through `emit` (also newline-free). Returns false once the session is
  /// over (QUIT) — the transport should close the connection.
  bool consume_line(const std::string& line, const LineSink& emit);

  /// Convenience for in-process use: feeds every line of `request_text`
  /// and returns the concatenated response ("\n"-terminated lines).
  [[nodiscard]] std::string handle_text(const std::string& request_text);

 private:
  void finish_campaign(const LineSink& emit);

  CampaignEngine* engine_;
  bool collecting_{false};
  CampaignRequest pending_{};
};

/// Renders a CampaignRequest as protocol lines (CAMPAIGN header, spec
/// body, END) — what campaign_client sends over the socket.
[[nodiscard]] std::string format_campaign_request(const CampaignRequest& request);

}  // namespace rst::server
