#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace rst::server {

/// Content-addressed binary result store: an append-only segment file plus
/// an in-memory index. Records are (u64 key, u32 length, bytes) appended in
/// put() order; the index maps each key to its latest value, so re-putting
/// a key supersedes the old record on read while the dead bytes stay in the
/// segment until compact() rewrites it. With an empty path the store is
/// memory-only (tests, in-process transports) — same semantics, no file.
///
/// Durability model: the segment is flushed after every append and replayed
/// on open; a torn final record (crash mid-append) is truncated away rather
/// than rejected. The store is not thread-safe — the CampaignEngine serializes
/// access (puts happen on the seed-ordered flush path, which also makes the
/// segment byte layout independent of worker count).
class ResultStore {
 public:
  /// Magic + format version leading the segment file.
  static constexpr char kMagic[8] = {'R', 'S', 'T', 'S', 'T', 'O', 'R', '1'};

  explicit ResultStore(std::string path = {});
  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Latest value stored under `key`; nullptr when absent. The pointer is
  /// invalidated by the next put()/compact() for that key.
  [[nodiscard]] const std::string* get(std::uint64_t key) const;

  /// Appends (key, value) to the segment and updates the index.
  void put(std::uint64_t key, const std::string& value);

  [[nodiscard]] bool contains(std::uint64_t key) const;
  /// Live (latest-per-key) record count.
  [[nodiscard]] std::size_t count() const { return index_.size(); }
  /// Total record bytes ever appended to the current segment (incl. dead).
  [[nodiscard]] std::uint64_t appended_bytes() const { return appended_bytes_; }
  /// Record bytes a freshly compacted segment would hold.
  [[nodiscard]] std::uint64_t live_bytes() const { return live_bytes_; }

  /// Rewrites the segment with only the live records (ascending key order,
  /// so a compacted file's bytes are a pure function of its contents).
  /// Returns the number of dead bytes reclaimed.
  std::uint64_t compact();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void append_record(std::uint64_t key, const std::string& value);
  void replay();
  /// Cuts the segment file down to `size` bytes (torn-tail recovery).
  void truncate_segment(std::uint64_t size);

  std::string path_;
  std::map<std::uint64_t, std::string> index_;
  std::uint64_t appended_bytes_{0};
  std::uint64_t live_bytes_{0};
};

}  // namespace rst::server
