#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"
#include "rst/sim/trace.hpp"

namespace rst::sim {

/// The named fault classes the testbed's injection points understand. Each
/// maps to one subsystem hook (see the component `set_fault_injector`
/// setters); `severity` is interpreted per kind:
///  * RadioBlackout      — total 802.11p outage (severity ignored)
///  * RadioAttenuation   — extra path attenuation in dB
///  * CameraFreeze       — camera replays its last pre-window frame
///  * CameraDrop         — probability a captured frame comes back empty
///  * YoloMiss           — probability a visible object goes undetected
///  * YoloMisclassify    — probability a detection's label is corrupted
///  * YoloConfidence     — confidence collapse fraction (conf *= 1-severity)
///  * HttpLoss           — LAN request loss probability (composes worst-of
///                         with the legacy `HttpLanConfig::loss_probability`)
///  * HttpStall          — extra server-side stall in milliseconds
///  * GnssDrift          — position bias ramp rate in m/s
///  * NodeDown           — host crash: every request to the target hostname
///                         is lost (severity ignored); the window's end is
///                         the restart
enum class FaultKind : std::uint8_t {
  RadioBlackout,
  RadioAttenuation,
  CameraFreeze,
  CameraDrop,
  YoloMiss,
  YoloMisclassify,
  YoloConfidence,
  HttpLoss,
  HttpStall,
  GnssDrift,
  NodeDown,
};
inline constexpr std::size_t kFaultKindCount = 11;

/// Stable kebab-case name of a fault kind (the plan-file token).
[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);
/// Inverse of fault_kind_name; nullopt for an unknown token.
[[nodiscard]] std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// One time-windowed fault: `kind` applies to injection points whose target
/// matches `target` ("" or "*" = all targets of that kind) over [start, end).
/// Overlapping clauses of the same kind compose worst-of (max severity).
struct FaultClause {
  FaultKind kind{FaultKind::RadioBlackout};
  std::string target{};
  SimTime start{};
  SimTime end{};
  double severity{1.0};

  [[nodiscard]] bool operator==(const FaultClause&) const = default;
};

/// A deterministic chaos schedule: the full description of every fault a
/// run will experience. Together with the root seed it bit-reproduces a
/// degraded run — the injector's draws come from named child RNG streams,
/// never from the components' own streams (except HttpLoss, which shares
/// the LAN's stream so a plan clause is draw-for-draw equivalent to the
/// legacy loss knob).
struct FaultPlan {
  std::vector<FaultClause> clauses;

  [[nodiscard]] bool empty() const { return clauses.empty(); }
  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// Parses one plan-file clause `kind:target:start_ms:end_ms:severity`
/// (target may be empty or "*"). Throws std::invalid_argument on malformed
/// input. The textual times are milliseconds; values written by
/// format_fault_clause round-trip exactly.
[[nodiscard]] FaultClause parse_fault_clause(const std::string& text);
/// Inverse of parse_fault_clause (exact round trip for sub-day windows).
[[nodiscard]] std::string format_fault_clause(const FaultClause& clause);
/// Renders a plan as `fault = <clause>` config-override lines.
[[nodiscard]] std::string format_fault_plan(const FaultPlan& plan);

/// Evaluates a FaultPlan against simulation time for the components'
/// injection points. Constructed only when a plan is installed, so the
/// default (no-plan) path costs a null-pointer check per hook and nothing
/// else — no extra RNG draws, no scheduler events, bit-identical output.
///
/// Every clause boundary emits a typed trace span (Stage::FaultWindow,
/// a = clause index, value = severity, detail = kind) so degraded runs are
/// minable with the same tooling as the nominal pipeline.
class FaultInjector {
 public:
  /// Attenuation a RadioBlackout clause applies: far below any receiver
  /// sensitivity, so the medium drops every frame in the window.
  static constexpr double kRadioBlackoutDb = 400.0;

  FaultInjector(Scheduler& sched, RandomStream rng, FaultPlan plan, Trace* trace = nullptr);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// True when any clause of `kind` matching `target` covers the current
  /// simulation time (windows are [start, end)).
  [[nodiscard]] bool active(FaultKind kind, std::string_view target) const;
  /// Worst-of (max) severity over the active matching clauses; 0 when none.
  [[nodiscard]] double severity(FaultKind kind, std::string_view target) const;
  /// Combined radio impairment in dB: a blackout dominates any attenuation.
  [[nodiscard]] double radio_attenuation_db(std::string_view target) const;

  /// The named child stream a fault kind draws from. Draw order within one
  /// stream is the component's hook-call order, which is itself a
  /// deterministic function of (seed, plan) — so chaos runs bit-reproduce.
  [[nodiscard]] RandomStream& stream(FaultKind kind) { return streams_[index(kind)]; }
  /// Convenience: probability draw from the kind's stream.
  [[nodiscard]] bool draw_bernoulli(FaultKind kind, double p) {
    return stream(kind).bernoulli(p);
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  struct Stats {
    std::uint64_t activations{0};  ///< clause windows opened
    std::uint64_t recoveries{0};   ///< clause windows closed
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] static std::size_t index(FaultKind kind) {
    return static_cast<std::size_t>(kind);
  }
  [[nodiscard]] static bool matches(const FaultClause& clause, FaultKind kind,
                                    std::string_view target);

  Scheduler& sched_;
  FaultPlan plan_;
  Trace* trace_;
  std::vector<RandomStream> streams_;  // one per FaultKind, by enum value
  Stats stats_;
};

}  // namespace rst::sim
