#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rst::sim {

/// Monotonic named counter. Incrementing is a single add — no allocation,
/// no locking (the registry is per-scenario, like the Scheduler).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Fixed-bucket latency histogram: log-spaced bucket edges are computed
/// once at registration, `observe` is a bucket walk + increment (no
/// allocation), and percentiles interpolate linearly inside the covering
/// bucket. Good enough for p50/p95/p99 reporting at a fraction of the cost
/// of keeping every sample.
class LatencyHistogram {
 public:
  struct Options {
    double min{0.01};       ///< lower edge of the first finite bucket
    double max{10'000.0};   ///< upper edge of the last finite bucket
    std::size_t buckets{64};
  };

  LatencyHistogram() : LatencyHistogram(Options{}) {}
  explicit LatencyHistogram(Options options);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  [[nodiscard]] double min_seen() const { return count_ == 0 ? 0.0 : min_seen_; }
  [[nodiscard]] double max_seen() const { return count_ == 0 ? 0.0 : max_seen_; }

  /// Quantile estimate, q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

 private:
  std::vector<double> edges_;           ///< ascending upper edges of the finite buckets
  std::vector<std::uint64_t> counts_;   ///< edges_.size() + 1 (overflow bucket)
  std::uint64_t count_{0};
  double sum_{0.0};
  double min_seen_{0.0};
  double max_seen_{0.0};
};

/// Named counters and histograms for a scenario or an experiment run.
/// Registration (the map insert) allocates; every subsequent lookup of the
/// returned reference and every increment/observe is allocation-free, so
/// components grab their instruments once at wiring time.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  LatencyHistogram& histogram(const std::string& name, LatencyHistogram::Options options = {});

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, LatencyHistogram>& histograms() const { return histograms_; }

  /// Human-readable block: one line per counter, one per histogram with
  /// count/mean/p50/p95/p99.
  [[nodiscard]] std::string format() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace rst::sim
