#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rst/sim/scheduler.hpp"
#include "rst/sim/small_function.hpp"
#include "rst/sim/time.hpp"

namespace rst::sim {

namespace detail {

/// Fixed fork-join team for microsecond-scale phases.
///
/// `TrialPool` parks idle workers on a condition variable, which is the
/// right trade for millisecond-scale trials but costs a ~10 us wake per
/// dispatch — more than an entire medium fan-out phase at city scale. A
/// partitioned run dispatches a phase per transmission begin/finish
/// (~10^6/sim-second at 10k stations), so this team keeps workers spinning
/// on an atomic epoch while phases arrive back-to-back and only falls back
/// to the condition variable after a spin budget expires. Phases are
/// published as a plain function pointer + context so dispatch itself
/// never allocates.
///
/// The calling thread participates as member 0; `participants - 1` threads
/// are spawned. `run()` is not reentrant and must always be called from
/// the same (owning) thread.
class WorkerTeam {
 public:
  /// Phase body: called as fn(ctx, index) for every index in [0, width).
  using PhaseFn = void (*)(void* ctx, unsigned index);

  explicit WorkerTeam(unsigned participants);
  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;
  ~WorkerTeam();

  [[nodiscard]] unsigned participants() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(ctx, i) for every i in [0, width); member k executes the
  /// indices congruent to k modulo participants(), the caller runs member
  /// 0's share in place. Returns when every index has run; an exception
  /// thrown by any index is rethrown here (first one wins) after the
  /// phase has fully drained.
  void run(unsigned width, PhaseFn fn, void* ctx);

  /// Convenience adapter: runs f(i) for every i in [0, width).
  template <typename F>
  void run_phase(unsigned width, F&& f) {
    auto thunk = [](void* ctx, unsigned i) { (*static_cast<std::decay_t<F>*>(ctx))(i); };
    run(width, thunk, const_cast<void*>(static_cast<const void*>(std::addressof(f))));
  }

 private:
  void worker_main(unsigned member);
  void execute_share(unsigned member);

  // Phase publication: the caller stores fn_/ctx_/width_, then bumps
  // epoch_ (seq_cst). Workers observe the bump (their loads are seq_cst
  // too) and run their share; the seq_cst total order is what makes the
  // sleeping_-vs-epoch handshake below miss-free. done_ counts finished
  // workers; the caller spins on it (it never parks).
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> done_{0};
  PhaseFn fn_{nullptr};
  void* ctx_{nullptr};
  unsigned width_{0};
  std::atomic<bool> stop_{false};

  // Parking: a worker that has spun through its budget registers in
  // sleeping_ under mu_ and waits; the caller notifies only when
  // sleeping_ != 0, so the common back-to-back-phase case takes no lock.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<unsigned> sleeping_{0};

  std::mutex error_mu_;
  std::exception_ptr first_error_;

  std::vector<std::thread> workers_;
};

}  // namespace detail

/// Conservative lookahead for a spatially partitioned medium: the minimum
/// cross-partition propagation delay (domain gap at the speed of light)
/// plus one MAC slot time. Any cross-partition effect of an event at time
/// t lands no earlier than t + lookahead, so every partition may execute
/// events with t < window_floor + lookahead without coordination.
[[nodiscard]] constexpr SimTime conservative_lookahead(double min_domain_gap_m,
                                                       SimTime mac_slot) {
  constexpr double kSpeedOfLightMps = 299'792'458.0;
  return SimTime::from_seconds(min_domain_gap_m / kSpeedOfLightMps) + mac_slot;
}

/// Partitioned discrete-event engine: N per-partition event queues advanced
/// in conservative time windows by a fixed worker team.
///
/// Each synchronization window picks the global minimum pending timestamp
/// `floor` and lets every partition execute its events with
/// `t < floor + lookahead` in parallel, one partition per team member at a
/// time. Cross-partition interactions are sent as timestamped messages
/// (`send()`), buffered in per-partition outboxes and drained at the window
/// barrier in the deterministic (time, source partition, sequence) order,
/// so the destination queue's contents — and therefore the entire run — are
/// bit-identical at any thread count, including `threads = 1`.
///
/// The conservative contract is enforced, not assumed: `send()` requires
/// the target timestamp to be at or after the current window's end
/// (i.e. at least `lookahead` past the window floor) and throws otherwise.
/// Intra-partition scheduling (`post_at` etc.) has no such restriction; it
/// may target any time >= the partition's local clock, exactly like the
/// serial `Scheduler`.
///
/// With zero-delay couplings (the instantaneous carrier-sense medium),
/// per-event lookahead degenerates to zero and this engine is still
/// useful through `parallel_phase()`: a serial event fans its
/// embarrassingly-parallel portion (per-receiver physics, partitioned by
/// spatial domain) across the same worker team between events. That is the
/// path the partitioned `dot11p::Medium` takes.
class PartitionedScheduler {
 public:
  using Callback = SmallFunction;

  struct Config {
    /// Number of event partitions (>= 1).
    std::uint32_t partitions{1};
    /// Team size incl. the calling thread; 0 = min(partitions, hardware).
    unsigned threads{0};
    /// Conservative window width; must be > 0. See conservative_lookahead().
    SimTime lookahead{SimTime::microseconds(13)};
  };

  explicit PartitionedScheduler(Config cfg);
  PartitionedScheduler(const PartitionedScheduler&) = delete;
  PartitionedScheduler& operator=(const PartitionedScheduler&) = delete;
  ~PartitionedScheduler();

  [[nodiscard]] std::uint32_t partitions() const {
    return static_cast<std::uint32_t>(parts_.size());
  }
  [[nodiscard]] unsigned threads() const { return team_->participants(); }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }

  /// Committed global time: every event strictly before now() has executed.
  [[nodiscard]] SimTime now() const { return now_; }
  /// The executing partition's local clock when called from inside an
  /// event; now() otherwise.
  [[nodiscard]] SimTime local_now() const;

  /// Schedules onto `partition`. Legal from outside the run loop, or from
  /// an event executing on that same partition; scheduling onto a *other*
  /// partition mid-event must go through send() and throws here.
  EventHandle schedule_at(std::uint32_t partition, SimTime when, Callback cb);
  void post_at(std::uint32_t partition, SimTime when, Callback cb);
  void post_in(std::uint32_t partition, SimTime delay, Callback cb);

  /// Cross-partition message from the currently executing event: delivered
  /// into partition `to` at time `when`, which must be >= the current
  /// window's end (the conservative-lookahead contract). Messages drain at
  /// the window barrier in (when, source partition, send sequence) order.
  /// Only legal while an event is executing.
  void send(std::uint32_t to, SimTime when, Callback cb);
  /// send() that returns a cancellation handle. The handle is safe to
  /// cancel from any partition; cancellation is deterministic when the
  /// cancel and the event are separated by at least one window barrier.
  EventHandle send_tracked(std::uint32_t to, SimTime when, Callback cb);

  /// Runs windows until every queue is empty (or `limit` events ran;
  /// the limit is checked at window boundaries, not per event). Returns
  /// the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances now() to the
  /// deadline even if queues still hold later events.
  std::size_t run_until(SimTime deadline);

  /// Fork-join helper on the engine's worker team: runs f(i) for each
  /// i in [0, width). Member k runs indices congruent to k; the caller
  /// participates. Must not be called from inside an engine window (the
  /// team is not reentrant); callable freely between runs or from a serial
  /// Scheduler event (the partitioned-medium path).
  template <typename F>
  void parallel_phase(unsigned width, F&& f) {
    team_->run_phase(width, std::forward<F>(f));
  }

  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t windows_executed() const { return windows_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_; }
  [[nodiscard]] std::size_t pending_events() const;

 private:
  struct Outgoing {
    SimTime when;
    std::uint32_t from;  // source partition: second key of the merge order
    std::uint32_t to;
    std::uint64_t seq;  // per-source send order: third key of the merge order
    Callback cb;
    std::shared_ptr<EventHandle::State> state;  // null on the untracked path
  };

  struct Partition {
    detail::EventQueue queue;
    SimTime local_now{SimTime::zero()};
    std::uint64_t executed{0};
    std::uint64_t out_seq{0};
    std::vector<Outgoing> outbox;
  };

  /// Runs windows while events with t <= deadline exist; soft event cap.
  std::size_t run_windows(SimTime deadline, std::size_t limit);
  void execute_partition_window(std::uint32_t pi, SimTime end, SimTime deadline);
  void drain_outboxes();
  void send_impl(std::uint32_t to, SimTime when, Callback&& cb,
                 std::shared_ptr<EventHandle::State> state);
  /// Validates the partition index, the mid-event cross-partition rule and
  /// the past-check for a direct (non-send) push targeting `when`.
  [[nodiscard]] Partition& checked_partition(std::uint32_t partition, SimTime when);
  /// Index of the partition the calling thread is executing for this
  /// engine, or UINT32_MAX when not inside an event.
  [[nodiscard]] std::uint32_t executing_partition() const;

  std::vector<std::unique_ptr<Partition>> parts_;
  std::unique_ptr<detail::WorkerTeam> team_;
  SimTime lookahead_;
  SimTime now_{SimTime::zero()};
  SimTime window_end_{SimTime::zero()};
  bool in_window_{false};
  std::uint64_t windows_{0};
  std::uint64_t messages_{0};
  std::vector<Outgoing> merge_scratch_;
};

}  // namespace rst::sim
