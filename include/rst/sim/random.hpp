#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "rst/sim/time.hpp"

namespace rst::sim {

/// Cheap counter-based generator for per-link draws on hot paths.
///
/// Unlike RandomStream (whose mt19937_64 costs ~2.5 kB of state and a long
/// seeding pass per construction), a CounterStream is two 64-bit words: a
/// key-derived base and a draw counter pushed through a splitmix64
/// finalizer. Constructing one per (tx, rx, sequence) link and throwing it
/// away after a couple of draws is what makes per-link randomness viable in
/// the medium's transmit path — draws depend only on the key, never on the
/// order links are visited in, so receiver culling cannot perturb them.
class CounterStream {
 public:
  /// Uniform in [0, 1).
  [[nodiscard]] double uniform01();
  [[nodiscard]] double normal(double mean, double stddev);
  /// Gamma with shape k and scale theta (mean = k*theta).
  [[nodiscard]] double gamma(double shape, double scale);
  [[nodiscard]] bool bernoulli(double p);

 private:
  friend class RandomStream;
  explicit CounterStream(std::uint64_t base) : base_{base} {}
  [[nodiscard]] std::uint64_t next_u64();

  std::uint64_t base_;
  std::uint64_t counter_{0};
};

/// Deterministic random stream derived from a (root seed, name) pair.
///
/// Every stochastic component in the testbed owns a named child stream, so
/// adding a new random consumer never perturbs the draws of existing ones
/// — a requirement for stable regression tests and paired ablations.
class RandomStream {
 public:
  RandomStream(std::uint64_t root_seed, std::string_view name);

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform01();
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  [[nodiscard]] double normal(double mean, double stddev);
  /// Normal truncated to be >= lo (re-draws; lo should be well within
  /// a few sigma of the mean).
  [[nodiscard]] double normal_min(double mean, double stddev, double lo);
  [[nodiscard]] double lognormal(double mu, double sigma);
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] bool bernoulli(double p);
  /// Gamma with shape k and scale theta (mean = k*theta).
  [[nodiscard]] double gamma(double shape, double scale);

  [[nodiscard]] SimTime uniform_time(SimTime lo, SimTime hi);
  [[nodiscard]] SimTime normal_time(SimTime mean, SimTime stddev, SimTime min = SimTime::zero());

  /// Derives a child stream; children of distinct names are independent.
  [[nodiscard]] RandomStream child(std::string_view name) const;

  /// Derives a lightweight counter-based child keyed by an integer (e.g. a
  /// hash of (tx MAC, rx MAC, frame sequence)). Distinct keys yield
  /// independent streams; the same key always yields the same draws,
  /// regardless of how many other children were derived in between.
  [[nodiscard]] CounterStream counter_child(std::uint64_t key) const;

  [[nodiscard]] std::uint64_t root_seed() const { return root_seed_; }

 private:
  RandomStream(std::uint64_t root_seed, std::uint64_t derived);
  std::uint64_t root_seed_;
  std::uint64_t derived_seed_;
  std::mt19937_64 engine_;
};

/// Stable 64-bit FNV-1a hash used for seed derivation.
[[nodiscard]] std::uint64_t stable_hash(std::string_view s) noexcept;

}  // namespace rst::sim
