#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "rst/sim/time.hpp"

namespace rst::sim {

/// Deterministic random stream derived from a (root seed, name) pair.
///
/// Every stochastic component in the testbed owns a named child stream, so
/// adding a new random consumer never perturbs the draws of existing ones
/// — a requirement for stable regression tests and paired ablations.
class RandomStream {
 public:
  RandomStream(std::uint64_t root_seed, std::string_view name);

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform01();
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  [[nodiscard]] double normal(double mean, double stddev);
  /// Normal truncated to be >= lo (re-draws; lo should be well within
  /// a few sigma of the mean).
  [[nodiscard]] double normal_min(double mean, double stddev, double lo);
  [[nodiscard]] double lognormal(double mu, double sigma);
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] bool bernoulli(double p);
  /// Gamma with shape k and scale theta (mean = k*theta).
  [[nodiscard]] double gamma(double shape, double scale);

  [[nodiscard]] SimTime uniform_time(SimTime lo, SimTime hi);
  [[nodiscard]] SimTime normal_time(SimTime mean, SimTime stddev, SimTime min = SimTime::zero());

  /// Derives a child stream; children of distinct names are independent.
  [[nodiscard]] RandomStream child(std::string_view name) const;

  [[nodiscard]] std::uint64_t root_seed() const { return root_seed_; }

 private:
  RandomStream(std::uint64_t root_seed, std::uint64_t derived);
  std::uint64_t root_seed_;
  std::uint64_t derived_seed_;
  std::mt19937_64 engine_;
};

/// Stable 64-bit FNV-1a hash used for seed derivation.
[[nodiscard]] std::uint64_t stable_hash(std::string_view s) noexcept;

}  // namespace rst::sim
