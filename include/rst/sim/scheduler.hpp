#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rst/sim/small_function.hpp"
#include "rst/sim/time.hpp"

namespace rst::sim {

namespace detail {

/// Free-list slab pool for event-handle state blocks. Nodes are recycled
/// instead of returned to the heap, so steady-state scheduling performs no
/// allocations once the pool is warm. The pool itself is owned via
/// `std::shared_ptr` by both the Scheduler and every allocator copy stored
/// in an outstanding control block, so handles may outlive the scheduler.
class EventStatePool {
 public:
  EventStatePool() = default;
  EventStatePool(const EventStatePool&) = delete;
  EventStatePool& operator=(const EventStatePool&) = delete;

  void* allocate(std::size_t n);
  void deallocate(void* p, std::size_t n) noexcept;

 private:
  struct Node {
    Node* next;
  };
  static constexpr std::size_t kSlabNodes = 256;

  std::size_t node_size_{0};  // fixed by the first allocation
  Node* free_{nullptr};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
};

template <typename T>
struct PoolAllocator {
  using value_type = T;

  std::shared_ptr<EventStatePool> pool;

  explicit PoolAllocator(std::shared_ptr<EventStatePool> p) : pool{std::move(p)} {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) : pool{o.pool} {}  // NOLINT

  T* allocate(std::size_t n) { return static_cast<T*>(pool->allocate(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { pool->deallocate(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAllocator<U>& o) const {
    return pool == o.pool;
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same pending event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();
  /// True if the event is still queued (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled{false};
    bool fired{false};
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
  std::shared_ptr<State> state_;
};

/// Deterministic discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which makes
/// whole-testbed runs bit-reproducible for a given seed. All components of
/// the testbed share one Scheduler; it is the single source of "now".
///
/// Hot-path design: callbacks are stored in a small-buffer-optimized
/// move-only wrapper (no heap allocation for typical captures), handle
/// state comes from a recycling slab pool, and the fire-and-forget
/// `post_at`/`post_in` path skips handle-state allocation entirely.
/// Cancelled entries are purged eagerly whenever they surface at the top
/// of the heap, so cancel-heavy workloads (EDCA backoff, DCC gates, CBF
/// timers) do not accumulate dead entries ahead of live ones.
class Scheduler {
 public:
  using Callback = SmallFunction;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `when`; `when` must be >= now().
  EventHandle schedule_at(SimTime when, Callback cb);
  /// Schedules `cb` after relative `delay` (>= 0).
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Fire-and-forget variants: no EventHandle is produced, so no handle
  /// state is allocated. Use when the caller never cancels the event.
  void post_at(SimTime when, Callback cb);
  void post_in(SimTime delay, Callback cb);

  /// Runs events until the queue is empty or `limit` events ran.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances now() to
  /// deadline even if the queue still holds later events.
  std::size_t run_until(SimTime deadline);

  /// Executes exactly the next pending event (if any). Returns false when
  /// the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// Cancelled entries discarded from the top of the heap so far.
  [[nodiscard]] std::uint64_t purged_events() const { return purged_; }

 private:
  /// Callback + handle state live out-of-line in recycled slots so the
  /// heap entries stay trivially copyable: sifting moves 24-byte PODs
  /// instead of invoking a callback-move per swap.
  struct Slot {
    Callback cb;
    std::shared_ptr<EventHandle::State> state;  // null on the post_* path
    Slot* next_free{nullptr};
  };
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Slot* slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  static constexpr std::size_t kSlotSlab = 128;

  void push_entry(SimTime when, Callback&& cb, std::shared_ptr<EventHandle::State> state);
  /// The single pop path: discards cancelled entries at the heap top.
  void purge_cancelled_top();
  Slot* acquire_slot(Callback&& cb, std::shared_ptr<EventHandle::State>&& state);
  void release_slot(Slot* s) noexcept;

  std::vector<Entry> heap_;  // binary min-heap via std::push_heap/pop_heap
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::uint64_t purged_{0};
  std::vector<std::unique_ptr<Slot[]>> slot_slabs_;
  Slot* free_slots_{nullptr};
  std::shared_ptr<detail::EventStatePool> pool_;
};

}  // namespace rst::sim
