#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "rst/sim/time.hpp"

namespace rst::sim {

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same pending event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();
  /// True if the event is still queued (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled{false};
    bool fired{false};
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
  std::shared_ptr<State> state_;
};

/// Deterministic discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which makes
/// whole-testbed runs bit-reproducible for a given seed. All components of
/// the testbed share one Scheduler; it is the single source of "now".
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `when`; `when` must be >= now().
  EventHandle schedule_at(SimTime when, Callback cb);
  /// Schedules `cb` after relative `delay` (>= 0).
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Runs events until the queue is empty or `limit` events ran.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances now() to
  /// deadline even if the queue still holds later events.
  std::size_t run_until(SimTime deadline);

  /// Executes exactly the next pending event (if any). Returns false when
  /// the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
};

}  // namespace rst::sim
