#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "rst/sim/small_function.hpp"
#include "rst/sim/time.hpp"

namespace rst::sim {

namespace detail {

/// Free-list slab pool for event-handle state blocks. Nodes are recycled
/// instead of returned to the heap, so steady-state scheduling performs no
/// allocations once the pool is warm. The pool itself is owned via
/// `std::shared_ptr` by both the Scheduler and every allocator copy stored
/// in an outstanding control block, so handles may outlive the scheduler.
class EventStatePool {
 public:
  EventStatePool() = default;
  EventStatePool(const EventStatePool&) = delete;
  EventStatePool& operator=(const EventStatePool&) = delete;

  void* allocate(std::size_t n);
  void deallocate(void* p, std::size_t n) noexcept;

 private:
  struct Node {
    Node* next;
  };
  static constexpr std::size_t kSlabNodes = 256;

  std::size_t node_size_{0};  // fixed by the first allocation
  Node* free_{nullptr};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
};

template <typename T>
struct PoolAllocator {
  using value_type = T;

  std::shared_ptr<EventStatePool> pool;

  explicit PoolAllocator(std::shared_ptr<EventStatePool> p) : pool{std::move(p)} {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) : pool{o.pool} {}  // NOLINT

  T* allocate(std::size_t n) { return static_cast<T*>(pool->allocate(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { pool->deallocate(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAllocator<U>& o) const {
    return pool == o.pool;
  }
};

class EventQueue;

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same pending event. A default-constructed handle is inert.
///
/// The flags are relaxed atomics so a handle may be cancelled from another
/// thread (another partition of a PartitionedScheduler) without a data
/// race. Cross-thread cancellation is only *deterministic* when ordered by
/// the partition engine's window barriers: a cancel racing the event's own
/// execution window may or may not land before the event fires.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();
  /// True if the event is still queued (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  friend class PartitionedScheduler;
  friend class detail::EventQueue;
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<bool> fired{false};
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
  std::shared_ptr<State> state_;
};

namespace detail {

/// One deterministic (time, seq)-ordered event queue: the storage half of
/// the serial Scheduler, split out so a partitioned engine can own one
/// queue per partition while the serial scheduler's behavior stays exactly
/// as it was. Events at equal timestamps pop in push order (FIFO via the
/// monotone per-queue sequence — the `seq` of the deterministic
/// (time, partition, seq) merge rule). Not thread-safe: a queue is owned
/// by exactly one executor at a time.
///
/// Hot-path design (unchanged from the pre-split Scheduler): callbacks are
/// stored in a small-buffer-optimized move-only wrapper, handle state comes
/// from a recycling slab pool, heap entries are trivially-copyable 24-byte
/// PODs, and cancelled entries are purged eagerly whenever they surface at
/// the front.
class EventQueue {
 public:
  using Callback = SmallFunction;

  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// Allocates handle state from the recycling pool; the pool is shared
  /// with the control block so handles may outlive the queue.
  [[nodiscard]] std::shared_ptr<EventHandle::State> make_state();

  /// Pushes an entry; `state` may be null (fire-and-forget path).
  void push(SimTime when, Callback&& cb, std::shared_ptr<EventHandle::State> state);

  /// Discards cancelled entries at the front of the heap.
  void purge_cancelled_front();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// Timestamp of the front entry; callers purge first so the front is live.
  [[nodiscard]] SimTime front_time() const { return heap_.front().when; }

  /// Pops the front entry after purging: marks it fired and moves its
  /// callback out into `cb`, its timestamp into `when`. Returns false when
  /// the queue is empty (after purging).
  bool pop(SimTime& when, Callback& cb);

  /// Cancelled entries discarded from the front so far.
  [[nodiscard]] std::uint64_t purged() const { return purged_; }

 private:
  /// Callback + handle state live out-of-line in recycled slots so the
  /// heap entries stay trivially copyable: sifting moves 24-byte PODs
  /// instead of invoking a callback-move per swap.
  struct Slot {
    Callback cb;
    std::shared_ptr<EventHandle::State> state;  // null on the post_* path
    Slot* next_free{nullptr};
  };
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Slot* slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  static constexpr std::size_t kSlotSlab = 128;

  Slot* acquire_slot(Callback&& cb, std::shared_ptr<EventHandle::State>&& state);
  void release_slot(Slot* s) noexcept;

  std::vector<Entry> heap_;  // binary min-heap via std::push_heap/pop_heap
  std::uint64_t next_seq_{0};
  std::uint64_t purged_{0};
  std::vector<std::unique_ptr<Slot[]>> slot_slabs_;
  Slot* free_slots_{nullptr};
  std::shared_ptr<EventStatePool> pool_;
};

}  // namespace detail

/// Deterministic discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which makes
/// whole-testbed runs bit-reproducible for a given seed. All components of
/// the testbed share one Scheduler; it is the single source of "now".
///
/// Hot-path design: callbacks are stored in a small-buffer-optimized
/// move-only wrapper (no heap allocation for typical captures), handle
/// state comes from a recycling slab pool, and the fire-and-forget
/// `post_at`/`post_in` path skips handle-state allocation entirely.
/// Cancelled entries are purged eagerly whenever they surface at the top
/// of the heap, so cancel-heavy workloads (EDCA backoff, DCC gates, CBF
/// timers) do not accumulate dead entries ahead of live ones.
///
/// The queue itself lives in `detail::EventQueue` (shared with the
/// partitioned engine); this class adds the clock, the executed-event
/// accounting and the run loops.
class Scheduler {
 public:
  using Callback = SmallFunction;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `when`; `when` must be >= now().
  EventHandle schedule_at(SimTime when, Callback cb);
  /// Schedules `cb` after relative `delay` (>= 0).
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Fire-and-forget variants: no EventHandle is produced, so no handle
  /// state is allocated. Use when the caller never cancels the event.
  void post_at(SimTime when, Callback cb);
  void post_in(SimTime delay, Callback cb);

  /// Runs events until the queue is empty or `limit` events ran.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs all events with time <= deadline, then advances now() to
  /// deadline even if the queue still holds later events.
  std::size_t run_until(SimTime deadline);

  /// Executes exactly the next pending event (if any). Returns false when
  /// the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// Cancelled entries discarded from the top of the heap so far.
  [[nodiscard]] std::uint64_t purged_events() const { return queue_.purged(); }

 private:
  void check_not_past(SimTime when) const;

  detail::EventQueue queue_;
  SimTime now_{SimTime::zero()};
  std::uint64_t executed_{0};
};

}  // namespace rst::sim
