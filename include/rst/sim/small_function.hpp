#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rst::sim {

/// Move-only `void()` callable with small-buffer optimization.
///
/// The discrete-event scheduler stores one callback per pending event; with
/// `std::function` every capture larger than the library's tiny SBO (16
/// bytes on libstdc++) costs a heap allocation per scheduled event. Almost
/// all testbed callbacks capture a `this` pointer plus a few scalars, so a
/// 48-byte inline buffer absorbs them without touching the heap. Larger
/// captures (e.g. a forwarded GeoNetworking packet) transparently fall back
/// to heap storage with identical semantics.
class SmallFunction {
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFunction> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vtable_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  SmallFunction(SmallFunction&& o) noexcept { move_from(o); }
  SmallFunction& operator=(SmallFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;
  ~SmallFunction() { reset(); }

  void operator()() { vtable_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs into `dst` (when non-null) and destroys `src`.
    void (*relocate)(void* src, void* dst);
  };

  template <typename Fn>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* src, void* dst) {
      auto* f = static_cast<Fn*>(src);
      if (dst) ::new (dst) Fn(std::move(*f));
      f->~Fn();
    }
  };
  template <typename Fn>
  struct HeapOps {
    static void invoke(void* p) { (**static_cast<Fn**>(p))(); }
    static void relocate(void* src, void* dst) {
      auto** pp = static_cast<Fn**>(src);
      if (dst) {
        ::new (dst) Fn*(*pp);
      } else {
        delete *pp;
      }
    }
  };
  template <typename Fn>
  static constexpr VTable inline_vtable{&InlineOps<Fn>::invoke, &InlineOps<Fn>::relocate};
  template <typename Fn>
  static constexpr VTable heap_vtable{&HeapOps<Fn>::invoke, &HeapOps<Fn>::relocate};

  void reset() {
    if (vtable_) {
      vtable_->relocate(buf_, nullptr);
      vtable_ = nullptr;
    }
  }
  void move_from(SmallFunction& o) noexcept {
    if (o.vtable_) {
      o.vtable_->relocate(o.buf_, buf_);
      vtable_ = o.vtable_;
      o.vtable_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const VTable* vtable_{nullptr};
};

}  // namespace rst::sim
