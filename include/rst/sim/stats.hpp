#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rst::sim {

/// Welford online accumulator for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Population variance (n denominator) — the paper's Table III reports
  /// variance of 7 samples computed this way (0.0022).
  [[nodiscard]] double population_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{0};
  double max_{0};
};

/// Empirical distribution function over a stored sample set.
/// Used to regenerate the paper's Fig. 11 (EDF of total delay samples).
class Edf {
 public:
  explicit Edf(std::vector<double> samples);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// F(x) = fraction of samples <= x.
  [[nodiscard]] double at(double x) const;
  /// q in [0,1]; nearest-rank quantile.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& sorted_samples() const { return samples_; }
  /// Fraction of samples in [lo, hi].
  [[nodiscard]] double fraction_in(double lo, double hi) const;

  /// Renders the step function as (x, F(x)) pairs, one per distinct sample.
  [[nodiscard]] std::vector<std::pair<double, double>> steps() const;

 private:
  std::vector<double> samples_;  // sorted ascending
};

/// Fixed-width histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// ASCII rendering used by bench report output.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
  std::size_t underflow_{0};
  std::size_t overflow_{0};
};

/// Parametric fits for the future-work latency-CDF modelling (paper §V:
/// "model it with an appropriate distribution so that it can be used by
/// the community"). Moment-matched fits plus a Kolmogorov–Smirnov score.
struct DistributionFit {
  std::string family;  // "normal" | "lognormal" | "gamma" | "shifted-exponential"
  double p1{0};        // mean / mu / shape / shift
  double p2{0};        // stddev / sigma / scale / mean-shift
  double ks_statistic{0};

  /// CDF of the fitted distribution at x.
  [[nodiscard]] double cdf(double x) const;
};

/// Fits all supported families by method of moments and returns them sorted
/// by ascending KS statistic (best first). Requires >= 2 samples.
[[nodiscard]] std::vector<DistributionFit> fit_distributions(const std::vector<double>& samples);

/// Percentile-bootstrap confidence interval for the mean of `samples`.
struct ConfidenceInterval {
  double lower{0};
  double upper{0};
  double point{0};  ///< sample mean
};
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                                   double confidence = 0.95,
                                                   int resamples = 2000,
                                                   std::uint64_t seed = 1);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);
/// Regularized lower incomplete gamma P(a, x) (series/continued fraction).
[[nodiscard]] double gamma_p(double a, double x);

}  // namespace rst::sim
