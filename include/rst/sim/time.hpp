#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace rst::sim {

/// Simulation time point / duration in integer nanoseconds.
///
/// A single strong type is used for both points and durations (as the
/// simulation origin is always t=0); arithmetic never overflows within
/// ~292 years of simulated time. All stack components express timing in
/// SimTime so there is exactly one clock domain in the event engine;
/// per-node wall clocks (NTP model) are layered on top in rst::middleware.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t ns) { return SimTime{ns}; }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t us) { return SimTime{us * 1'000}; }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t ms) { return SimTime{ms * 1'000'000}; }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000'000}; }
  /// Fractional seconds, rounded to the nearest nanosecond.
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr SimTime from_milliseconds(double ms) { return from_seconds(ms * 1e-3); }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_microseconds() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }
  [[nodiscard]] constexpr SimTime operator-() const { return SimTime{-ns_}; }
  [[nodiscard]] friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  [[nodiscard]] friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ns_ * k}; }
  [[nodiscard]] friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ns_ / b.ns_; }
  [[nodiscard]] friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.ns_ / k}; }
  [[nodiscard]] friend constexpr SimTime operator%(SimTime a, SimTime b) { return SimTime{a.ns_ % b.ns_}; }

  /// "12.345ms"-style rendering used by traces and experiment reports.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) { return SimTime::nanoseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_us(unsigned long long v) { return SimTime::microseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_ms(unsigned long long v) { return SimTime::milliseconds(static_cast<std::int64_t>(v)); }
constexpr SimTime operator""_s(unsigned long long v) { return SimTime::seconds(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace rst::sim
