#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "rst/sim/time.hpp"

namespace rst::sim {

/// A single trace record: what happened, where, when.
struct TraceRecord {
  SimTime when;
  std::string component;
  std::string message;
};

/// In-memory event trace shared by all testbed components.
///
/// The paper instruments the physical testbed with NTP-synchronised
/// timestamps at each stage (Fig. 4 steps); the Trace plays the same role
/// here and is what the experiment harness mines for interval measurements.
class Trace {
 public:
  void record(SimTime when, std::string_view component, std::string_view message);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Echo records to stderr as they arrive (useful in examples).
  void set_echo(bool on) { echo_ = on; }

  /// First record whose component and message both contain the given
  /// substrings, searching records at or after `from`; nullptr if none.
  [[nodiscard]] const TraceRecord* find(std::string_view component_substr,
                                        std::string_view message_substr,
                                        SimTime from = SimTime::zero()) const;

  /// All records matching the filter (see find()).
  [[nodiscard]] std::vector<const TraceRecord*> find_all(std::string_view component_substr,
                                                         std::string_view message_substr) const;

  /// CSV rendering (time_ms,component,message) for offline analysis;
  /// quotes and commas in messages are escaped per RFC 4180.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<TraceRecord> records_;
  bool echo_{false};
};

}  // namespace rst::sim
