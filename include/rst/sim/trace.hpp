#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "rst/sim/time.hpp"
#include "rst/sim/trace_event.hpp"

namespace rst::sim {

/// A single trace record: what happened, where, when.
struct TraceRecord {
  SimTime when;
  std::string component;
  std::string message;
};

/// In-memory event trace shared by all testbed components.
///
/// The paper instruments the physical testbed with NTP-synchronised
/// timestamps at each stage (Fig. 4 steps); the Trace plays the same role
/// here and is what the experiment harness mines for interval measurements.
///
/// Two recording paths exist:
///  * `record_event` / `span_begin` / `span_end` — typed POD events into a
///    pre-sized ring buffer. One allocation the first time an event is
///    recorded (the buffer), zero thereafter; when the buffer is full new
///    events are counted in `events_dropped()` and discarded, so the
///    earliest (pipeline-critical) stages are always retained.
///  * `record` — the legacy string path, kept as a compatibility layer.
///
/// String queries (`find`/`find_all`/`records`/`to_csv`) see BOTH paths:
/// typed events are rendered into their legacy component/message form
/// lazily, on query only, so the hot recording path never touches strings.
class Trace {
 public:
  // --- Typed zero-allocation path ---

  /// Records a typed instant event. Allocation-free at steady state.
  void record_event(SimTime when, Stage stage, std::uint32_t station = 0, std::uint64_t a = 0,
                    double value = 0.0, std::uint16_t detail = 0) {
    push_event(when, stage, Phase::Instant, station, a, value, detail);
  }
  /// Span-style stage markers: begin/end pairs matched by (stage, a); the
  /// Chrome exporter renders them as async duration events.
  void span_begin(SimTime when, Stage stage, std::uint32_t station = 0, std::uint64_t a = 0,
                  double value = 0.0, std::uint16_t detail = 0) {
    push_event(when, stage, Phase::Begin, station, a, value, detail);
  }
  void span_end(SimTime when, Stage stage, std::uint32_t station = 0, std::uint64_t a = 0,
                double value = 0.0, std::uint16_t detail = 0) {
    push_event(when, stage, Phase::End, station, a, value, detail);
  }

  /// Typed events in recording order (the mining surface for the
  /// experiment harness — no strings, no substring matching).
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// First event of `stage` at or after `from`; nullptr if none.
  [[nodiscard]] const TraceEvent* find_event(Stage stage, SimTime from = SimTime::zero()) const;
  /// As above, additionally filtered on the emitting station.
  [[nodiscard]] const TraceEvent* find_event(Stage stage, SimTime from,
                                             std::uint32_t station) const;
  /// All events of `stage`, in recording order.
  [[nodiscard]] std::vector<const TraceEvent*> find_all_events(Stage stage) const;

  /// Events discarded because the ring buffer was full.
  [[nodiscard]] std::uint64_t events_dropped() const { return events_dropped_; }
  /// Resizes the typed buffer capacity. Only effective before the first
  /// recorded event (the buffer is allocated once, on first use).
  void set_event_capacity(std::size_t capacity) { event_capacity_ = capacity; }
  [[nodiscard]] std::size_t event_capacity() const { return event_capacity_; }

  /// Chrome trace_event-format JSON (the "JSON Object Format" with a
  /// traceEvents array): open in Perfetto or chrome://tracing. Typed
  /// instants become "i" events, span begin/end pairs become async
  /// "b"/"e" events matched by id, legacy string records become instants
  /// carrying the message in args. Timestamps are microseconds.
  [[nodiscard]] std::string to_chrome_trace_json() const;

  // --- Legacy string path (compatibility layer) ---

  void record(SimTime when, std::string_view component, std::string_view message);

  /// All records — legacy strings plus typed events rendered to their
  /// legacy component/message form — in recording order. Materialised
  /// lazily; the reference is invalidated by the next recording.
  [[nodiscard]] const std::vector<TraceRecord>& records() const;
  void clear();

  /// Echo records to stderr as they arrive (useful in examples).
  void set_echo(bool on) { echo_ = on; }

  /// First record whose component and message both contain the given
  /// substrings, searching records at or after `from`; nullptr if none.
  [[nodiscard]] const TraceRecord* find(std::string_view component_substr,
                                        std::string_view message_substr,
                                        SimTime from = SimTime::zero()) const;

  /// All records matching the filter (see find()).
  [[nodiscard]] std::vector<const TraceRecord*> find_all(std::string_view component_substr,
                                                         std::string_view message_substr) const;

  /// CSV rendering (time_ms,component,message) for offline analysis;
  /// quotes and commas in messages are escaped per RFC 4180.
  [[nodiscard]] std::string to_csv() const;

 private:
  void push_event(SimTime when, Stage stage, Phase phase, std::uint32_t station, std::uint64_t a,
                  double value, std::uint16_t detail);
  /// Rebuilds the merged legacy view (strings + rendered typed events,
  /// ordered by global recording sequence) if stale.
  const std::vector<TraceRecord>& merged() const;

  std::vector<TraceEvent> events_;
  std::size_t event_capacity_{16384};
  std::uint64_t events_dropped_{0};
  std::uint32_t next_seq_{0};

  std::vector<TraceRecord> records_;
  std::vector<std::uint32_t> record_seqs_;  // recording seq of each string record

  mutable std::vector<TraceRecord> merged_;
  mutable bool merged_dirty_{false};
  bool echo_{false};
};

}  // namespace rst::sim
