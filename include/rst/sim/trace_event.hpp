#pragma once

#include <cstdint>
#include <string_view>

#include "rst/sim/time.hpp"

namespace rst::sim {

/// Instrumented stages of the testbed, centred on the paper's Fig. 4
/// detection→actuation pipeline (camera frame → YOLO → hazard decision →
/// trigger_denm → RSU stack → air → OBU stack → poll → actuation) plus the
/// supporting V2X machinery (CAM traffic, GeoNet forwarding, keep-alive,
/// cellular bearer, on-board AEB).
enum class Stage : std::uint8_t {
  CameraFrame,      ///< roadside camera frame captured (span: capture→inference done)
  YoloDetection,    ///< YOLO inference output published to the edge bus
  HazardDecision,   ///< hazard service decided to warn (action point / CPA)
  TriggerDenm,      ///< edge node issued (or failed) the RSU /trigger_denm request
  DenmTx,           ///< DEN basic service transmitted a DENM
  DenmRx,           ///< DEN basic service received a DENM
  KafForward,       ///< keep-alive forwarding retransmission
  GnForward,        ///< GeoNet router re-broadcast a packet (greedy / CBF)
  DenmPoll,         ///< OBU app /request_denm poll (span: request→response)
  DenmFetch,        ///< OBU app fetched a DENM from a poll response
  InboxDrop,        ///< OpenC2X inbox overflow: oldest pending DENM dropped
  EmergencyStop,    ///< motion planner latched an emergency stop
  PowerCutCommand,  ///< ECU wrote the power-cut command to the actuators (step 5)
  PowerCutApplied,  ///< ESC applied the cut at the next PWM edge
  CamTx,            ///< CA basic service transmitted a CAM
  CamRx,            ///< CA basic service received a CAM
  ModemDenmRx,      ///< cellular bearer: DENM delivered to the vehicle modem
  AebTrigger,       ///< on-board AEB fallback fired
  FaultWindow,        ///< fault-plan clause window (span: activation→recovery)
  WatchdogDegraded,   ///< liveness watchdog lost infrastructure contact
  WatchdogRecovered,  ///< liveness watchdog saw polling resume
  CampaignAdmitted,   ///< campaign server admitted a submission (value = queue depth)
  CampaignRejected,   ///< campaign server shed a submission (detail: kCampaignRejected*)
  CampaignTrial,      ///< one campaign trial resolved (a = content key, detail: hit/miss)
  StoreCompaction,    ///< result-store compaction pass (value = bytes reclaimed)
  CpmTx,              ///< CP service transmitted a CPM (value = object count)
  CpmRx,              ///< CP service received a CPM (a = source station)
  CpmFusion,          ///< remote percept fused into the local LDM (a = object id)
};

/// Chrome trace-event phase of a typed record: a point event or one end of
/// a span (exported as async begin/end, matched by `TraceEvent::a`).
enum class Phase : std::uint8_t { Instant, Begin, End };

/// `TraceEvent::detail` values for Stage::HazardDecision.
inline constexpr std::uint16_t kHazardActionPoint = 0;  ///< value = estimated distance (m)
inline constexpr std::uint16_t kHazardCpaStation = 1;   ///< value = t_cpa (s)
inline constexpr std::uint16_t kHazardCpaObject = 2;    ///< value = t_cpa (s)
inline constexpr std::uint16_t kHazardFusedPercept = 3; ///< value = t_cpa (s), CPM-fused object
/// `TraceEvent::detail` values for Stage::TriggerDenm.
inline constexpr std::uint16_t kTriggerIssued = 0;
inline constexpr std::uint16_t kTriggerFailed = 1;
/// `TraceEvent::detail` bit for Stage::DenmTx / Stage::DenmRx.
inline constexpr std::uint16_t kDenmTermination = 1;
/// `TraceEvent::detail` values for Stage::CampaignRejected.
inline constexpr std::uint16_t kCampaignRejectedQueueFull = 0;
inline constexpr std::uint16_t kCampaignRejectedDropOldest = 1;
/// `TraceEvent::detail` values for Stage::CampaignTrial.
inline constexpr std::uint16_t kCampaignTrialMiss = 0;
inline constexpr std::uint16_t kCampaignTrialHit = 1;

/// One typed trace record: a small POD written into the Trace's pre-sized
/// ring buffer — no strings, no allocation on the recording path. The
/// stage identifies the emitting component; `station`/`a`/`value`/`detail`
/// are stage-specific payloads (see the call sites).
struct TraceEvent {
  SimTime when{};
  std::uint64_t a{0};      ///< packed ActionID / object id / frame number / …
  double value{0.0};       ///< distance (m) / t_cpa (s) / count / …
  std::uint32_t seq{0};    ///< global recording order (filled by Trace)
  std::uint32_t station{0};///< emitting station id (0 when not station-bound)
  std::uint16_t detail{0}; ///< stage-specific discriminator / flags
  Stage stage{Stage::CameraFrame};
  Phase phase{Phase::Instant};
};

/// Stable display name of a stage (also the Chrome trace event name).
[[nodiscard]] std::string_view stage_name(Stage stage);

/// Packs an ActionID into TraceEvent::a: (originating_station << 16) | seq.
[[nodiscard]] constexpr std::uint64_t pack_action(std::uint32_t originating_station,
                                                  std::uint16_t sequence_number) {
  return (static_cast<std::uint64_t>(originating_station) << 16) | sequence_number;
}
[[nodiscard]] constexpr std::uint32_t action_station(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 16);
}
[[nodiscard]] constexpr std::uint16_t action_sequence(std::uint64_t packed) {
  return static_cast<std::uint16_t>(packed & 0xffff);
}

}  // namespace rst::sim
