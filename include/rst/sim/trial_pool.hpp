#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rst::sim {

/// Fixed-size worker pool for fanning independent, index-seeded trials out
/// across threads. The intended shape is Monte-Carlo sweeps: N tasks, each
/// owning its own simulation state (a fresh TestbedScenario/Scheduler), so
/// the only shared object is the pool itself.
///
/// Tasks are claimed by index under the pool mutex rather than an atomic
/// counter — each task is a whole simulation run, so claim contention is
/// negligible and every shared field stays mutex-guarded, which keeps the
/// pool trivially clean under ThreadSanitizer.
///
/// Determinism contract: task `i` receives its index regardless of which
/// worker runs it or in what order tasks finish, so writing task i's output
/// to slot i (what `map()` does) yields results in index order, independent
/// of the thread count.
class TrialPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (at least 1).
  explicit TrialPool(unsigned threads = 0);
  ~TrialPool();
  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  [[nodiscard]] unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for every i in [0, n) across the workers and blocks until
  /// all n tasks have finished. The first exception thrown by a task is
  /// captured and rethrown here after the batch drains (remaining tasks
  /// still run); the pool stays usable for further batches. Not reentrant:
  /// calling run_indexed from inside a task deadlocks.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Maps fn over [0, n) and returns the results in index order.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(std::is_default_constructible_v<R>,
                  "TrialPool::map needs a default-constructible result type");
    std::vector<R> out(n);
    run_indexed(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;  ///< signalled on new batch / shutdown
  std::condition_variable cv_done_;  ///< signalled when a batch completes

  // Batch state, all guarded by mu_.
  std::uint64_t generation_{0};  ///< bumped per batch; stale workers detect it
  std::size_t batch_n_{0};
  std::size_t next_index_{0};
  std::size_t completed_{0};
  const std::function<void(std::size_t)>* batch_fn_{nullptr};
  std::exception_ptr first_error_;
  bool stop_{false};
};

}  // namespace rst::sim
