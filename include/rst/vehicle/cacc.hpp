#pragma once

#include <optional>
#include <string>

#include "rst/its/facilities/ca_basic_service.hpp"
#include "rst/sim/trace.hpp"
#include "rst/vehicle/dynamics.hpp"

namespace rst::vehicle {

struct CaccConfig {
  /// Constant-time-gap policy: desired gap = standstill + headway * v.
  double standstill_gap_m{0.6};
  double headway_s{0.6};
  /// Gap-and-speed feedback gains.
  double gap_gain{1.2};
  double speed_gain{0.8};
  /// Throttle feed-forward around the rolling-resistance equilibrium.
  double cruise_throttle{0.05};
  sim::SimTime control_period{sim::SimTime::milliseconds(50)};
  /// If no CAM from the leader arrives for this long, fail safe: coast.
  sim::SimTime leader_timeout{sim::SimTime::milliseconds(1500)};
};

/// Cooperative Adaptive Cruise Control follower: regulates the gap to the
/// vehicle ahead using the predecessor's CAMs (position + speed) — the
/// control loop a connected platoon (paper §V future work) runs on top of
/// the awareness service. Longitudinal only; the platoon drives a straight
/// lane. Latches off permanently once the vehicle's power is cut.
class CaccController {
 public:
  using Config = CaccConfig;

  CaccController(sim::Scheduler& sched, VehicleDynamics& dynamics, Config config = {},
                 sim::Trace* trace = nullptr, std::string name = "cacc");
  ~CaccController();
  CaccController(const CaccController&) = delete;
  CaccController& operator=(const CaccController&) = delete;

  void start();
  void stop();

  /// Feed of the predecessor's CAMs (wire to the OBU's CA callback).
  void on_leader_cam(const its::Cam& cam, geo::Vec2 leader_position);

  [[nodiscard]] bool leader_valid() const;
  [[nodiscard]] double current_gap_m() const;
  [[nodiscard]] std::uint64_t control_updates() const { return updates_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  VehicleDynamics& dynamics_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;

  struct LeaderState {
    geo::Vec2 position{};
    double speed_mps{0};
    sim::SimTime stamp{};
  };
  std::optional<LeaderState> leader_;
  bool running_{false};
  sim::EventHandle timer_;
  std::uint64_t updates_{0};
};

}  // namespace rst::vehicle
