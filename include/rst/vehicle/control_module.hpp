#pragma once

#include <string>

#include "rst/middleware/message_bus.hpp"
#include "rst/middleware/ntp.hpp"
#include "rst/sim/trace.hpp"
#include "rst/vehicle/dynamics.hpp"
#include "rst/vehicle/motion_planner.hpp"

namespace rst::vehicle {

struct ControlModuleConfig {
  /// USART transfer + MCU handling.
  sim::SimTime usart_latency{sim::SimTime::microseconds(250)};
  sim::SimTime usart_jitter{sim::SimTime::microseconds(150)};
  /// PWM refresh period of the ESC/servo signal (100 Hz).
  sim::SimTime pwm_period{sim::SimTime::milliseconds(10)};
  /// Odometry publication period.
  sim::SimTime odometry_period{sim::SimTime::milliseconds(20)};
};

/// The Teensy MCU bridge of the paper's hardware architecture: receives
/// DriveCommands over the bus (ROS topic), forwards them over USART and
/// latches them into the PWM generator driving the ESC and servo.
///
/// The step-5 instant of the paper's measurement chain ("the vehicle ECU
/// registers the time at which a command is sent to the physical
/// actuators") is traced here at the USART write.
class ControlModule {
 public:
  using Config = ControlModuleConfig;

  ControlModule(sim::Scheduler& sched, middleware::MessageBus& bus, VehicleDynamics& dynamics,
                sim::RandomStream rng, Config config = {}, sim::Trace* trace = nullptr,
                std::string name = "control", const middleware::NtpClock* clock = nullptr);
  ~ControlModule();
  ControlModule(const ControlModule&) = delete;
  ControlModule& operator=(const ControlModule&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t commands_applied() const { return applied_; }

 private:
  void on_command(const DriveCommand& cmd);
  void publish_odometry();
  /// Next PWM latch edge at or after `t`.
  [[nodiscard]] sim::SimTime next_pwm_edge(sim::SimTime t) const;

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  VehicleDynamics& dynamics_;
  sim::RandomStream rng_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;
  const middleware::NtpClock* clock_;
  bool running_{false};
  sim::EventHandle odometry_timer_;
  std::uint64_t applied_{0};
};

}  // namespace rst::vehicle
