#pragma once

#include "rst/geo/vec2.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"

namespace rst::vehicle {

/// Physical parameters of the 1/10-scale vehicle (Traxxas Rally chassis of
/// the CopaDrive/F1Tenth platform the paper uses).
struct VehicleParams {
  double mass_kg{3.5};
  double wheelbase_m{0.325};
  double length_m{0.53};  // paper: "approximately 53 centimetres"
  double width_m{0.30};
  /// Peak tractive force of the brushless motor through the drivetrain.
  double max_motor_force_n{12.0};
  /// Rolling resistance coefficient (rubber treaded tyres on lab floor).
  double rolling_resistance{0.015};
  /// Aerodynamic term c_d * A * rho / 2 (negligible at scale speeds).
  double drag_coefficient{0.05};
  /// Deceleration from drivetrain drag + motor back-EMF once the ESC cuts
  /// power ("power to the wheels is cut" in the paper — the robot has no
  /// friction brakes; it coasts down on drivetrain losses). Calibrated so
  /// the detection-to-halt distance matches the paper's Table III.
  double power_cut_decel_mps2{2.45};
  /// Maximum steering angle of the servo.
  double max_steer_rad{0.35};
  /// Physics integration step.
  sim::SimTime tick{sim::SimTime::milliseconds(2)};
};

/// Longitudinal + kinematic-bicycle vehicle model, integrated on the
/// simulation scheduler.
class VehicleDynamics {
 public:
  VehicleDynamics(sim::Scheduler& sched, VehicleParams params, sim::RandomStream rng);
  ~VehicleDynamics();
  VehicleDynamics(const VehicleDynamics&) = delete;
  VehicleDynamics& operator=(const VehicleDynamics&) = delete;

  /// Places the vehicle and starts/continues integration.
  void reset(geo::Vec2 position, double heading_rad, double speed_mps = 0.0);
  void start();
  void stop();

  /// Actuator inputs (what the Teensy/ESC applies).
  void set_throttle(double throttle01);
  void set_steering(double angle_rad);
  /// ESC power interruption: throttle forced to zero until reset().
  void cut_power();
  [[nodiscard]] bool power_cut() const { return power_cut_; }

  [[nodiscard]] geo::Vec2 position() const { return position_; }
  [[nodiscard]] double heading_rad() const { return heading_; }
  [[nodiscard]] double speed_mps() const { return speed_; }
  [[nodiscard]] double acceleration_mps2() const { return last_accel_; }
  [[nodiscard]] bool stopped() const { return speed_ <= 1e-3; }
  [[nodiscard]] double odometer_m() const { return odometer_; }
  [[nodiscard]] const VehicleParams& params() const { return params_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  VehicleParams params_;
  sim::RandomStream rng_;

  geo::Vec2 position_{};
  double heading_{0};
  double speed_{0};
  double odometer_{0};
  double last_accel_{0};
  double throttle_{0};
  double steering_{0};
  bool power_cut_{false};
  /// Per-run multiplicative variation of the coast-down friction (tyre
  /// temperature, battery level...) drawn at each reset.
  double friction_factor_{1.0};
  bool running_{false};
  sim::EventHandle tick_timer_;
};

}  // namespace rst::vehicle
