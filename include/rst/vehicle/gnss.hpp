#pragma once

#include "rst/geo/vec2.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"
#include "rst/vehicle/dynamics.hpp"

namespace rst::sim {
class FaultInjector;
}

namespace rst::vehicle {

struct GnssConfig {
  sim::SimTime fix_period{sim::SimTime::milliseconds(100)};  // 10 Hz receiver
  /// White noise per fix.
  double noise_sigma_m{0.35};
  /// Slowly wandering bias (multipath/atmospheric), random walk per fix.
  double bias_walk_sigma_m{0.02};
  double initial_bias_sigma_m{0.8};
  /// Bias magnitude is softly bounded by pulling it back towards zero.
  double bias_decay{0.01};
};

/// GNSS receiver for the OBU's position source: the true pose corrupted by
/// a random-walk bias plus per-fix noise, sampled at the receiver rate.
/// Everything the ETSI stack advertises (CAM reference positions, GN
/// position vectors) can be routed through this instead of ground truth.
class GnssReceiver {
 public:
  using Config = GnssConfig;

  GnssReceiver(sim::Scheduler& sched, const VehicleDynamics& vehicle, sim::RandomStream rng,
               Config config = {});
  ~GnssReceiver();
  GnssReceiver(const GnssReceiver&) = delete;
  GnssReceiver& operator=(const GnssReceiver&) = delete;

  void start();
  void stop();

  /// Latest fix (the value an application polling the receiver sees).
  [[nodiscard]] geo::Vec2 position() const { return last_fix_; }
  [[nodiscard]] sim::SimTime last_fix_time() const { return last_fix_time_; }
  [[nodiscard]] std::uint64_t fixes() const { return fixes_; }
  /// Current total error vs ground truth (for instrumentation/tests).
  [[nodiscard]] double error_m() const { return geo::distance(last_fix_, vehicle_.position()); }

  /// Subscribes the receiver to a fault plan (injection point "gnss"):
  /// during a GnssDrift window the bias ramps at `severity` m/s along a
  /// direction drawn once per activation from the injector's stream.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }

 private:
  void tick();

  sim::Scheduler& sched_;
  const VehicleDynamics& vehicle_;
  sim::RandomStream rng_;
  Config config_;
  sim::FaultInjector* faults_{nullptr};
  geo::Vec2 drift_direction_{};
  bool drifting_{false};
  geo::Vec2 bias_{};
  geo::Vec2 last_fix_{};
  sim::SimTime last_fix_time_{};
  bool running_{false};
  sim::EventHandle timer_;
  std::uint64_t fixes_{0};
};

}  // namespace rst::vehicle
