#pragma once

#include <string>

#include "rst/middleware/message_bus.hpp"
#include "rst/sim/random.hpp"
#include "rst/vehicle/dynamics.hpp"

namespace rst::vehicle {

/// One IMU sample (the MPU-class part on the paper's Fig. 5 architecture).
struct ImuSample {
  double longitudinal_accel_mps2{0};
  double yaw_rate_radps{0};
  sim::SimTime stamp{};
};

struct ImuConfig {
  sim::SimTime sample_period{sim::SimTime::milliseconds(10)};  // 100 Hz
  double accel_noise_sigma{0.05};
  double gyro_noise_sigma{0.01};
  /// Constant biases drawn once per power-up.
  double accel_bias_sigma{0.03};
  double gyro_bias_sigma{0.005};
};

/// Samples the vehicle's true dynamics with bias + noise and publishes
/// `ImuSample`s on the bus topic `imu`.
class Imu {
 public:
  using Config = ImuConfig;

  Imu(sim::Scheduler& sched, middleware::MessageBus& bus, const VehicleDynamics& vehicle,
      sim::RandomStream rng, Config config = {});
  ~Imu();
  Imu(const Imu&) = delete;
  Imu& operator=(const Imu&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t samples_published() const { return samples_; }
  [[nodiscard]] double accel_bias() const { return accel_bias_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  const VehicleDynamics& vehicle_;
  sim::RandomStream rng_;
  Config config_;
  double accel_bias_{0};
  double gyro_bias_{0};
  double last_heading_{0};
  sim::SimTime last_tick_{};
  bool has_last_{false};
  bool running_{false};
  sim::EventHandle timer_;
  std::uint64_t samples_{0};
};

struct SpeedEstimatorConfig {
  /// Blend factor towards the odometry fix on every odometry message.
  double odometry_gain{0.25};
};

/// Dead-reckoning speed estimator: integrates IMU acceleration between the
/// (slower) odometry fixes and corrects towards each fix — a minimal
/// complementary filter like the one a Jetson-side localization node runs.
class SpeedEstimator {
 public:
  using Config = SpeedEstimatorConfig;

  SpeedEstimator(sim::Scheduler& sched, middleware::MessageBus& bus, Config config = {});

  [[nodiscard]] double speed_mps() const { return speed_; }
  [[nodiscard]] std::uint64_t imu_updates() const { return imu_updates_; }
  [[nodiscard]] std::uint64_t odometry_updates() const { return odometry_updates_; }

 private:
  sim::Scheduler& sched_;
  Config config_;
  double speed_{0};
  sim::SimTime last_imu_{};
  bool has_imu_{false};
  std::uint64_t imu_updates_{0};
  std::uint64_t odometry_updates_{0};
};

}  // namespace rst::vehicle
