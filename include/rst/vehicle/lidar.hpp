#pragma once

#include <functional>
#include <vector>

#include "rst/dot11p/channel.hpp"
#include "rst/middleware/message_bus.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/trace.hpp"
#include "rst/vehicle/dynamics.hpp"

namespace rst::vehicle {

/// One return from the scanning LiDAR, in the vehicle frame.
struct LidarDetection {
  double range_m{0};
  double bearing_rad{0};  ///< relative to the vehicle heading, + = clockwise
};

/// A full scan published on the bus topic `lidar_scan`.
struct LidarScan {
  sim::SimTime capture_time{};
  std::vector<LidarDetection> detections;
};

/// An object the LiDAR can return: a disc at a (possibly moving) position.
struct LidarTarget {
  std::function<geo::Vec2()> position;
  double radius_m{0.15};
};

struct ScanningLidarConfig {
  sim::SimTime scan_period{sim::SimTime::milliseconds(100)};  // Hokuyo ~10 Hz
  sim::SimTime processing_latency{sim::SimTime::milliseconds(3)};
  double fov_half_angle_rad{2.36};  // ~270 degrees total
  double max_range_m{8.0};
  double range_noise_sigma_m{0.01};
};

/// The Hokuyo scanning LiDAR of the paper's vehicle (Fig. 5 hardware
/// architecture). Returns ranges to registered targets, with occlusion by
/// the same wall segments that block the radio LOS — a physical wall stops
/// both light and RF, which is exactly the blind-corner problem.
class ScanningLidar {
 public:
  using Config = ScanningLidarConfig;

  ScanningLidar(sim::Scheduler& sched, middleware::MessageBus& bus,
                const VehicleDynamics& vehicle, sim::RandomStream rng, Config config = {});
  ~ScanningLidar();
  ScanningLidar(const ScanningLidar&) = delete;
  ScanningLidar& operator=(const ScanningLidar&) = delete;

  void add_target(LidarTarget target);
  void set_walls(std::vector<dot11p::Wall> walls) { walls_ = std::move(walls); }

  void start();
  void stop();

  /// Synchronous scan (also used by the periodic loop).
  [[nodiscard]] LidarScan scan() const;

  [[nodiscard]] std::uint64_t scans_published() const { return scans_; }

 private:
  void tick();

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  const VehicleDynamics& vehicle_;
  mutable sim::RandomStream rng_;
  Config config_;
  std::vector<LidarTarget> targets_;
  std::vector<dot11p::Wall> walls_;
  bool running_{false};
  sim::EventHandle timer_;
  std::uint64_t scans_{0};
};

struct AebConfig {
  /// Deceleration the controller assumes the power-cut will deliver.
  double assumed_decel_mps2{2.2};
  /// Extra stopping margin in metres.
  double margin_m{0.35};
  /// Half-width of the corridor ahead that counts as collision-relevant.
  double corridor_half_width_m{0.35};
  /// Ignore returns behind or far to the side.
  double max_bearing_rad{1.2};
};

/// Automatic Emergency Braking from the on-board LiDAR: latches an
/// emergency stop when a return lies inside the braking envelope ahead.
/// This is the *in-car* system the paper's introduction says V2X must
/// complement — it cannot see around a blind corner.
class AebController {
 public:
  using Config = AebConfig;

  AebController(sim::Scheduler& sched, middleware::MessageBus& bus, Config config = {},
                sim::Trace* trace = nullptr, std::string name = "aeb");

  void start() { running_ = true; }
  void stop() { running_ = false; }

  [[nodiscard]] bool triggered() const { return triggered_; }
  [[nodiscard]] std::uint64_t scans_evaluated() const { return scans_; }

 private:
  void on_scan(const LidarScan& scan);
  void on_odometry(const struct Odometry& odo);

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;
  bool running_{false};
  bool triggered_{false};
  double speed_{0};
  std::uint64_t scans_{0};
};

}  // namespace rst::vehicle
