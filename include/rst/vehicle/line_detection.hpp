#pragma once

#include <string>

#include "rst/middleware/message_bus.hpp"
#include "rst/sim/random.hpp"
#include "rst/sim/scheduler.hpp"
#include "rst/vehicle/dynamics.hpp"
#include "rst/vehicle/track.hpp"

namespace rst::vehicle {

/// Output of the on-board line-detection pipeline (ZED frame -> Canny ->
/// region filter -> probabilistic Hough transform in the paper; here the
/// geometric result of that pipeline, observed with sensor noise).
struct LineDetection {
  double lateral_offset_m{0};   ///< signed offset of the vehicle from the line
  double heading_error_rad{0};  ///< vehicle heading minus line tangent
  bool line_found{true};
  sim::SimTime capture_time{};
};

struct LineCameraConfig {
  sim::SimTime frame_period{sim::SimTime::from_milliseconds(1000.0 / 30.0)};
  sim::SimTime processing_mean{sim::SimTime::milliseconds(18)};
  sim::SimTime processing_sigma{sim::SimTime::milliseconds(3)};
  sim::SimTime processing_min{sim::SimTime::milliseconds(8)};
  double offset_noise_m{0.004};
  double heading_noise_rad{0.01};
  /// Probability a frame yields no usable Hough lines.
  double dropout_probability{0.01};
  /// Lateral distance beyond which the line leaves the camera FOV.
  double fov_half_width_m{0.5};
};

/// Simulates the ZED-camera line-detection front end: frames are captured
/// at a fixed rate, processed for a latency drawn per frame, and published
/// as `LineDetection` messages on the bus topic `line_detection`.
class LineCameraSensor {
 public:
  using Config = LineCameraConfig;

  LineCameraSensor(sim::Scheduler& sched, middleware::MessageBus& bus, const Track& track,
                   const VehicleDynamics& vehicle, sim::RandomStream rng, Config config = {});
  ~LineCameraSensor();
  LineCameraSensor(const LineCameraSensor&) = delete;
  LineCameraSensor& operator=(const LineCameraSensor&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t frames_processed() const { return frames_; }

 private:
  void capture();

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  const Track& track_;
  const VehicleDynamics& vehicle_;
  sim::RandomStream rng_;
  Config config_;
  bool running_{false};
  sim::EventHandle frame_timer_;
  std::uint64_t frames_{0};
};

}  // namespace rst::vehicle
