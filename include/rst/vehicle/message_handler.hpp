#pragma once

#include <string>

#include "rst/its/messages/denm.hpp"
#include "rst/middleware/http.hpp"
#include "rst/middleware/message_bus.hpp"
#include "rst/middleware/ntp.hpp"
#include "rst/sim/trace.hpp"

namespace rst::vehicle {

struct MessageHandlerConfig {
  sim::SimTime poll_period{sim::SimTime::milliseconds(50)};
  std::string obu_hostname{"obu"};
  /// Local handling time between response arrival and the bus publish.
  sim::SimTime handling_latency{sim::SimTime::microseconds(600)};
  sim::SimTime handling_jitter{sim::SimTime::microseconds(400)};
  /// DENM/CAM-liveness watchdog: when no successful poll response has been
  /// seen for `watchdog_timeout`, publish WatchdogState{degraded=true} on
  /// the "watchdog" topic — the planner caps its speed at the failsafe and
  /// the on-board AEB is armed — and recover on the next good response.
  /// Off by default (the nominal chain is byte-identical with it off).
  bool watchdog{false};
  sim::SimTime watchdog_timeout{sim::SimTime::milliseconds(400)};
};

/// Degradation state broadcast by the liveness watchdog (topic "watchdog").
struct WatchdogState {
  bool degraded{false};
};

/// The paper's OBU-polling script: "a Python script running at the Jetson
/// TX2 is constantly communicating with the OpenC2X HTTP API hosted at the
/// OBU, through POST requests sent to /request_denm" (§III-D2).
///
/// Polls at a fixed period; when a DENM comes back, it is interpreted and,
/// for hazard-class cause codes, an emergency stop is published to the
/// Motion Planner. The polling period dominates the paper's step 4->5
/// interval and is ablated in bench_ablation_polling.
class MessageHandler {
 public:
  using Config = MessageHandlerConfig;

  MessageHandler(sim::Scheduler& sched, middleware::MessageBus& bus, middleware::HttpHost& host,
                 sim::RandomStream rng, Config config = {}, sim::Trace* trace = nullptr,
                 std::string name = "msg_handler");
  ~MessageHandler();
  MessageHandler(const MessageHandler&) = delete;
  MessageHandler& operator=(const MessageHandler&) = delete;

  void start();
  void stop();

  /// True when the DENM's cause code demands an emergency stop.
  [[nodiscard]] static bool is_emergency(const its::Denm& denm);

  struct Stats {
    std::uint64_t polls{0};
    std::uint64_t denms_fetched{0};
    std::uint64_t emergencies{0};
    std::uint64_t decode_errors{0};
    /// Poll responses that came back failed (lost request / non-200).
    std::uint64_t failed_polls{0};
    /// Polls issued while the previous response had failed — the fixed
    /// cadence doubles as the retry/backoff loop.
    std::uint64_t retries{0};
    std::uint64_t watchdog_degradations{0};
    std::uint64_t watchdog_recoveries{0};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// True while the liveness watchdog considers infrastructure contact lost.
  [[nodiscard]] bool degraded() const { return degraded_; }

 private:
  void poll();
  void on_response(const middleware::HttpResponse& resp);
  void handle_denm_hex(const std::string& hex);
  void set_degraded(bool degraded);

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  middleware::HttpHost& host_;
  sim::RandomStream rng_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;
  bool running_{false};
  bool last_poll_failed_{false};
  bool degraded_{false};
  sim::SimTime last_contact_{};
  sim::EventHandle poll_timer_;
  Stats stats_;
};

}  // namespace rst::vehicle
