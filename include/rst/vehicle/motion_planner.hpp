#pragma once

#include <string>

#include "rst/middleware/message_bus.hpp"
#include "rst/sim/trace.hpp"
#include "rst/vehicle/line_detection.hpp"
#include "rst/vehicle/pid.hpp"

namespace rst::vehicle {

/// Command from the Motion Planner to the Control module (the ROS topic
/// between the Jetson's planner node and the Teensy bridge).
struct DriveCommand {
  double steering_rad{0};
  double throttle01{0};
  /// True triggers the ESC power interruption (emergency stop).
  bool power_cut{false};
};

/// Odometry sample published by the control module.
struct Odometry {
  double speed_mps{0};
  geo::Vec2 position{};
  double heading_rad{0};
};

struct MotionPlannerConfig {
  PidController::Gains steering_gains{.kp = 2.2, .ki = 0.0, .kd = 0.25};
  double max_steer_rad{0.35};
  /// Heading-error blend: effective error = offset + k_heading * sin(err).
  double heading_gain_m{0.35};
  double target_speed_mps{1.2};
  /// Speed cap while the liveness watchdog reports infrastructure contact
  /// lost (topic "watchdog"): creep slowly so the on-board sensors can
  /// still stop the vehicle within their short range.
  double failsafe_speed_mps{0.35};
  /// Simple proportional throttle to hold target speed.
  double speed_kp{1.5};
  /// Feed-forward throttle near the rolling-resistance equilibrium.
  double cruise_throttle{0.05};
};

/// The vehicle's Motion Planner: line following via a PID steering loop
/// plus the network-aided emergency-stop path of the paper — when a DENM
/// arrives (topic `v2x_emergency`), the planner latches a stop and sends a
/// power-cut DriveCommand to the control module.
class MotionPlanner {
 public:
  using Config = MotionPlannerConfig;

  MotionPlanner(sim::Scheduler& sched, middleware::MessageBus& bus, Config config = {},
                sim::Trace* trace = nullptr, std::string name = "planner");

  /// Latches an emergency stop (also reachable via the `v2x_emergency`
  /// bus topic). Idempotent.
  void emergency_stop(const std::string& reason);

  [[nodiscard]] bool stopped() const { return emergency_latched_; }
  [[nodiscard]] std::uint64_t commands_sent() const { return commands_; }
  /// True while the planner holds the watchdog failsafe speed cap.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Releases the latch (new experiment run).
  void reset();

 private:
  void on_line(const LineDetection& det);
  void on_odometry(const Odometry& odo);

  sim::Scheduler& sched_;
  middleware::MessageBus& bus_;
  Config config_;
  sim::Trace* trace_;
  std::string name_;
  PidController steering_pid_;
  double current_speed_{0};
  sim::SimTime last_line_time_{};
  bool has_last_line_{false};
  bool emergency_latched_{false};
  bool degraded_{false};
  std::uint64_t commands_{0};
};

}  // namespace rst::vehicle
