#pragma once

#include <algorithm>

namespace rst::vehicle {

/// Textbook PID controller with output clamping and anti-windup, used for
/// the steering loop of the line follower (the paper's Motion Planner
/// computes the steering angle with a PID controller).
class PidController {
 public:
  struct Gains {
    double kp{0};
    double ki{0};
    double kd{0};
  };

  PidController(Gains gains, double output_min, double output_max)
      : gains_{gains}, output_min_{output_min}, output_max_{output_max} {}

  /// Advances the controller by `dt` seconds with measurement error `e`
  /// (setpoint minus measurement) and returns the control output.
  double update(double e, double dt) {
    if (dt <= 0) return last_output_;
    const double derivative = has_last_ ? (e - last_error_) / dt : 0.0;
    integral_ += e * dt;
    double out = gains_.kp * e + gains_.ki * integral_ + gains_.kd * derivative;
    // Anti-windup: freeze the integral when saturated in its direction.
    if (out > output_max_) {
      if (gains_.ki > 0) integral_ -= e * dt;
      out = output_max_;
    } else if (out < output_min_) {
      if (gains_.ki > 0) integral_ -= e * dt;
      out = output_min_;
    }
    last_error_ = e;
    has_last_ = true;
    last_output_ = out;
    return out;
  }

  void reset() {
    integral_ = 0;
    last_error_ = 0;
    has_last_ = false;
    last_output_ = 0;
  }

  [[nodiscard]] double integral() const { return integral_; }

 private:
  Gains gains_;
  double output_min_;
  double output_max_;
  double integral_{0};
  double last_error_{0};
  bool has_last_{false};
  double last_output_{0};
};

}  // namespace rst::vehicle
