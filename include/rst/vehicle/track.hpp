#pragma once

#include <vector>

#include "rst/geo/vec2.hpp"

namespace rst::vehicle {

/// The taped line on the laboratory floor that the robot follows,
/// modelled as a polyline with arc-length parameterisation.
class Track {
 public:
  explicit Track(std::vector<geo::Vec2> waypoints);

  /// Straight segment from a to b.
  [[nodiscard]] static Track straight(geo::Vec2 a, geo::Vec2 b);
  /// Axis-aligned rectangle circuit (closed loop), counter-clockwise,
  /// with corner cut resolution `corner_points` per 90-degree turn.
  [[nodiscard]] static Track loop(geo::Vec2 center, double width, double height,
                                  int corner_points = 4);

  [[nodiscard]] double length() const { return cumulative_.back(); }
  [[nodiscard]] const std::vector<geo::Vec2>& waypoints() const { return points_; }

  /// Point at arc length s (clamped to [0, length]).
  [[nodiscard]] geo::Vec2 point_at(double s) const;
  /// Tangent heading (ITS convention, clockwise from north) at arc length s.
  [[nodiscard]] double heading_at(double s) const;

  struct Projection {
    double arc_length{0};      ///< s of the closest point
    double lateral_offset{0};  ///< signed; >0 when the pose is left of the line
    geo::Vec2 closest{};       ///< closest point on the line
  };
  /// Projects a position onto the track.
  [[nodiscard]] Projection project(geo::Vec2 p) const;

 private:
  std::vector<geo::Vec2> points_;
  std::vector<double> cumulative_;  // cumulative arc length at each waypoint
};

}  // namespace rst::vehicle
