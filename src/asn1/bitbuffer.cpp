#include "rst/asn1/bitbuffer.hpp"

namespace rst::asn1 {

void BitWriter::write_bit(bool b) {
  const std::size_t byte_index = bit_count_ / 8;
  if (byte_index == bytes_.size()) bytes_.push_back(0);
  if (b) bytes_[byte_index] |= static_cast<std::uint8_t>(0x80u >> (bit_count_ % 8));
  ++bit_count_;
}

void BitWriter::write_bits(std::uint64_t value, unsigned nbits) {
  if (nbits > 64) throw std::invalid_argument{"BitWriter::write_bits: nbits > 64"};
  for (unsigned i = nbits; i-- > 0;) write_bit((value >> i) & 1u);
}

void BitWriter::write_bytes(const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) write_bits(data[i], 8);
}

std::vector<std::uint8_t> BitWriter::finish() const { return bytes_; }

bool BitReader::read_bit() {
  if (pos_ >= size_bits_) throw DecodeError{"BitReader: read past end"};
  const bool b = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return b;
}

std::uint64_t BitReader::read_bits(unsigned nbits) {
  if (nbits > 64) throw DecodeError{"BitReader: nbits > 64"};
  std::uint64_t v = 0;
  for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | (read_bit() ? 1u : 0u);
  return v;
}

void BitReader::read_bytes(std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(read_bits(8));
}

}  // namespace rst::asn1
