#include "rst/asn1/bitbuffer.hpp"

#include <cstring>

namespace rst::asn1 {

void BitWriter::write_bit(bool b) {
  const std::size_t byte_index = bit_count_ / 8;
  if (byte_index == bytes_.size()) bytes_.push_back(0);
  if (b) bytes_[byte_index] |= static_cast<std::uint8_t>(0x80u >> (bit_count_ % 8));
  ++bit_count_;
}

void BitWriter::write_bits(std::uint64_t value, unsigned nbits) {
  if (nbits > 64) throw std::invalid_argument{"BitWriter::write_bits: nbits > 64"};
  if (nbits == 0) return;
  if (nbits < 64) value &= (std::uint64_t{1} << nbits) - 1;

  bytes_.resize((bit_count_ + nbits + 7) / 8, 0);
  std::size_t byte_index = bit_count_ / 8;
  const unsigned used = static_cast<unsigned>(bit_count_ % 8);
  bit_count_ += nbits;
  unsigned remaining = nbits;

  // Head: fill the current partial byte.
  if (used != 0) {
    const unsigned room = 8 - used;
    const unsigned take = remaining < room ? remaining : room;
    const auto chunk =
        static_cast<std::uint8_t>((value >> (remaining - take)) & ((1u << take) - 1u));
    bytes_[byte_index] |= static_cast<std::uint8_t>(chunk << (room - take));
    remaining -= take;
    ++byte_index;
  }
  // Body: whole output bytes.
  while (remaining >= 8) {
    remaining -= 8;
    bytes_[byte_index++] = static_cast<std::uint8_t>(value >> remaining);
  }
  // Tail: leading bits of a fresh byte (already zeroed by resize).
  if (remaining > 0) {
    bytes_[byte_index] |=
        static_cast<std::uint8_t>((value & ((1u << remaining) - 1u)) << (8 - remaining));
  }
}

void BitWriter::write_bytes(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return;
  if (bit_count_ % 8 == 0) {  // aligned: bulk append
    bytes_.insert(bytes_.end(), data, data + n);
    bit_count_ += n * 8;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) write_bits(data[i], 8);
}

bool BitReader::read_bit() {
  if (pos_ >= size_bits_) throw DecodeError{"BitReader: read past end"};
  const bool b = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
  ++pos_;
  return b;
}

std::uint64_t BitReader::read_bits(unsigned nbits) {
  if (nbits > 64) throw DecodeError{"BitReader: nbits > 64"};
  if (nbits > size_bits_ - pos_) throw DecodeError{"BitReader: read past end"};
  std::uint64_t v = 0;
  unsigned remaining = nbits;

  // Head: drain the current partial byte.
  const unsigned used = static_cast<unsigned>(pos_ % 8);
  if (used != 0 && remaining > 0) {
    const unsigned avail = 8 - used;
    const unsigned take = remaining < avail ? remaining : avail;
    v = (data_[pos_ / 8] >> (avail - take)) & ((1u << take) - 1u);
    pos_ += take;
    remaining -= take;
  }
  // Body: whole input bytes.
  while (remaining >= 8) {
    v = (v << 8) | data_[pos_ / 8];
    pos_ += 8;
    remaining -= 8;
  }
  // Tail: leading bits of the next byte.
  if (remaining > 0) {
    v = (v << remaining) | (data_[pos_ / 8] >> (8 - remaining));
    pos_ += remaining;
  }
  return v;
}

void BitReader::read_bytes(std::uint8_t* out, std::size_t n) {
  if (n == 0) return;
  if (pos_ % 8 == 0) {  // aligned: bulk copy
    if (n * 8 > size_bits_ - pos_) throw DecodeError{"BitReader: read past end"};
    std::memcpy(out, data_ + pos_ / 8, n);
    pos_ += n * 8;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(read_bits(8));
}

}  // namespace rst::asn1
