#include "rst/asn1/per.hpp"

namespace rst::asn1 {

unsigned bits_for_range(std::uint64_t range) {
  if (range <= 1) return 0;
  unsigned bits = 0;
  std::uint64_t v = range - 1;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

void PerEncoder::constrained(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"PerEncoder::constrained: lo > hi"};
  if (v < lo || v > hi) throw std::invalid_argument{"PerEncoder::constrained: value out of range"};
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  w_.write_bits(static_cast<std::uint64_t>(v - lo), bits_for_range(range));
}

void PerEncoder::constrained_ext(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  if (v >= lo && v <= hi) {
    w_.write_bit(false);
    constrained(v, lo, hi);
  } else {
    w_.write_bit(true);
    unconstrained(v);
  }
}

void PerEncoder::unconstrained(std::int64_t v) {
  // Minimal two's-complement octets.
  std::uint8_t buf[9];
  unsigned n = 0;
  std::int64_t x = v;
  // Collect octets little-endian then emit big-endian.
  do {
    buf[n++] = static_cast<std::uint8_t>(x & 0xff);
    x >>= 8;
  } while (x != 0 && x != -1);
  // Ensure the sign bit of the leading octet matches v's sign.
  const bool neg = v < 0;
  if (((buf[n - 1] & 0x80) != 0) != neg) buf[n++] = neg ? 0xff : 0x00;
  length(n);
  for (unsigned i = n; i-- > 0;) w_.write_bits(buf[i], 8);
}

void PerEncoder::enumerated(std::uint32_t index, std::uint32_t count) {
  if (index >= count) throw std::invalid_argument{"PerEncoder::enumerated: index out of range"};
  constrained(index, 0, static_cast<std::int64_t>(count) - 1);
}

void PerEncoder::length(std::size_t n) {
  if (n < 128) {
    w_.write_bits(n, 8);  // 0xxxxxxx
  } else if (n < 16384) {
    w_.write_bits(0b10, 2);
    w_.write_bits(n, 14);
  } else {
    throw std::invalid_argument{"PerEncoder::length: fragmentation (>16383) unsupported"};
  }
}

void PerEncoder::octet_string(const std::vector<std::uint8_t>& v) {
  length(v.size());
  w_.write_bytes(v.data(), v.size());
}

void PerEncoder::fixed_octet_string(const std::uint8_t* data, std::size_t n) {
  w_.write_bytes(data, n);
}

void PerEncoder::ia5_string(const std::string& s) {
  length(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u > 127) throw std::invalid_argument{"PerEncoder::ia5_string: non-IA5 character"};
    w_.write_bits(u, 7);
  }
}

std::int64_t PerDecoder::constrained(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw DecodeError{"PerDecoder::constrained: lo > hi"};
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  const std::uint64_t off = r_.read_bits(bits_for_range(range));
  if (off >= range) throw DecodeError{"PerDecoder::constrained: offset out of range"};
  return lo + static_cast<std::int64_t>(off);
}

std::int64_t PerDecoder::constrained_ext(std::int64_t lo, std::int64_t hi) {
  if (r_.read_bit()) return unconstrained();
  return constrained(lo, hi);
}

std::int64_t PerDecoder::unconstrained() {
  const std::size_t n = length();
  if (n == 0 || n > 8) throw DecodeError{"PerDecoder::unconstrained: bad octet count"};
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) v = (v << 8) | r_.read_bits(8);
  // Sign-extend from n*8 bits.
  const unsigned shift = 64 - static_cast<unsigned>(n) * 8;
  return static_cast<std::int64_t>(v << shift) >> shift;
}

std::uint32_t PerDecoder::enumerated(std::uint32_t count) {
  return static_cast<std::uint32_t>(constrained(0, static_cast<std::int64_t>(count) - 1));
}

std::size_t PerDecoder::length() {
  if (!r_.read_bit()) return r_.read_bits(7);
  if (!r_.read_bit()) return r_.read_bits(14);
  throw DecodeError{"PerDecoder::length: fragmented lengths unsupported"};
}

std::vector<std::uint8_t> PerDecoder::octet_string() {
  const std::size_t n = length();
  std::vector<std::uint8_t> out(n);
  r_.read_bytes(out.data(), n);
  return out;
}

void PerDecoder::fixed_octet_string(std::uint8_t* out, std::size_t n) { r_.read_bytes(out, n); }

std::string PerDecoder::ia5_string() {
  const std::size_t n = length();
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<char>(r_.read_bits(7)));
  return out;
}

}  // namespace rst::asn1
