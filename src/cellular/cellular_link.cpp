#include "rst/cellular/cellular_link.hpp"

#include <stdexcept>

namespace rst::cellular {

CellularConfig CellularConfig::urllc() {
  CellularConfig c;
  c.uplink_mean = sim::SimTime::milliseconds(1);
  c.uplink_sigma = sim::SimTime::microseconds(300);
  c.core_mean = sim::SimTime::milliseconds(1);
  c.core_sigma = sim::SimTime::microseconds(200);
  c.downlink_mean = sim::SimTime::milliseconds(1);
  c.downlink_sigma = sim::SimTime::microseconds(300);
  c.loss_probability = 1e-5;
  return c;
}

CellularNetwork::CellularNetwork(sim::Scheduler& sched, sim::RandomStream rng, CellularConfig config)
    : sched_{sched}, rng_{rng.child("cellular")}, config_{config} {}

CellularEndpoint& CellularNetwork::create_endpoint(const std::string& name) {
  auto [it, inserted] =
      endpoints_.emplace(name, std::unique_ptr<CellularEndpoint>(new CellularEndpoint{*this, name}));
  if (!inserted) throw std::invalid_argument{"CellularNetwork: duplicate endpoint " + name};
  return *it->second;
}

CellularEndpoint* CellularNetwork::endpoint(const std::string& name) {
  const auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

void CellularNetwork::send(const std::string& from, const std::string& to,
                           std::vector<std::uint8_t> payload) {
  ++stats_.sent;
  // A destination that does not exist (or cannot receive) is unreachable,
  // not lost in transit: no loss draw, no latency sample, no network event.
  // Without this check such a payload would count as `sent` but neither
  // `lost` nor `delivered`, and its latency would still pollute the sample.
  const auto dest = endpoints_.find(to);
  if (dest == endpoints_.end() || !dest->second->receive_) {
    ++stats_.undeliverable;
    return;
  }
  if (rng_.bernoulli(config_.loss_probability)) {
    ++stats_.lost;
    return;
  }
  const auto component = [this](sim::SimTime mean, sim::SimTime sigma) {
    return rng_.normal_time(mean, sigma, config_.component_floor);
  };
  const auto latency = component(config_.uplink_mean, config_.uplink_sigma) +
                       component(config_.core_mean, config_.core_sigma) +
                       component(config_.downlink_mean, config_.downlink_sigma);
  sched_.post_in(latency, [this, from, to, latency, payload = std::move(payload)] {
    // The endpoint (or its callback) may have gone away while the payload
    // was in flight; account for it so sent == delivered + lost +
    // undeliverable holds at any quiescent point. Latency is sampled only
    // here, on completed deliveries.
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end() || !it->second->receive_) {
      ++stats_.undeliverable;
      return;
    }
    ++stats_.delivered;
    stats_.latency_ms.add(latency.to_milliseconds());
    it->second->receive_(payload, from);
  });
}

}  // namespace rst::cellular
