#include "rst/core/config_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "rst/sim/fault_plan.hpp"

namespace rst::core {

double parse_spec_double(const std::string& value, const std::string& key) {
  std::size_t consumed = 0;
  const double v = std::stod(value, &consumed);
  if (consumed != value.size()) {
    throw std::invalid_argument{"config override '" + key + "': bad number '" + value + "'"};
  }
  return v;
}

std::int64_t parse_spec_int(const std::string& value, const std::string& key) {
  std::size_t consumed = 0;
  const long long v = std::stoll(value, &consumed, 10);
  if (consumed != value.size()) {
    throw std::invalid_argument{"config override '" + key + "': bad integer '" + value + "'"};
  }
  return v;
}

bool parse_spec_bool(const std::string& value, const std::string& key) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  throw std::invalid_argument{"config override '" + key + "': bad boolean '" + value + "'"};
}

std::string format_spec_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string canonicalize_spec(const std::string& text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for_each_spec_override(text, [&](const std::string& key, const std::string& value) {
    // Values that are whole numbers normalize through %.17g ("1e3" and
    // "1000.0" both become "1000"); anything else (booleans, enum tokens,
    // fault clauses) is already canonical as stripped text.
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    const bool numeric = !value.empty() && end == value.c_str() + value.size();
    pairs.emplace_back(key, numeric ? format_spec_double(v) : value);
  });
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (const auto& [key, value] : pairs) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

namespace {

using Setter = std::function<void(TestbedConfig&, const std::string&)>;

double parse_double(const std::string& value, const std::string& key) {
  return parse_spec_double(value, key);
}

std::int64_t parse_int(const std::string& value, const std::string& key) {
  return parse_spec_int(value, key);
}

bool parse_bool(const std::string& value, const std::string& key) {
  return parse_spec_bool(value, key);
}

struct Entry {
  Setter set;
  std::string help;
};

const std::map<std::string, Entry>& registry() {
  using sim::SimTime;
  static const std::map<std::string, Entry> kRegistry = {
      {"seed",
       {[](TestbedConfig& c, const std::string& v) {
          c.seed = static_cast<std::uint64_t>(parse_int(v, "seed"));
        },
        "root random seed"}},
      {"target_speed_mps",
       {[](TestbedConfig& c, const std::string& v) {
          c.planner.target_speed_mps = parse_double(v, "target_speed_mps");
        },
        "line-following cruise speed"}},
      {"action_point_m",
       {[](TestbedConfig& c, const std::string& v) {
          c.hazard.action_point_distance_m = parse_double(v, "action_point_m");
        },
        "camera-distance braking threshold"}},
      {"poll_period_ms",
       {[](TestbedConfig& c, const std::string& v) {
          c.message_handler.poll_period = SimTime::milliseconds(parse_int(v, "poll_period_ms"));
        },
        "OBU /request_denm polling period"}},
      {"detection_fps",
       {[](TestbedConfig& c, const std::string& v) {
          c.detection.processing_period =
              SimTime::from_milliseconds(1000.0 / parse_double(v, "detection_fps"));
        },
        "edge-node detection loop rate"}},
      {"path_loss_exponent",
       {[](TestbedConfig& c, const std::string& v) {
          c.path_loss_exponent = parse_double(v, "path_loss_exponent");
        },
        "log-distance channel exponent"}},
      {"shadowing_sigma_db",
       {[](TestbedConfig& c, const std::string& v) {
          c.shadowing_sigma_db = parse_double(v, "shadowing_sigma_db");
        },
        "log-normal shadowing sigma"}},
      {"cpm_enable",
       {[](TestbedConfig& c, const std::string& v) {
          c.cpm_enable = parse_bool(v, "cpm_enable");
        },
        "collective perception service on both stations"}},
      {"cpm_interval_ms",
       {[](TestbedConfig& c, const std::string& v) {
          c.cpm_interval = SimTime::milliseconds(parse_int(v, "cpm_interval_ms"));
        },
        "CPM generation period"}},
      {"cpm_object_lifetime_ms",
       {[](TestbedConfig& c, const std::string& v) {
          c.cpm_object_lifetime = SimTime::milliseconds(parse_int(v, "cpm_object_lifetime_ms"));
        },
        "LDM perceived-object lifetime under CPM"}},
      {"cpm_redundancy_window_ms",
       {[](TestbedConfig& c, const std::string& v) {
          c.cpm_redundancy_window =
              SimTime::milliseconds(parse_int(v, "cpm_redundancy_window_ms"));
        },
        "skip objects a peer announced within this window"}},
      {"medium_per_link_streams",
       {[](TestbedConfig& c, const std::string& v) {
          c.medium_per_link_streams = parse_bool(v, "medium_per_link_streams");
        },
        "counter-based per-link medium streams"}},
      {"medium_spatial_index",
       {[](TestbedConfig& c, const std::string& v) {
          c.medium_spatial_index = parse_bool(v, "medium_spatial_index");
        },
        "spatial-grid receiver culling (implies per-link streams)"}},
      {"obstacle_index",
       {[](TestbedConfig& c, const std::string& v) {
          c.obstacle_index = parse_bool(v, "obstacle_index");
        },
        "ray-index the obstacle walls (off = brute-force scan)"}},
      {"medium_power_floor_dbm",
       {[](TestbedConfig& c, const std::string& v) {
          c.medium_power_floor_dbm = parse_double(v, "medium_power_floor_dbm");
        },
        "per-link out-of-range link-budget floor"}},
      {"medium_grid_cell_m",
       {[](TestbedConfig& c, const std::string& v) {
          c.medium_grid_cell_m = parse_double(v, "medium_grid_cell_m");
        },
        "culling/partition grid cell size (0 = derive from power floor)"}},
      {"medium_partitions",
       {[](TestbedConfig& c, const std::string& v) {
          c.medium_partitions = static_cast<int>(parse_int(v, "medium_partitions"));
        },
        "medium partition domains (0 = RST_PARTITIONS env, 1 = serial)"}},
      {"warning_bearer",
       {[](TestbedConfig& c, const std::string& v) {
          if (v == "its-g5") c.warning_path = WarningPath::ItsG5;
          else if (v == "embb") c.warning_path = WarningPath::CellularEmbb;
          else if (v == "urllc") c.warning_path = WarningPath::CellularUrllc;
          else throw std::invalid_argument{"config override 'warning_bearer': unknown '" + v + "'"};
        },
        "its-g5 | embb | urllc"}},
      {"use_gnss",
       {[](TestbedConfig& c, const std::string& v) { c.use_gnss = parse_bool(v, "use_gnss"); },
        "advertise GNSS fixes instead of ground truth"}},
      {"enable_lidar_aeb",
       {[](TestbedConfig& c, const std::string& v) {
          c.enable_lidar_aeb = parse_bool(v, "enable_lidar_aeb");
        },
        "on-board LiDAR + AEB fallback"}},
      {"anonymize_detections",
       {[](TestbedConfig& c, const std::string& v) {
          c.detection.anonymize_detections = parse_bool(v, "anonymize_detections");
        },
        "re-derive detection ids by data association"}},
      {"denm_repetition_ms",
       {[](TestbedConfig& c, const std::string& v) {
          const auto ms = parse_int(v, "denm_repetition_ms");
          if (ms <= 0) c.hazard.denm_repetition.reset();
          else c.hazard.denm_repetition = SimTime::milliseconds(ms);
        },
        "DENM repetition interval (0 disables)"}},
      {"fault",
       {[](TestbedConfig& c, const std::string& v) {
          c.fault_plan.clauses.push_back(sim::parse_fault_clause(v));
        },
        "fault clause kind:target:start_ms:end_ms:severity (repeatable)"}},
      {"watchdog",
       {[](TestbedConfig& c, const std::string& v) {
          c.message_handler.watchdog = parse_bool(v, "watchdog");
        },
        "DENM/CAM-liveness watchdog (failsafe degradation)"}},
      {"watchdog_timeout_ms",
       {[](TestbedConfig& c, const std::string& v) {
          c.message_handler.watchdog_timeout =
              SimTime::milliseconds(parse_int(v, "watchdog_timeout_ms"));
        },
        "silence before the watchdog degrades"}},
      {"failsafe_speed_mps",
       {[](TestbedConfig& c, const std::string& v) {
          c.planner.failsafe_speed_mps = parse_double(v, "failsafe_speed_mps");
        },
        "speed cap while degraded"}},
      {"hazard_min_confidence",
       {[](TestbedConfig& c, const std::string& v) {
          c.hazard.min_confidence = parse_double(v, "hazard_min_confidence");
        },
        "minimum detection confidence the hazard service reacts to"}},
      {"hazard_require_known_road_user",
       {[](TestbedConfig& c, const std::string& v) {
          c.hazard.require_known_road_user = parse_bool(v, "hazard_require_known_road_user");
        },
        "ignore detections whose label is not a road user"}},
      {"trigger_mode",
       {[](TestbedConfig& c, const std::string& v) {
          if (v == "action-point") {
            c.hazard.trigger_mode = roadside::HazardTriggerMode::ActionPointDistance;
          } else if (v == "cpa") {
            c.hazard.trigger_mode = roadside::HazardTriggerMode::CpaPrediction;
          } else {
            throw std::invalid_argument{"config override 'trigger_mode': unknown '" + v + "'"};
          }
        },
        "action-point | cpa"}},
  };
  return kRegistry;
}

}  // namespace

std::size_t for_each_spec_override(
    const std::string& text,
    const std::function<void(const std::string& key, const std::string& value)>& apply) {
  std::istringstream stream{text};
  std::string line;
  std::size_t applied = 0;
  while (std::getline(stream, line)) {
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    const auto strip = [](std::string s) {
      const auto begin = s.find_first_not_of(" \t\r");
      if (begin == std::string::npos) return std::string{};
      const auto end = s.find_last_not_of(" \t\r");
      return s.substr(begin, end - begin + 1);
    };
    line = strip(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument{"config override: missing '=' in line '" + line + "'"};
    }
    apply(strip(line.substr(0, eq)), strip(line.substr(eq + 1)));
    ++applied;
  }
  return applied;
}

std::size_t apply_config_overrides(TestbedConfig& config, const std::string& text) {
  return for_each_spec_override(text, [&](const std::string& key, const std::string& value) {
    const auto it = registry().find(key);
    if (it == registry().end()) {
      throw std::invalid_argument{"config override: unknown key '" + key + "'"};
    }
    it->second.set(config, value);
  });
}

std::vector<std::pair<std::string, std::string>> config_override_keys() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, entry] : registry()) out.emplace_back(key, entry.help);
  return out;
}

}  // namespace rst::core
