#include "rst/core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "rst/sim/trial_pool.hpp"

namespace rst::core {

std::vector<double> ExperimentSummary::total_samples_ms() const {
  std::vector<double> out;
  for (const auto& t : trials) {
    if (t.stopped_by_denm) out.push_back(t.meas_total_ms);
  }
  return out;
}

std::vector<double> ExperimentSummary::braking_samples_m() const {
  std::vector<double> out;
  for (const auto& t : trials) {
    if (t.stopped_by_denm) out.push_back(t.braking_distance_m);
  }
  return out;
}

unsigned resolve_experiment_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned experiment_threads_from_env(unsigned fallback) {
  const char* raw = std::getenv("RST_THREADS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<unsigned>(value);
}

unsigned experiment_partitions_from_env(unsigned fallback) {
  const char* raw = std::getenv("RST_PARTITIONS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) return fallback;
  return static_cast<unsigned>(value);
}

ExperimentSummary run_emergency_brake_experiment(const TestbedConfig& base_config, int n_trials,
                                                 unsigned threads) {
  if (n_trials <= 0) return ExperimentSummary{};
  std::vector<TrialResult> trials(static_cast<std::size_t>(n_trials));
  // Trial i is fully determined by seed+i and owns every piece of simulation
  // state, so it can run on any worker; slot i keeps the seed order.
  const auto run_one = [&](std::size_t i) {
    TestbedConfig config = base_config;
    config.seed = base_config.seed + static_cast<std::uint64_t>(i);
    TestbedScenario scenario{config};
    trials[i] = scenario.run_emergency_brake_trial();
  };
  const unsigned resolved = resolve_experiment_threads(threads);
  if (resolved <= 1) {
    for (std::size_t i = 0; i < trials.size(); ++i) run_one(i);
  } else {
    sim::TrialPool pool{static_cast<unsigned>(
        std::min<std::size_t>(resolved, trials.size()))};
    pool.run_indexed(trials.size(), run_one);
  }
  return aggregate_experiment_summary(std::move(trials));
}

ExperimentSummary aggregate_experiment_summary(std::vector<TrialResult> trials) {
  ExperimentSummary summary;
  summary.trials = std::move(trials);
  // Stats accumulate from the seed-ordered vector, never in completion
  // order, so the aggregate is bit-identical at any thread count.
  auto& trials_done = summary.metrics.counter("trials");
  auto& trials_failed = summary.metrics.counter("trials_failed");
  auto& h_det_rsu = summary.metrics.histogram("stage.detection_to_rsu_ms");
  auto& h_rsu_obu = summary.metrics.histogram("stage.rsu_to_obu_ms");
  auto& h_obu_act = summary.metrics.histogram("stage.obu_to_actuator_ms");
  auto& h_total = summary.metrics.histogram("stage.total_ms");
  for (const auto& r : summary.trials) {
    trials_done.add();
    if (r.stopped_by_denm) {
      summary.detection_to_rsu_ms.add(r.meas_detection_to_rsu_ms);
      summary.rsu_to_obu_ms.add(r.meas_rsu_to_obu_ms);
      summary.obu_to_actuator_ms.add(r.meas_obu_to_actuator_ms);
      summary.total_ms.add(r.meas_total_ms);
      summary.braking_distance_m.add(r.braking_distance_m);
      h_det_rsu.observe(r.meas_detection_to_rsu_ms);
      h_rsu_obu.observe(r.meas_rsu_to_obu_ms);
      h_obu_act.observe(r.meas_obu_to_actuator_ms);
      h_total.observe(r.meas_total_ms);
    } else {
      ++summary.failures;
      trials_failed.add();
    }
  }
  return summary;
}

std::string format_table2(const ExperimentSummary& summary, int max_rows) {
  std::string out;
  char line[256];
  out += "Table II: Time interval measurements (ms)\n";
  out += "  Interval                       ";
  int shown = 0;
  for (const auto& t : summary.trials) {
    if (!t.stopped_by_denm || shown >= max_rows) continue;
    std::snprintf(line, sizeof line, "  run#%d", ++shown);
    out += line;
  }
  out += "    Avg\n";

  const auto row = [&](const char* label, auto getter, const sim::RunningStats& stats) {
    std::snprintf(line, sizeof line, "  %-30s", label);
    out += line;
    int n = 0;
    for (const auto& t : summary.trials) {
      if (!t.stopped_by_denm || n >= max_rows) continue;
      ++n;
      std::snprintf(line, sizeof line, " %6.1f", getter(t));
      out += line;
    }
    std::snprintf(line, sizeof line, " %6.1f\n", stats.mean());
    out += line;
  };
  row("#2->#3 Detection -> RSU DENM", [](const TrialResult& t) { return t.meas_detection_to_rsu_ms; },
      summary.detection_to_rsu_ms);
  row("#3->#4 RSU DENM -> OBU recv", [](const TrialResult& t) { return t.meas_rsu_to_obu_ms; },
      summary.rsu_to_obu_ms);
  row("#4->#5 OBU recv -> actuators", [](const TrialResult& t) { return t.meas_obu_to_actuator_ms; },
      summary.obu_to_actuator_ms);
  row("Total delay (#2->#5)", [](const TrialResult& t) { return t.meas_total_ms; },
      summary.total_ms);
  std::snprintf(line, sizeof line,
                "  paper: 27.6 / 1.6 / 29.2 / 58.4 ms avg over 5 runs; all totals < 100 ms\n");
  out += line;
  return out;
}

std::string format_table3(const ExperimentSummary& summary, int max_rows) {
  std::string out;
  char line[256];
  out += "Table III: Distance travelled from detection to halt (m)\n  ";
  int n = 0;
  for (const auto& t : summary.trials) {
    if (!t.stopped_by_denm || n >= max_rows) continue;
    ++n;
    std::snprintf(line, sizeof line, "run#%d: %.2f  ", n, t.braking_distance_m);
    out += line;
  }
  std::snprintf(line, sizeof line, "\n  avg %.3f m, variance %.4f (paper: avg 0.36 m, var 0.0022)\n",
                summary.braking_distance_m.mean(), summary.braking_distance_m.population_variance());
  out += line;
  return out;
}

}  // namespace rst::core
