#include "rst/core/experiment.hpp"

#include <cstdio>

namespace rst::core {

std::vector<double> ExperimentSummary::total_samples_ms() const {
  std::vector<double> out;
  for (const auto& t : trials) {
    if (t.stopped_by_denm) out.push_back(t.meas_total_ms);
  }
  return out;
}

std::vector<double> ExperimentSummary::braking_samples_m() const {
  std::vector<double> out;
  for (const auto& t : trials) {
    if (t.stopped_by_denm) out.push_back(t.braking_distance_m);
  }
  return out;
}

ExperimentSummary run_emergency_brake_experiment(const TestbedConfig& base_config, int n_trials) {
  ExperimentSummary summary;
  for (int i = 0; i < n_trials; ++i) {
    TestbedConfig config = base_config;
    config.seed = base_config.seed + static_cast<std::uint64_t>(i);
    TestbedScenario scenario{config};
    TrialResult r = scenario.run_emergency_brake_trial();
    if (r.stopped_by_denm) {
      summary.detection_to_rsu_ms.add(r.meas_detection_to_rsu_ms);
      summary.rsu_to_obu_ms.add(r.meas_rsu_to_obu_ms);
      summary.obu_to_actuator_ms.add(r.meas_obu_to_actuator_ms);
      summary.total_ms.add(r.meas_total_ms);
      summary.braking_distance_m.add(r.braking_distance_m);
    } else {
      ++summary.failures;
    }
    summary.trials.push_back(std::move(r));
  }
  return summary;
}

std::string format_table2(const ExperimentSummary& summary, int max_rows) {
  std::string out;
  char line[256];
  out += "Table II: Time interval measurements (ms)\n";
  out += "  Interval                       ";
  int shown = 0;
  for (const auto& t : summary.trials) {
    if (!t.stopped_by_denm || shown >= max_rows) continue;
    std::snprintf(line, sizeof line, "  run#%d", ++shown);
    out += line;
  }
  out += "    Avg\n";

  const auto row = [&](const char* label, auto getter, const sim::RunningStats& stats) {
    std::snprintf(line, sizeof line, "  %-30s", label);
    out += line;
    int n = 0;
    for (const auto& t : summary.trials) {
      if (!t.stopped_by_denm || n >= max_rows) continue;
      ++n;
      std::snprintf(line, sizeof line, " %6.1f", getter(t));
      out += line;
    }
    std::snprintf(line, sizeof line, " %6.1f\n", stats.mean());
    out += line;
  };
  row("#2->#3 Detection -> RSU DENM", [](const TrialResult& t) { return t.meas_detection_to_rsu_ms; },
      summary.detection_to_rsu_ms);
  row("#3->#4 RSU DENM -> OBU recv", [](const TrialResult& t) { return t.meas_rsu_to_obu_ms; },
      summary.rsu_to_obu_ms);
  row("#4->#5 OBU recv -> actuators", [](const TrialResult& t) { return t.meas_obu_to_actuator_ms; },
      summary.obu_to_actuator_ms);
  row("Total delay (#2->#5)", [](const TrialResult& t) { return t.meas_total_ms; },
      summary.total_ms);
  std::snprintf(line, sizeof line,
                "  paper: 27.6 / 1.6 / 29.2 / 58.4 ms avg over 5 runs; all totals < 100 ms\n");
  out += line;
  return out;
}

std::string format_table3(const ExperimentSummary& summary, int max_rows) {
  std::string out;
  char line[256];
  out += "Table III: Distance travelled from detection to halt (m)\n  ";
  int n = 0;
  for (const auto& t : summary.trials) {
    if (!t.stopped_by_denm || n >= max_rows) continue;
    ++n;
    std::snprintf(line, sizeof line, "run#%d: %.2f  ", n, t.braking_distance_m);
    out += line;
  }
  std::snprintf(line, sizeof line, "\n  avg %.3f m, variance %.4f (paper: avg 0.36 m, var 0.0022)\n",
                summary.braking_distance_m.mean(), summary.braking_distance_m.population_variance());
  out += line;
  return out;
}

}  // namespace rst::core
