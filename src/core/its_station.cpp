#include "rst/core/its_station.hpp"

namespace rst::core {

ItsStation::ItsStation(sim::Scheduler& sched, dot11p::Medium& medium, middleware::HttpLan& lan,
                       const geo::LocalFrame& frame, ItsStationConfig config,
                       its::GeoNetRouter::EgoProvider ego, sim::RandomStream rng, sim::Trace* trace)
    : sched_{sched},
      config_{std::move(config)},
      rng_{rng.child("station." + config_.name)},
      trace_{trace} {
  radio_ = std::make_unique<dot11p::Radio>(
      medium, config_.radio, [ego] { return ego().position; }, rng_.child("radio"), config_.name);
  router_ = std::make_unique<its::GeoNetRouter>(
      sched_, *radio_, frame, its::GnAddress::from_station(config_.station_id), ego,
      config_.geonet, rng_.child("gn"), trace_);
  ldm_ = std::make_unique<its::Ldm>(sched_, frame);
  // The CA service's provider is installed lazily via start_cam(); until
  // then a zeroed snapshot is produced (the service is not started).
  auto provider = std::make_shared<its::CaBasicService::VehicleDataProvider>(
      [] { return its::CaVehicleData{}; });
  its::CaConfig ca_config = config_.ca;
  ca_config.station_type = config_.station_type;
  ca_ = std::make_unique<its::CaBasicService>(
      sched_, *router_, config_.station_id,
      [provider] { return (*provider)(); }, ca_config, ldm_.get(), trace_);
  cam_provider_slot_ = provider;
  den_ = std::make_unique<its::DenBasicService>(sched_, *router_, config_.station_id, trace_,
                                                ldm_.get(), config_.den);
  if (config_.enable_cpm) {
    its::CpmConfig cpm_config = config_.cpm;
    cpm_config.station_type = config_.station_type;
    cpm_ = std::make_unique<its::CpmService>(sched_, *router_, config_.station_id, cpm_config,
                                             ldm_.get(), trace_);
  }
  if (config_.enable_dcc) {
    probe_ = std::make_unique<its::dcc::ChannelProbe>(sched_, *radio_);
    probe_->start();
    dcc_ = std::make_unique<its::dcc::ReactiveDcc>(sched_, *radio_, *probe_, config_.dcc, trace_,
                                                   "dcc." + config_.name);
    router_->set_send_hook(
        [this](dot11p::Frame frame) { dcc_->send(std::move(frame)); });
  }
  clock_ = std::make_unique<middleware::NtpClock>(sched_, rng_.child("clock"), config_.name,
                                                  config_.ntp);
  http_ = std::make_unique<middleware::HttpHost>(lan, config_.name);
  api_ = std::make_unique<middleware::OpenC2xApi>(*http_, frame, *den_, ldm_.get(), trace_,
                                                  config_.name, ca_.get());

  mux_.register_port(its::kBtpPortCam,
                     [this](const std::vector<std::uint8_t>& payload,
                            const its::GnDeliveryMeta& meta) { ca_->on_btp_payload(payload, meta); });
  mux_.register_port(its::kBtpPortDenm,
                     [this](const std::vector<std::uint8_t>& payload,
                            const its::GnDeliveryMeta& meta) { den_->on_btp_payload(payload, meta); });
  if (cpm_) {
    mux_.register_port(its::kBtpPortCpm, [this](const std::vector<std::uint8_t>& payload,
                                                const its::GnDeliveryMeta& meta) {
      cpm_->on_btp_payload(payload, meta);
    });
  }

  http_->handle("/status",
                [this](const middleware::HttpRequest&) {
                  return middleware::HttpResponse{200, status_report()};
                });

  // OpenC2X-equivalent stack processing between radio delivery and the
  // facilities (decode + dispatch + queueing), then the BTP demux.
  router_->set_delivery_handler(
      [this](const Bytes& pdu, const its::GnDeliveryMeta& meta) {
        const auto latency =
            rng_.normal_time(config_.stack_rx_mean, config_.stack_rx_sigma, config_.stack_rx_min);
        // Capturing `pdu` shares the payload buffer; no copy per delivery.
        sched_.post_in(latency, [this, pdu, meta] {
          its::GnDeliveryMeta handoff_meta = meta;
          handoff_meta.delivered_at = sched_.now();
          mux_.on_gn_payload(pdu, handoff_meta);
        });
      });
}

void ItsStation::start_cam(its::CaBasicService::VehicleDataProvider provider) {
  *cam_provider_slot_ = std::move(provider);
  ca_->start();
}

std::string ItsStation::status_report() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line, "station %u '%s' @ %s (wall %s)\n", config_.station_id,
                config_.name.c_str(), sched_.now().to_string().c_str(),
                clock_->now_wall().to_string().c_str());
  out += line;
  const auto& radio = radio_->stats();
  std::snprintf(line, sizeof line, "  radio: tx=%llu rx=%llu queue_drops=%llu busy=%s\n",
                static_cast<unsigned long long>(radio.tx_frames),
                static_cast<unsigned long long>(radio.rx_frames),
                static_cast<unsigned long long>(radio.queue_drops),
                radio_->cumulative_busy_time().to_string().c_str());
  out += line;
  const auto& gn = router_->stats();
  std::snprintf(line, sizeof line,
                "  geonet: originated=%llu delivered=%llu forwarded=%llu dup=%llu expired=%llu\n",
                static_cast<unsigned long long>(gn.originated),
                static_cast<unsigned long long>(gn.delivered_up),
                static_cast<unsigned long long>(gn.forwarded),
                static_cast<unsigned long long>(gn.duplicates_dropped),
                static_cast<unsigned long long>(gn.lifetime_expired_dropped));
  out += line;
  std::snprintf(line, sizeof line, "  btp: dispatched=%llu unknown_port=%llu parse_errors=%llu\n",
                static_cast<unsigned long long>(mux_.stats().dispatched),
                static_cast<unsigned long long>(mux_.stats().unknown_port),
                static_cast<unsigned long long>(mux_.stats().parse_errors));
  out += line;
  std::snprintf(line, sizeof line, "  ca: sent=%llu received=%llu t_gen_cam=%s\n",
                static_cast<unsigned long long>(ca_->stats().cams_sent),
                static_cast<unsigned long long>(ca_->stats().cams_received),
                ca_->current_t_gen_cam().to_string().c_str());
  out += line;
  std::snprintf(line, sizeof line, "  den: sent=%llu received=%llu repetitions=%llu kaf=%llu\n",
                static_cast<unsigned long long>(den_->stats().denms_sent),
                static_cast<unsigned long long>(den_->stats().denms_received),
                static_cast<unsigned long long>(den_->stats().repetitions),
                static_cast<unsigned long long>(den_->stats().kaf_retransmissions));
  out += line;
  if (cpm_) {
    std::snprintf(line, sizeof line,
                  "  cpm: sent=%llu received=%llu published=%llu fused=%llu deduped=%llu\n",
                  static_cast<unsigned long long>(cpm_->stats().cpms_sent),
                  static_cast<unsigned long long>(cpm_->stats().cpms_received),
                  static_cast<unsigned long long>(cpm_->stats().objects_published),
                  static_cast<unsigned long long>(cpm_->stats().objects_fused),
                  static_cast<unsigned long long>(cpm_->stats().objects_deduped));
    out += line;
  }
  return out;
}


}  // namespace rst::core
