#include "rst/core/platoon.hpp"

#include <algorithm>
#include <limits>

namespace rst::core {

using namespace rst::sim::literals;

PlatoonScenario::PlatoonScenario(PlatoonConfig config)
    : config_{std::move(config)}, rng_{config_.seed, "platoon"}, frame_{config_.origin} {
  dot11p::ChannelModel channel;
  channel.path_loss = std::make_shared<dot11p::LogDistanceModel>(
      dot11p::LogDistanceModel::its_g5(config_.path_loss_exponent));
  channel.shadowing_sigma_db = config_.shadowing_sigma_db;
  medium_ = std::make_unique<dot11p::Medium>(sched_, rng_.child("medium"), std::move(channel));
  lan_ = std::make_unique<middleware::HttpLan>(sched_, rng_.child("lan"));
  if (config_.leader_uses_cellular) {
    cellular_ = std::make_unique<cellular::CellularNetwork>(sched_, rng_.child("cell"),
                                                            config_.cellular);
  }

  ItsStationConfig rsu_config;
  rsu_config.station_id = 900;
  rsu_config.station_type = its::StationType::RoadSideUnit;
  rsu_config.name = "rsu";
  rsu_config.radio = config_.radio;
  rsu_ = std::make_unique<ItsStation>(
      sched_, *medium_, *lan_, frame_, rsu_config,
      [pos = config_.rsu_position] { return its::EgoState{pos, 0.0, 0.0}; }, rng_.child("rsu"),
      &trace_);

  for (int i = 0; i < config_.n_vehicles; ++i) {
    auto unit = std::make_unique<Unit>();
    unit->dynamics = std::make_unique<vehicle::VehicleDynamics>(
        sched_, config_.vehicle_params, rng_.child("veh" + std::to_string(i)));
    unit->dynamics->reset({0.0, -config_.spacing_m * i}, 0.0, config_.speed_mps);
    unit->bus = std::make_unique<middleware::MessageBus>(sched_, rng_.child("bus" + std::to_string(i)));
    unit->host = std::make_unique<middleware::HttpHost>(*lan_, "jetson" + std::to_string(i));

    ItsStationConfig obu_config;
    obu_config.station_id = static_cast<its::StationId>(100 + i);
    obu_config.station_type = its::StationType::PassengerCar;
    obu_config.name = "obu" + std::to_string(i);
    obu_config.radio = config_.radio;
    if (config_.use_cacc) {
      // CACC needs a fast awareness stream (platoon profile: 10 Hz CAMs).
      obu_config.ca.t_gen_cam_max = sim::SimTime::milliseconds(100);
    }
    vehicle::VehicleDynamics* dyn = unit->dynamics.get();
    unit->obu = std::make_unique<ItsStation>(
        sched_, *medium_, *lan_, frame_, obu_config,
        [dyn] { return its::EgoState{dyn->position(), dyn->speed_mps(), dyn->heading_rad()}; },
        rng_.child("obu" + std::to_string(i)), &trace_);

    vehicle::MessageHandlerConfig handler_config;
    handler_config.poll_period = config_.poll_period;
    handler_config.obu_hostname = obu_config.name;
    unit->handler = std::make_unique<vehicle::MessageHandler>(
        sched_, *unit->bus, *unit->host, rng_.child("handler" + std::to_string(i)), handler_config,
        &trace_, "msg_handler." + std::to_string(i));

    Unit* raw = unit.get();
    unit->bus->subscribe_to<std::string>("v2x_emergency", [this, raw](const std::string&) {
      if (raw->power_cut) return;
      raw->power_cut = true;
      raw->power_cut_at = sched_.now();
      raw->dynamics->cut_power();
    });

    if (config_.use_cacc) {
      // Every member advertises CAMs; followers regulate their gap from
      // the predecessor's CAMs.
      unit->obu->start_cam([dyn] {
        its::CaVehicleData data;
        data.position = dyn->position();
        data.heading_rad = dyn->heading_rad();
        data.speed_mps = dyn->speed_mps();
        return data;
      });
      if (i > 0) {
        unit->cacc = std::make_unique<vehicle::CaccController>(
            sched_, *unit->dynamics, config_.cacc, &trace_, "cacc." + std::to_string(i));
        const its::StationId predecessor = static_cast<its::StationId>(100 + i - 1);
        vehicle::CaccController* cacc = unit->cacc.get();
        unit->obu->ca().set_cam_callback(
            [cacc, predecessor](const its::Cam& cam, const its::GnDeliveryMeta& meta) {
              if (cam.header.station_id == predecessor) {
                cacc->on_leader_cam(cam, meta.source_position);
              }
            });
      }
    }
    units_.push_back(std::move(unit));
  }
}

PlatoonScenario::~PlatoonScenario() {
  for (auto& u : units_) u->cruise_timer.cancel();
}

void PlatoonScenario::cruise_tick(Unit& unit) {
  if (!unit.power_cut) {
    const double throttle =
        std::clamp(0.05 + 1.5 * (config_.speed_mps - unit.dynamics->speed_mps()), 0.0, 1.0);
    unit.dynamics->set_throttle(throttle);
  }
  unit.cruise_timer = sched_.schedule_in(50_ms, [this, &unit] { cruise_tick(unit); });
}

PlatoonResult PlatoonScenario::run_emergency_stop(sim::SimTime warmup, sim::SimTime timeout) {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    auto& u = units_[i];
    u->dynamics->start();
    u->handler->start();
    if (u->cacc) {
      u->cacc->start();  // follower: gap regulation replaces cruise control
    } else {
      cruise_tick(*u);
    }
    (void)i;
  }
  sched_.run_until(sched_.now() + warmup);

  // The "detection": the infrastructure advertises a crossing collision
  // risk ahead of the platoon.
  const sim::SimTime t_trigger = sched_.now();
  its::DenmRequest request;
  request.event_type = its::EventType::of(
      its::Cause::CollisionRisk,
      static_cast<std::uint8_t>(its::CollisionRiskSubCause::CrossingCollisionRisk));
  request.information_quality = 5;
  request.event_position = config_.rsu_position;
  request.validity = 10_s;
  request.repetition_interval = config_.denm_repetition;
  request.repetition_duration = 5_s;
  request.destination_area = geo::GeoArea::circle(config_.rsu_position, 300.0);

  if (config_.leader_uses_cellular) {
    // RSU -> leader over the cellular network; the leader re-advertises on
    // 802.11p for the followers (multi-technology arrangement).
    auto& rsu_ep = cellular_->create_endpoint("rsu");
    auto& leader_ep = cellular_->create_endpoint("leader");
    (void)rsu_ep;
    leader_ep.set_receive_callback(
        [this, request](const std::vector<std::uint8_t>& payload, const std::string&) {
          its::Denm denm;
          try {
            denm = its::Denm::decode(payload);
          } catch (const asn1::DecodeError&) {
            return;
          }
          Unit& leader = *units_.front();
          if (!leader.power_cut) {
            leader.power_cut = true;
            leader.power_cut_at = sched_.now();
            leader.dynamics->cut_power();
          }
          leader.obu->den().trigger(request);  // re-broadcast on ITS-G5
        });
    its::Denm denm;
    denm.header.station_id = 900;
    denm.management.action_id = {900, 1};
    denm.management.detection_time = its::to_timestamp_its(sched_.now());
    denm.management.reference_time = its::to_timestamp_its(sched_.now());
    denm.management.station_type = its::StationType::RoadSideUnit;
    denm.situation = its::SituationContainer{.information_quality = 5,
                                             .event_type = request.event_type,
                                             .linked_cause = {}};
    cellular_->send("rsu", "leader", denm.encode());
  } else {
    rsu_->den().trigger(request);
  }

  const sim::SimTime deadline = sched_.now() + timeout;
  double min_gap = std::numeric_limits<double>::infinity();
  while (sched_.now() < deadline) {
    sched_.run_until(sched_.now() + 1_ms);
    // Bumper-to-bumper gaps between adjacent vehicles (rear-end check).
    for (std::size_t i = 1; i < units_.size(); ++i) {
      const double gap = units_[i - 1]->dynamics->position().y -
                         units_[i]->dynamics->position().y -
                         config_.vehicle_params.length_m;
      min_gap = std::min(min_gap, gap);
    }
    const bool all_stopped = std::all_of(units_.begin(), units_.end(), [](const auto& u) {
      return u->power_cut && u->dynamics->stopped();
    });
    if (all_stopped) break;
  }

  PlatoonResult result;
  result.min_gap_m = min_gap;
  result.all_stopped = true;
  for (int i = 0; i < static_cast<int>(units_.size()); ++i) {
    PlatoonVehicleResult v;
    v.index = i;
    v.stopped = units_[i]->power_cut && units_[i]->dynamics->stopped();
    if (units_[i]->power_cut) {
      v.detection_to_action_ms = (units_[i]->power_cut_at - t_trigger).to_milliseconds();
    }
    result.all_stopped = result.all_stopped && v.stopped;
    result.worst_detection_to_action_ms =
        std::max(result.worst_detection_to_action_ms, v.detection_to_action_ms);
    result.vehicles.push_back(v);
  }
  return result;
}

}  // namespace rst::core
