#include "rst/core/scale_model.hpp"

#include <cmath>
#include <stdexcept>

namespace rst::core {

namespace {
constexpr double kGravity = 9.81;
constexpr double kAirDensity = 1.225;
}  // namespace

double full_size_braking_distance_m(const FullSizeVehicle& vehicle, double speed_mps,
                                    double reaction_s) {
  if (speed_mps < 0) throw std::invalid_argument{"full_size_braking_distance_m: negative speed"};
  double distance = speed_mps * reaction_s;
  double v = speed_mps;
  const double dt = 1e-3;
  const double brake_decel = vehicle.friction_mu * vehicle.brake_efficiency * kGravity;
  const double drag_term = 0.5 * kAirDensity * vehicle.drag_coefficient * vehicle.frontal_area_m2 /
                           vehicle.mass_kg;
  while (v > 0) {
    const double decel = brake_decel + drag_term * v * v;
    const double v_next = std::max(0.0, v - decel * dt);
    distance += (v + v_next) / 2 * dt;
    v = v_next;
  }
  return distance;
}

double froude_equivalent_speed_mps(double model_speed_mps, double scale) {
  if (scale <= 0) throw std::invalid_argument{"froude_equivalent_speed_mps: non-positive scale"};
  return model_speed_mps * std::sqrt(scale);
}

double froude_equivalent_distance_m(double model_distance_m, double scale) {
  if (scale <= 0) throw std::invalid_argument{"froude_equivalent_distance_m: non-positive scale"};
  return model_distance_m * scale;
}

double implied_deceleration_mps2(double speed_mps, double braking_distance_m) {
  if (braking_distance_m <= 0) {
    throw std::invalid_argument{"implied_deceleration_mps2: non-positive distance"};
  }
  return speed_mps * speed_mps / (2.0 * braking_distance_m);
}

}  // namespace rst::core
