#include "rst/core/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "rst/core/experiment.hpp"
#include "rst/sim/partitioned_scheduler.hpp"

namespace rst::core {

namespace {
std::unique_ptr<dot11p::PathLossModel> make_path_loss(const TestbedConfig& cfg) {
  auto base = std::make_unique<dot11p::LogDistanceModel>(
      dot11p::LogDistanceModel::its_g5(cfg.path_loss_exponent));
  if (cfg.walls.empty()) return base;
  return std::make_unique<dot11p::ObstacleShadowingModel>(std::move(base), cfg.walls,
                                                          cfg.obstacle_index);
}
}  // namespace

void TestbedConfig::validate() const {
  const auto positive = [](double v, const char* field) {
    if (!(v > 0)) throw std::invalid_argument{std::string{"TestbedConfig: "} + field +
                                              " must be positive"};
  };
  positive(planner.target_speed_mps, "planner.target_speed_mps");
  positive(hazard.action_point_distance_m, "hazard.action_point_distance_m");
  positive(vehicle_params.mass_kg, "vehicle_params.mass_kg");
  positive(vehicle_params.wheelbase_m, "vehicle_params.wheelbase_m");
  positive(vehicle_params.max_motor_force_n, "vehicle_params.max_motor_force_n");
  positive(vehicle_params.power_cut_decel_mps2, "vehicle_params.power_cut_decel_mps2");
  if (message_handler.poll_period <= sim::SimTime::zero()) {
    throw std::invalid_argument{"TestbedConfig: message_handler.poll_period must be positive"};
  }
  if (detection.processing_period <= sim::SimTime::zero()) {
    throw std::invalid_argument{"TestbedConfig: detection.processing_period must be positive"};
  }
  if (shadowing_sigma_db < 0) {
    throw std::invalid_argument{"TestbedConfig: shadowing_sigma_db must be non-negative"};
  }
  if (path_loss_exponent < 1.0) {
    throw std::invalid_argument{"TestbedConfig: path_loss_exponent below free-space is unphysical"};
  }
  if (!std::isfinite(medium_power_floor_dbm) || medium_power_floor_dbm > 0.0) {
    throw std::invalid_argument{
        "TestbedConfig: medium_power_floor_dbm must be a finite negative level"};
  }
  if (!std::isfinite(medium_grid_cell_m) || medium_grid_cell_m < 0.0) {
    throw std::invalid_argument{
        "TestbedConfig: medium_grid_cell_m must be >= 0 (0 derives from the power floor)"};
  }
  if (medium_partitions < 0) {
    throw std::invalid_argument{
        "TestbedConfig: medium_partitions must be non-negative (0 = environment)"};
  }
  if (cpm_enable) {
    if (cpm_interval <= sim::SimTime::zero()) {
      throw std::invalid_argument{"TestbedConfig: cpm_interval must be positive"};
    }
    if (cpm_object_lifetime <= sim::SimTime::zero()) {
      throw std::invalid_argument{"TestbedConfig: cpm_object_lifetime must be positive"};
    }
    if (cpm_redundancy_window < sim::SimTime::zero()) {
      throw std::invalid_argument{"TestbedConfig: cpm_redundancy_window must be non-negative"};
    }
  }
  if (geo::distance(track_start, track_end) < 1e-6) {
    throw std::invalid_argument{"TestbedConfig: track_start and track_end coincide"};
  }
  if (obu.station_id == rsu.station_id) {
    throw std::invalid_argument{"TestbedConfig: obu and rsu station ids must differ"};
  }
  if (obu.name == rsu.name) {
    throw std::invalid_argument{"TestbedConfig: obu and rsu hostnames must differ"};
  }
}

TestbedScenario::TestbedScenario(TestbedConfig config)
    : config_{std::move(config)}, rng_{config_.seed, "testbed"}, frame_{config_.origin} {
  config_.validate();
  // The injector exists only when there is a plan: with no plan every
  // component hook stays a null-pointer no-op and the run is byte-identical
  // to one without the fault subsystem (no extra events, no extra draws).
  if (!config_.fault_plan.empty()) {
    faults_ = std::make_unique<sim::FaultInjector>(sched_, rng_.child("faults"),
                                                   config_.fault_plan, &trace_);
  }
  dot11p::ChannelModel channel;
  channel.path_loss = std::shared_ptr<const dot11p::PathLossModel>{make_path_loss(config_)};
  channel.shadowing_sigma_db = config_.shadowing_sigma_db;
  channel.per_link_streams = config_.medium_per_link_streams;
  channel.spatial_index = config_.medium_spatial_index;
  channel.power_floor_dbm = config_.medium_power_floor_dbm;
  channel.cell_size_m = config_.medium_grid_cell_m;
  const int parts = config_.medium_partitions > 0
                        ? config_.medium_partitions
                        : static_cast<int>(experiment_partitions_from_env(1));
  if (parts > 1 && config_.medium_spatial_index) {
    sim::PartitionedScheduler::Config pcfg;
    pcfg.partitions = static_cast<std::uint32_t>(parts);
    engine_ = std::make_unique<sim::PartitionedScheduler>(pcfg);
  }
  medium_ = std::make_unique<dot11p::Medium>(sched_, rng_.child("medium"), std::move(channel));
  medium_->set_fault_injector(faults_.get());
  if (engine_) medium_->set_partition_engine(engine_.get());
  lan_ = std::make_unique<middleware::HttpLan>(sched_, rng_.child("lan"), config_.lan);
  lan_->set_fault_injector(faults_.get());
  vehicle_bus_ = std::make_unique<middleware::MessageBus>(sched_, rng_.child("vbus"), config_.bus);
  edge_bus_ = std::make_unique<middleware::MessageBus>(sched_, rng_.child("ebus"), config_.bus);

  // --- Vehicle ---
  track_ = std::make_unique<vehicle::Track>(
      vehicle::Track::straight(config_.track_start, config_.track_end));
  dynamics_ = std::make_unique<vehicle::VehicleDynamics>(sched_, config_.vehicle_params,
                                                         rng_.child("vehicle"));
  const double initial_heading =
      geo::heading_from_vector(config_.track_end - config_.track_start);
  dynamics_->reset(config_.vehicle_start, initial_heading);
  line_sensor_ = std::make_unique<vehicle::LineCameraSensor>(
      sched_, *vehicle_bus_, *track_, *dynamics_, rng_.child("line"), config_.line_sensor);
  planner_ = std::make_unique<vehicle::MotionPlanner>(sched_, *vehicle_bus_, config_.planner,
                                                      &trace_, "planner");
  jetson_clock_ = std::make_unique<middleware::NtpClock>(sched_, rng_.child("jclock"), "jetson",
                                                         config_.jetson_ntp);
  control_ = std::make_unique<vehicle::ControlModule>(sched_, *vehicle_bus_, *dynamics_,
                                                      rng_.child("control"), config_.control,
                                                      &trace_, "control", jetson_clock_.get());
  if (config_.enable_lidar_aeb) {
    lidar_ = std::make_unique<vehicle::ScanningLidar>(sched_, *vehicle_bus_, *dynamics_,
                                                      rng_.child("lidar"), config_.lidar);
    lidar_->set_walls(config_.walls);
    aeb_ = std::make_unique<vehicle::AebController>(sched_, *vehicle_bus_, config_.aeb, &trace_,
                                                    "aeb");
  }
  if (config_.message_handler.watchdog) {
    // Graceful degradation: while infrastructure contact is lost the AEB is
    // the armed stop path (the planner independently caps its speed).
    vehicle_bus_->subscribe_to<vehicle::WatchdogState>(
        "watchdog", [this](const vehicle::WatchdogState& state) {
          if (!aeb_) return;
          if (state.degraded) aeb_->start();
          else aeb_->stop();
        });
  }
  jetson_host_ = std::make_unique<middleware::HttpHost>(*lan_, "jetson");
  vehicle::MessageHandler::Config mh_config = config_.message_handler;
  mh_config.obu_hostname = config_.obu.name;
  message_handler_ = std::make_unique<vehicle::MessageHandler>(
      sched_, *vehicle_bus_, *jetson_host_, rng_.child("handler"), mh_config, &trace_,
      "msg_handler");

  // --- Road-side infrastructure ---
  roadside::RoadsideCamera::Config cam_config = config_.camera;
  cam_config.position = config_.camera_position;
  cam_config.facing_rad = config_.camera_facing_rad;
  camera_ = std::make_unique<roadside::RoadsideCamera>(sched_, cam_config);
  camera_->set_fault_injector(faults_.get());
  camera_->set_walls(config_.walls);  // buildings block the optical LOS too
  camera_->add_object({next_object_id_++, [this] { return dynamics_->position(); },
                       config_.presentation, "car"});
  yolo_ = std::make_unique<roadside::YoloSimulator>(rng_.child("yolo"), config_.yolo);
  yolo_->set_fault_injector(faults_.get());
  detection_ = std::make_unique<roadside::ObjectDetectionService>(
      sched_, *edge_bus_, *camera_, *yolo_, rng_.child("od"), config_.detection, &trace_,
      "object_detection");
  edge_host_ = std::make_unique<middleware::HttpHost>(*lan_, "edge");
  roadside::HazardAdvertisementService::Config hz_config = config_.hazard;
  hz_config.rsu_hostname = config_.rsu.name;
  edge_clock_ = std::make_unique<middleware::NtpClock>(sched_, rng_.child("eclock"), "edge",
                                                       config_.edge_ntp);

  // --- Stations (before the hazard service, which needs the RSU's LDM) ---
  if (config_.cpm_enable) {
    const auto enable_cpm = [&](ItsStationConfig& st) {
      st.enable_cpm = true;
      st.cpm.interval = config_.cpm_interval;
      st.cpm.redundancy_window = config_.cpm_redundancy_window;
      // Remote percepts pass the same quality bar as local detections do
      // at the hazard gate.
      st.cpm.fusion_min_confidence = config_.hazard.min_confidence;
    };
    enable_cpm(config_.obu);
    enable_cpm(config_.rsu);
  }
  if (config_.use_gnss) {
    gnss_ = std::make_unique<vehicle::GnssReceiver>(sched_, *dynamics_, rng_.child("gnss"),
                                                    config_.gnss);
    gnss_->set_fault_injector(faults_.get());
  }
  obu_ = std::make_unique<ItsStation>(
      sched_, *medium_, *lan_, frame_, config_.obu,
      [this] {
        // A real OBU advertises its GNSS fix, not ground truth.
        const geo::Vec2 pos = gnss_ ? gnss_->position() : dynamics_->position();
        return its::EgoState{pos, dynamics_->speed_mps(), dynamics_->heading_rad()};
      },
      rng_.child("obu"), &trace_);
  rsu_ = std::make_unique<ItsStation>(
      sched_, *medium_, *lan_, frame_, config_.rsu,
      [pos = config_.rsu_position] { return its::EgoState{pos, 0.0, 0.0}; }, rng_.child("rsu"),
      &trace_);

  if (config_.cpm_enable) {
    obu_->ldm().set_perceived_object_lifetime(config_.cpm_object_lifetime);
    rsu_->ldm().set_perceived_object_lifetime(config_.cpm_object_lifetime);
    obu_->cpm()->set_metrics(&metrics_);
    rsu_->cpm()->set_metrics(&metrics_);
    // The detection stream feeds the RSU's LDM continuously (not only at
    // DENM trigger time) so the CP service has percepts to publish.
    edge_bus_->subscribe_to<roadside::DetectionBatch>(
        "detections", [this](const roadside::DetectionBatch& batch) { feed_rsu_ldm(batch); });
    // The OBU consumes the fused picture: every accepted remote percept is
    // assessed against the ego track by the collision predictor.
    obu_->cpm()->set_fused_callback(
        [this](const its::PerceivedObject& object, const its::GnDeliveryMeta&) {
          on_fused_percept(object);
        });
  }

  hazard_ = std::make_unique<roadside::HazardAdvertisementService>(
      sched_, *edge_bus_, *edge_host_, frame_, config_.camera_position, config_.camera_facing_rad,
      rng_.child("hazard"), hz_config, &rsu_->ldm(), &trace_, "hazard_service");

  // Alternative warning bearer: RSU -> vehicle over a cellular network,
  // push-delivered to a 5G modem that feeds the motion planner directly.
  if (config_.warning_path != WarningPath::ItsG5) {
    const auto cell_config = config_.warning_path == WarningPath::CellularUrllc
                                 ? cellular::CellularConfig::urllc()
                                 : cellular::CellularConfig{};
    cellular_ = std::make_unique<cellular::CellularNetwork>(sched_, rng_.child("cellular"),
                                                            cell_config);
    cellular_->create_endpoint("rsu");
    auto& modem = cellular_->create_endpoint("vehicle");
    modem.set_receive_callback(
        [this](const std::vector<std::uint8_t>& payload, const std::string&) {
          its::Denm denm;
          try {
            denm = its::Denm::decode(payload);
          } catch (const asn1::DecodeError&) {
            return;
          }
          trace_.record_event(sched_.now(), sim::Stage::ModemDenmRx, config_.obu.station_id,
                              sim::pack_action(denm.management.action_id.originating_station,
                                               denm.management.action_id.sequence_number));
          if (!vehicle::MessageHandler::is_emergency(denm)) return;
          const auto cause = denm.situation->event_type.cause_code;
          // Modem-to-application handling, then straight to the planner.
          sched_.post_in(sim::SimTime::microseconds(600), [this, cause] {
            vehicle_bus_->publish("v2x_emergency",
                                  std::string{"DENM cause "} + std::to_string(cause) +
                                      " via cellular");
          });
        });
    rsu_->den().set_transmit_hook([this](const its::Denm& denm) {
      cellular_->send("rsu", "vehicle", denm.encode());
    });
  }
}

TestbedScenario::~TestbedScenario() = default;

void TestbedScenario::add_road_user(geo::Vec2 start, double heading_rad, double speed_mps,
                                    roadside::Presentation presentation) {
  RoadUser user{start, geo::vector_from_heading(heading_rad) * speed_mps, sched_.now()};
  road_users_.push_back(user);
  const auto index = road_users_.size() - 1;
  const auto position_fn = [this, index] {
    const RoadUser& u = road_users_[index];
    return u.start + u.velocity * (sched_.now() - u.t0).to_seconds();
  };
  camera_->add_object({next_object_id_++, position_fn, presentation, "car"});
  if (lidar_) lidar_->add_target({position_fn, 0.15});
  if (road_users_.size() == 1) schedule_separation_probe();
}

void TestbedScenario::add_static_obstacle(geo::Vec2 position, roadside::Presentation presentation,
                                          double radius_m) {
  camera_->add_object({next_object_id_++, [position] { return position; }, presentation, "car"});
  if (lidar_) lidar_->add_target({[position] { return position; }, radius_m});
}

void TestbedScenario::schedule_separation_probe() {
  sched_.post_in(sim::SimTime::milliseconds(10), [this] {
    for (const auto& u : road_users_) {
      const geo::Vec2 up = u.start + u.velocity * (sched_.now() - u.t0).to_seconds();
      min_separation_ = std::min(min_separation_, geo::distance(dynamics_->position(), up));
    }
    schedule_separation_probe();
  });
}

void TestbedScenario::feed_rsu_ldm(const roadside::DetectionBatch& batch) {
  for (const auto& det : batch.detections) {
    const geo::Vec2 dir =
        geo::vector_from_heading(config_.camera_facing_rad + det.detection.bearing_rad);
    its::PerceivedObject obj;
    obj.object_id = det.detection.object_id;
    obj.classification = det.detection.label;
    obj.position = config_.camera_position + dir * det.detection.estimated_distance_m;
    obj.confidence = det.detection.confidence;
    obj.measured = det.capture_time;
    // World-frame velocity by smoothed finite differences: the tracker's
    // range rate only captures the radial component.
    auto [it, fresh] = cpm_feed_tracks_.try_emplace(obj.object_id);
    if (!fresh) {
      const double dt = (det.capture_time - it->second.at).to_seconds();
      if (dt > 1e-6) {
        const geo::Vec2 raw = (obj.position - it->second.position) * (1.0 / dt);
        it->second.velocity = it->second.velocity * 0.35 + raw * 0.65;
      }
    }
    it->second.position = obj.position;
    it->second.at = det.capture_time;
    obj.velocity = it->second.velocity;
    rsu_->ldm().update_perceived_object(obj);
  }
}

void TestbedScenario::on_fused_percept(const its::PerceivedObject& object) {
  if (cpm_stop_latched_) return;
  // The RSU's camera also perceives the protagonist itself; that percept
  // comes back over CPM co-located with the ego and would read as a
  // zero-distance conflict. Percept position error is centimetres
  // (distance_noise_sigma_m), so a sub-vehicle-length gate removes only
  // self-observations.
  if (geo::distance(object.position, dynamics_->position()) < 0.75) return;
  const roadside::CollisionPredictor predictor{config_.hazard.cpa};
  its::LdmVehicleEntry ego;
  ego.station_id = config_.obu.station_id;
  ego.position = dynamics_->position();
  ego.speed_mps = dynamics_->speed_mps();
  ego.heading_rad = dynamics_->heading_rad();
  const auto threat = predictor.assess(object.position, object.velocity, {ego});
  if (!threat) return;
  cpm_stop_latched_ = true;
  metrics_.counter("cpm.emergency_stops").add();
  trace_.record_event(sched_.now(), sim::Stage::HazardDecision, config_.obu.station_id,
                      object.object_id, threat->t_cpa_s, sim::kHazardFusedPercept);
  // Short on-board application handling, then the planner's stop path.
  sched_.post_in(sim::SimTime::milliseconds(2), [this] {
    vehicle_bus_->publish("v2x_emergency", std::string{"CPM fused-percept collision risk"});
  });
}

void TestbedScenario::start_services() {
  if (services_started_) return;
  services_started_ = true;
  dynamics_->start();
  line_sensor_->start();
  control_->start();
  // With a cellular warning path the DENM is pushed to the vehicle modem;
  // the ITS-G5 polling loop stays off so the two bearers are compared
  // cleanly (one stop path at a time).
  if (config_.warning_path == WarningPath::ItsG5) message_handler_->start();
  if (lidar_) {
    lidar_->start();
    // Under the liveness watchdog the AEB is armed only while degraded
    // (watchdog topic); otherwise it runs for the whole trial as before.
    if (!config_.message_handler.watchdog) aeb_->start();
  }
  if (gnss_) gnss_->start();
  detection_->start();
  hazard_->start();
  if (config_.cpm_enable) {
    obu_->cpm()->start();
    rsu_->cpm()->start();
  }
  if (config_.enable_cam) {
    obu_->start_cam([this] {
      its::CaVehicleData data;
      data.position = dynamics_->position();
      data.heading_rad = dynamics_->heading_rad();
      data.speed_mps = dynamics_->speed_mps();
      data.longitudinal_accel_mps2 = dynamics_->acceleration_mps2();
      return data;
    });
  }
}

TrialResult TestbedScenario::run_emergency_brake_trial(sim::SimTime timeout) {
  start_services();
  const sim::SimTime t_start = sched_.now();
  const sim::SimTime deadline = t_start + timeout;

  TrialResult result;
  bool crossed = false;
  bool halted = false;
  bool detection_seen = false;
  double odometer_at_halt = 0;
  double odometer_at_detection = 0;
  double speed_at_detection = 0;

  // 1 kHz supervision loop: records the geometric Action-Point crossing
  // (step 1), the odometer reading at the detection instant, and the
  // standstill after the power cut (step 6).
  while (sched_.now() < deadline) {
    sched_.run_until(sched_.now() + sim::SimTime::milliseconds(1));

    if (!crossed) {
      const double dist = geo::distance(dynamics_->position(), config_.camera_position);
      if (dist <= config_.hazard.action_point_distance_m) {
        crossed = true;
        result.t_cross_actual = sched_.now();
      }
    }
    if (!detection_seen) {
      if (const auto* d = trace_.find_event(sim::Stage::HazardDecision, t_start)) {
        detection_seen = true;
        speed_at_detection = dynamics_->speed_mps();
        // Back out the small travel since the detection instant.
        odometer_at_detection = dynamics_->odometer_m() -
                                speed_at_detection * (sched_.now() - d->when).to_seconds();
      }
    }
    if (dynamics_->power_cut() && dynamics_->stopped()) {
      halted = true;
      result.t_halt = sched_.now();
      odometer_at_halt = dynamics_->odometer_m();
      break;
    }
  }
  result.timed_out = !halted;

  // Mine the typed stage events for the instrumented steps (the trace is
  // what the paper's NTP-stamped logs are).
  const bool cellular = config_.warning_path != WarningPath::ItsG5;
  const auto* det = trace_.find_event(sim::Stage::HazardDecision, t_start);
  const auto* rsu_send =
      trace_.find_event(sim::Stage::DenmTx, t_start, config_.rsu.station_id);
  const auto* obu_recv =
      cellular ? trace_.find_event(sim::Stage::ModemDenmRx, t_start)
               : trace_.find_event(sim::Stage::DenmRx, t_start, config_.obu.station_id);
  const auto* power_cut = trace_.find_event(sim::Stage::PowerCutCommand, t_start);

  if (det && rsu_send && obu_recv && power_cut && halted) {
    result.stopped_by_denm = true;
    result.t_detection = det->when;
    result.t_rsu_send = rsu_send->when;
    result.t_obu_receive = obu_recv->when;
    result.t_power_cut = power_cut->when;

    // NTP-measured intervals: true interval plus the clock-offset pair at
    // the (slowly drifting) current offsets of the involved nodes.
    const double off_edge = edge_clock_->offset().to_milliseconds();
    const double off_rsu = rsu_->clock().offset().to_milliseconds();
    // Over cellular, step 4 is stamped by the vehicle (modem host = Jetson).
    const double off_obu = cellular ? jetson_clock_->offset().to_milliseconds()
                                    : obu_->clock().offset().to_milliseconds();
    const double off_jetson = jetson_clock_->offset().to_milliseconds();
    result.meas_detection_to_rsu_ms =
        (result.t_rsu_send - result.t_detection).to_milliseconds() + off_rsu - off_edge;
    result.meas_rsu_to_obu_ms =
        (result.t_obu_receive - result.t_rsu_send).to_milliseconds() + off_obu - off_rsu;
    result.meas_obu_to_actuator_ms =
        (result.t_power_cut - result.t_obu_receive).to_milliseconds() + off_jetson - off_obu;
    result.meas_total_ms =
        (result.t_power_cut - result.t_detection).to_milliseconds() + off_jetson - off_edge;

    // Braking distance (Table III): travel between detection and halt.
    result.speed_at_detection_mps = speed_at_detection;
    result.braking_distance_m = odometer_at_halt - odometer_at_detection;
    result.stop_distance_to_camera_m =
        geo::distance(dynamics_->position(), config_.camera_position);
    // The estimated detection distance rides in the decision event payload
    // (action-point mode; CPA events carry the time-to-CPA instead).
    if (det->detail == sim::kHazardActionPoint) {
      result.detection_distance_m = det->value;
    }
  }
  return result;
}

}  // namespace rst::core
