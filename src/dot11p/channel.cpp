#include "rst/dot11p/channel.hpp"

#include <algorithm>
#include <cmath>

#include "rst/geo/obstacle_grid.hpp"

namespace rst::dot11p {

namespace {
constexpr double kSpeedOfLight = 299792458.0;
constexpr double kMinDistance = 0.1;  // clamp to avoid singularity at d=0
}  // namespace

FreeSpaceModel::FreeSpaceModel(double frequency_hz)
    : fixed_term_db_{20.0 * std::log10(4.0 * M_PI * frequency_hz / kSpeedOfLight)} {}

double FreeSpaceModel::loss_db(geo::Vec2 tx, geo::Vec2 rx) const {
  const double d = std::max(geo::distance(tx, rx), kMinDistance);
  return fixed_term_db_ + 20.0 * std::log10(d);
}

LogDistanceModel::LogDistanceModel(double exponent, double reference_loss_db, double reference_distance_m)
    : exponent_{exponent}, reference_loss_db_{reference_loss_db}, reference_distance_m_{reference_distance_m} {}

LogDistanceModel LogDistanceModel::its_g5(double exponent) {
  // Free-space loss at 1 m, 5.9 GHz = 47.86 dB.
  const double ref = 20.0 * std::log10(4.0 * M_PI * 5.9e9 / kSpeedOfLight);
  return LogDistanceModel{exponent, ref, 1.0};
}

double LogDistanceModel::loss_db(geo::Vec2 tx, geo::Vec2 rx) const {
  const double d = std::max(geo::distance(tx, rx), kMinDistance);
  return reference_loss_db_ + 10.0 * exponent_ * std::log10(d / reference_distance_m_);
}

DualSlopeModel::DualSlopeModel(double near_exponent, double far_exponent, double breakpoint_m,
                               double reference_loss_db, double reference_distance_m)
    : near_exponent_{near_exponent},
      far_exponent_{far_exponent},
      breakpoint_m_{breakpoint_m},
      reference_loss_db_{reference_loss_db},
      reference_distance_m_{reference_distance_m} {}

DualSlopeModel DualSlopeModel::its_g5(double near_exponent, double far_exponent,
                                      double breakpoint_m) {
  const double ref = 20.0 * std::log10(4.0 * M_PI * 5.9e9 / kSpeedOfLight);
  return DualSlopeModel{near_exponent, far_exponent, breakpoint_m, ref, 1.0};
}

double DualSlopeModel::loss_db(geo::Vec2 tx, geo::Vec2 rx) const {
  const double d = std::max(geo::distance(tx, rx), kMinDistance);
  if (d <= breakpoint_m_) {
    return reference_loss_db_ + 10.0 * near_exponent_ * std::log10(d / reference_distance_m_);
  }
  // Continuous at the breakpoint: near-slope up to it, far-slope beyond.
  return reference_loss_db_ +
         10.0 * near_exponent_ * std::log10(breakpoint_m_ / reference_distance_m_) +
         10.0 * far_exponent_ * std::log10(d / breakpoint_m_);
}

bool segments_intersect(geo::Vec2 a, geo::Vec2 b, geo::Vec2 c, geo::Vec2 d) {
  return geo::segments_intersect(a, b, c, d);
}

ObstacleShadowingModel::ObstacleShadowingModel(std::unique_ptr<PathLossModel> base,
                                               std::vector<Wall> walls, bool use_index,
                                               double index_cell_m)
    : base_{std::move(base)}, walls_{std::move(walls)} {
  boxes_.reserve(walls_.size());
  for (const auto& w : walls_) {
    boxes_.push_back({std::min(w.a.x, w.b.x), std::min(w.a.y, w.b.y),
                      std::max(w.a.x, w.b.x), std::max(w.a.y, w.b.y)});
  }
  if (use_index && !walls_.empty()) {
    std::vector<geo::Segment> segments;
    segments.reserve(walls_.size());
    for (const auto& w : walls_) segments.push_back({w.a, w.b});
    grid_ = std::make_unique<const geo::ObstacleGrid>(std::move(segments), index_cell_m);
  }
}

ObstacleShadowingModel::~ObstacleShadowingModel() = default;

namespace {
struct RayBox {
  double min_x, min_y, max_x, max_y;
  RayBox(geo::Vec2 a, geo::Vec2 b)
      : min_x{std::min(a.x, b.x)},
        min_y{std::min(a.y, b.y)},
        max_x{std::max(a.x, b.x)},
        max_y{std::max(a.y, b.y)} {}
};
}  // namespace

/// Visits the index of every wall crossing ray tx-rx in ascending wall
/// order, through the grid when enabled or a full scan otherwise. Both
/// paths apply the same box reject and exact test in the same order, so any
/// crossing-order-sensitive accumulation downstream is path-invariant.
template <typename OnWall>
void ObstacleShadowingModel::for_each_crossing(geo::Vec2 tx, geo::Vec2 rx, OnWall&& on_wall) const {
  const RayBox ray{tx, rx};
  const auto crosses = [&](std::size_t i) {
    const auto& box = boxes_[i];
    if (box.max_x < ray.min_x || box.min_x > ray.max_x || box.max_y < ray.min_y ||
        box.min_y > ray.max_y) {
      return false;
    }
    return geo::segments_intersect(tx, rx, walls_[i].a, walls_[i].b);
  };
  if (grid_) {
    index_queries_.fetch_add(1, std::memory_order_relaxed);
    grid_->for_each_candidate(tx, rx, [&](std::uint32_t i) {
      if (crosses(i)) on_wall(static_cast<std::size_t>(i));
    });
  } else {
    for (std::size_t i = 0; i < walls_.size(); ++i) {
      if (crosses(i)) on_wall(i);
    }
  }
}

bool ObstacleShadowingModel::is_nlos(geo::Vec2 tx, geo::Vec2 rx) const {
  bool nlos = false;
  for_each_crossing(tx, rx, [&](std::size_t) { nlos = true; });
  return nlos;
}

std::size_t ObstacleShadowingModel::walls_crossed(geo::Vec2 tx, geo::Vec2 rx) const {
  std::size_t crossed = 0;
  for_each_crossing(tx, rx, [&](std::size_t) { ++crossed; });
  return crossed;
}

double ObstacleShadowingModel::min_loss_db(double distance_m) const {
  return base_->min_loss_db(distance_m);
}

double ObstacleShadowingModel::loss_db(geo::Vec2 tx, geo::Vec2 rx) const {
  double loss = base_->loss_db(tx, rx);
  for_each_crossing(tx, rx, [&](std::size_t i) { loss += walls_[i].obstruction_loss_db; });
  return loss;
}

ObstacleShadowingModel::LossDepth ObstacleShadowingModel::loss_and_depth(geo::Vec2 tx,
                                                                         geo::Vec2 rx) const {
  LossDepth out;
  out.loss_db = base_->loss_db(tx, rx);
  for_each_crossing(tx, rx, [&](std::size_t i) {
    out.loss_db += walls_[i].obstruction_loss_db;
    ++out.depth;
  });
  return out;
}

}  // namespace rst::dot11p
