#include "rst/dot11p/medium.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rst/dot11p/radio.hpp"
#include "rst/sim/fault_plan.hpp"
#include "rst/sim/partitioned_scheduler.hpp"

namespace rst::dot11p {

namespace {

constexpr sim::SimTime kDefaultReindexPeriod = sim::SimTime::milliseconds(100);

/// Salt separating the PER draw stream from the shadowing/fading stream of
/// the same (tx, rx, seq) link.
constexpr std::uint64_t kPerDrawSalt = 0x5bd1e995u;

/// Below this fan-out a domain-phase dispatch costs more than the per-link
/// math it parallelizes; the serial path is used instead. Outcomes are
/// identical either way, so the threshold is purely a performance knob.
constexpr std::size_t kMinParallelFanout = 8;

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Medium::Medium(sim::Scheduler& sched, sim::RandomStream rng, ChannelModel channel)
    : sched_{sched},
      shadow_rng_{rng.child("shadowing")},
      per_rng_{rng.child("per")},
      link_rng_{rng.child("link")},
      channel_{std::move(channel)},
      per_link_{channel_.per_link_streams || channel_.spatial_index},
      last_reindex_{sched.now()},
      reindex_period_{channel_.reindex_period > sim::SimTime::zero() ? channel_.reindex_period
                                                                     : kDefaultReindexPeriod} {
  channel_.per_link_streams = per_link_;  // spatial_index implies per-link draws
  // Enables the legacy-path NLOS memo; the per-link path already memoizes
  // the full loss (walls included) in its epoch-validated budget cache.
  obstacle_model_ = dynamic_cast<const ObstacleShadowingModel*>(channel_.path_loss.get());
}

Medium::~Medium() = default;

void Medium::ensure_grid(const RadioConfig& first_cfg) {
  if (grid_ || !channel_.spatial_index) return;
  double cell = channel_.cell_size_m;
  if (cell <= 0.0) {
    // Derive from the power floor: one cell spans roughly one hearing
    // radius, so a query visits a 3x3-ish neighbourhood. Radios attached
    // later with bigger budgets just query more cells; correctness never
    // depends on the cell size.
    const double budget = first_cfg.tx_power_dbm + 2.0 * first_cfg.antenna_gain_dbi -
                          channel_.power_floor_dbm;
    const double r = invert_range_m(budget);
    cell = std::isfinite(r) ? std::clamp(r, 1.0, 10000.0) : 250.0;
  }
  grid_ = std::make_unique<geo::SpatialGrid>(cell);
}

void Medium::attach(Radio* radio) {
  radios_.push_back(radio);
  std::uint32_t slot_id;
  if (!free_slots_.empty()) {
    slot_id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_id = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_id];
  slot.radio = radio;
  slot.pos = radio->position();
  // Epochs stay monotone across slot reuse so budget-cache entries written
  // by a previous occupant of this slot can never validate again.
  ++slot.epoch;
  slot.interference_mw = 0.0;
  slot.cull_radius_m = -1.0;
  slot.active.clear();
  slot.own.clear();
  radio->set_medium_slot(slot_id);
  ++attached_count_;

  if (radio->config().antenna_gain_dbi > max_antenna_gain_dbi_) {
    max_antenna_gain_dbi_ = radio->config().antenna_gain_dbi;
    // A bigger peak receive gain widens every transmitter's hearing range.
    for (Slot& s : slots_) s.cull_radius_m = -1.0;
  }
  if (channel_.spatial_index) {
    ensure_grid(radio->config());
    grid_->insert(slot_id, slot.pos);
  }
}

void Medium::detach(Radio* radio) {
  std::erase(radios_, radio);
  const std::uint32_t slot_id = radio->medium_slot();
  if (slot_id >= slots_.size() || slots_[slot_id].radio != radio) return;  // never attached here
  Slot& slot = slots_[slot_id];

  // Settle carrier sense: every in-flight frame that held this radio busy
  // would have released it at its finish event; do it now, without side
  // effects, so the radio's busy accounting is coherent at detach time.
  int cs_held = 0;
  for (const ActiveRx& a : slot.active) {
    if (a.t->rx_power_dbm[a.index] >= radio->config().cs_threshold_dbm) ++cs_held;
    a.t->receivers[a.index] = nullptr;  // keep indices stable for in-flight lookups
  }
  if (cs_held > 0) radio->settle_detach(cs_held);
  // A transmission whose sender vanishes mid-air still propagates, but no
  // completion callback may touch the dead radio.
  for (Transmission* t : slot.own) t->tx = nullptr;

  if (grid_) grid_->remove(slot_id, slot.pos);
  slot.radio = nullptr;
  slot.active.clear();
  slot.own.clear();
  slot.interference_mw = 0.0;
  free_slots_.push_back(slot_id);
  --attached_count_;
}

double Medium::mean_rx_power_dbm(const Radio& tx, const Radio& rx) const {
  const double loss = channel_.path_loss->loss_db(tx.position(), rx.position());
  return tx.config().tx_power_dbm + tx.config().antenna_gain_dbi + rx.config().antenna_gain_dbi - loss;
}

double Medium::invert_range_m(double budget_db) const {
  // Smallest distance at which even the best-case loss eats the whole
  // budget; bisection keeps the upper bracket so the radius never
  // under-estimates the true hearing range.
  const PathLossModel& model = *channel_.path_loss;
  double lo = 1.0;
  if (model.min_loss_db(lo) >= budget_db) return lo;
  double hi = lo;
  do {
    hi *= 2.0;
    if (hi > 1e7) return std::numeric_limits<double>::infinity();
  } while (model.min_loss_db(hi) < budget_db);
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (model.min_loss_db(mid) < budget_db ? lo : hi) = mid;
  }
  return hi;
}

double Medium::slot_cull_radius_m(Slot& slot) {
  const RadioConfig& cfg = slot.radio->config();
  const double budget = cfg.tx_power_dbm + cfg.antenna_gain_dbi + max_antenna_gain_dbi_ -
                        channel_.power_floor_dbm;
  if (slot.cull_radius_m < 0.0 || slot.cull_budget_db != budget) {
    slot.cull_radius_m = invert_range_m(budget);
    slot.cull_budget_db = budget;
  }
  return slot.cull_radius_m;
}

double Medium::cull_radius_m(const Radio& tx) const {
  const double budget = tx.config().tx_power_dbm + tx.config().antenna_gain_dbi +
                        max_antenna_gain_dbi_ - channel_.power_floor_dbm;
  return invert_range_m(budget);
}

geo::Vec2 Medium::refresh_slot(std::uint32_t slot_id) {
  Slot& slot = slots_[slot_id];
  const geo::Vec2 now_pos = slot.radio->position();
  if (!(now_pos == slot.pos)) {
    if (grid_) grid_->move(slot_id, slot.pos, now_pos);
    slot.pos = now_pos;
    ++slot.epoch;  // any movement invalidates this endpoint's cached budgets
  }
  return slot.pos;
}

void Medium::maybe_reindex() {
  if (!grid_ || sched_.now() - last_reindex_ < reindex_period_) return;
  for (std::uint32_t id = 0; id < slots_.size(); ++id) {
    if (slots_[id].radio != nullptr) refresh_slot(id);
  }
  last_reindex_ = sched_.now();
}

double Medium::cached_budget_dbm(std::uint32_t tx_slot, std::uint32_t rx_slot) {
  const std::uint64_t key = (static_cast<std::uint64_t>(tx_slot) << 32) | rx_slot;
  const Slot& tx = slots_[tx_slot];
  const Slot& rx = slots_[rx_slot];
  auto [it, inserted] = budget_cache_.try_emplace(key);
  CachedBudget& entry = it->second;
  if (!inserted && entry.tx_epoch == tx.epoch && entry.rx_epoch == rx.epoch) {
    ++stats_.budget_cache_hits;
    return entry.mean_dbm;
  }
  ++stats_.budget_cache_misses;
  const double loss = channel_.path_loss->loss_db(tx.pos, rx.pos);
  entry.tx_epoch = tx.epoch;
  entry.rx_epoch = rx.epoch;
  entry.mean_dbm = tx.radio->config().tx_power_dbm + tx.radio->config().antenna_gain_dbi +
                   rx.radio->config().antenna_gain_dbi - loss;
  return entry.mean_dbm;
}

double Medium::legacy_mean_dbm(Radio* tx, std::uint32_t tx_slot, Radio* rx,
                               std::uint32_t rx_slot) {
  if (obstacle_model_ == nullptr) return mean_rx_power_dbm(*tx, *rx);
  // refresh_slot is grid-agnostic: with no spatial grid it only re-records
  // the position and bumps the epoch, which is exactly the invalidation
  // signal the memo needs.
  const geo::Vec2 tx_pos = refresh_slot(tx_slot);
  const geo::Vec2 rx_pos = refresh_slot(rx_slot);
  const std::uint64_t key = (static_cast<std::uint64_t>(tx_slot) << 32) | rx_slot;
  auto [it, inserted] = nlos_cache_.try_emplace(key);
  CachedNlos& entry = it->second;
  const Slot& ts = slots_[tx_slot];
  const Slot& rs = slots_[rx_slot];
  if (!inserted && entry.tx_epoch == ts.epoch && entry.rx_epoch == rs.epoch) {
    ++stats_.nlos_memo_hits;
  } else {
    ++stats_.nlos_memo_misses;
    const ObstacleShadowingModel::LossDepth ld = obstacle_model_->loss_and_depth(tx_pos, rx_pos);
    entry.tx_epoch = ts.epoch;
    entry.rx_epoch = rs.epoch;
    entry.loss_db = ld.loss_db;
    entry.depth = ld.depth;
  }
  return tx->config().tx_power_dbm + tx->config().antenna_gain_dbi +
         rx->config().antenna_gain_dbi - entry.loss_db;
}

std::uint64_t Medium::link_key(std::uint64_t tx_mac, std::uint64_t rx_mac,
                               std::uint64_t seq) const {
  return hash_combine(hash_combine(hash_combine(0, tx_mac), rx_mac), seq);
}

void Medium::set_partition_engine(sim::PartitionedScheduler* engine) {
  engine_ = engine;
  domains_ = engine != nullptr ? engine->partitions() : 0;
  budget_shards_.clear();
  domain_scratch_.clear();
  if (domains_ > 1) {
    budget_shards_.resize(domains_);
    domain_scratch_.resize(domains_);
  }
}

double Medium::grid_cell_size_m() const { return grid_ ? grid_->cell_size_m() : 0.0; }

std::uint32_t Medium::slot_domain(std::uint32_t slot_id) const {
  return geo::SpatialGrid::cell_domain(grid_->cell_of(slots_[slot_id].pos), domains_);
}

double Medium::cached_budget_dbm_sharded(std::uint32_t tx_slot, std::uint32_t rx_slot,
                                         std::uint32_t domain) {
  const std::uint64_t key = (static_cast<std::uint64_t>(tx_slot) << 32) | rx_slot;
  const Slot& tx = slots_[tx_slot];
  const Slot& rx = slots_[rx_slot];
  auto [it, inserted] = budget_shards_[domain].try_emplace(key);
  CachedBudget& entry = it->second;
  // The hit/miss sequence per (tx, rx) pair matches the shared-cache path:
  // a hit needs a prior write at the *current* epoch pair, epochs are
  // monotone, and while both epochs are unchanged the receiver's position
  // (hence its domain, hence its shard) is fixed — so any such write is in
  // this shard. Entries orphaned by a domain migration can never validate
  // again.
  if (!inserted && entry.tx_epoch == tx.epoch && entry.rx_epoch == rx.epoch) {
    ++domain_scratch_[domain].cache_hits;
    return entry.mean_dbm;
  }
  ++domain_scratch_[domain].cache_misses;
  const double loss = channel_.path_loss->loss_db(tx.pos, rx.pos);
  entry.tx_epoch = tx.epoch;
  entry.rx_epoch = rx.epoch;
  entry.mean_dbm = tx.radio->config().tx_power_dbm + tx.radio->config().antenna_gain_dbi +
                   rx.radio->config().antenna_gain_dbi - loss;
  return entry.mean_dbm;
}

std::shared_ptr<Medium::Transmission> Medium::acquire_transmission() {
  if (pool_.empty()) return std::make_shared<Transmission>();
  auto t = std::move(pool_.back());
  pool_.pop_back();
  return t;
}

void Medium::release_transmission(const std::shared_ptr<Transmission>& t) {
  t->frame = Frame{};  // drop the payload reference; keep vector capacity
  t->receivers.clear();
  t->rx_power_dbm.clear();
  t->rx_slots.clear();
  t->interference_mw.clear();
  pool_.push_back(t);
}

void Medium::begin_transmission(Radio* tx, Frame frame, std::size_t psdu_bytes) {
  std::shared_ptr<Transmission> t = per_link_ ? acquire_transmission()
                                              : std::make_shared<Transmission>();
  t->tx = tx;
  t->tx_slot = tx->medium_slot();
  t->frame = std::move(frame);
  t->psdu_bytes = psdu_bytes;
  t->mcs = tx->config().mcs;
  t->seq = tx->stats().tx_frames;  // already counts this frame
  t->start = sched_.now();
  t->end = sched_.now() + frame_airtime(psdu_bytes, tx->config().mcs);
  tx_fault_db_ = faults_ ? faults_->radio_attenuation_db("medium") : 0.0;

  if (per_link_) {
    begin_transmission_per_link(t);
  } else {
    begin_transmission_legacy(t);
  }
  slots_[t->tx_slot].own.push_back(t.get());

  ++stats_.frames_transmitted;
  sched_.post_at(t->end, [this, t] { finish_transmission(t); });
}

void Medium::begin_transmission_legacy(const std::shared_ptr<Transmission>& t) {
  // Prune transmissions that can no longer overlap anything new.
  std::erase_if(transmissions_, [&](const auto& other) { return other->end <= sched_.now(); });

  Radio* tx = t->tx;
  t->receivers.reserve(radios_.size() > 0 ? radios_.size() - 1 : 0);
  t->rx_power_dbm.reserve(t->receivers.capacity());

  for (Radio* rx : radios_) {
    if (rx == tx) continue;
    double p = legacy_mean_dbm(tx, t->tx_slot, rx, rx->medium_slot());
    if (channel_.shadowing_sigma_db > 0) {
      p += shadow_rng_.normal(0.0, channel_.shadowing_sigma_db);
    }
    if (channel_.fading == FadingModel::Nakagami) {
      // Unit-mean gamma power gain with shape m.
      const double gain = shadow_rng_.gamma(channel_.nakagami_m, 1.0 / channel_.nakagami_m);
      p += mw_to_dbm(std::max(gain, 1e-9));
    }
    p -= tx_fault_db_;  // after the draws: the fault never shifts the stream
    const auto index = static_cast<std::uint32_t>(t->receivers.size());
    t->receivers.push_back(rx);
    t->rx_power_dbm.push_back(p);
    slots_[rx->medium_slot()].active.push_back(ActiveRx{t.get(), index});
    if (p >= rx->config().cs_threshold_dbm) rx->on_cs_busy_delta(+1);
  }

  transmissions_.push_back(t);
}

void Medium::begin_transmission_per_link(const std::shared_ptr<Transmission>& t) {
  maybe_reindex();
  const geo::Vec2 tx_pos = refresh_slot(t->tx_slot);

  double radius = std::numeric_limits<double>::infinity();
  if (grid_) {
    radius = slot_cull_radius_m(slots_[t->tx_slot]);
  }
  if (grid_ && std::isfinite(radius)) {
    // Recorded positions can be up to one reindex period stale; pad the
    // query so a station moving at the speed bound cannot slip out of the
    // visited cells while still being audible.
    const double pad = channel_.max_station_speed_mps * reindex_period_.to_seconds();
    scratch_candidates_.clear();
    grid_->for_each_in_disc(tx_pos, radius + pad, [&](std::uint32_t id) {
      if (id != t->tx_slot) scratch_candidates_.push_back(id);
    });
    // Canonical order: ascending slot id, matching the full fan-out path,
    // so culling cannot reorder deliveries within one finish event.
    std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
    if (partitioned_active() && scratch_candidates_.size() >= kMinParallelFanout) {
      begin_candidates_partitioned(t);
    } else {
      for (const std::uint32_t rx_slot : scratch_candidates_) {
        admit_receiver_per_link(t, rx_slot);
      }
    }
    // Radios outside the visited cells are below the power floor by
    // construction; fold them into the below-sensitivity drop count in one
    // step so MediumStats stay identical to the unculled path.
    const auto culled = static_cast<std::uint64_t>(attached_count_ - 1 -
                                                   scratch_candidates_.size());
    stats_.dropped_below_sensitivity += culled;
    stats_.culled_below_floor += culled;
  } else {
    for (std::uint32_t rx_slot = 0; rx_slot < slots_.size(); ++rx_slot) {
      if (slots_[rx_slot].radio == nullptr || rx_slot == t->tx_slot) continue;
      admit_receiver_per_link(t, rx_slot);
    }
  }
}

double Medium::draw_link_power_dbm(double mean_dbm, std::uint64_t tx_mac, std::uint64_t rx_mac,
                                   std::uint64_t seq) const {
  double p = mean_dbm;
  if (channel_.shadowing_sigma_db > 0 || channel_.fading == FadingModel::Nakagami) {
    sim::CounterStream draws = link_rng_.counter_child(link_key(tx_mac, rx_mac, seq));
    if (channel_.shadowing_sigma_db > 0) {
      p += draws.normal(0.0, channel_.shadowing_sigma_db);
    }
    if (channel_.fading == FadingModel::Nakagami) {
      const double gain = draws.gamma(channel_.nakagami_m, 1.0 / channel_.nakagami_m);
      p += mw_to_dbm(std::max(gain, 1e-9));
    }
  }
  return p;
}

void Medium::admit_receiver_per_link(const std::shared_ptr<Transmission>& t,
                                     std::uint32_t rx_slot) {
  refresh_slot(rx_slot);
  // Fault attenuation folds into the deterministic budget (the per-link
  // draws are counter-keyed, so floor-culling faulted links is safe).
  const double mean = cached_budget_dbm(t->tx_slot, rx_slot) - tx_fault_db_;
  if (mean < channel_.power_floor_dbm) {
    ++stats_.dropped_below_sensitivity;
    ++stats_.culled_below_floor;
    return;
  }
  const double p = draw_link_power_dbm(mean, t->frame.src_mac,
                                       slots_[rx_slot].radio->mac_address(), t->seq);
  apply_admission(t, rx_slot, p);
}

void Medium::apply_admission(const std::shared_ptr<Transmission>& t, std::uint32_t rx_slot,
                             double p) {
  Slot& rx = slots_[rx_slot];
  const auto index = static_cast<std::uint32_t>(t->receivers.size());
  const double p_mw = dbm_to_mw(p);
  // Seed our interference tally with the receiver's running sum and add our
  // power to every overlapping transmission's tally. A transmission ending
  // exactly now does not overlap us (a finish event at this timestamp may
  // trigger this very admission through a delivery callback), so back its
  // power out of the seed instead of counting it; the in-flight list here
  // is a handful of entries, never the fleet.
  double seed_mw = rx.interference_mw;
  const sim::SimTime now = sched_.now();
  for (const ActiveRx& a : rx.active) {
    if (a.t->end <= now) {
      seed_mw -= dbm_to_mw(a.t->rx_power_dbm[a.index]);
    } else {
      a.t->interference_mw[a.index] += p_mw;
    }
  }
  t->receivers.push_back(rx.radio);
  t->rx_slots.push_back(rx_slot);
  t->rx_power_dbm.push_back(p);
  t->interference_mw.push_back(seed_mw);
  rx.active.push_back(ActiveRx{t.get(), index});
  rx.interference_mw += p_mw;
  if (p >= rx.radio->config().cs_threshold_dbm) rx.radio->on_cs_busy_delta(+1);
}

void Medium::begin_candidates_partitioned(const std::shared_ptr<Transmission>& t) {
  ++partitioned_phases_;
  const std::size_t n = scratch_candidates_.size();
  cand_domain_.resize(n);
  cand_power_dbm_.resize(n);
  cand_admit_.assign(n, 0);
  // Serial pre-pass: position refreshes move grid bins (shared mutation),
  // so they cannot run inside the phase. Domains are derived from the
  // refreshed positions, making the work assignment — like everything else
  // here — a pure function of simulation state.
  for (std::size_t i = 0; i < n; ++i) {
    refresh_slot(scratch_candidates_[i]);
    cand_domain_[i] = slot_domain(scratch_candidates_[i]);
  }
  // Parallel compute: per-candidate budget (domain-sharded cache), floor
  // admission and the counter-keyed power draws. Each member only touches
  // its own domain's shard/scratch and its own candidates' result cells.
  const double floor_dbm = channel_.power_floor_dbm;
  const Transmission* tp = t.get();
  engine_->parallel_phase(domains_, [&](unsigned d) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cand_domain_[i] != d) continue;
      const std::uint32_t rx_slot = scratch_candidates_[i];
      const double mean = cached_budget_dbm_sharded(tp->tx_slot, rx_slot, d) - tx_fault_db_;
      if (mean < floor_dbm) continue;
      cand_admit_[i] = 1;
      cand_power_dbm_[i] = draw_link_power_dbm(mean, tp->frame.src_mac,
                                               slots_[rx_slot].radio->mac_address(), tp->seq);
    }
  });
  for (DomainScratch& ds : domain_scratch_) {
    stats_.budget_cache_hits += ds.cache_hits;
    stats_.budget_cache_misses += ds.cache_misses;
    ds = DomainScratch{};
  }
  // Serial apply in the canonical ascending-slot order: interference
  // seeding/tallies, snapshot pushes and carrier sense are order-sensitive
  // side effects, but they consume only the precomputed pure values, so
  // the result is bit-identical to the serial path.
  for (std::size_t i = 0; i < n; ++i) {
    if (cand_admit_[i] != 0) {
      apply_admission(t, scratch_candidates_[i], cand_power_dbm_[i]);
    } else {
      ++stats_.dropped_below_sensitivity;
      ++stats_.culled_below_floor;
    }
  }
}

double Medium::interference_mw(const Transmission& t, Radio* rx) const {
  double sum = 0.0;
  for (const auto& other : transmissions_) {
    if (other.get() == &t) continue;
    if (other->start >= t.end || other->end <= t.start) continue;  // no overlap
    for (std::size_t i = 0; i < other->receivers.size(); ++i) {
      if (other->receivers[i] == rx) {
        sum += dbm_to_mw(other->rx_power_dbm[i]);
        break;
      }
    }
  }
  return sum;
}

void Medium::remove_active(Slot& slot, const Transmission* t, std::uint32_t index) {
  for (ActiveRx& a : slot.active) {
    if (a.t == t && a.index == index) {
      a = slot.active.back();
      slot.active.pop_back();
      return;
    }
  }
}

void Medium::finish_transmission(const std::shared_ptr<Transmission>& t) {
  if (t->tx != nullptr) {
    Slot& tx_slot = slots_[t->tx_slot];
    std::erase(tx_slot.own, t.get());
    t->tx->on_tx_complete();
  }
  if (per_link_) {
    finish_transmission_per_link(t);
  } else {
    finish_transmission_legacy(t);
  }
}

void Medium::finish_transmission_legacy(const std::shared_ptr<Transmission>& t) {
  const double noise_mw = dbm_to_mw(noise_floor_dbm(0.0));
  for (std::size_t i = 0; i < t->receivers.size(); ++i) {
    Radio* rx = t->receivers[i];
    if (rx == nullptr) continue;  // detached mid-flight
    remove_active(slots_[rx->medium_slot()], t.get(), static_cast<std::uint32_t>(i));
    const double power_dbm = t->rx_power_dbm[i];
    if (power_dbm >= rx->config().cs_threshold_dbm) rx->on_cs_busy_delta(-1);

    if (power_dbm < rx->config().rx_sensitivity_dbm) {
      ++stats_.dropped_below_sensitivity;
      continue;
    }
    if (rx->was_transmitting_during(t->start, t->end)) {
      ++stats_.dropped_half_duplex;
      continue;
    }
    const double rx_noise_mw = noise_mw * db_to_ratio(rx->config().noise_figure_db);
    const double sinr_mw = dbm_to_mw(power_dbm) / (rx_noise_mw + interference_mw(*t, rx));
    const double sinr_db = mw_to_dbm(sinr_mw);
    const double per = packet_error_rate(sinr_db, t->psdu_bytes, t->mcs);
    if (per_rng_.bernoulli(per)) {
      ++stats_.dropped_error;
      continue;
    }
    ++stats_.deliveries;
    rx->deliver(t->frame, RxInfo{power_dbm, sinr_db, sched_.now(), t->frame.src_mac});
  }
}

Medium::RxVerdict Medium::compute_rx_verdict(const Transmission& t, std::size_t i,
                                             double noise_mw, double& sinr_db) const {
  Radio* rx = t.receivers[i];
  if (rx == nullptr) return RxVerdict::kSkip;  // detached mid-flight
  const double power_dbm = t.rx_power_dbm[i];
  if (power_dbm < rx->config().rx_sensitivity_dbm) return RxVerdict::kBelowSensitivity;
  if (rx->was_transmitting_during(t.start, t.end)) return RxVerdict::kHalfDuplex;
  const double rx_noise_mw = noise_mw * db_to_ratio(rx->config().noise_figure_db);
  // O(1): the tally already holds the sum of every overlapping
  // transmission's power at this receiver (own power excluded).
  const double sinr_mw = dbm_to_mw(power_dbm) / (rx_noise_mw + t.interference_mw[i]);
  sinr_db = mw_to_dbm(sinr_mw);
  const double per = packet_error_rate(sinr_db, t.psdu_bytes, t.mcs);
  sim::CounterStream per_draw = link_rng_.counter_child(
      link_key(t.frame.src_mac, rx->mac_address(), t.seq) ^ kPerDrawSalt);
  return per_draw.bernoulli(per) ? RxVerdict::kError : RxVerdict::kDeliver;
}

void Medium::apply_rx_verdict(const std::shared_ptr<Transmission>& t, std::size_t i, RxVerdict v,
                              double sinr_db) {
  Radio* rx = t->receivers[i];
  // The slot may have been nulled between verdict and apply (a delivery
  // callback detaching a later receiver): skip side effects entirely,
  // exactly as the pre-split loop would have.
  if (rx == nullptr || v == RxVerdict::kSkip) return;
  Slot& rx_slot = slots_[t->rx_slots[i]];
  const double power_dbm = t->rx_power_dbm[i];
  remove_active(rx_slot, t.get(), static_cast<std::uint32_t>(i));
  rx_slot.interference_mw -= dbm_to_mw(power_dbm);
  if (power_dbm >= rx->config().cs_threshold_dbm) rx->on_cs_busy_delta(-1);
  switch (v) {
    case RxVerdict::kBelowSensitivity:
      ++stats_.dropped_below_sensitivity;
      break;
    case RxVerdict::kHalfDuplex:
      ++stats_.dropped_half_duplex;
      break;
    case RxVerdict::kError:
      ++stats_.dropped_error;
      break;
    case RxVerdict::kDeliver:
      ++stats_.deliveries;
      rx->deliver(t->frame, RxInfo{power_dbm, sinr_db, sched_.now(), t->frame.src_mac});
      break;
    case RxVerdict::kSkip:
      break;  // unreachable: handled above
  }
}

void Medium::finish_receivers_partitioned(const std::shared_ptr<Transmission>& t,
                                          double noise_mw) {
  ++partitioned_phases_;
  const std::size_t n = t->receivers.size();
  finish_domain_.resize(n);
  finish_verdict_.assign(n, RxVerdict::kSkip);
  finish_sinr_db_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    finish_domain_[i] = t->receivers[i] != nullptr ? slot_domain(t->rx_slots[i]) : 0;
  }
  // Parallel compute: every verdict input (snapshot powers, interference
  // tallies, tx histories, counter-keyed PER draws) is fixed at event
  // entry, so per-receiver decisions are independent reads.
  const Transmission* tp = t.get();
  engine_->parallel_phase(domains_, [&](unsigned d) {
    for (std::size_t i = 0; i < n; ++i) {
      if (finish_domain_[i] != d || tp->receivers[i] == nullptr) continue;
      double sinr_db = 0.0;
      finish_verdict_[i] = compute_rx_verdict(*tp, i, noise_mw, sinr_db);
      finish_sinr_db_[i] = sinr_db;
    }
  });
  // Serial apply in receiver-snapshot order: carrier-sense releases,
  // interference unwinding and delivery callbacks in the exact order the
  // serial loop produces them.
  for (std::size_t i = 0; i < n; ++i) {
    apply_rx_verdict(t, i, finish_verdict_[i], finish_sinr_db_[i]);
  }
}

void Medium::finish_transmission_per_link(const std::shared_ptr<Transmission>& t) {
  const double noise_mw = dbm_to_mw(noise_floor_dbm(0.0));
  if (partitioned_active() && t->receivers.size() >= kMinParallelFanout) {
    finish_receivers_partitioned(t, noise_mw);
  } else {
    for (std::size_t i = 0; i < t->receivers.size(); ++i) {
      double sinr_db = 0.0;
      const RxVerdict v = compute_rx_verdict(*t, i, noise_mw, sinr_db);
      apply_rx_verdict(t, i, v, sinr_db);
    }
  }
  release_transmission(t);
}

}  // namespace rst::dot11p
