#include "rst/dot11p/medium.hpp"

#include <algorithm>

#include "rst/dot11p/radio.hpp"

namespace rst::dot11p {

Medium::Medium(sim::Scheduler& sched, sim::RandomStream rng, ChannelModel channel)
    : sched_{sched},
      shadow_rng_{rng.child("shadowing")},
      per_rng_{rng.child("per")},
      channel_{std::move(channel)} {}

void Medium::attach(Radio* radio) { radios_.push_back(radio); }

void Medium::detach(Radio* radio) {
  std::erase(radios_, radio);
  for (auto& t : transmissions_) {
    for (auto& rx : t->receivers) {
      if (rx == radio) rx = nullptr;  // keep indices stable for in-flight lookups
    }
  }
}

double Medium::mean_rx_power_dbm(const Radio& tx, const Radio& rx) const {
  const double loss = channel_.path_loss->loss_db(tx.position(), rx.position());
  return tx.config().tx_power_dbm + tx.config().antenna_gain_dbi + rx.config().antenna_gain_dbi - loss;
}

void Medium::begin_transmission(Radio* tx, Frame frame, std::size_t psdu_bytes) {
  // Prune transmissions that can no longer overlap anything new.
  std::erase_if(transmissions_, [&](const auto& t) { return t->end <= sched_.now(); });

  auto t = std::make_shared<Transmission>();
  t->tx = tx;
  t->frame = std::move(frame);
  t->psdu_bytes = psdu_bytes;
  t->start = sched_.now();
  t->end = sched_.now() + frame_airtime(psdu_bytes, tx->config().mcs);
  t->receivers.reserve(radios_.size() > 0 ? radios_.size() - 1 : 0);
  t->rx_power_dbm.reserve(t->receivers.capacity());

  for (Radio* rx : radios_) {
    if (rx == tx) continue;
    double p = mean_rx_power_dbm(*tx, *rx);
    if (channel_.shadowing_sigma_db > 0) {
      p += shadow_rng_.normal(0.0, channel_.shadowing_sigma_db);
    }
    if (channel_.fading == FadingModel::Nakagami) {
      // Unit-mean gamma power gain with shape m.
      const double gain = shadow_rng_.gamma(channel_.nakagami_m, 1.0 / channel_.nakagami_m);
      p += mw_to_dbm(std::max(gain, 1e-9));
    }
    t->receivers.push_back(rx);
    t->rx_power_dbm.push_back(p);
    if (p >= rx->config().cs_threshold_dbm) rx->on_cs_busy_delta(+1);
  }

  transmissions_.push_back(t);
  ++stats_.frames_transmitted;
  sched_.post_at(t->end, [this, t] { finish_transmission(t); });
}

double Medium::interference_mw(const Transmission& t, Radio* rx) const {
  double sum = 0.0;
  for (const auto& other : transmissions_) {
    if (other.get() == &t) continue;
    if (other->start >= t.end || other->end <= t.start) continue;  // no overlap
    for (std::size_t i = 0; i < other->receivers.size(); ++i) {
      if (other->receivers[i] == rx) {
        sum += dbm_to_mw(other->rx_power_dbm[i]);
        break;
      }
    }
  }
  return sum;
}

void Medium::finish_transmission(const std::shared_ptr<Transmission>& t) {
  t->tx->on_tx_complete();

  const double noise_mw = dbm_to_mw(noise_floor_dbm(0.0));
  for (std::size_t i = 0; i < t->receivers.size(); ++i) {
    Radio* rx = t->receivers[i];
    if (rx == nullptr) continue;  // detached mid-flight
    const double power_dbm = t->rx_power_dbm[i];
    if (power_dbm >= rx->config().cs_threshold_dbm) rx->on_cs_busy_delta(-1);

    if (power_dbm < rx->config().rx_sensitivity_dbm) {
      ++stats_.dropped_below_sensitivity;
      continue;
    }
    if (rx->was_transmitting_during(t->start, t->end)) {
      ++stats_.dropped_half_duplex;
      continue;
    }
    const double rx_noise_mw = noise_mw * dbm_to_mw(rx->config().noise_figure_db);
    const double sinr_mw = dbm_to_mw(power_dbm) / (rx_noise_mw + interference_mw(*t, rx));
    const double sinr_db = mw_to_dbm(sinr_mw);
    const double per = packet_error_rate(sinr_db, t->psdu_bytes, t->tx->config().mcs);
    if (per_rng_.bernoulli(per)) {
      ++stats_.dropped_error;
      continue;
    }
    ++stats_.deliveries;
    rx->deliver(t->frame, RxInfo{power_dbm, sinr_db, sched_.now(), t->frame.src_mac});
  }
}

}  // namespace rst::dot11p
