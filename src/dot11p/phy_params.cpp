#include "rst/dot11p/phy_params.hpp"

#include <cmath>
#include <stdexcept>

namespace rst::dot11p {

unsigned data_bits_per_symbol(Mcs mcs) {
  switch (mcs) {
    case Mcs::Bpsk12: return 24;
    case Mcs::Bpsk34: return 36;
    case Mcs::Qpsk12: return 48;
    case Mcs::Qpsk34: return 72;
    case Mcs::Qam16_12: return 96;
    case Mcs::Qam16_34: return 144;
    case Mcs::Qam64_23: return 192;
    case Mcs::Qam64_34: return 216;
  }
  throw std::logic_error{"data_bits_per_symbol: unknown MCS"};
}

double data_rate_mbps(Mcs mcs) {
  return static_cast<double>(data_bits_per_symbol(mcs)) / 8.0;  // 8 us symbol
}

sim::SimTime frame_airtime(std::size_t psdu_bytes, Mcs mcs) {
  const auto bits = kServiceBits + 8 * psdu_bytes + kTailBits;
  const auto nbps = data_bits_per_symbol(mcs);
  const auto symbols = (bits + nbps - 1) / nbps;
  return kPreambleDuration + kSignalDuration + kSymbolDuration * static_cast<std::int64_t>(symbols);
}

EdcaParams edca_params(AccessCategory ac) {
  // EN 302 663 / 802.11 OCB defaults for the G5-CCH.
  switch (ac) {
    case AccessCategory::Voice: return {2, 3, 7};
    case AccessCategory::Video: return {3, 7, 15};
    case AccessCategory::BestEffort: return {6, 15, 1023};
    case AccessCategory::Background: return {9, 15, 1023};
  }
  throw std::logic_error{"edca_params: unknown AC"};
}

sim::SimTime aifs(AccessCategory ac) {
  return kSifs + kSlotTime * static_cast<std::int64_t>(edca_params(ac).aifsn);
}

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }
double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

double noise_floor_dbm(double noise_figure_db) {
  // -174 dBm/Hz thermal + 10*log10(10 MHz) = -104 dBm, plus the NF.
  return -174.0 + 10.0 * std::log10(10e6) + noise_figure_db;
}

namespace {
double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// Uncoded bit error rate on AWGN for the modulation of the MCS.
double modulation_ber(double snr_linear, Mcs mcs) {
  switch (mcs) {
    case Mcs::Bpsk12:
    case Mcs::Bpsk34:
      return q_function(std::sqrt(2.0 * snr_linear));
    case Mcs::Qpsk12:
    case Mcs::Qpsk34:
      return q_function(std::sqrt(snr_linear));
    case Mcs::Qam16_12:
    case Mcs::Qam16_34:
      return 0.75 * q_function(std::sqrt(snr_linear / 5.0));
    case Mcs::Qam64_23:
    case Mcs::Qam64_34:
      return (7.0 / 12.0) * q_function(std::sqrt(snr_linear / 21.0));
  }
  throw std::logic_error{"modulation_ber: unknown MCS"};
}

/// Effective coding gain (dB) of the convolutional code, coarse.
double coding_gain_db(Mcs mcs) {
  switch (mcs) {
    case Mcs::Bpsk12:
    case Mcs::Qpsk12:
    case Mcs::Qam16_12:
      return 5.0;  // rate 1/2
    case Mcs::Qam64_23:
      return 4.0;  // rate 2/3
    case Mcs::Bpsk34:
    case Mcs::Qpsk34:
    case Mcs::Qam16_34:
    case Mcs::Qam64_34:
      return 3.0;  // rate 3/4
  }
  throw std::logic_error{"coding_gain_db: unknown MCS"};
}
}  // namespace

double packet_error_rate(double sinr_db, std::size_t psdu_bytes, Mcs mcs) {
  const double effective_snr = db_to_ratio(sinr_db + coding_gain_db(mcs));
  const double ber = modulation_ber(effective_snr, mcs);
  if (ber <= 0) return 0.0;
  const double bits = static_cast<double>(8 * psdu_bytes + kServiceBits + kTailBits);
  // P(frame error) = 1 - (1-BER)^bits, computed in log space for stability.
  const double log_ok = bits * std::log1p(-std::min(ber, 1.0 - 1e-12));
  return 1.0 - std::exp(log_ok);
}

}  // namespace rst::dot11p
