#include "rst/dot11p/radio.hpp"

#include <algorithm>

namespace rst::dot11p {

Radio::Radio(Medium& medium, RadioConfig config, PositionProvider position, sim::RandomStream rng,
             std::string name)
    : medium_{medium},
      config_{config},
      position_{std::move(position)},
      rng_{rng.child("mac." + name)},
      name_{std::move(name)},
      mac_{medium.allocate_mac()},
      idle_since_{medium.scheduler().now()} {
  medium_.attach(this);
}

Radio::~Radio() { medium_.detach(this); }

void Radio::send(Frame frame) {
  frame.src_mac = mac_;
  auto& st = acs_[static_cast<std::size_t>(frame.ac)];
  if (st.queue.size() >= config_.max_queue_per_ac) {
    st.queue.pop_front();  // drop the oldest: stale broadcasts have no value
    ++stats_.queue_drops;
  }
  st.queue.push_back(std::move(frame));
  stats_.queue_len_peak = std::max<std::uint64_t>(stats_.queue_len_peak, st.queue.size());
  schedule_attempt(st.queue.back().ac);
}

void Radio::schedule_attempt(AccessCategory ac) {
  auto& st = acs_[static_cast<std::size_t>(ac)];
  if (st.queue.empty() || st.attempt.pending() || channel_busy()) return;

  auto& sched = medium_.scheduler();
  const sim::SimTime now = sched.now();
  const sim::SimTime aifs_boundary = idle_since_ + aifs(ac);

  if (st.backoff_slots < 0) {
    if (now >= aifs_boundary) {
      // Channel idle for at least AIFS: immediate access.
      transmit(ac);
      return;
    }
    // Fresh access to a channel that only recently went idle: contend.
    st.backoff_slots = static_cast<int>(rng_.uniform_int(0, edca_params(ac).cw_min));
  }

  st.countdown_start = std::max(now, aifs_boundary);
  st.attempt = sched.schedule_at(st.countdown_start + kSlotTime * st.backoff_slots, [this, ac] {
    auto& s = acs_[static_cast<std::size_t>(ac)];
    if (channel_busy() || s.queue.empty()) return;  // raced with a busy transition
    transmit(ac);
  });
}

void Radio::cancel_countdowns() {
  const sim::SimTime now = medium_.scheduler().now();
  for (auto& st : acs_) {
    if (!st.attempt.pending()) continue;
    st.attempt.cancel();
    if (st.backoff_slots > 0 && now > st.countdown_start) {
      const auto elapsed_slots = static_cast<int>((now - st.countdown_start) / kSlotTime);
      st.backoff_slots = std::max(0, st.backoff_slots - elapsed_slots);
    }
  }
}

void Radio::resume_countdowns() {
  for (std::size_t i = 0; i < acs_.size(); ++i) {
    schedule_attempt(static_cast<AccessCategory>(i));
  }
}

void Radio::transmit(AccessCategory ac) {
  auto& st = acs_[static_cast<std::size_t>(ac)];
  Frame frame = std::move(st.queue.front());
  st.queue.pop_front();
  st.backoff_slots = -1;
  transmitting_ = true;
  update_busy_accounting(true);
  current_tx_start_ = medium_.scheduler().now();
  cancel_countdowns();  // other ACs must not fire while we hold the channel
  ++stats_.tx_frames;
  const std::size_t psdu = frame.payload.size() + kMacOverheadBytes;
  medium_.begin_transmission(this, std::move(frame), psdu);
}

void Radio::on_tx_complete() {
  transmitting_ = false;
  update_busy_accounting(channel_busy());
  const sim::SimTime now = medium_.scheduler().now();
  tx_history_[tx_history_next_] = {current_tx_start_, now};
  tx_history_next_ = (tx_history_next_ + 1) % tx_history_.size();
  tx_history_size_ = std::min(tx_history_size_ + 1, tx_history_.size());

  if (busy_count_ == 0) idle_since_ = now;
  // Post-transmission backoff for every AC that still has traffic.
  for (std::size_t i = 0; i < acs_.size(); ++i) {
    auto& st = acs_[i];
    if (!st.queue.empty() && st.backoff_slots < 0) {
      st.backoff_slots =
          static_cast<int>(rng_.uniform_int(0, edca_params(static_cast<AccessCategory>(i)).cw_min));
    }
  }
  resume_countdowns();
}

void Radio::on_cs_busy_delta(int delta) {
  const bool was_busy = channel_busy();
  busy_count_ += delta;
  update_busy_accounting(channel_busy());
  if (!was_busy && channel_busy()) {
    cancel_countdowns();
  } else if (was_busy && !channel_busy()) {
    idle_since_ = medium_.scheduler().now();
    resume_countdowns();
  }
}

bool Radio::was_transmitting_during(sim::SimTime start, sim::SimTime end) const {
  if (transmitting_ && current_tx_start_ < end) return true;
  return std::any_of(tx_history_.begin(), tx_history_.begin() + tx_history_size_,
                     [&](const auto& iv) { return iv.first < end && iv.second > start; });
}

void Radio::settle_detach(int cs_busy_decrements) {
  busy_count_ -= cs_busy_decrements;
  update_busy_accounting(channel_busy());
}

void Radio::deliver(const Frame& frame, const RxInfo& info) {
  ++stats_.rx_frames;
  if (tap_) tap_(frame, info);
  if (receive_cb_) receive_cb_(frame, info);
}

void Radio::update_busy_accounting(bool busy_now) {
  const sim::SimTime now = medium_.scheduler().now();
  if (busy_now && !was_busy_) {
    busy_since_ = now;
  } else if (!busy_now && was_busy_) {
    busy_accumulated_ += now - busy_since_;
  }
  was_busy_ = busy_now;
}

sim::SimTime Radio::cumulative_busy_time() const {
  if (!was_busy_) return busy_accumulated_;
  return busy_accumulated_ + (medium_.scheduler().now() - busy_since_);
}

}  // namespace rst::dot11p
