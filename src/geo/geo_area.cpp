#include "rst/geo/geo_area.hpp"

#include <algorithm>
#include <stdexcept>

namespace rst::geo {

double GeoArea::geometric_function(Vec2 p) const {
  if (a <= 0) throw std::logic_error{"GeoArea: non-positive semi-distance a"};
  // Rotate into the area frame: the EN 302 931 x-axis points along the
  // azimuth (clockwise-from-north angle), i.e. rotate the east-north delta
  // *counter-clockwise* by (pi/2 - azimuth) ... equivalently compute
  // components via the axis unit vectors.
  const Vec2 d = p - center;
  const Vec2 axis_long = vector_from_heading(azimuth_rad);
  const Vec2 axis_perp{axis_long.y, -axis_long.x};
  const double x = d.dot(axis_long);
  const double y = d.dot(axis_perp);

  switch (shape) {
    case AreaShape::Circle: {
      const double r = a;
      return 1.0 - (x * x + y * y) / (r * r);
    }
    case AreaShape::Ellipse: {
      if (b <= 0) throw std::logic_error{"GeoArea: non-positive semi-distance b"};
      return 1.0 - (x / a) * (x / a) - (y / b) * (y / b);
    }
    case AreaShape::Rectangle: {
      if (b <= 0) throw std::logic_error{"GeoArea: non-positive semi-distance b"};
      return std::min(1.0 - (x / a) * (x / a), 1.0 - (y / b) * (y / b));
    }
  }
  throw std::logic_error{"GeoArea: unknown shape"};
}

double GeoArea::bounding_radius() const {
  switch (shape) {
    case AreaShape::Circle:
      return a;
    case AreaShape::Ellipse:
      return std::max(a, b);
    case AreaShape::Rectangle:
      return std::hypot(a, b);
  }
  throw std::logic_error{"GeoArea: unknown shape"};
}

}  // namespace rst::geo
