#include "rst/geo/geodesy.hpp"

#include <cmath>

namespace rst::geo {

namespace {
constexpr double kEarthRadiusM = 6371008.8;  // IUGG mean radius
constexpr double deg2rad(double d) { return d * M_PI / 180.0; }
}  // namespace

double haversine_m(GeoPosition a, GeoPosition b) {
  const double phi1 = deg2rad(a.latitude_deg);
  const double phi2 = deg2rad(b.latitude_deg);
  const double dphi = phi2 - phi1;
  const double dlam = deg2rad(b.longitude_deg - a.longitude_deg);
  const double s = std::sin(dphi / 2);
  const double t = std::sin(dlam / 2);
  const double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(h));
}

LocalFrame::LocalFrame(GeoPosition origin)
    : origin_{origin},
      metres_per_deg_lat_{kEarthRadiusM * M_PI / 180.0},
      metres_per_deg_lon_{kEarthRadiusM * M_PI / 180.0 * std::cos(deg2rad(origin.latitude_deg))} {}

Vec2 LocalFrame::to_local(GeoPosition p) const {
  return {(p.longitude_deg - origin_.longitude_deg) * metres_per_deg_lon_,
          (p.latitude_deg - origin_.latitude_deg) * metres_per_deg_lat_};
}

GeoPosition LocalFrame::to_geo(Vec2 p) const {
  return {origin_.latitude_deg + p.y / metres_per_deg_lat_,
          origin_.longitude_deg + p.x / metres_per_deg_lon_};
}

}  // namespace rst::geo
