#include "rst/geo/obstacle_grid.hpp"

namespace rst::geo {

bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const auto orient = [](Vec2 p, Vec2 q, Vec2 r) {
    const double v = (q - p).cross(r - p);
    return v > 0 ? 1 : (v < 0 ? -1 : 0);
  };
  const int o1 = orient(a, b, c);
  const int o2 = orient(a, b, d);
  const int o3 = orient(c, d, a);
  const int o4 = orient(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  const auto on_segment = [](Vec2 p, Vec2 q, Vec2 r) {
    return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
           std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
  };
  if (o1 == 0 && on_segment(a, c, b)) return true;
  if (o2 == 0 && on_segment(a, d, b)) return true;
  if (o3 == 0 && on_segment(c, a, d)) return true;
  if (o4 == 0 && on_segment(c, b, d)) return true;
  return false;
}

double ObstacleGrid::derive_cell_size(const std::vector<Segment>& segments) {
  if (segments.empty()) return 64.0;
  double sum = 0.0;
  for (const Segment& s : segments) {
    sum += std::max(std::abs(s.b.x - s.a.x), std::abs(s.b.y - s.a.y));
  }
  return std::clamp(sum / static_cast<double>(segments.size()), 4.0, 1024.0);
}

ObstacleGrid::ObstacleGrid(std::vector<Segment> segments, double cell_size_m)
    : cell_size_m_{cell_size_m > 0.0 ? cell_size_m : derive_cell_size(segments)},
      segments_{std::move(segments)} {
  // Two passes over the per-segment cell ranges build the CSR layout
  // without intermediate per-cell vectors: count, prefix-sum, fill.
  const auto for_each_cell_of = [this](const Segment& s, auto&& fn) {
    const std::int32_t cx0 = cell_coord(std::min(s.a.x, s.b.x));
    const std::int32_t cx1 = cell_coord(std::max(s.a.x, s.b.x));
    const std::int32_t cy0 = cell_coord(std::min(s.a.y, s.b.y));
    const std::int32_t cy1 = cell_coord(std::max(s.a.y, s.b.y));
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      for (std::int32_t cx = cx0; cx <= cx1; ++cx) fn(key(cx, cy));
    }
  };
  std::size_t total = 0;
  for (const Segment& s : segments_) {
    for_each_cell_of(s, [&](std::uint64_t k) {
      ++cells_[k].end;  // count phase: `end` temporarily holds the bin size
      ++total;
    });
  }
  std::uint32_t offset = 0;
  for (auto& [k, range] : cells_) {
    range.begin = offset;
    offset += range.end;
    range.end = range.begin;  // fill cursor; advances to the true end below
  }
  ids_.resize(total);
  for (std::uint32_t id = 0; id < segments_.size(); ++id) {
    for_each_cell_of(segments_[id], [&](std::uint64_t k) { ids_[cells_[k].end++] = id; });
  }
  // Bins are filled in ascending segment id, so each cell's id list is
  // sorted — the dedup merge below stays a sort of a nearly-sorted list.
}

std::int32_t ObstacleGrid::cell_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_m_));
}

std::vector<std::uint32_t>& ObstacleGrid::query_scratch() {
  thread_local std::vector<std::uint32_t> seen;
  return seen;
}

void ObstacleGrid::dedup_ascending(std::vector<std::uint32_t>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

std::size_t ObstacleGrid::crossings(Vec2 a, Vec2 b) const {
  std::size_t n = 0;
  for_each_candidate(a, b, [&](std::uint32_t id) {
    const Segment& s = segments_[id];
    if (segments_intersect(a, b, s.a, s.b)) ++n;
  });
  return n;
}

}  // namespace rst::geo
