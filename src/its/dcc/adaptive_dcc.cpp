#include "rst/its/dcc/adaptive_dcc.hpp"

#include <algorithm>

namespace rst::its::dcc {

AdaptiveDcc::AdaptiveDcc(sim::Scheduler& sched, dot11p::Radio& radio, ChannelProbe& probe,
                         Config config, sim::Trace* trace, std::string name)
    : sched_{sched},
      radio_{radio},
      config_{config},
      trace_{trace},
      name_{std::move(name)},
      rate_hz_{config.rate_max_hz} {
  probe.set_listener([this](double cbr) { on_channel_load(cbr); });
}

AdaptiveDcc::~AdaptiveDcc() { gate_timer_.cancel(); }

void AdaptiveDcc::on_channel_load(double cbr) {
  ++stats_.rate_updates;
  // LIMERIC linear update: additive step towards the target, bounded by a
  // multiplicative fraction of the current rate so convergence is smooth
  // and the fixed point is rate-fair across stations.
  const double error = config_.target_cbr - cbr;
  double step = config_.alpha * error * config_.rate_max_hz;
  const double bound = config_.beta * rate_hz_ + 0.01;
  step = std::clamp(step, -bound * 8.0, bound * 8.0);
  rate_hz_ = std::clamp(rate_hz_ + step, config_.rate_min_hz, config_.rate_max_hz);
}

void AdaptiveDcc::send(dot11p::Frame frame) {
  const sim::SimTime now = sched_.now();
  if (now - last_tx_ >= current_min_gap() && queue_.empty()) {
    last_tx_ = now;
    ++stats_.passed;
    radio_.send(std::move(frame));
    return;
  }
  if (queue_.size() >= config_.queue_capacity) {
    queue_.pop_front();
    ++stats_.dropped_queue_full;
  }
  queue_.push_back({std::move(frame), now});
  ++stats_.queued;
  if (!gate_timer_.pending()) {
    gate_timer_ = sched_.schedule_at(std::max(last_tx_ + current_min_gap(), now),
                                     [this] { try_dequeue(); });
  }
}

void AdaptiveDcc::try_dequeue() {
  const sim::SimTime now = sched_.now();
  while (!queue_.empty() && now - queue_.front().enqueued > config_.queued_packet_lifetime) {
    queue_.pop_front();
    ++stats_.dropped_expired;
  }
  if (!queue_.empty() && now - last_tx_ >= current_min_gap()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    last_tx_ = now;
    ++stats_.passed;
    radio_.send(std::move(p.frame));
  }
  if (!queue_.empty()) {
    gate_timer_ = sched_.schedule_at(last_tx_ + current_min_gap(), [this] { try_dequeue(); });
  }
}

}  // namespace rst::its::dcc
