#include "rst/its/dcc/channel_probe.hpp"

#include <algorithm>

namespace rst::its::dcc {

ChannelProbe::ChannelProbe(sim::Scheduler& sched, const dot11p::Radio& radio, Config config)
    : sched_{sched}, radio_{radio}, config_{config} {}

ChannelProbe::~ChannelProbe() { timer_.cancel(); }

void ChannelProbe::start() {
  if (running_) return;
  running_ = true;
  busy_at_window_start_ = radio_.cumulative_busy_time();
  timer_ = sched_.schedule_in(config_.window, [this] { sample(); });
}

void ChannelProbe::stop() {
  running_ = false;
  timer_.cancel();
}

void ChannelProbe::sample() {
  if (!running_) return;
  const sim::SimTime busy_now = radio_.cumulative_busy_time();
  const double busy_fraction =
      static_cast<double>((busy_now - busy_at_window_start_).count_ns()) /
      static_cast<double>(config_.window.count_ns());
  busy_at_window_start_ = busy_now;
  last_sample_ = std::clamp(busy_fraction, 0.0, 1.0);
  ++windows_;
  cbr_ = windows_ == 1 ? last_sample_ : (1.0 - config_.alpha) * cbr_ + config_.alpha * last_sample_;
  if (listener_) listener_(cbr_);
  timer_ = sched_.schedule_in(config_.window, [this] { sample(); });
}

}  // namespace rst::its::dcc
