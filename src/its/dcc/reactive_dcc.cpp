#include "rst/its/dcc/reactive_dcc.hpp"

namespace rst::its::dcc {

const char* to_string(DccState s) {
  switch (s) {
    case DccState::Relaxed: return "Relaxed";
    case DccState::Active1: return "Active1";
    case DccState::Active2: return "Active2";
    case DccState::Active3: return "Active3";
    case DccState::Restrictive: return "Restrictive";
  }
  return "?";
}

const std::array<DccStateParams, 5>& default_dcc_table() {
  using sim::SimTime;
  static const std::array<DccStateParams, 5> kTable{{
      {0.00, SimTime::milliseconds(60)},   // Relaxed
      {0.30, SimTime::milliseconds(100)},  // Active1
      {0.40, SimTime::milliseconds(180)},  // Active2
      {0.50, SimTime::milliseconds(250)},  // Active3
      {0.60, SimTime::milliseconds(460)},  // Restrictive
  }};
  return kTable;
}

ReactiveDcc::ReactiveDcc(sim::Scheduler& sched, dot11p::Radio& radio, ChannelProbe& probe,
                         Config config, sim::Trace* trace, std::string name)
    : sched_{sched}, radio_{radio}, config_{config}, trace_{trace}, name_{std::move(name)} {
  probe.set_listener([this](double cbr) { on_channel_load(cbr); });
}

ReactiveDcc::~ReactiveDcc() { gate_timer_.cancel(); }

sim::SimTime ReactiveDcc::current_min_gap() const {
  return config_.table[static_cast<std::size_t>(state_)].min_gap;
}

std::size_t ReactiveDcc::queue_depth() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void ReactiveDcc::on_channel_load(double cbr) {
  // Highest state whose up-threshold the load reaches.
  DccState target = DccState::Relaxed;
  for (std::size_t i = config_.table.size(); i-- > 0;) {
    if (cbr >= config_.table[i].cbr_up_threshold) {
      target = static_cast<DccState>(i);
      break;
    }
  }
  if (target > state_) {
    state_ = target;  // congestion: react immediately
    below_windows_ = 0;
    ++stats_.state_changes;
    if (trace_) trace_->record(sched_.now(), name_, std::string{"state up to "} + to_string(state_));
  } else if (target < state_) {
    // Relaxation requires sustained low load (hysteresis), one step at a time.
    if (++below_windows_ >= config_.down_hysteresis_windows) {
      below_windows_ = 0;
      state_ = static_cast<DccState>(static_cast<std::uint8_t>(state_) - 1);
      ++stats_.state_changes;
      if (trace_) {
        trace_->record(sched_.now(), name_, std::string{"state down to "} + to_string(state_));
      }
    }
  } else {
    below_windows_ = 0;
  }
}

void ReactiveDcc::send(dot11p::Frame frame) {
  const sim::SimTime now = sched_.now();
  if (now - last_tx_ >= current_min_gap() && queue_depth() == 0) {
    last_tx_ = now;
    ++stats_.passed;
    radio_.send(std::move(frame));
    return;
  }
  auto& q = queues_[profile_of(frame.ac)];
  if (q.size() >= config_.queue_capacity_per_profile) {
    // Drop the oldest of this profile to keep the freshest information.
    q.pop_front();
    ++stats_.dropped_queue_full;
  }
  q.push_back({std::move(frame), now});
  ++stats_.queued;
  if (!gate_timer_.pending()) {
    const sim::SimTime open_at = last_tx_ + current_min_gap();
    gate_timer_ = sched_.schedule_at(std::max(open_at, now), [this] { try_dequeue(); });
  }
}

void ReactiveDcc::try_dequeue() {
  const sim::SimTime now = sched_.now();
  // Expire stale packets first.
  for (auto& q : queues_) {
    while (!q.empty() && now - q.front().enqueued > config_.queued_packet_lifetime) {
      q.pop_front();
      ++stats_.dropped_expired;
    }
  }
  if (now - last_tx_ >= current_min_gap()) {
    // Highest-priority profile first (DP0 = index 0).
    for (auto& q : queues_) {
      if (q.empty()) continue;
      Pending p = std::move(q.front());
      q.pop_front();
      last_tx_ = now;
      ++stats_.passed;
      radio_.send(std::move(p.frame));
      break;
    }
  }
  if (queue_depth() > 0) {
    gate_timer_ = sched_.schedule_at(last_tx_ + current_min_gap(), [this] { try_dequeue(); });
  }
}

}  // namespace rst::its::dcc
