#include "rst/its/facilities/ca_basic_service.hpp"

#include <algorithm>
#include <cmath>

namespace rst::its {

CaBasicService::CaBasicService(sim::Scheduler& sched, GeoNetRouter& router, StationId station_id,
                               VehicleDataProvider provider, CaConfig config, Ldm* ldm,
                               sim::Trace* trace)
    : sched_{sched},
      router_{router},
      station_id_{station_id},
      provider_{std::move(provider)},
      config_{config},
      ldm_{ldm},
      trace_{trace},
      t_gen_cam_{config.t_gen_cam_max} {}

void CaBasicService::start() {
  if (running_) return;
  running_ = true;
  check_timer_ = sched_.schedule_in(config_.t_gen_cam_min, [this] { check_generation(); });
}

void CaBasicService::stop() {
  running_ = false;
  check_timer_.cancel();
}

void CaBasicService::send_now() { send_cam(provider_()); }

Cam CaBasicService::build_cam(bool include_lf) const {
  const CaVehicleData data = provider_();
  Cam cam;
  cam.header.station_id = station_id_;
  cam.header.message_id = MessageId::Cam;
  cam.generation_delta_time = generation_delta_time(to_timestamp_its(sched_.now()));

  cam.basic.station_type = config_.station_type;
  const geo::GeoPosition gp = router_.local_frame().to_geo(data.position);
  cam.basic.reference_position.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
  cam.basic.reference_position.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
  cam.basic.reference_position.confidence.semi_major_cm = 50;
  cam.basic.reference_position.confidence.semi_minor_cm = 50;
  cam.basic.reference_position.confidence.orientation_01deg = 0;

  double heading_deg = std::fmod(data.heading_rad * 180.0 / M_PI, 360.0);
  if (heading_deg < 0) heading_deg += 360.0;
  cam.high_frequency.heading.value_01deg = static_cast<std::uint16_t>(heading_deg * 10.0);
  cam.high_frequency.heading.confidence_01deg = 10;
  cam.high_frequency.speed = Speed::from_mps(data.speed_mps);
  cam.high_frequency.drive_direction = data.drive_direction;
  cam.high_frequency.vehicle_length_dm =
      static_cast<std::uint16_t>(std::clamp(config_.vehicle_length_m * 10.0, 1.0, 1022.0));
  cam.high_frequency.vehicle_width_dm =
      static_cast<std::uint8_t>(std::clamp(config_.vehicle_width_m * 10.0, 1.0, 61.0));
  cam.high_frequency.longitudinal_accel_dms2 =
      static_cast<std::int16_t>(std::clamp(data.longitudinal_accel_mps2 * 10.0, -160.0, 160.0));

  if (include_lf) {
    // Low-frequency container: exterior lights (not modelled: off) and the
    // path history as per-point deltas, most recent segment first.
    LowFrequencyContainer lf;
    const geo::LocalFrame& frame = router_.local_frame();
    geo::Vec2 anchor = data.position;
    for (const geo::Vec2& p : path_points_) {
      if (lf.path_history.points.size() >= config_.max_path_points) break;
      const geo::GeoPosition from = frame.to_geo(anchor);
      const geo::GeoPosition to = frame.to_geo(p);
      PathPoint point;
      point.delta_latitude = static_cast<std::int32_t>(
          std::clamp<std::int64_t>(geo::to_its_tenth_microdegree(to.latitude_deg) -
                                       geo::to_its_tenth_microdegree(from.latitude_deg),
                                   -131072, 131071));
      point.delta_longitude = static_cast<std::int32_t>(
          std::clamp<std::int64_t>(geo::to_its_tenth_microdegree(to.longitude_deg) -
                                       geo::to_its_tenth_microdegree(from.longitude_deg),
                                   -131072, 131071));
      lf.path_history.points.push_back(point);
      anchor = p;
    }
    cam.low_frequency = lf;
  }
  return cam;
}

void CaBasicService::check_generation() {
  if (!running_) return;

  const CaVehicleData data = provider_();
  bool trigger = false;
  bool dynamics = false;

  if (!last_sent_) {
    trigger = true;
  } else {
    const double dh =
        std::abs(std::remainder(data.heading_rad - last_sent_->heading_rad, 2.0 * M_PI)) * 180.0 / M_PI;
    const double dp = geo::distance(data.position, last_sent_->position);
    const double dv = std::abs(data.speed_mps - last_sent_->speed_mps);
    dynamics = dh > config_.heading_delta_deg || dp > config_.position_delta_m ||
               dv > config_.speed_delta_mps;
    const sim::SimTime since = sched_.now() - last_sent_time_;
    trigger = (dynamics && since >= config_.t_gen_cam_min) || since >= t_gen_cam_;
  }

  if (trigger) {
    if (dynamics) {
      // Dynamics-triggered: adopt the elapsed interval as the new T_GenCam
      // for the next N_GenCam messages (EN 302 637-2 §6.1.3).
      t_gen_cam_ = std::clamp(sched_.now() - last_sent_time_, config_.t_gen_cam_min,
                              config_.t_gen_cam_max);
      dynamic_cam_countdown_ = config_.n_gen_cam;
      ++stats_.dynamics_triggers;
    } else if (dynamic_cam_countdown_ > 0) {
      if (--dynamic_cam_countdown_ == 0) t_gen_cam_ = config_.t_gen_cam_max;
    }
    send_cam(data);
  }

  check_timer_ = sched_.schedule_in(config_.t_gen_cam_min, [this] { check_generation(); });
}

void CaBasicService::send_cam(const CaVehicleData& data) {
  // Maintain the path history: record a point per travelled spacing.
  if (path_points_.empty() ||
      geo::distance(path_points_.front(), data.position) >= config_.path_point_spacing_m) {
    path_points_.push_front(data.position);
    while (path_points_.size() > config_.max_path_points + 1) path_points_.pop_back();
  }
  const bool include_lf = sched_.now() - last_lf_time_ >= config_.lf_container_interval;
  if (include_lf) last_lf_time_ = sched_.now();

  const Cam cam = build_cam(include_lf);
  BtpHeader btp{.destination_port = kBtpPortCam, .destination_port_info = 0};
  router_.send_shb(btp.prepend_to(cam.encode()), dot11p::AccessCategory::Video);
  last_sent_ = data;
  last_sent_time_ = sched_.now();
  ++stats_.cams_sent;
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::CamTx, station_id_, cam.generation_delta_time);
  }
}

void CaBasicService::on_btp_payload(const std::vector<std::uint8_t>& cam_bytes,
                                    const GnDeliveryMeta& meta) {
  Cam cam;
  try {
    cam = Cam::decode(cam_bytes);
  } catch (const asn1::DecodeError&) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.cams_received;
  if (ldm_) ldm_->update_from_cam(cam);
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::CamRx, station_id_, cam.header.station_id);
  }
  if (cam_cb_) cam_cb_(cam, meta);
}

}  // namespace rst::its
