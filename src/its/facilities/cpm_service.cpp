#include "rst/its/facilities/cpm_service.hpp"

#include <algorithm>
#include <cmath>

namespace rst::its {

namespace {

[[nodiscard]] double heading_of(const geo::Vec2& velocity) {
  return std::atan2(velocity.x, velocity.y);
}

[[nodiscard]] double speed_of(const geo::Vec2& velocity) {
  return std::sqrt(velocity.x * velocity.x + velocity.y * velocity.y);
}

template <typename T>
[[nodiscard]] T clamp_cast(double v, double lo, double hi) {
  return static_cast<T>(std::lround(std::clamp(v, lo, hi)));
}

}  // namespace

CpmService::CpmService(sim::Scheduler& sched, GeoNetRouter& router, StationId station_id,
                       CpmConfig config, Ldm* ldm, sim::Trace* trace)
    : sched_{sched},
      router_{router},
      station_id_{station_id},
      config_{config},
      ldm_{ldm},
      trace_{trace} {}

void CpmService::start() {
  if (running_) return;
  running_ = true;
  timer_ = sched_.schedule_in(config_.interval, [this] { generate(); });
}

void CpmService::stop() {
  running_ = false;
  timer_.cancel();
}

void CpmService::set_metrics(sim::MetricsRegistry* metrics) {
  metrics_ = metrics;
  expired_baseline_ = ldm_ ? ldm_->perceived_objects_expired() : 0;
}

void CpmService::generate() {
  if (!running_) return;
  send_now();
  timer_ = sched_.schedule_in(config_.interval, [this] { generate(); });
}

std::size_t CpmService::send_now() {
  prune_announcements();
  std::uint64_t skipped = 0;
  const Cpm cpm = build(&skipped);
  stats_.objects_redundancy_skipped += skipped;
  if (metrics_ && skipped > 0) metrics_->counter("cpm.objects_redundancy_skipped").add(skipped);
  publish_expired_delta();
  // Nothing perceived locally (or everything already announced by a peer):
  // stay quiet instead of sending an empty message.
  if (cpm.objects.empty()) return 0;

  BtpHeader btp{.destination_port = kBtpPortCpm, .destination_port_info = 0};
  if (config_.use_gbc) {
    const geo::GeoArea area =
        geo::GeoArea::circle(router_.ego().position, config_.destination_radius_m);
    router_.send_gbc(btp.prepend_to(cpm.encode()), area, dot11p::AccessCategory::Video);
  } else {
    router_.send_shb(btp.prepend_to(cpm.encode()), dot11p::AccessCategory::Video);
  }
  ++stats_.cpms_sent;
  stats_.objects_published += cpm.objects.size();
  if (metrics_) metrics_->counter("cpm.objects_published").add(cpm.objects.size());
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::CpmTx, station_id_, cpm.objects.size(),
                         static_cast<double>(cpm.objects.size()));
  }
  return cpm.objects.size();
}

Cpm CpmService::build_cpm() const { return build(nullptr); }

Cpm CpmService::build(std::uint64_t* redundancy_skipped) const {
  Cpm cpm;
  cpm.header.station_id = station_id_;
  cpm.generation_delta_time = generation_delta_time(to_timestamp_its(sched_.now()));
  cpm.management.station_type = config_.station_type;

  const geo::Vec2 ego = router_.ego().position;
  const geo::GeoPosition gp = router_.local_frame().to_geo(ego);
  cpm.management.reference_position.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
  cpm.management.reference_position.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
  cpm.management.reference_position.confidence.semi_major_cm = 50;
  cpm.management.reference_position.confidence.semi_minor_cm = 50;
  cpm.management.reference_position.confidence.orientation_01deg = 0;

  if (!ldm_) return cpm;
  for (const PerceivedObject& obj : ldm_->perceived_objects()) {
    // Only re-announce what this station sensed itself: forwarding fused
    // remote percepts would echo them around the network.
    if (obj.source_station != 0) continue;
    if (recently_announced_by_peer(obj.position)) {
      if (redundancy_skipped) ++*redundancy_skipped;
      continue;
    }
    if (cpm.objects.size() >= config_.max_objects) break;
    CpmPerceivedObject wire;
    wire.object_id = static_cast<std::uint16_t>(obj.object_id & 0xffffu);
    const double age_ms = (sched_.now() - obj.measured).to_seconds() * 1000.0;
    wire.age_ms = clamp_cast<std::uint16_t>(age_ms, 0.0, 1500.0);
    wire.x_offset_cm = clamp_cast<std::int32_t>((obj.position.x - ego.x) * 100.0, -132768.0, 132767.0);
    wire.y_offset_cm = clamp_cast<std::int32_t>((obj.position.y - ego.y) * 100.0, -132768.0, 132767.0);
    wire.x_speed_cms = clamp_cast<std::int16_t>(obj.velocity.x * 100.0, -16383.0, 16383.0);
    wire.y_speed_cms = clamp_cast<std::int16_t>(obj.velocity.y * 100.0, -16383.0, 16383.0);
    wire.object_class = cpm_class_from_label(obj.classification);
    wire.confidence_pct = clamp_cast<std::uint8_t>(obj.confidence * 100.0, 0.0, 100.0);
    cpm.objects.push_back(wire);
  }
  return cpm;
}

bool CpmService::recently_announced_by_peer(const geo::Vec2& position) const {
  const sim::SimTime now = sched_.now();
  for (const RemoteAnnouncement& a : announcements_) {
    if (now - a.heard >= config_.redundancy_window) continue;
    if (geo::distance(a.position, position) <= config_.redundancy_gating_m) return true;
  }
  return false;
}

void CpmService::prune_announcements() {
  const sim::SimTime now = sched_.now();
  std::erase_if(announcements_, [&](const RemoteAnnouncement& a) {
    return now - a.heard >= config_.redundancy_window;
  });
}

void CpmService::publish_expired_delta() {
  if (!metrics_ || !ldm_) return;
  const std::uint64_t expired = ldm_->perceived_objects_expired();
  if (expired > expired_baseline_) {
    metrics_->counter("cpm.objects_expired").add(expired - expired_baseline_);
    expired_baseline_ = expired;
  }
}

void CpmService::on_btp_payload(const std::vector<std::uint8_t>& cpm_bytes,
                                const GnDeliveryMeta& meta) {
  Cpm cpm;
  try {
    cpm = Cpm::decode(cpm_bytes);
  } catch (const asn1::DecodeError&) {
    ++stats_.decode_errors;
    return;
  }
  if (cpm.header.station_id == station_id_) return;
  ++stats_.cpms_received;
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::CpmRx, station_id_, cpm.header.station_id,
                         static_cast<double>(cpm.objects.size()));
  }

  prune_announcements();
  const geo::GeoPosition sender_geo{
      geo::from_its_tenth_microdegree(cpm.management.reference_position.latitude),
      geo::from_its_tenth_microdegree(cpm.management.reference_position.longitude)};
  const geo::Vec2 sender = router_.local_frame().to_local(sender_geo);
  const sim::SimTime now = sched_.now();

  for (const CpmPerceivedObject& wire : cpm.objects) {
    const geo::Vec2 position{sender.x + wire.x_offset_cm / 100.0,
                             sender.y + wire.y_offset_cm / 100.0};
    const geo::Vec2 velocity{wire.x_speed_cms / 100.0, wire.y_speed_cms / 100.0};
    // Remember the announcement for redundancy mitigation whether or not
    // the percept survives the fusion gates below.
    announcements_.push_back({position, now, cpm.header.station_id});

    const double confidence = wire.confidence_pct / 100.0;
    if (confidence < config_.fusion_min_confidence) {
      ++stats_.objects_gated;
      if (metrics_) metrics_->counter("cpm.objects_gated").add();
      continue;
    }
    if (!ldm_) continue;

    // Dedup against the live LDM picture: position gate plus (for moving
    // objects) a heading gate, mirroring the detection associator.
    const PerceivedObject* match = nullptr;
    double best = config_.fusion_gating_m;
    const auto live = ldm_->perceived_objects();
    for (const PerceivedObject& existing : live) {
      const double d = geo::distance(existing.position, position);
      if (d > best) continue;
      if (speed_of(existing.velocity) > config_.fusion_moving_speed_mps &&
          speed_of(velocity) > config_.fusion_moving_speed_mps) {
        const double dh =
            std::abs(std::remainder(heading_of(existing.velocity) - heading_of(velocity), 2.0 * M_PI));
        if (dh > config_.fusion_heading_gate_rad) continue;
      }
      match = &existing;
      best = d;
    }
    if (match && match->source_station == 0) {
      // Local sensing already covers this object — keep the local track.
      ++stats_.objects_deduped;
      if (metrics_) metrics_->counter("cpm.objects_deduped").add();
      continue;
    }

    PerceivedObject fused;
    fused.object_id =
        match ? match->object_id : remote_object_id(cpm.header.station_id, wire.object_id);
    fused.classification = std::string{cpm_label_from_class(wire.object_class)};
    fused.position = position;
    fused.velocity = velocity;
    fused.confidence = confidence;
    fused.measured = now - sim::SimTime::milliseconds(wire.age_ms);
    fused.source_station = cpm.header.station_id;
    ldm_->update_perceived_object(fused);
    ++stats_.objects_fused;
    if (metrics_) metrics_->counter("cpm.objects_fused").add();
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::CpmFusion, station_id_, fused.object_id,
                           confidence, static_cast<std::uint16_t>(cpm.header.station_id & 0xffffu));
    }
    if (fused_cb_) fused_cb_(fused, meta);
  }
  publish_expired_delta();
}

}  // namespace rst::its
