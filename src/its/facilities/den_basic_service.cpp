#include "rst/its/facilities/den_basic_service.hpp"

#include <cmath>

namespace rst::its {

DenBasicService::DenBasicService(sim::Scheduler& sched, GeoNetRouter& router, StationId station_id,
                                 sim::Trace* trace, Ldm* ldm, DenConfig config)
    : sched_{sched},
      router_{router},
      station_id_{station_id},
      trace_{trace},
      ldm_{ldm},
      config_{config} {}

DenBasicService::~DenBasicService() {
  for (auto& [key, ev] : originated_) ev.repetition_timer.cancel();
  for (auto& [key, st] : received_) st.kaf_timer.cancel();
}

Denm DenBasicService::build_denm(ActionId id, const DenmRequest& request,
                                 TimestampIts detection_time) const {
  Denm denm;
  denm.header.station_id = station_id_;
  denm.header.message_id = MessageId::Denm;

  denm.management.action_id = id;
  denm.management.detection_time = detection_time;
  denm.management.reference_time = to_timestamp_its(sched_.now());
  const geo::GeoPosition gp = router_.local_frame().to_geo(request.event_position);
  denm.management.event_position.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
  denm.management.event_position.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
  denm.management.relevance_distance = request.relevance_distance;
  denm.management.relevance_traffic_direction = request.relevance_traffic_direction;
  // EN 302 637-3: validityDuration is 0..86400 s; clamp rather than letting
  // oversized application requests wrap through the PER encoding.
  denm.management.validity_duration_s = static_cast<std::uint32_t>(
      std::clamp<std::int64_t>(request.validity.count_ns() / 1'000'000'000, 1, 86400));
  if (request.repetition_interval) {
    denm.management.transmission_interval_ms = static_cast<std::uint16_t>(
        std::clamp<std::int64_t>(request.repetition_interval->count_ns() / 1'000'000, 1, 10000));
  }
  denm.management.station_type = request.station_type;

  SituationContainer situation;
  situation.information_quality = request.information_quality;
  situation.event_type = request.event_type;
  denm.situation = situation;

  if (request.event_speed_mps || request.event_heading_rad) {
    LocationContainer location;
    if (request.event_speed_mps) location.event_speed = Speed::from_mps(*request.event_speed_mps);
    if (request.event_heading_rad) {
      double deg = std::fmod(*request.event_heading_rad * 180.0 / M_PI, 360.0);
      if (deg < 0) deg += 360.0;
      // Round to the nearest deci-degree (truncation biased every heading
      // down by up to 0.1°); 360.0° rounds up to 3600, which wraps to 0.
      location.event_position_heading =
          Heading{static_cast<std::uint16_t>(std::lround(deg * 10.0) % 3600), 10};
    }
    location.traces.push_back(PathHistory{});  // mandatory traces field
    denm.location = location;
  }
  denm.alacarte = request.alacarte;
  return denm;
}

void DenBasicService::transmit(const Denm& denm, const geo::GeoArea& area) {
  BtpHeader btp{.destination_port = kBtpPortDenm, .destination_port_info = 0};
  router_.send_gbc(btp.prepend_to(denm.encode()), area, dot11p::AccessCategory::Voice);
  if (transmit_hook_) transmit_hook_(denm);
  ++stats_.denms_sent;
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::DenmTx, station_id_,
                         sim::pack_action(denm.management.action_id.originating_station,
                                          denm.management.action_id.sequence_number),
                         0.0, denm.is_termination() ? sim::kDenmTermination : 0);
  }
}

void DenBasicService::expire_originated() {
  // Mirror of the received-state sweep: originated events past their
  // validity stop existing — cancel any still-pending repetition (the
  // repetition window may outlive the validity) and drop the entry so the
  // map cannot grow without bound on a long-running RSU.
  const sim::SimTime now = sched_.now();
  for (auto it = originated_.begin(); it != originated_.end();) {
    if (now <= it->second.expires) {
      ++it;
      continue;
    }
    it->second.repetition_timer.cancel();
    it = originated_.erase(it);
  }
}

ActionId DenBasicService::trigger(const DenmRequest& request) {
  expire_originated();
  const ActionId id{station_id_, next_sequence_++};
  OriginatedEvent ev;
  ev.request = request;
  ev.current = build_denm(id, request, to_timestamp_its(sched_.now()));
  ev.expires = sched_.now() + request.validity;
  ev.repetition_ends = sched_.now() + request.repetition_duration;
  originated_[key(id)] = std::move(ev);
  if (ldm_) ldm_->update_from_denm(originated_[key(id)].current);
  transmit(originated_[key(id)].current, request.destination_area);
  schedule_repetition(id);
  return id;
}

void DenBasicService::update(ActionId id, const DenmRequest& request) {
  auto it = originated_.find(key(id));
  if (it == originated_.end()) throw std::invalid_argument{"DenBasicService::update: unknown ActionID"};
  auto& ev = it->second;
  const TimestampIts original_detection = ev.current.management.detection_time;
  ev.request = request;
  ev.current = build_denm(id, request, original_detection);
  ev.expires = sched_.now() + request.validity;
  ev.repetition_ends = sched_.now() + request.repetition_duration;
  if (ldm_) ldm_->update_from_denm(ev.current);
  transmit(ev.current, request.destination_area);
  schedule_repetition(id);
}

void DenBasicService::terminate(ActionId id) {
  auto it = originated_.find(key(id));
  if (it == originated_.end()) {
    throw std::invalid_argument{"DenBasicService::terminate: unknown ActionID"};
  }
  auto& ev = it->second;
  ev.repetition_timer.cancel();
  Denm cancel = ev.current;
  cancel.management.termination = Termination::IsCancellation;
  cancel.management.reference_time = to_timestamp_its(sched_.now());
  if (ldm_) ldm_->update_from_denm(cancel);
  transmit(cancel, ev.request.destination_area);
  originated_.erase(it);
}

bool DenBasicService::negate(ActionId id) {
  auto it = received_.find(key(id));
  if (it == received_.end() || !it->second.area) return false;
  auto& st = it->second;
  if (st.terminated) return false;
  st.terminated = true;
  st.kaf_timer.cancel();

  Denm negation = st.last_denm;
  negation.header.station_id = station_id_;  // we are the terminating station
  negation.management.termination = Termination::IsNegation;
  negation.management.reference_time = to_timestamp_its(sched_.now());
  if (ldm_) ldm_->update_from_denm(negation);
  transmit(negation, *st.area);
  return true;
}

void DenBasicService::schedule_repetition(ActionId id) {
  auto it = originated_.find(key(id));
  if (it == originated_.end()) return;
  auto& ev = it->second;
  ev.repetition_timer.cancel();
  if (!ev.request.repetition_interval) return;
  if (sched_.now() + *ev.request.repetition_interval > ev.repetition_ends) return;
  ev.repetition_timer = sched_.schedule_in(*ev.request.repetition_interval, [this, id] {
    auto it2 = originated_.find(key(id));
    if (it2 == originated_.end()) return;
    if (sched_.now() > it2->second.expires) {
      // Validity elapsed mid-repetition-window: the event no longer exists.
      originated_.erase(it2);
      return;
    }
    ++stats_.repetitions;
    transmit(it2->second.current, it2->second.request.destination_area);
    schedule_repetition(id);
  });
}

std::optional<ReceivedDenmState> DenBasicService::received_state(ActionId id) const {
  const auto it = received_.find(key(id));
  if (it == received_.end()) return std::nullopt;
  return it->second;
}

void DenBasicService::on_btp_payload(const std::vector<std::uint8_t>& denm_bytes,
                                     const GnDeliveryMeta& meta) {
  Denm denm;
  try {
    denm = Denm::decode(denm_bytes);
  } catch (const asn1::DecodeError&) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.denms_received;

  const auto k = key(denm.management.action_id);
  auto it = received_.find(k);
  bool is_update = false;
  if (it != received_.end()) {
    auto& st = it->second;
    if (denm.is_termination()) {
      if (st.terminated) {
        ++stats_.duplicates_discarded;
        return;
      }
      st.terminated = true;
      st.kaf_timer.cancel();
    } else if (denm.management.reference_time > st.reference_time) {
      is_update = true;  // genuine update of a known event
      st.reference_time = denm.management.reference_time;
      st.detection_time = denm.management.detection_time;
      st.last_denm = denm;
      // The update carries a fresh validityDuration: extend the local
      // expiry, or the event is still erased (and keep-alive forwarding
      // silently stops) at the ORIGINAL deadline.
      st.expires = sched_.now() + sim::SimTime::seconds(denm.management.validity_duration_s);
      if (meta.destination_area) st.area = meta.destination_area;
      if (config_.enable_kaf) schedule_kaf(denm.management.action_id);
    } else {
      // Same or older reference time: repetition or out-of-order copy.
      // A fresher copy on air also resets the keep-alive timer.
      ++stats_.duplicates_discarded;
      if (config_.enable_kaf && !st.terminated) schedule_kaf(denm.management.action_id);
      return;
    }
  } else {
    if (denm.is_termination()) {
      // Termination for an event we never saw: record and ignore.
      ++stats_.stale_discarded;
      ReceivedDenmState st;
      st.reference_time = denm.management.reference_time;
      st.detection_time = denm.management.detection_time;
      st.terminated = true;
      st.expires = sched_.now() + sim::SimTime::seconds(60);
      received_[k] = std::move(st);
      return;
    }
    ReceivedDenmState st;
    st.reference_time = denm.management.reference_time;
    st.detection_time = denm.management.detection_time;
    st.terminated = false;
    st.expires = sched_.now() + sim::SimTime::seconds(denm.management.validity_duration_s);
    st.last_denm = denm;
    st.area = meta.destination_area;
    received_[k] = std::move(st);
    if (config_.enable_kaf) schedule_kaf(denm.management.action_id);
  }

  if (ldm_) ldm_->update_from_denm(denm);
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::DenmRx, station_id_,
                         sim::pack_action(denm.management.action_id.originating_station,
                                          denm.management.action_id.sequence_number),
                         0.0, denm.is_termination() ? sim::kDenmTermination : 0);
  }
  if (denm_cb_) denm_cb_(denm, meta, is_update);

  // Expire stale state opportunistically — received and originated alike.
  const sim::SimTime now = sched_.now();
  for (auto it2 = received_.begin(); it2 != received_.end();) {
    if (now <= it2->second.expires) {
      ++it2;
      continue;
    }
    it2->second.kaf_timer.cancel();
    it2 = received_.erase(it2);
  }
  expire_originated();
}

void DenBasicService::schedule_kaf(ActionId id) {
  auto it = received_.find(key(id));
  if (it == received_.end()) return;
  auto& st = it->second;
  st.kaf_timer.cancel();
  if (!st.area) return;  // no scope to forward into

  sim::SimTime interval = config_.kaf_default_interval;
  if (st.last_denm.management.transmission_interval_ms) {
    // Forward only after the originator visibly stopped repeating.
    interval = sim::SimTime::milliseconds(
                   *st.last_denm.management.transmission_interval_ms) *
               3;
  }
  if (sched_.now() + interval >= st.expires) return;  // event about to expire

  st.kaf_timer = sched_.schedule_in(interval, [this, id] {
    auto it2 = received_.find(key(id));
    if (it2 == received_.end() || it2->second.terminated || !it2->second.area) return;
    // Only stations inside the relevance area keep the event alive.
    if (!it2->second.area->contains(router_.ego().position)) return;
    ++stats_.kaf_retransmissions;
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::KafForward, station_id_,
                           sim::pack_action(id.originating_station, id.sequence_number));
    }
    transmit(it2->second.last_denm, *it2->second.area);
    schedule_kaf(id);
  });
}

}  // namespace rst::its
