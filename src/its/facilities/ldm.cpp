#include "rst/its/facilities/ldm.hpp"

#include <cstdio>

namespace rst::its {

Ldm::Ldm(sim::Scheduler& sched, const geo::LocalFrame& frame) : sched_{sched}, frame_{frame} {}

std::uint64_t Ldm::subscribe(Subscriber subscriber) {
  const std::uint64_t id = next_subscriber_id_++;
  subscribers_.emplace_back(id, std::move(subscriber));
  return id;
}

void Ldm::unsubscribe(std::uint64_t id) {
  std::erase_if(subscribers_, [&](const auto& entry) { return entry.first == id; });
}

void Ldm::notify(const LdmUpdate& update) {
  for (const auto& [id, subscriber] : subscribers_) subscriber(update);
}

void Ldm::update_from_cam(const Cam& cam) {
  garbage_collect();
  auto& e = vehicles_[cam.header.station_id];
  e.station_id = cam.header.station_id;
  e.station_type = cam.basic.station_type;
  const geo::GeoPosition gp{geo::from_its_tenth_microdegree(cam.basic.reference_position.latitude),
                            geo::from_its_tenth_microdegree(cam.basic.reference_position.longitude)};
  e.position = frame_.to_local(gp);
  e.speed_mps = cam.high_frequency.speed.to_mps();
  e.heading_rad = cam.high_frequency.heading.value_01deg <= 3600
                      ? cam.high_frequency.heading.value_01deg * 0.1 * M_PI / 180.0
                      : 0.0;
  e.last_update = sched_.now();
  ++e.cam_count;
  notify({.kind = LdmUpdateKind::Vehicle, .station = cam.header.station_id});
}

void Ldm::update_from_denm(const Denm& denm) {
  garbage_collect();
  const auto key = std::make_pair(denm.management.action_id.originating_station,
                                  denm.management.action_id.sequence_number);
  if (denm.is_termination()) {
    if (events_.erase(key) > 0) {
      notify({.kind = LdmUpdateKind::EventRemoved, .action = denm.management.action_id});
    }
    return;
  }
  auto& e = events_[key];
  e.action_id = denm.management.action_id;
  e.denm = denm;
  const geo::GeoPosition gp{geo::from_its_tenth_microdegree(denm.management.event_position.latitude),
                            geo::from_its_tenth_microdegree(denm.management.event_position.longitude)};
  e.event_position = frame_.to_local(gp);
  e.received = sched_.now();
  e.expires = sched_.now() + sim::SimTime::seconds(denm.management.validity_duration_s);
  notify({.kind = LdmUpdateKind::Event, .action = denm.management.action_id});
}

void Ldm::update_perceived_object(PerceivedObject object) {
  garbage_collect();
  // Every update refreshes the expiry window; `measured` keeps the sensor
  // timestamp (defaulting to now) so fused remote percepts retain their age.
  object.observed = sched_.now();
  if (object.measured == sim::SimTime{}) object.measured = sched_.now();
  const std::uint32_t id = object.object_id;
  objects_[id] = std::move(object);
  notify({.kind = LdmUpdateKind::PerceivedObject, .object = id});
}

void Ldm::garbage_collect() {
  const sim::SimTime now = sched_.now();
  std::erase_if(vehicles_, [&](const auto& kv) { return now - kv.second.last_update > vehicle_lifetime_; });
  std::erase_if(events_, [&](const auto& kv) { return now > kv.second.expires; });
  // Perceived objects use a half-open lifetime window (alive for
  // observed <= t < observed + lifetime), matching the fault-window
  // convention: an object exactly at the boundary is already stale.
  objects_expired_ += static_cast<std::uint64_t>(std::erase_if(
      objects_, [&](const auto& kv) { return now - kv.second.observed >= object_lifetime_; }));
}

std::optional<LdmVehicleEntry> Ldm::vehicle(StationId id) const {
  const auto it = vehicles_.find(id);
  if (it == vehicles_.end()) return std::nullopt;
  if (sched_.now() - it->second.last_update > vehicle_lifetime_) return std::nullopt;
  return it->second;
}

std::vector<LdmVehicleEntry> Ldm::vehicles() const {
  std::vector<LdmVehicleEntry> out;
  for (const auto& [id, e] : vehicles_) {
    if (sched_.now() - e.last_update <= vehicle_lifetime_) out.push_back(e);
  }
  return out;
}

std::vector<LdmVehicleEntry> Ldm::vehicles_in(const geo::GeoArea& area) const {
  std::vector<LdmVehicleEntry> out;
  for (const auto& e : vehicles()) {
    if (area.contains(e.position)) out.push_back(e);
  }
  return out;
}

std::vector<LdmEventEntry> Ldm::events() const {
  std::vector<LdmEventEntry> out;
  for (const auto& [key, e] : events_) {
    if (sched_.now() <= e.expires) out.push_back(e);
  }
  return out;
}

std::vector<LdmEventEntry> Ldm::events_in(const geo::GeoArea& area) const {
  std::vector<LdmEventEntry> out;
  for (const auto& e : events()) {
    if (area.contains(e.event_position)) out.push_back(e);
  }
  return out;
}

std::vector<PerceivedObject> Ldm::perceived_objects() const {
  std::vector<PerceivedObject> out;
  for (const auto& [id, o] : objects_) {
    if (sched_.now() - o.observed < object_lifetime_) out.push_back(o);
  }
  return out;
}

std::optional<PerceivedObject> Ldm::perceived_object(std::uint32_t id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  if (sched_.now() - it->second.observed >= object_lifetime_) return std::nullopt;
  return it->second;
}

std::string Ldm::dump() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "LDM @ %s\n", sched_.now().to_string().c_str());
  out += line;
  for (const auto& e : vehicles()) {
    std::snprintf(line, sizeof line,
                  "  station %u type=%u pos=(%.2f, %.2f) v=%.2f m/s heading=%.1f deg cams=%llu\n",
                  e.station_id, static_cast<unsigned>(e.station_type), e.position.x, e.position.y,
                  e.speed_mps, e.heading_rad * 180.0 / M_PI,
                  static_cast<unsigned long long>(e.cam_count));
    out += line;
  }
  for (const auto& e : events()) {
    const auto cause = e.denm.situation ? e.denm.situation->event_type.cause_code : 0;
    std::snprintf(line, sizeof line, "  event %u/%u cause=%u (%s) pos=(%.2f, %.2f)\n",
                  e.action_id.originating_station, e.action_id.sequence_number, cause,
                  std::string{describe_cause(cause)}.c_str(), e.event_position.x, e.event_position.y);
    out += line;
  }
  for (const auto& o : perceived_objects()) {
    std::snprintf(line, sizeof line, "  object %u '%s' pos=(%.2f, %.2f) conf=%.2f\n", o.object_id,
                  o.classification.c_str(), o.position.x, o.position.y, o.confidence);
    out += line;
  }
  return out;
}

}  // namespace rst::its
