#include "rst/its/messages/cam.hpp"

namespace rst::its {

void ItsPduHeader::encode(asn1::PerEncoder& e) const {
  e.constrained(protocol_version, 0, 255);
  e.constrained(static_cast<std::int64_t>(message_id), 0, 255);
  e.constrained(static_cast<std::int64_t>(station_id), 0, 4294967295LL);
}

ItsPduHeader ItsPduHeader::decode(asn1::PerDecoder& d) {
  ItsPduHeader h;
  h.protocol_version = static_cast<std::uint8_t>(d.constrained(0, 255));
  h.message_id = static_cast<MessageId>(d.constrained(0, 255));
  h.station_id = static_cast<StationId>(d.constrained(0, 4294967295LL));
  return h;
}

void BasicContainer::encode(asn1::PerEncoder& e) const {
  e.constrained(static_cast<std::int64_t>(station_type), 0, 255);
  reference_position.encode(e);
}

BasicContainer BasicContainer::decode(asn1::PerDecoder& d) {
  BasicContainer v;
  v.station_type = static_cast<StationType>(d.constrained(0, 255));
  v.reference_position = ReferencePosition::decode(d);
  return v;
}

void HighFrequencyContainer::encode(asn1::PerEncoder& e) const {
  heading.encode(e);
  speed.encode(e);
  e.enumerated(static_cast<std::uint32_t>(drive_direction), 3);
  e.constrained(vehicle_length_dm, 1, 1023);
  e.constrained(vehicle_width_dm, 1, 62);
  e.constrained(longitudinal_accel_dms2, -160, 161);
  e.constrained(curvature, -1023, 1023);
  e.constrained(yaw_rate_001degps, -32766, 32767);
}

HighFrequencyContainer HighFrequencyContainer::decode(asn1::PerDecoder& d) {
  HighFrequencyContainer v;
  v.heading = Heading::decode(d);
  v.speed = Speed::decode(d);
  v.drive_direction = static_cast<DriveDirection>(d.enumerated(3));
  v.vehicle_length_dm = static_cast<std::uint16_t>(d.constrained(1, 1023));
  v.vehicle_width_dm = static_cast<std::uint8_t>(d.constrained(1, 62));
  v.longitudinal_accel_dms2 = static_cast<std::int16_t>(d.constrained(-160, 161));
  v.curvature = static_cast<std::int32_t>(d.constrained(-1023, 1023));
  v.yaw_rate_001degps = static_cast<std::int16_t>(d.constrained(-32766, 32767));
  return v;
}

void LowFrequencyContainer::encode(asn1::PerEncoder& e) const {
  e.bits(exterior_lights, 8);
  path_history.encode(e);
}

LowFrequencyContainer LowFrequencyContainer::decode(asn1::PerDecoder& d) {
  LowFrequencyContainer v;
  v.exterior_lights = static_cast<std::uint8_t>(d.bits(8));
  v.path_history = PathHistory::decode(d);
  return v;
}

std::vector<std::uint8_t> Cam::encode() const {
  asn1::PerEncoder e{128};  // a CAM with path history encodes to ~60-90 B
  header.encode(e);
  e.constrained(generation_delta_time, 0, 65535);
  // CamParameters: presence bitmap for the optional LowFrequencyContainer
  // (the optional SpecialVehicleContainer of the standard is not modelled).
  e.boolean(low_frequency.has_value());
  basic.encode(e);
  high_frequency.encode(e);
  if (low_frequency) low_frequency->encode(e);
  return std::move(e).finish();
}

Cam Cam::decode(const std::vector<std::uint8_t>& buf) {
  asn1::PerDecoder d{buf};
  Cam v;
  v.header = ItsPduHeader::decode(d);
  if (v.header.message_id != MessageId::Cam) throw asn1::DecodeError{"Cam::decode: not a CAM"};
  v.generation_delta_time = static_cast<std::uint16_t>(d.constrained(0, 65535));
  const bool has_lf = d.boolean();
  v.basic = BasicContainer::decode(d);
  v.high_frequency = HighFrequencyContainer::decode(d);
  if (has_lf) v.low_frequency = LowFrequencyContainer::decode(d);
  return v;
}

}  // namespace rst::its
