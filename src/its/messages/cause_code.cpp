#include "rst/its/messages/cause_code.hpp"

namespace rst::its {

void EventType::encode(asn1::PerEncoder& e) const {
  e.constrained(cause_code, 0, 255);
  e.constrained(sub_cause_code, 0, 255);
}

EventType EventType::decode(asn1::PerDecoder& d) {
  EventType v;
  v.cause_code = static_cast<std::uint8_t>(d.constrained(0, 255));
  v.sub_cause_code = static_cast<std::uint8_t>(d.constrained(0, 255));
  return v;
}

const std::vector<CauseCodeEntry>& cause_code_registry() {
  static const std::vector<CauseCodeEntry> kRegistry = {
      {0, "Reserved", 0, "Unavailable"},
      {1, "Traffic condition", 0, "Unavailable"},
      {1, "Traffic condition", 1, "Increased volume of traffic"},
      {1, "Traffic condition", 2, "Traffic jam slowly increasing"},
      {1, "Traffic condition", 3, "Traffic jam increasing"},
      {1, "Traffic condition", 4, "Traffic jam strongly increasing"},
      {1, "Traffic condition", 5, "Traffic stationary"},
      {1, "Traffic condition", 6, "Traffic jam slightly decreasing"},
      {2, "Accident", 0, "Unavailable"},
      {2, "Accident", 1, "Multi-vehicle accident"},
      {2, "Accident", 2, "Heavy accident"},
      {2, "Accident", 3, "Accident involving lorry"},
      {2, "Accident", 4, "Accident involving bus"},
      {2, "Accident", 5, "Accident involving hazardous materials"},
      {2, "Accident", 6, "Accident on opposite lane"},
      {2, "Accident", 7, "Unsecured accident"},
      {3, "Roadworks", 0, "Unavailable"},
      {3, "Roadworks", 1, "Major roadworks"},
      {3, "Roadworks", 2, "Road marking work"},
      {3, "Roadworks", 3, "Slow moving road maintenance"},
      {3, "Roadworks", 4, "Short-term stationary roadworks"},
      {3, "Roadworks", 5, "Street cleaning"},
      {3, "Roadworks", 6, "Winter service"},
      {6, "Adverse weather - Adhesion", 0, "Unavailable"},
      // Paper Table I rows:
      {9, "Hazardous location - Surface condition", 0, "Unavailable"},
      {9, "Hazardous location - Surface condition", 1, "Rockfalls (TISA tec109 cl. 9.18)"},
      {9, "Hazardous location - Surface condition", 2, "Earthquake damage"},
      {9, "Hazardous location - Surface condition", 3, "Sewer collapse"},
      {9, "Hazardous location - Surface condition", 4, "Subsidence"},
      {9, "Hazardous location - Surface condition", 5, "Snow drifts"},
      {9, "Hazardous location - Surface condition", 6, "Storm damage"},
      {9, "Hazardous location - Surface condition", 7, "Burst pipe"},
      {9, "Hazardous location - Surface condition", 8, "Volcano eruption"},
      {9, "Hazardous location - Surface condition", 9, "Falling ice"},
      {10, "Hazardous location - Obstacle on the road", 0, "Unavailable"},
      {10, "Hazardous location - Obstacle on the road", 1, "Shed load (TISA tec110 cl. 9.19)"},
      {10, "Hazardous location - Obstacle on the road", 2, "Parts of vehicles"},
      {10, "Hazardous location - Obstacle on the road", 3, "Parts of tyres"},
      {10, "Hazardous location - Obstacle on the road", 4, "Big objects"},
      {10, "Hazardous location - Obstacle on the road", 5, "Fallen trees"},
      {10, "Hazardous location - Obstacle on the road", 6, "Hub caps"},
      {10, "Hazardous location - Obstacle on the road", 7, "Waiting vehicles"},
      {11, "Hazardous location - Animal on the road", 0, "Unavailable"},
      {12, "Human presence on the road", 0, "Unavailable"},
      {14, "Wrong way driving", 0, "Unavailable"},
      {15, "Rescue and recovery work in progress", 0, "Unavailable"},
      {17, "Adverse weather - Extreme weather", 0, "Unavailable"},
      {18, "Adverse weather - Visibility", 0, "Unavailable"},
      {19, "Adverse weather - Precipitation", 0, "Unavailable"},
      {26, "Slow vehicle", 0, "Unavailable"},
      {27, "Dangerous end of queue", 0, "Unavailable"},
      {91, "Vehicle breakdown", 0, "Unavailable"},
      {92, "Post crash", 0, "Unavailable"},
      {93, "Human problem", 0, "Unavailable"},
      {94, "Stationary vehicle", 0, "Unavailable"},
      {94, "Stationary vehicle", 1, "Human problem"},
      {94, "Stationary vehicle", 2, "Vehicle breakdown"},
      {94, "Stationary vehicle", 3, "Post crash"},
      {94, "Stationary vehicle", 4, "Public transport stop"},
      {94, "Stationary vehicle", 5, "Carrying dangerous goods"},
      {95, "Emergency vehicle approaching", 0, "Unavailable"},
      {96, "Hazardous location - Dangerous curve", 0, "Unavailable"},
      {97, "Collision risk", 0, "Unavailable"},
      {97, "Collision risk", 1, "Longitudinal collision risk"},
      {97, "Collision risk", 2, "Crossing collision risk"},
      {97, "Collision risk", 3, "Lateral collision risk"},
      {97, "Collision risk", 4, "Collision risk involving vulnerable road-user"},
      {98, "Signal violation", 0, "Unavailable"},
      {99, "Dangerous situation", 0, "Unavailable"},
      {99, "Dangerous situation", 1, "Emergency electronic brake lights"},
      {99, "Dangerous situation", 2, "Pre-crash system activated"},
      {99, "Dangerous situation", 3, "ESP (Electronic Stability Program) activated"},
      {99, "Dangerous situation", 4, "ABS (Anti-lock braking system) activated"},
      {99, "Dangerous situation", 5, "AEB (Automatic Emergency Braking) activated"},
      {99, "Dangerous situation", 6, "Brake warning activated"},
      {99, "Dangerous situation", 7, "Collision risk warning activated"},
  };
  return kRegistry;
}

std::string_view describe_cause(std::uint8_t cause_code) {
  for (const auto& e : cause_code_registry()) {
    if (e.cause_code == cause_code) return e.cause_description;
  }
  return "unknown";
}

std::string_view describe_sub_cause(std::uint8_t cause_code, std::uint8_t sub_cause_code) {
  for (const auto& e : cause_code_registry()) {
    if (e.cause_code == cause_code && e.sub_cause_code == sub_cause_code) {
      return e.sub_cause_description;
    }
  }
  return "unknown";
}

}  // namespace rst::its
