#include "rst/its/messages/cpm.hpp"

#include <array>

namespace rst::its {

namespace {

// Wire class code <-> YOLO label. Index == wire code; code 0 doubles as
// the catch-all for labels outside the table.
constexpr std::array<std::string_view, 8> kClassLabels = {
    "unknown", "person", "bicycle", "motorbike", "car", "bus", "truck", "stop sign",
};

}  // namespace

std::uint8_t cpm_class_from_label(std::string_view label) {
  for (std::size_t i = 1; i < kClassLabels.size(); ++i) {
    if (kClassLabels[i] == label) return static_cast<std::uint8_t>(i);
  }
  return 0;
}

std::string_view cpm_label_from_class(std::uint8_t object_class) {
  if (object_class >= kClassLabels.size()) return kClassLabels[0];
  return kClassLabels[object_class];
}

void CpmManagementContainer::encode(asn1::PerEncoder& e) const {
  e.constrained(static_cast<std::int64_t>(station_type), 0, 255);
  reference_position.encode(e);
}

CpmManagementContainer CpmManagementContainer::decode(asn1::PerDecoder& d) {
  CpmManagementContainer v;
  v.station_type = static_cast<StationType>(d.constrained(0, 255));
  v.reference_position = ReferencePosition::decode(d);
  return v;
}

void CpmPerceivedObject::encode(asn1::PerEncoder& e) const {
  e.constrained(object_id, 0, 65535);
  e.constrained(age_ms, 0, 1500);
  e.constrained(x_offset_cm, -132768, 132767);
  e.constrained(y_offset_cm, -132768, 132767);
  e.constrained(x_speed_cms, -16383, 16383);
  e.constrained(y_speed_cms, -16383, 16383);
  e.constrained(object_class, 0, 255);
  e.constrained(confidence_pct, 0, 100);
}

CpmPerceivedObject CpmPerceivedObject::decode(asn1::PerDecoder& d) {
  CpmPerceivedObject v;
  v.object_id = static_cast<std::uint16_t>(d.constrained(0, 65535));
  v.age_ms = static_cast<std::uint16_t>(d.constrained(0, 1500));
  v.x_offset_cm = static_cast<std::int32_t>(d.constrained(-132768, 132767));
  v.y_offset_cm = static_cast<std::int32_t>(d.constrained(-132768, 132767));
  v.x_speed_cms = static_cast<std::int16_t>(d.constrained(-16383, 16383));
  v.y_speed_cms = static_cast<std::int16_t>(d.constrained(-16383, 16383));
  v.object_class = static_cast<std::uint8_t>(d.constrained(0, 255));
  v.confidence_pct = static_cast<std::uint8_t>(d.constrained(0, 100));
  return v;
}

std::vector<std::uint8_t> Cpm::encode() const {
  asn1::PerEncoder e{32 + 16 * objects.size()};
  header.encode(e);
  e.constrained(generation_delta_time, 0, 65535);
  management.encode(e);
  e.constrained(static_cast<std::int64_t>(objects.size()), 0,
                static_cast<std::int64_t>(kCpmMaxPerceivedObjects));
  for (const auto& o : objects) o.encode(e);
  return std::move(e).finish();
}

Cpm Cpm::decode(const std::vector<std::uint8_t>& buf) {
  asn1::PerDecoder d{buf};
  Cpm v;
  v.header = ItsPduHeader::decode(d);
  if (v.header.message_id != MessageId::Cpm) throw asn1::DecodeError{"Cpm::decode: not a CPM"};
  v.generation_delta_time = static_cast<std::uint16_t>(d.constrained(0, 65535));
  v.management = CpmManagementContainer::decode(d);
  const auto count =
      d.constrained(0, static_cast<std::int64_t>(kCpmMaxPerceivedObjects));
  v.objects.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) v.objects.push_back(CpmPerceivedObject::decode(d));
  return v;
}

}  // namespace rst::its
