#include "rst/its/messages/data_elements.hpp"

#include <algorithm>
#include <cmath>

namespace rst::its {

void PositionConfidenceEllipse::encode(asn1::PerEncoder& e) const {
  e.constrained(semi_major_cm, 0, 4095);
  e.constrained(semi_minor_cm, 0, 4095);
  e.constrained(orientation_01deg, 0, 3601);
}

PositionConfidenceEllipse PositionConfidenceEllipse::decode(asn1::PerDecoder& d) {
  PositionConfidenceEllipse v;
  v.semi_major_cm = static_cast<std::uint16_t>(d.constrained(0, 4095));
  v.semi_minor_cm = static_cast<std::uint16_t>(d.constrained(0, 4095));
  v.orientation_01deg = static_cast<std::uint16_t>(d.constrained(0, 3601));
  return v;
}

void Altitude::encode(asn1::PerEncoder& e) const {
  e.constrained(value_cm, -100000, 800001);
  e.constrained(confidence, 0, 15);
}

Altitude Altitude::decode(asn1::PerDecoder& d) {
  Altitude v;
  v.value_cm = static_cast<std::int32_t>(d.constrained(-100000, 800001));
  v.confidence = static_cast<std::uint8_t>(d.constrained(0, 15));
  return v;
}

void ReferencePosition::encode(asn1::PerEncoder& e) const {
  e.constrained(latitude, -900000000, 900000001);
  e.constrained(longitude, -1800000000, 1800000001);
  confidence.encode(e);
  altitude.encode(e);
}

ReferencePosition ReferencePosition::decode(asn1::PerDecoder& d) {
  ReferencePosition v;
  v.latitude = static_cast<std::int32_t>(d.constrained(-900000000, 900000001));
  v.longitude = static_cast<std::int32_t>(d.constrained(-1800000000, 1800000001));
  v.confidence = PositionConfidenceEllipse::decode(d);
  v.altitude = Altitude::decode(d);
  return v;
}

void Heading::encode(asn1::PerEncoder& e) const {
  e.constrained(value_01deg, 0, 3601);
  e.constrained(confidence_01deg, 1, 127);
}

Heading Heading::decode(asn1::PerDecoder& d) {
  Heading v;
  v.value_01deg = static_cast<std::uint16_t>(d.constrained(0, 3601));
  v.confidence_01deg = static_cast<std::uint8_t>(d.constrained(1, 127));
  return v;
}

void Speed::encode(asn1::PerEncoder& e) const {
  e.constrained(value_cms, 0, 16383);
  e.constrained(confidence_cms, 1, 127);
}

Speed Speed::decode(asn1::PerDecoder& d) {
  Speed v;
  v.value_cms = static_cast<std::uint16_t>(d.constrained(0, 16383));
  v.confidence_cms = static_cast<std::uint8_t>(d.constrained(1, 127));
  return v;
}

Speed Speed::from_mps(double mps, double confidence_mps) {
  Speed s;
  const double cms = std::clamp(mps * 100.0, 0.0, 16382.0);
  s.value_cms = static_cast<std::uint16_t>(cms + 0.5);
  const double conf = std::clamp(confidence_mps * 100.0, 1.0, 126.0);
  s.confidence_cms = static_cast<std::uint8_t>(conf + 0.5);
  return s;
}

void ActionId::encode(asn1::PerEncoder& e) const {
  e.constrained(static_cast<std::int64_t>(originating_station), 0, 4294967295LL);
  e.constrained(sequence_number, 0, 65535);
}

ActionId ActionId::decode(asn1::PerDecoder& d) {
  ActionId v;
  v.originating_station = static_cast<StationId>(d.constrained(0, 4294967295LL));
  v.sequence_number = static_cast<std::uint16_t>(d.constrained(0, 65535));
  return v;
}

void PathPoint::encode(asn1::PerEncoder& e) const {
  e.constrained(delta_latitude, -131072, 131071);
  e.constrained(delta_longitude, -131072, 131071);
  const bool has_dt = delta_time_10ms != 0;
  e.boolean(has_dt);
  if (has_dt) e.constrained(delta_time_10ms, 1, 65535);
}

PathPoint PathPoint::decode(asn1::PerDecoder& d) {
  PathPoint v;
  v.delta_latitude = static_cast<std::int32_t>(d.constrained(-131072, 131071));
  v.delta_longitude = static_cast<std::int32_t>(d.constrained(-131072, 131071));
  if (d.boolean()) v.delta_time_10ms = static_cast<std::int32_t>(d.constrained(1, 65535));
  return v;
}

void PathHistory::encode(asn1::PerEncoder& e) const {
  if (points.size() > 40) throw std::invalid_argument{"PathHistory: > 40 points"};
  e.constrained(static_cast<std::int64_t>(points.size()), 0, 40);
  for (const auto& p : points) p.encode(e);
}

PathHistory PathHistory::decode(asn1::PerDecoder& d) {
  PathHistory v;
  const auto n = static_cast<std::size_t>(d.constrained(0, 40));
  v.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.points.push_back(PathPoint::decode(d));
  return v;
}

void encode_timestamp_its(asn1::PerEncoder& e, TimestampIts ts) {
  if (ts > kTimestampItsMax) throw std::invalid_argument{"TimestampIts out of 42-bit range"};
  e.bits(ts, 42);
}

TimestampIts decode_timestamp_its(asn1::PerDecoder& d) { return d.bits(42); }

}  // namespace rst::its
