#include "rst/its/messages/denm.hpp"

#include <stdexcept>

namespace rst::its {

void ManagementContainer::encode(asn1::PerEncoder& e) const {
  // Presence bitmap for the optional fields, in field order.
  e.boolean(termination.has_value());
  e.boolean(relevance_distance.has_value());
  e.boolean(relevance_traffic_direction.has_value());
  e.boolean(transmission_interval_ms.has_value());

  action_id.encode(e);
  encode_timestamp_its(e, detection_time);
  encode_timestamp_its(e, reference_time);
  if (termination) e.enumerated(static_cast<std::uint32_t>(*termination), 2);
  event_position.encode(e);
  if (relevance_distance) e.enumerated(static_cast<std::uint32_t>(*relevance_distance), 8);
  if (relevance_traffic_direction) {
    e.enumerated(static_cast<std::uint32_t>(*relevance_traffic_direction), 4);
  }
  e.constrained(validity_duration_s, 0, 86400);
  if (transmission_interval_ms) e.constrained(*transmission_interval_ms, 1, 10000);
  e.constrained(static_cast<std::int64_t>(station_type), 0, 255);
}

ManagementContainer ManagementContainer::decode(asn1::PerDecoder& d) {
  ManagementContainer v;
  const bool has_term = d.boolean();
  const bool has_rd = d.boolean();
  const bool has_rtd = d.boolean();
  const bool has_ti = d.boolean();

  v.action_id = ActionId::decode(d);
  v.detection_time = decode_timestamp_its(d);
  v.reference_time = decode_timestamp_its(d);
  if (has_term) v.termination = static_cast<Termination>(d.enumerated(2));
  v.event_position = ReferencePosition::decode(d);
  if (has_rd) v.relevance_distance = static_cast<RelevanceDistance>(d.enumerated(8));
  if (has_rtd) v.relevance_traffic_direction = static_cast<RelevanceTrafficDirection>(d.enumerated(4));
  v.validity_duration_s = static_cast<std::uint32_t>(d.constrained(0, 86400));
  if (has_ti) v.transmission_interval_ms = static_cast<std::uint16_t>(d.constrained(1, 10000));
  v.station_type = static_cast<StationType>(d.constrained(0, 255));
  return v;
}

void SituationContainer::encode(asn1::PerEncoder& e) const {
  e.boolean(linked_cause.has_value());
  e.constrained(information_quality, 0, 7);
  event_type.encode(e);
  if (linked_cause) linked_cause->encode(e);
}

SituationContainer SituationContainer::decode(asn1::PerDecoder& d) {
  SituationContainer v;
  const bool has_lc = d.boolean();
  v.information_quality = static_cast<std::uint8_t>(d.constrained(0, 7));
  v.event_type = EventType::decode(d);
  if (has_lc) v.linked_cause = EventType::decode(d);
  return v;
}

void LocationContainer::encode(asn1::PerEncoder& e) const {
  if (traces.empty() || traces.size() > 7) {
    throw std::invalid_argument{"LocationContainer: traces must have 1..7 entries"};
  }
  e.boolean(event_speed.has_value());
  e.boolean(event_position_heading.has_value());
  if (event_speed) event_speed->encode(e);
  if (event_position_heading) event_position_heading->encode(e);
  e.constrained(static_cast<std::int64_t>(traces.size()), 1, 7);
  for (const auto& t : traces) t.encode(e);
}

LocationContainer LocationContainer::decode(asn1::PerDecoder& d) {
  LocationContainer v;
  const bool has_speed = d.boolean();
  const bool has_heading = d.boolean();
  if (has_speed) v.event_speed = Speed::decode(d);
  if (has_heading) v.event_position_heading = Heading::decode(d);
  const auto n = static_cast<std::size_t>(d.constrained(1, 7));
  v.traces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.traces.push_back(PathHistory::decode(d));
  return v;
}

void StationaryVehicleContainer::encode(asn1::PerEncoder& e) const {
  e.boolean(stationary_since.has_value());
  e.boolean(number_of_occupants.has_value());
  if (stationary_since) e.constrained(*stationary_since, 0, 3);
  if (number_of_occupants) e.constrained(*number_of_occupants, 0, 127);
}

StationaryVehicleContainer StationaryVehicleContainer::decode(asn1::PerDecoder& d) {
  StationaryVehicleContainer v;
  const bool has_ss = d.boolean();
  const bool has_no = d.boolean();
  if (has_ss) v.stationary_since = static_cast<std::uint8_t>(d.constrained(0, 3));
  if (has_no) v.number_of_occupants = static_cast<std::uint8_t>(d.constrained(0, 127));
  return v;
}

void AlacarteContainer::encode(asn1::PerEncoder& e) const {
  e.boolean(lane_position.has_value());
  e.boolean(external_temperature.has_value());
  e.boolean(stationary_vehicle.has_value());
  if (lane_position) e.constrained(*lane_position, -1, 14);
  if (external_temperature) e.constrained(*external_temperature, -60, 67);
  if (stationary_vehicle) stationary_vehicle->encode(e);
}

AlacarteContainer AlacarteContainer::decode(asn1::PerDecoder& d) {
  AlacarteContainer v;
  const bool has_lp = d.boolean();
  const bool has_et = d.boolean();
  const bool has_sv = d.boolean();
  if (has_lp) v.lane_position = static_cast<std::int8_t>(d.constrained(-1, 14));
  if (has_et) v.external_temperature = static_cast<std::int8_t>(d.constrained(-60, 67));
  if (has_sv) v.stationary_vehicle = StationaryVehicleContainer::decode(d);
  return v;
}

std::vector<std::uint8_t> Denm::encode() const {
  asn1::PerEncoder e{160};  // a DENM with traces encodes to ~80-130 B
  header.encode(e);
  e.boolean(situation.has_value());
  e.boolean(location.has_value());
  e.boolean(alacarte.has_value());
  management.encode(e);
  if (situation) situation->encode(e);
  if (location) location->encode(e);
  if (alacarte) alacarte->encode(e);
  return std::move(e).finish();
}

Denm Denm::decode(const std::vector<std::uint8_t>& buf) {
  asn1::PerDecoder d{buf};
  Denm v;
  v.header = ItsPduHeader::decode(d);
  if (v.header.message_id != MessageId::Denm) throw asn1::DecodeError{"Denm::decode: not a DENM"};
  const bool has_sit = d.boolean();
  const bool has_loc = d.boolean();
  const bool has_alc = d.boolean();
  v.management = ManagementContainer::decode(d);
  if (has_sit) v.situation = SituationContainer::decode(d);
  if (has_loc) v.location = LocationContainer::decode(d);
  if (has_alc) v.alacarte = AlacarteContainer::decode(d);
  return v;
}

}  // namespace rst::its
