#include "rst/its/network/btp.hpp"

namespace rst::its {

std::vector<std::uint8_t> BtpHeader::prepend_to(const std::vector<std::uint8_t>& payload) const {
  std::vector<std::uint8_t> out;
  out.reserve(kSize + payload.size());
  out.push_back(static_cast<std::uint8_t>(destination_port >> 8));
  out.push_back(static_cast<std::uint8_t>(destination_port & 0xff));
  out.push_back(static_cast<std::uint8_t>(destination_port_info >> 8));
  out.push_back(static_cast<std::uint8_t>(destination_port_info & 0xff));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

BtpHeader::Parsed BtpHeader::parse(const std::vector<std::uint8_t>& pdu) {
  if (pdu.size() < kSize) throw asn1::DecodeError{"BtpHeader::parse: truncated PDU"};
  Parsed p;
  p.header.destination_port = static_cast<std::uint16_t>((pdu[0] << 8) | pdu[1]);
  p.header.destination_port_info = static_cast<std::uint16_t>((pdu[2] << 8) | pdu[3]);
  p.payload.assign(pdu.begin() + kSize, pdu.end());
  return p;
}

}  // namespace rst::its
