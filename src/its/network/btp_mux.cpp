#include "rst/its/network/btp_mux.hpp"

namespace rst::its {

void BtpMux::register_port(std::uint16_t port, Handler handler) {
  handlers_[port] = std::move(handler);
}

void BtpMux::unregister_port(std::uint16_t port) { handlers_.erase(port); }

void BtpMux::on_gn_payload(const std::vector<std::uint8_t>& btp_pdu, const GnDeliveryMeta& meta) {
  BtpHeader::Parsed parsed;
  try {
    parsed = BtpHeader::parse(btp_pdu);
  } catch (const asn1::DecodeError&) {
    ++stats_.parse_errors;
    return;
  }
  const auto it = handlers_.find(parsed.header.destination_port);
  if (it == handlers_.end()) {
    ++stats_.unknown_port;
    return;
  }
  ++stats_.dispatched;
  it->second(parsed.payload, meta);
}

}  // namespace rst::its
