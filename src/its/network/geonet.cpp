#include "rst/its/network/geonet.hpp"

#include <algorithm>
#include <cmath>

#include "rst/geo/geodesy.hpp"

namespace rst::its {

void LongPositionVector::encode(asn1::PerEncoder& e) const {
  e.bits(address.value, 64);
  e.bits(timestamp_ms, 32);
  e.constrained(latitude, -900000000, 900000001);
  e.constrained(longitude, -1800000000, 1800000001);
  e.boolean(position_accurate);
  e.constrained(speed_cms, -32768, 32767);
  e.constrained(heading_01deg, 0, 3601);
}

LongPositionVector LongPositionVector::decode(asn1::PerDecoder& d) {
  LongPositionVector v;
  v.address.value = d.bits(64);
  v.timestamp_ms = static_cast<std::uint32_t>(d.bits(32));
  v.latitude = static_cast<std::int32_t>(d.constrained(-900000000, 900000001));
  v.longitude = static_cast<std::int32_t>(d.constrained(-1800000000, 1800000001));
  v.position_accurate = d.boolean();
  v.speed_cms = static_cast<std::int16_t>(d.constrained(-32768, 32767));
  v.heading_01deg = static_cast<std::uint16_t>(d.constrained(0, 3601));
  return v;
}

void WireGeoArea::encode(asn1::PerEncoder& e) const {
  e.constrained(center_latitude, -900000000, 900000001);
  e.constrained(center_longitude, -1800000000, 1800000001);
  e.bits(distance_a_m, 16);
  e.bits(distance_b_m, 16);
  e.constrained(angle_deg, 0, 360);
  e.constrained(shape, 0, 2);
}

WireGeoArea WireGeoArea::decode(asn1::PerDecoder& d) {
  WireGeoArea v;
  v.center_latitude = static_cast<std::int32_t>(d.constrained(-900000000, 900000001));
  v.center_longitude = static_cast<std::int32_t>(d.constrained(-1800000000, 1800000001));
  v.distance_a_m = static_cast<std::uint16_t>(d.bits(16));
  v.distance_b_m = static_cast<std::uint16_t>(d.bits(16));
  v.angle_deg = static_cast<std::uint16_t>(d.constrained(0, 360));
  v.shape = static_cast<std::uint8_t>(d.constrained(0, 2));
  return v;
}

std::vector<std::uint8_t> GnPacket::encode() const {
  // ~56 bytes of GN headers ahead of the BTP payload.
  asn1::PerEncoder e{64 + payload.size()};
  e.constrained(version, 0, 15);
  e.enumerated(static_cast<std::uint32_t>(type), kGnPacketTypeCount);
  e.constrained(traffic_class, 0, 63);
  e.bits(remaining_hop_limit, 8);
  e.bits(lifetime_50ms, 16);
  e.bits(sequence_number, 16);
  source.encode(e);
  forwarder.encode(e);
  e.boolean(destination_area.has_value());
  if (destination_area) destination_area->encode(e);
  e.boolean(destination.has_value());
  if (destination) destination->encode(e);
  e.octet_string(payload);
  return std::move(e).finish();
}

GnPacket GnPacket::decode(const std::vector<std::uint8_t>& buf) {
  asn1::PerDecoder d{buf};
  GnPacket v;
  v.version = static_cast<std::uint8_t>(d.constrained(0, 15));
  v.type = static_cast<GnPacketType>(d.enumerated(kGnPacketTypeCount));
  v.traffic_class = static_cast<std::uint8_t>(d.constrained(0, 63));
  v.remaining_hop_limit = static_cast<std::uint8_t>(d.bits(8));
  v.lifetime_50ms = static_cast<std::uint16_t>(d.bits(16));
  v.sequence_number = static_cast<std::uint16_t>(d.bits(16));
  v.source = LongPositionVector::decode(d);
  v.forwarder = LongPositionVector::decode(d);
  if (d.boolean()) v.destination_area = WireGeoArea::decode(d);
  if (d.boolean()) v.destination = LongPositionVector::decode(d);
  v.payload = d.octet_string();
  return v;
}

GeoNetRouter::GeoNetRouter(sim::Scheduler& sched, dot11p::Radio& radio, const geo::LocalFrame& frame,
                           GnAddress address, EgoProvider ego, GeoNetConfig config,
                           sim::RandomStream rng, sim::Trace* trace)
    : sched_{sched},
      radio_{radio},
      frame_{frame},
      address_{address},
      ego_{std::move(ego)},
      config_{config},
      rng_{rng.child("geonet")},
      trace_{trace} {
  radio_.set_receive_callback(
      [this](const dot11p::Frame& f, const dot11p::RxInfo& info) { on_frame(f, info); });
  if (config_.enable_beaconing) schedule_beacon();
}

GeoNetRouter::~GeoNetRouter() {
  radio_.set_receive_callback(nullptr);
  beacon_timer_.cancel();
  for (auto& [key, timer] : cbf_timers_) timer.cancel();
}

LongPositionVector GeoNetRouter::make_position_vector() const {
  const EgoState ego = ego_();
  const geo::GeoPosition gp = frame_.to_geo(ego.position);
  LongPositionVector pv;
  pv.address = address_;
  pv.timestamp_ms = static_cast<std::uint32_t>(sched_.now().count_ns() / 1'000'000);
  pv.latitude = geo::to_its_tenth_microdegree(gp.latitude_deg);
  pv.longitude = geo::to_its_tenth_microdegree(gp.longitude_deg);
  pv.position_accurate = true;
  pv.speed_cms = static_cast<std::int16_t>(std::clamp(ego.speed_mps * 100.0, -32768.0, 32767.0));
  double heading_deg = ego.heading_rad * 180.0 / M_PI;
  heading_deg = std::fmod(heading_deg, 360.0);
  if (heading_deg < 0) heading_deg += 360.0;
  pv.heading_01deg = static_cast<std::uint16_t>(heading_deg * 10.0);
  return pv;
}

WireGeoArea GeoNetRouter::area_to_wire(const geo::GeoArea& a) const {
  const geo::GeoPosition c = frame_.to_geo(a.center);
  WireGeoArea w;
  w.center_latitude = geo::to_its_tenth_microdegree(c.latitude_deg);
  w.center_longitude = geo::to_its_tenth_microdegree(c.longitude_deg);
  w.distance_a_m = static_cast<std::uint16_t>(std::min(a.a, 65535.0));
  w.distance_b_m = static_cast<std::uint16_t>(std::min(a.b, 65535.0));
  w.angle_deg = static_cast<std::uint16_t>(std::fmod(a.azimuth_rad * 180.0 / M_PI + 360.0, 360.0));
  switch (a.shape) {
    case geo::AreaShape::Circle: w.shape = 0; break;
    case geo::AreaShape::Rectangle: w.shape = 1; break;
    case geo::AreaShape::Ellipse: w.shape = 2; break;
  }
  return w;
}

geo::GeoArea GeoNetRouter::area_from_wire(const WireGeoArea& w) const {
  geo::GeoPosition c{geo::from_its_tenth_microdegree(w.center_latitude),
                     geo::from_its_tenth_microdegree(w.center_longitude)};
  geo::GeoArea a;
  a.center = frame_.to_local(c);
  a.a = w.distance_a_m;
  a.b = w.distance_b_m;
  a.azimuth_rad = w.angle_deg * M_PI / 180.0;
  switch (w.shape) {
    case 0: a.shape = geo::AreaShape::Circle; break;
    case 1: a.shape = geo::AreaShape::Rectangle; break;
    default: a.shape = geo::AreaShape::Ellipse; break;
  }
  return a;
}

void GeoNetRouter::broadcast(const GnPacket& pkt, dot11p::AccessCategory ac) {
  prune_tables();  // housekeeping piggybacks on traffic
  dot11p::Frame f;
  f.payload = pkt.encode();
  f.ac = ac;
  if (send_hook_) {
    send_hook_(std::move(f));
  } else {
    radio_.send(std::move(f));
  }
}

void GeoNetRouter::send_shb(std::vector<std::uint8_t> btp_pdu, dot11p::AccessCategory ac) {
  GnPacket pkt;
  pkt.type = GnPacketType::Shb;
  pkt.remaining_hop_limit = 1;
  pkt.source = make_position_vector();
  pkt.forwarder = pkt.source;
  pkt.payload = std::move(btp_pdu);
  ++stats_.originated;
  broadcast(pkt, ac);
}

void GeoNetRouter::send_tsb(std::vector<std::uint8_t> btp_pdu, std::uint8_t hop_limit,
                            dot11p::AccessCategory ac) {
  GnPacket pkt;
  pkt.type = GnPacketType::Tsb;
  pkt.remaining_hop_limit = hop_limit;
  pkt.sequence_number = next_sequence_++;
  pkt.source = make_position_vector();
  pkt.forwarder = pkt.source;
  pkt.payload = std::move(btp_pdu);
  remember(address_, pkt.sequence_number);  // never re-forward own packet
  ++stats_.originated;
  broadcast(pkt, ac);
}

void GeoNetRouter::send_gbc(std::vector<std::uint8_t> btp_pdu, const geo::GeoArea& area,
                            dot11p::AccessCategory ac, std::optional<std::uint8_t> hop_limit) {
  GnPacket pkt;
  pkt.type = GnPacketType::Gbc;
  pkt.remaining_hop_limit = hop_limit.value_or(config_.default_hop_limit);
  pkt.sequence_number = next_sequence_++;
  pkt.source = make_position_vector();
  pkt.forwarder = pkt.source;
  pkt.destination_area = area_to_wire(area);
  pkt.payload = std::move(btp_pdu);
  remember(address_, pkt.sequence_number);
  ++stats_.originated;
  broadcast(pkt, ac);
}

void GeoNetRouter::transmit_guc(std::vector<std::uint8_t> btp_pdu,
                                const LongPositionVector& destination, dot11p::AccessCategory ac,
                                std::optional<std::uint8_t> hop_limit) {
  GnPacket pkt;
  pkt.type = GnPacketType::Guc;
  pkt.remaining_hop_limit = hop_limit.value_or(config_.default_hop_limit);
  pkt.sequence_number = next_sequence_++;
  pkt.source = make_position_vector();
  pkt.forwarder = pkt.source;
  pkt.destination = destination;
  pkt.payload = std::move(btp_pdu);
  remember(address_, pkt.sequence_number);
  ++stats_.originated;
  broadcast(pkt, ac);
}

bool GeoNetRouter::send_guc(std::vector<std::uint8_t> btp_pdu, GnAddress destination,
                            dot11p::AccessCategory ac, std::optional<std::uint8_t> hop_limit) {
  const auto it = location_table_.find(destination.value);
  if (it != location_table_.end()) {
    transmit_guc(std::move(btp_pdu), it->second.position_vector, ac, hop_limit);
    return true;
  }
  // Unknown position: buffer the PDU and run the location service.
  auto& queue = ls_buffer_[destination.value];
  // Expire stale entries opportunistically.
  std::erase_if(queue, [&](const PendingGuc& p) {
    return sched_.now() - p.queued > config_.ls_buffer_lifetime;
  });
  if (queue.size() >= config_.ls_buffer_capacity) {
    ++stats_.ls_buffer_dropped;
    return false;
  }
  queue.push_back({std::move(btp_pdu), ac, hop_limit, sched_.now()});

  GnPacket request;
  request.type = GnPacketType::LsRequest;
  request.remaining_hop_limit = config_.ls_hop_limit;
  request.sequence_number = next_sequence_++;
  request.source = make_position_vector();
  request.forwarder = request.source;
  LongPositionVector target;
  target.address = destination;
  request.destination = target;  // only the address is meaningful
  remember(address_, request.sequence_number);
  ++stats_.ls_requests_sent;
  broadcast(request, dot11p::AccessCategory::BestEffort);
  return true;
}

void GeoNetRouter::flush_ls_buffer(GnAddress destination) {
  const auto it = ls_buffer_.find(destination.value);
  if (it == ls_buffer_.end()) return;
  const auto pos = location_table_.find(destination.value);
  if (pos == location_table_.end()) return;
  std::vector<PendingGuc> queue = std::move(it->second);
  ls_buffer_.erase(it);
  for (auto& pending : queue) {
    if (sched_.now() - pending.queued > config_.ls_buffer_lifetime) {
      ++stats_.ls_buffer_dropped;
      continue;
    }
    transmit_guc(std::move(pending.btp_pdu), pos->second.position_vector, pending.ac,
                 pending.hop_limit);
  }
}

void GeoNetRouter::handle_ls_request(GnPacket pkt) {
  if (!pkt.destination) return;
  if (is_duplicate(pkt.source.address, pkt.sequence_number)) {
    ++stats_.duplicates_dropped;
    return;
  }
  remember(pkt.source.address, pkt.sequence_number);

  if (pkt.destination->address == address_) {
    // We are the sought station: answer with a unicast LS reply towards
    // the requester's advertised position.
    GnPacket reply;
    reply.type = GnPacketType::LsReply;
    reply.remaining_hop_limit = config_.ls_hop_limit;
    reply.sequence_number = next_sequence_++;
    reply.source = make_position_vector();
    reply.forwarder = reply.source;
    reply.destination = pkt.source;
    remember(address_, reply.sequence_number);
    ++stats_.ls_replies_sent;
    broadcast(reply, dot11p::AccessCategory::BestEffort);
    return;
  }
  // Not us: flood on (TSB-style).
  if (pkt.remaining_hop_limit > 1) {
    GnPacket fwd = std::move(pkt);
    --fwd.remaining_hop_limit;
    fwd.forwarder = make_position_vector();
    ++stats_.forwarded;
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::GnForward,
                           static_cast<std::uint32_t>(address_.value), fwd.sequence_number);
    }
    broadcast(fwd, dot11p::AccessCategory::BestEffort);
  }
}

bool GeoNetRouter::is_duplicate(GnAddress src, std::uint16_t seq) {
  prune_tables();
  return dpd_.contains({src.value, seq});
}

void GeoNetRouter::remember(GnAddress src, std::uint16_t seq) {
  dpd_[{src.value, seq}] = DpdEntry{sched_.now()};
}

void GeoNetRouter::update_location_table(const LongPositionVector& pv) {
  if (pv.address == address_) return;
  const bool fresh = !location_table_.contains(pv.address.value);
  auto& entry = location_table_[pv.address.value];
  entry.position_vector = pv;
  entry.last_update = sched_.now();
  ++entry.packets_received;
  if (fresh) flush_ls_buffer(pv.address);
}

void GeoNetRouter::prune_tables() {
  const sim::SimTime now = sched_.now();
  std::erase_if(dpd_, [&](const auto& kv) {
    return now - kv.second.seen > config_.duplicate_entry_lifetime;
  });
  std::erase_if(location_table_, [&](const auto& kv) {
    return now - kv.second.last_update > config_.location_entry_lifetime;
  });
}

void GeoNetRouter::on_frame(const dot11p::Frame& f, const dot11p::RxInfo& info) {
  GnPacket pkt;
  try {
    pkt = GnPacket::decode(f.payload);
  } catch (const asn1::DecodeError&) {
    return;  // not a GN packet / corrupted beyond the CRC model
  }
  if (pkt.source.address == address_) return;  // echo of our own origination

  // Lifetime check (EN 302 636-4-1 §10.3.3): a packet older than its
  // lifetime is dropped, not processed or forwarded. Source timestamps are
  // on the shared GN time base (ms mod 2^32).
  const auto now_ms = static_cast<std::uint32_t>(sched_.now().count_ns() / 1'000'000);
  const std::uint32_t age_ms = now_ms - pkt.source.timestamp_ms;  // mod-2^32 arithmetic
  if (age_ms > static_cast<std::uint32_t>(pkt.lifetime_50ms) * 50 && age_ms < 0x80000000u) {
    ++stats_.lifetime_expired_dropped;
    return;
  }

  update_location_table(pkt.source);
  if (pkt.forwarder.address != pkt.source.address) update_location_table(pkt.forwarder);

  const auto deliver_up = [&] {
    if (!deliver_) return;
    const geo::GeoPosition sp{geo::from_its_tenth_microdegree(pkt.source.latitude),
                              geo::from_its_tenth_microdegree(pkt.source.longitude)};
    GnDeliveryMeta meta;
    meta.source = pkt.source.address;
    meta.source_position = frame_.to_local(sp);
    meta.rssi_dbm = info.rssi_dbm;
    meta.hops_traversed = static_cast<std::uint8_t>(config_.default_hop_limit - pkt.remaining_hop_limit);
    meta.delivered_at = sched_.now();
    ++stats_.delivered_up;
    deliver_(pkt.payload, meta);
  };

  switch (pkt.type) {
    case GnPacketType::Beacon:
      return;  // location table already updated
    case GnPacketType::Shb:
      deliver_up();
      return;
    case GnPacketType::Tsb: {
      if (is_duplicate(pkt.source.address, pkt.sequence_number)) {
        ++stats_.duplicates_dropped;
        return;
      }
      remember(pkt.source.address, pkt.sequence_number);
      deliver_up();
      if (pkt.remaining_hop_limit > 1) {
        GnPacket fwd = pkt;
        --fwd.remaining_hop_limit;
        fwd.forwarder = make_position_vector();
        ++stats_.forwarded;
        if (trace_) {
          trace_->record_event(sched_.now(), sim::Stage::GnForward,
                               static_cast<std::uint32_t>(address_.value), fwd.sequence_number);
        }
        broadcast(fwd, dot11p::AccessCategory::Video);
      }
      return;
    }
    case GnPacketType::Gbc:
      handle_gbc(std::move(pkt), info);
      return;
    case GnPacketType::Guc:
      handle_guc(std::move(pkt), info);
      return;
    case GnPacketType::LsRequest:
      handle_ls_request(std::move(pkt));
      return;
    case GnPacketType::LsReply:
      // Routed like a unicast; the location-table update above already
      // captured the sought station's position vector.
      handle_guc(std::move(pkt), info);
      return;
  }
}

void GeoNetRouter::handle_gbc(GnPacket pkt, const dot11p::RxInfo& /*info*/) {
  if (!pkt.destination_area) return;
  const auto key = std::make_pair(pkt.source.address.value, pkt.sequence_number);

  // A duplicate heard while a CBF timer runs means a neighbour already
  // forwarded the packet: suppress our own retransmission (Annex F).
  if (auto it = cbf_timers_.find(key); it != cbf_timers_.end()) {
    it->second.cancel();
    cbf_timers_.erase(it);
    ++stats_.cbf_suppressed;
    return;
  }
  if (is_duplicate(pkt.source.address, pkt.sequence_number)) {
    ++stats_.duplicates_dropped;
    return;
  }
  remember(pkt.source.address, pkt.sequence_number);

  const geo::GeoArea area = area_from_wire(*pkt.destination_area);
  const geo::Vec2 my_pos = ego_().position;
  const bool inside = area.contains(my_pos);

  if (inside) {
    if (deliver_) {
      const geo::GeoPosition sp{geo::from_its_tenth_microdegree(pkt.source.latitude),
                                geo::from_its_tenth_microdegree(pkt.source.longitude)};
      GnDeliveryMeta meta;
      meta.source = pkt.source.address;
      meta.source_position = frame_.to_local(sp);
      meta.hops_traversed = static_cast<std::uint8_t>(config_.default_hop_limit - pkt.remaining_hop_limit);
      meta.delivered_at = sched_.now();
      meta.destination_area = area;
      ++stats_.delivered_up;
      deliver_(pkt.payload, meta);
    }
  }

  if (pkt.remaining_hop_limit <= 1) return;

  // Forwarding decision. Inside the area: contention-based flooding.
  // Outside: forward only with geometric progress towards the area centre
  // relative to the previous forwarder (greedy line forwarding).
  const geo::GeoPosition fp{geo::from_its_tenth_microdegree(pkt.forwarder.latitude),
                            geo::from_its_tenth_microdegree(pkt.forwarder.longitude)};
  const geo::Vec2 forwarder_pos = frame_.to_local(fp);
  double progress01 = 0.0;
  if (inside) {
    const double d = geo::distance(my_pos, forwarder_pos);
    progress01 = std::clamp(d / config_.cbf_max_range_m, 0.0, 1.0);
  } else {
    const double mine = geo::distance(my_pos, area.center);
    const double theirs = geo::distance(forwarder_pos, area.center);
    if (mine >= theirs) {
      ++stats_.out_of_area_dropped;
      return;  // no progress towards the destination area
    }
    progress01 = std::clamp((theirs - mine) / config_.cbf_max_range_m, 0.0, 1.0);
  }

  // Larger progress -> shorter timer (better-placed nodes fire first).
  const auto span = config_.cbf_max_delay - config_.cbf_min_delay;
  const auto delay = config_.cbf_min_delay +
                     sim::SimTime::nanoseconds(static_cast<std::int64_t>(
                         static_cast<double>(span.count_ns()) * (1.0 - progress01)));
  GnPacket fwd = std::move(pkt);
  --fwd.remaining_hop_limit;
  cbf_timers_[key] = sched_.schedule_in(delay, [this, key, fwd]() mutable {
    cbf_timers_.erase(key);
    fwd.forwarder = make_position_vector();
    ++stats_.forwarded;
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::GnForward,
                           static_cast<std::uint32_t>(address_.value), fwd.sequence_number);
    }
    broadcast(fwd, dot11p::AccessCategory::Video);
  });
}

void GeoNetRouter::handle_guc(GnPacket pkt, const dot11p::RxInfo& /*info*/) {
  if (!pkt.destination) return;
  const auto key = std::make_pair(pkt.source.address.value, pkt.sequence_number);

  // A copy heard while our forwarding timer runs: someone closer acted.
  if (auto it = cbf_timers_.find(key); it != cbf_timers_.end()) {
    it->second.cancel();
    cbf_timers_.erase(it);
    ++stats_.cbf_suppressed;
    return;
  }
  if (is_duplicate(pkt.source.address, pkt.sequence_number)) {
    ++stats_.duplicates_dropped;
    return;
  }
  remember(pkt.source.address, pkt.sequence_number);

  if (pkt.destination->address == address_) {
    if (deliver_ && !pkt.payload.empty()) {
      const geo::GeoPosition sp{geo::from_its_tenth_microdegree(pkt.source.latitude),
                                geo::from_its_tenth_microdegree(pkt.source.longitude)};
      GnDeliveryMeta meta;
      meta.source = pkt.source.address;
      meta.source_position = frame_.to_local(sp);
      meta.hops_traversed =
          static_cast<std::uint8_t>(config_.default_hop_limit - pkt.remaining_hop_limit);
      meta.delivered_at = sched_.now();
      ++stats_.delivered_up;
      deliver_(pkt.payload, meta);
    }
    return;
  }
  if (pkt.remaining_hop_limit <= 1) return;

  // Greedy forwarding towards the destination's advertised position, with
  // a contention delay so the best-placed neighbour acts first.
  const geo::GeoPosition dp{geo::from_its_tenth_microdegree(pkt.destination->latitude),
                            geo::from_its_tenth_microdegree(pkt.destination->longitude)};
  const geo::Vec2 dest_pos = frame_.to_local(dp);
  const geo::GeoPosition fp{geo::from_its_tenth_microdegree(pkt.forwarder.latitude),
                            geo::from_its_tenth_microdegree(pkt.forwarder.longitude)};
  const geo::Vec2 forwarder_pos = frame_.to_local(fp);
  const geo::Vec2 my_pos = ego_().position;
  const double mine = geo::distance(my_pos, dest_pos);
  const double theirs = geo::distance(forwarder_pos, dest_pos);
  if (mine >= theirs) {
    ++stats_.out_of_area_dropped;
    return;
  }
  const double progress01 = std::clamp((theirs - mine) / config_.cbf_max_range_m, 0.0, 1.0);
  const auto span = config_.cbf_max_delay - config_.cbf_min_delay;
  const auto delay = config_.cbf_min_delay +
                     sim::SimTime::nanoseconds(static_cast<std::int64_t>(
                         static_cast<double>(span.count_ns()) * (1.0 - progress01)));
  GnPacket fwd = std::move(pkt);
  --fwd.remaining_hop_limit;
  cbf_timers_[key] = sched_.schedule_in(delay, [this, key, fwd]() mutable {
    cbf_timers_.erase(key);
    fwd.forwarder = make_position_vector();
    ++stats_.forwarded;
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::GnForward,
                           static_cast<std::uint32_t>(address_.value), fwd.sequence_number);
    }
    broadcast(fwd, dot11p::AccessCategory::Video);
  });
}

void GeoNetRouter::schedule_beacon() {
  const auto jitter = rng_.uniform_time(sim::SimTime::zero(), config_.beacon_interval / 4);
  beacon_timer_ = sched_.schedule_in(config_.beacon_interval + jitter, [this] {
    GnPacket pkt;
    pkt.type = GnPacketType::Beacon;
    pkt.remaining_hop_limit = 1;
    pkt.source = make_position_vector();
    pkt.forwarder = pkt.source;
    broadcast(pkt, dot11p::AccessCategory::Background);
    schedule_beacon();
  });
}

}  // namespace rst::its
