#include "rst/middleware/ascii_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rst::middleware {

AsciiMap::AsciiMap(geo::Vec2 min_corner, geo::Vec2 max_corner, std::size_t columns,
                   std::size_t rows)
    : min_{min_corner}, max_{max_corner}, columns_{columns}, rows_{rows} {
  if (!(max_.x > min_.x) || !(max_.y > min_.y) || columns_ < 2 || rows_ < 2) {
    throw std::invalid_argument{"AsciiMap: degenerate viewport"};
  }
  grid_.assign(rows_, std::string(columns_, ' '));
}

bool AsciiMap::to_cell(geo::Vec2 p, std::size_t& col, std::size_t& row) const {
  if (p.x < min_.x || p.x > max_.x || p.y < min_.y || p.y > max_.y) return false;
  const double fx = (p.x - min_.x) / (max_.x - min_.x);
  const double fy = (p.y - min_.y) / (max_.y - min_.y);
  col = std::min(columns_ - 1, static_cast<std::size_t>(fx * static_cast<double>(columns_)));
  // Row 0 is the top of the rendering = maximum y (north up).
  row = std::min(rows_ - 1, static_cast<std::size_t>((1.0 - fy) * static_cast<double>(rows_)));
  return true;
}

void AsciiMap::plot(geo::Vec2 position, char symbol) {
  std::size_t col = 0;
  std::size_t row = 0;
  if (to_cell(position, col, row)) grid_[row][col] = symbol;
}

void AsciiMap::plot_line(geo::Vec2 a, geo::Vec2 b, char symbol) {
  const double length = geo::distance(a, b);
  const double cell = std::min((max_.x - min_.x) / static_cast<double>(columns_),
                               (max_.y - min_.y) / static_cast<double>(rows_));
  const int steps = std::max(1, static_cast<int>(std::ceil(length / (cell * 0.5))));
  for (int i = 0; i <= steps; ++i) {
    plot(a + (b - a) * (static_cast<double>(i) / steps), symbol);
  }
}

void AsciiMap::legend(char symbol, const std::string& meaning) {
  legend_.emplace_back(symbol, meaning);
}

std::string AsciiMap::render() const {
  std::string out;
  out += '+' + std::string(columns_, '-') + "+\n";
  for (const auto& row : grid_) {
    out += '|';
    out += row;
    out += "|\n";
  }
  out += '+' + std::string(columns_, '-') + "+\n";
  for (const auto& [symbol, meaning] : legend_) {
    out += "  ";
    out += symbol;
    out += " = " + meaning + "\n";
  }
  return out;
}

}  // namespace rst::middleware
