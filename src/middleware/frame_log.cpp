#include "rst/middleware/frame_log.hpp"

#include <algorithm>
#include <cmath>

#include "rst/asn1/per.hpp"
#include "rst/its/network/btp.hpp"
#include "rst/its/network/geonet.hpp"

namespace rst::middleware {

void FrameLog::attach(dot11p::Radio& radio) {
  radio.set_promiscuous_tap([this](const dot11p::Frame& f, const dot11p::RxInfo& info) {
    frames_.push_back({info.rx_time, info.src_mac, info.rssi_dbm, f.payload});
  });
}

FrameLog::Summary FrameLog::summarize() const {
  Summary s;
  s.total = frames_.size();
  for (const auto& frame : frames_) {
    try {
      const auto pkt = its::GnPacket::decode(frame.payload);
      if (pkt.payload.size() < its::BtpHeader::kSize) {
        ++s.other;
        continue;
      }
      const auto parsed = its::BtpHeader::parse(pkt.payload);
      if (parsed.header.destination_port == its::kBtpPortCam) {
        ++s.cams;
      } else if (parsed.header.destination_port == its::kBtpPortDenm) {
        ++s.denms;
      } else {
        ++s.other;
      }
    } catch (const asn1::DecodeError&) {
      ++s.other;
    }
  }
  return s;
}

std::vector<std::uint8_t> FrameLog::serialize() const {
  asn1::PerEncoder e;
  e.bits(frames_.size(), 32);
  for (const auto& frame : frames_) {
    e.bits(static_cast<std::uint64_t>(frame.when.count_ns()), 64);
    e.bits(frame.src_mac, 64);
    // RSSI rounded to 0.1 dB around a -200 dB floor.
    const auto rssi_q = std::llround((frame.rssi_dbm + 200.0) * 10.0);
    e.constrained(std::clamp<std::int64_t>(rssi_q, 0, 4000), 0, 4000);
    e.octet_string(frame.payload);
  }
  return std::move(e).finish();
}

std::vector<LoggedFrame> FrameLog::parse(const std::vector<std::uint8_t>& data) {
  asn1::PerDecoder d{data};
  const auto count = d.bits(32);
  std::vector<LoggedFrame> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    LoggedFrame frame;
    frame.when = sim::SimTime::nanoseconds(static_cast<std::int64_t>(d.bits(64)));
    frame.src_mac = d.bits(64);
    frame.rssi_dbm = static_cast<double>(d.constrained(0, 4000)) / 10.0 - 200.0;
    frame.payload = d.octet_string();
    out.push_back(std::move(frame));
  }
  return out;
}

}  // namespace rst::middleware
