#include "rst/middleware/http.hpp"

#include <algorithm>

#include "rst/sim/fault_plan.hpp"

namespace rst::middleware {

HttpLan::HttpLan(sim::Scheduler& sched, sim::RandomStream rng, Config config)
    : sched_{sched}, rng_{rng.child("http")}, config_{config} {}

void HttpLan::attach(HttpHost& host) { hosts_[host.hostname()] = &host; }

void HttpLan::detach(const std::string& hostname) { hosts_.erase(hostname); }

bool HttpLan::lose_request(const std::string& hostname) {
  // A downed destination loses the request outright (no RNG draw: the host
  // is gone, not flaky). Otherwise the loss probability is the worst of the
  // legacy knob and any active HttpLoss clause, drawn from the LAN's own
  // stream — a whole-run clause reproduces the knob draw-for-draw.
  if (faults_ && faults_->active(sim::FaultKind::NodeDown, hostname)) return true;
  double p = config_.loss_probability;
  if (faults_) p = std::max(p, faults_->severity(sim::FaultKind::HttpLoss, "lan"));
  return p > 0 && rng_.bernoulli(p);
}

void HttpLan::request(const std::string& hostname, HttpRequest req, ResponseCallback cb) {
  ++requests_;
  if (lose_request(hostname)) {
    ++requests_lost_;
    sched_.post_in(config_.loss_timeout, [cb] { cb(HttpResponse{0, {}}); });
    return;
  }
  const auto leg = [this] {
    return config_.one_way_latency + rng_.uniform_time(sim::SimTime::zero(), config_.one_way_jitter);
  };
  auto processing = config_.server_processing +
                    rng_.uniform_time(sim::SimTime::zero(), config_.server_processing_jitter);
  if (faults_) {
    // Stall windows hold the response on the server for `severity` ms.
    processing = processing + sim::SimTime::from_milliseconds(
                                  faults_->severity(sim::FaultKind::HttpStall, "lan"));
  }
  const auto uplink = leg();
  const auto downlink = leg();

  const auto elapsed = uplink + processing;
  sched_.post_in(elapsed, [this, hostname, req = std::move(req), cb, downlink, elapsed] {
    // Re-check node faults at dispatch time: a NodeDown window that opened
    // while the request was in flight means the host crashed before it
    // could serve — the caller sees the same loss-timeout semantics as a
    // request-time loss (status 0 at `loss_timeout` after the request,
    // immediately if the crash is discovered later than that).
    if (faults_ && faults_->active(sim::FaultKind::NodeDown, hostname)) {
      ++requests_lost_;
      const auto remaining = config_.loss_timeout > elapsed ? config_.loss_timeout - elapsed
                                                            : sim::SimTime::zero();
      sched_.post_in(remaining, [cb] { cb(HttpResponse{0, {}}); });
      return;
    }
    const auto it = hosts_.find(hostname);
    HttpResponse resp = it == hosts_.end() ? HttpResponse{404, "no such host"}
                                           : it->second->dispatch(req);
    sched_.post_in(downlink, [cb, resp = std::move(resp)] { cb(resp); });
  });
}

HttpHost::HttpHost(HttpLan& lan, std::string hostname) : lan_{lan}, hostname_{std::move(hostname)} {
  lan_.attach(*this);
}

HttpHost::~HttpHost() { lan_.detach(hostname_); }

void HttpHost::handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

void HttpHost::post(const std::string& hostname, const std::string& path, std::string body,
                    HttpLan::ResponseCallback cb) {
  lan_.request(hostname, HttpRequest{"POST", path, std::move(body)}, std::move(cb));
}

HttpResponse HttpHost::dispatch(const HttpRequest& req) const {
  const auto it = handlers_.find(req.path);
  if (it == handlers_.end()) return {404, "no handler for " + req.path};
  return it->second(req);
}

}  // namespace rst::middleware
