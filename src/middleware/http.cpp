#include "rst/middleware/http.hpp"

namespace rst::middleware {

HttpLan::HttpLan(sim::Scheduler& sched, sim::RandomStream rng, Config config)
    : sched_{sched}, rng_{rng.child("http")}, config_{config} {}

void HttpLan::attach(HttpHost& host) { hosts_[host.hostname()] = &host; }

void HttpLan::detach(const std::string& hostname) { hosts_.erase(hostname); }

void HttpLan::request(const std::string& hostname, HttpRequest req, ResponseCallback cb) {
  ++requests_;
  if (config_.loss_probability > 0 && rng_.bernoulli(config_.loss_probability)) {
    sched_.post_in(config_.loss_timeout, [cb] { cb(HttpResponse{0, {}}); });
    return;
  }
  const auto leg = [this] {
    return config_.one_way_latency + rng_.uniform_time(sim::SimTime::zero(), config_.one_way_jitter);
  };
  const auto processing = config_.server_processing +
                          rng_.uniform_time(sim::SimTime::zero(), config_.server_processing_jitter);
  const auto uplink = leg();
  const auto downlink = leg();

  sched_.post_in(uplink + processing, [this, hostname, req = std::move(req), cb, downlink] {
    const auto it = hosts_.find(hostname);
    HttpResponse resp = it == hosts_.end() ? HttpResponse{404, "no such host"}
                                           : it->second->dispatch(req);
    sched_.post_in(downlink, [cb, resp = std::move(resp)] { cb(resp); });
  });
}

HttpHost::HttpHost(HttpLan& lan, std::string hostname) : lan_{lan}, hostname_{std::move(hostname)} {
  lan_.attach(*this);
}

HttpHost::~HttpHost() { lan_.detach(hostname_); }

void HttpHost::handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

void HttpHost::post(const std::string& hostname, const std::string& path, std::string body,
                    HttpLan::ResponseCallback cb) {
  lan_.request(hostname, HttpRequest{"POST", path, std::move(body)}, std::move(cb));
}

HttpResponse HttpHost::dispatch(const HttpRequest& req) const {
  const auto it = handlers_.find(req.path);
  if (it == handlers_.end()) return {404, "no handler for " + req.path};
  return it->second(req);
}

}  // namespace rst::middleware
