#include "rst/middleware/kv.hpp"

#include <cstdio>
#include <stdexcept>

namespace rst::middleware {

KvBody KvBody::parse(const std::string& body) {
  KvBody kv;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find(';', pos);
    if (end == std::string::npos) end = body.size();
    const std::string fragment = body.substr(pos, end - pos);
    const std::size_t eq = fragment.find('=');
    if (eq != std::string::npos && eq > 0) {
      kv.values_[fragment.substr(0, eq)] = fragment.substr(eq + 1);
    }
    pos = end + 1;
  }
  return kv;
}

void KvBody::set(const std::string& key, const std::string& value) { values_[key] = value; }

void KvBody::set_int(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}

void KvBody::set_double(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  values_[key] = buf;
}

std::optional<std::string> KvBody::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> KvBody::get_int(const std::string& key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> KvBody::get_double(const std::string& key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string KvBody::serialize() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ';';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::string hex_encode(const std::vector<std::uint8_t>& data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument{"hex_decode: odd length"};
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument{"hex_decode: bad character"};
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace rst::middleware
