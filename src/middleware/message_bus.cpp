#include "rst/middleware/message_bus.hpp"

#include <algorithm>

namespace rst::middleware {

MessageBus::MessageBus(sim::Scheduler& sched, sim::RandomStream rng, Config config)
    : sched_{sched}, rng_{rng.child("bus")}, config_{config} {}

std::uint64_t MessageBus::subscribe(const std::string& topic, Handler handler) {
  const std::uint64_t id = next_id_++;
  topics_[topic].push_back({id, std::move(handler)});
  return id;
}

void MessageBus::unsubscribe(const std::string& topic, std::uint64_t id) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  std::erase_if(it->second, [&](const Subscription& s) { return s.id == id; });
}

void MessageBus::publish(const std::string& topic, std::any message) {
  ++published_;
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto shared = std::make_shared<std::any>(std::move(message));
  for (const auto& sub : it->second) {
    const auto latency =
        config_.base_latency + rng_.uniform_time(sim::SimTime::zero(), config_.jitter);
    sched_.post_in(latency, [handler = sub.handler, shared] { handler(*shared); });
  }
}

std::size_t MessageBus::subscriber_count(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace rst::middleware
