#include "rst/middleware/ntp.hpp"

namespace rst::middleware {

NtpClock::NtpClock(sim::Scheduler& sched, sim::RandomStream rng, std::string name, Config config)
    : sched_{sched},
      rng_{rng.child("ntp." + name)},
      name_{std::move(name)},
      config_{config},
      offset_at_ref_{config.initial_offset},
      ref_time_{sched.now()} {
  if (config_.enable_sync) schedule_sync();
}

NtpClock::~NtpClock() { sync_timer_.cancel(); }

sim::SimTime NtpClock::offset() const {
  const auto elapsed = sched_.now() - ref_time_;
  const auto drift_ns =
      static_cast<std::int64_t>(static_cast<double>(elapsed.count_ns()) * config_.drift_ppm * 1e-6);
  return offset_at_ref_ + sim::SimTime::nanoseconds(drift_ns);
}

sim::SimTime NtpClock::now_wall() const { return sched_.now() + offset(); }

void NtpClock::sync() {
  // NTP pulls the offset to a residual determined by path asymmetry.
  offset_at_ref_ = rng_.normal_time(sim::SimTime::zero(), config_.sync_error_sigma,
                                    sim::SimTime::zero() - config_.sync_error_sigma * 10);
  ref_time_ = sched_.now();
  ++sync_count_;
}

void NtpClock::schedule_sync() {
  const auto jitter = rng_.uniform_time(sim::SimTime::zero(), config_.sync_interval / 8);
  sync_timer_ = sched_.schedule_in(config_.sync_interval + jitter, [this] {
    sync();
    schedule_sync();
  });
}

}  // namespace rst::middleware
