#include "rst/middleware/openc2x_api.hpp"

namespace rst::middleware {

OpenC2xApi::OpenC2xApi(HttpHost& host, const geo::LocalFrame& frame, its::DenBasicService& den,
                       its::Ldm* ldm, sim::Trace* trace, std::string trace_name,
                       its::CaBasicService* ca, std::size_t max_inbox)
    : frame_{frame}, den_{den}, ca_{ca}, ldm_{ldm}, trace_{trace},
      trace_name_{std::move(trace_name)}, max_inbox_{max_inbox == 0 ? 1 : max_inbox} {
  den_.set_denm_callback([this](const its::Denm& denm, const its::GnDeliveryMeta& meta, bool) {
    // Bounded inbox: a slow (or dead) poller must not let undelivered DENMs
    // accumulate without limit. Drop the OLDEST — the newest message holds
    // the freshest event state.
    while (inbox_.size() >= max_inbox_) {
      const its::ActionId dropped = inbox_.front().denm.management.action_id;
      inbox_.pop_front();
      ++stats_.denms_dropped;
      if (trace_) {
        trace_->record_event(meta.delivered_at, sim::Stage::InboxDrop, den_.station_id(),
                             sim::pack_action(dropped.originating_station,
                                              dropped.sequence_number));
      }
    }
    inbox_.push_back({denm, meta.delivered_at});
  });
  host.handle("/trigger_denm", [this](const HttpRequest& req) { return handle_trigger_denm(req); });
  host.handle("/request_denm", [this](const HttpRequest& req) { return handle_request_denm(req); });
  host.handle("/ldm", [this](const HttpRequest&) {
    return HttpResponse{200, ldm_ ? ldm_->dump() : std::string{"no LDM attached"}};
  });
  host.handle("/trigger_cam", [this](const HttpRequest&) {
    if (!ca_) return HttpResponse{503, "no CA service attached"};
    ca_->send_now();
    return HttpResponse{200, "cam sent"};
  });
  host.handle("/cam_table", [this](const HttpRequest&) {
    if (!ldm_) return HttpResponse{503, "no LDM attached"};
    KvBody out;
    int index = 0;
    for (const auto& v : ldm_->vehicles()) {
      const std::string prefix = "station" + std::to_string(index++);
      out.set_int(prefix + ".id", v.station_id);
      out.set_double(prefix + ".x", v.position.x);
      out.set_double(prefix + ".y", v.position.y);
      out.set_double(prefix + ".speed", v.speed_mps);
      out.set_int(prefix + ".cams", static_cast<std::int64_t>(v.cam_count));
    }
    out.set_int("count", index);
    return HttpResponse{200, out.serialize()};
  });
}

its::DenmRequest OpenC2xApi::parse_trigger_body(const std::string& body) const {
  const KvBody kv = KvBody::parse(body);
  its::DenmRequest r;
  r.event_type.cause_code = static_cast<std::uint8_t>(kv.get_int("cause").value_or(0));
  r.event_type.sub_cause_code = static_cast<std::uint8_t>(kv.get_int("subcause").value_or(0));
  r.information_quality = static_cast<std::uint8_t>(kv.get_int("quality").value_or(3));
  r.event_position.x = kv.get_double("x").value_or(0.0);
  r.event_position.y = kv.get_double("y").value_or(0.0);
  r.validity = sim::SimTime::milliseconds(kv.get_int("validity_ms").value_or(600000));
  const double radius = kv.get_double("radius_m").value_or(100.0);
  r.destination_area = geo::GeoArea::circle(r.event_position, radius);
  if (const auto repeat = kv.get_int("repeat_ms"); repeat && *repeat > 0) {
    r.repetition_interval = sim::SimTime::milliseconds(*repeat);
    r.repetition_duration = sim::SimTime::milliseconds(kv.get_int("repeat_dur_ms").value_or(0));
  }
  if (const auto speed = kv.get_double("event_speed")) r.event_speed_mps = *speed;
  if (const auto heading = kv.get_double("event_heading")) r.event_heading_rad = *heading;
  r.station_type = its::StationType::RoadSideUnit;
  return r;
}

HttpResponse OpenC2xApi::handle_trigger_denm(const HttpRequest& req) {
  const its::DenmRequest r = parse_trigger_body(req.body);
  const its::ActionId id = den_.trigger(r);
  KvBody out;
  out.set_int("station", id.originating_station);
  out.set_int("sequence", id.sequence_number);
  return {200, out.serialize()};
}

HttpResponse OpenC2xApi::handle_request_denm(const HttpRequest&) {
  if (inbox_.empty()) return {200, {}};
  // Drain everything pending in one response: with the inbox now bounded, a
  // one-message-per-poll reply could fall behind a bursty sender forever.
  KvBody out;
  int index = 0;
  while (!inbox_.empty()) {
    InboxEntry entry = std::move(inbox_.front());
    inbox_.pop_front();
    const std::string suffix = std::to_string(index++);
    out.set("denm" + suffix, hex_encode(entry.denm.encode()));
    out.set_int("received_ns" + suffix, entry.received.count_ns());
  }
  out.set_int("count", index);
  return {200, out.serialize()};
}

}  // namespace rst::middleware
