#include "rst/roadside/associator.hpp"

#include <algorithm>
#include <limits>

namespace rst::roadside {

std::vector<std::uint32_t> DetectionAssociator::associate(
    const std::vector<geo::Vec2>& detections, sim::SimTime now) {
  // Age out stale tracks.
  std::erase_if(tracks_, [&](const Track& t) { return now - t.last_update > config_.track_timeout; });

  // Predicted positions for this instant.
  std::vector<geo::Vec2> predicted;
  predicted.reserve(tracks_.size());
  for (const auto& t : tracks_) {
    predicted.push_back(t.position + t.velocity * (now - t.last_update).to_seconds());
  }

  std::vector<std::uint32_t> assigned(detections.size(), 0);
  std::vector<bool> track_used(tracks_.size(), false);
  std::vector<bool> det_used(detections.size(), false);

  // Greedy global-nearest-neighbour: repeatedly take the closest
  // (track, detection) pair inside the gate.
  while (true) {
    double best = config_.gating_distance_m;
    std::size_t best_track = tracks_.size();
    std::size_t best_det = detections.size();
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (track_used[t]) continue;
      for (std::size_t d = 0; d < detections.size(); ++d) {
        if (det_used[d]) continue;
        const double dist = geo::distance(predicted[t], detections[d]);
        if (dist <= best) {
          best = dist;
          best_track = t;
          best_det = d;
        }
      }
    }
    if (best_track == tracks_.size()) break;
    track_used[best_track] = true;
    det_used[best_det] = true;

    Track& track = tracks_[best_track];
    const double dt = (now - track.last_update).to_seconds();
    if (dt > 0) {
      const geo::Vec2 raw_velocity = (detections[best_det] - track.position) / dt;
      track.velocity = track.velocity * (1.0 - config_.velocity_blend) +
                       raw_velocity * config_.velocity_blend;
    }
    track.position = detections[best_det];
    track.last_update = now;
    assigned[best_det] = track.id;
  }

  // New tracks for unmatched detections.
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (det_used[d]) continue;
    Track fresh;
    fresh.id = next_id_++;
    fresh.position = detections[d];
    fresh.velocity = {};
    fresh.last_update = now;
    tracks_.push_back(fresh);
    assigned[d] = fresh.id;
  }
  return assigned;
}

}  // namespace rst::roadside
