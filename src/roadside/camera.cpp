#include "rst/roadside/camera.hpp"

#include <algorithm>
#include <cmath>

#include "rst/sim/fault_plan.hpp"

namespace rst::roadside {

RoadsideCamera::RoadsideCamera(sim::Scheduler& sched, Config config)
    : sched_{sched}, config_{config} {}

void RoadsideCamera::add_object(CameraObject object) { objects_.push_back(std::move(object)); }

void RoadsideCamera::remove_object(std::uint32_t id) {
  std::erase_if(objects_, [&](const CameraObject& o) { return o.id == id; });
}

CameraFrame RoadsideCamera::capture() {
  CameraFrame frame;
  frame.capture_time = sched_.now();
  frame.frame_number = ++frame_counter_;
  if (faults_) {
    // Drop beats freeze when both windows overlap: a sensor that returns
    // nothing is strictly worse than one that returns stale data.
    if (faults_->active(sim::FaultKind::CameraDrop, "camera") &&
        faults_->draw_bernoulli(sim::FaultKind::CameraDrop,
                                faults_->severity(sim::FaultKind::CameraDrop, "camera"))) {
      ++stats_.frames_dropped;
      return frame;
    }
    if (faults_->active(sim::FaultKind::CameraFreeze, "camera")) {
      // Replay the last live frame's content under a fresh frame number and
      // timestamp (the sensor still paces; the image is stuck).
      ++stats_.frames_frozen;
      frame.objects = last_objects_;
      return frame;
    }
  }
  for (const auto& obj : objects_) {
    const geo::Vec2 rel = obj.position() - config_.position;
    const double distance = rel.norm();
    if (distance > config_.max_range_m || distance < 1e-6) continue;
    const double bearing =
        std::remainder(geo::heading_from_vector(rel) - config_.facing_rad, 2.0 * M_PI);
    if (std::abs(bearing) > config_.fov_half_angle_rad) continue;
    const geo::Vec2 target = obj.position();
    const bool occluded =
        std::any_of(walls_.begin(), walls_.end(), [&](const dot11p::Wall& w) {
          return dot11p::segments_intersect(config_.position, target, w.a, w.b);
        });
    if (occluded) continue;
    frame.objects.push_back({obj.id, distance, bearing, obj.presentation});
  }
  if (faults_) last_objects_ = frame.objects;
  return frame;
}

}  // namespace rst::roadside
