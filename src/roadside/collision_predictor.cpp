#include "rst/roadside/collision_predictor.hpp"

#include <cmath>

namespace rst::roadside {

CpaResult closest_point_of_approach(geo::Vec2 p1, geo::Vec2 v1, geo::Vec2 p2, geo::Vec2 v2) {
  const geo::Vec2 dp = p2 - p1;
  const geo::Vec2 dv = v2 - v1;
  const double dv2 = dv.norm2();
  CpaResult out;
  if (dv2 < 1e-12) {
    out.t_cpa_s = 0;
    out.d_cpa_m = dp.norm();
    return out;
  }
  out.t_cpa_s = std::max(0.0, -dp.dot(dv) / dv2);
  out.d_cpa_m = (dp + dv * out.t_cpa_s).norm();
  return out;
}

std::optional<CollisionThreat> CollisionPredictor::assess(
    geo::Vec2 object_position, geo::Vec2 object_velocity,
    const std::vector<its::LdmVehicleEntry>& vehicles) const {
  std::optional<CollisionThreat> best;
  for (const auto& vehicle : vehicles) {
    if (geo::distance(vehicle.position, object_position) > config_.max_pair_distance_m) continue;
    const geo::Vec2 vehicle_velocity =
        geo::vector_from_heading(vehicle.heading_rad) * vehicle.speed_mps;
    const CpaResult cpa = closest_point_of_approach(object_position, object_velocity,
                                                    vehicle.position, vehicle_velocity);
    if (cpa.t_cpa_s > config_.horizon_s) continue;
    if (cpa.d_cpa_m > config_.conflict_distance_m) continue;
    if (!best || cpa.t_cpa_s < best->t_cpa_s) {
      CollisionThreat threat;
      threat.station_id = vehicle.station_id;
      threat.t_cpa_s = cpa.t_cpa_s;
      threat.d_cpa_m = cpa.d_cpa_m;
      threat.predicted_conflict_point = object_position + object_velocity * cpa.t_cpa_s;
      best = threat;
    }
  }
  return best;
}

}  // namespace rst::roadside
