#include "rst/roadside/hazard_service.hpp"

#include <array>
#include <string_view>

#include "rst/middleware/kv.hpp"

namespace rst::roadside {

namespace {
/// Labels the hazard logic recognises as road users worth advertising.
constexpr std::array<std::string_view, 7> kKnownRoadUsers = {
    "car", "truck", "bus", "motorbike", "bicycle", "person", "stop sign"};

bool is_known_road_user(std::string_view label) {
  for (const auto known : kKnownRoadUsers) {
    if (label == known) return true;
  }
  return false;
}
}  // namespace

HazardAdvertisementService::HazardAdvertisementService(
    sim::Scheduler& sched, middleware::MessageBus& bus, middleware::HttpHost& host,
    const geo::LocalFrame& frame, geo::Vec2 camera_position, double camera_facing_rad,
    sim::RandomStream rng, Config config, its::Ldm* ldm, sim::Trace* trace, std::string name)
    : sched_{sched},
      bus_{bus},
      host_{host},
      frame_{frame},
      camera_position_{camera_position},
      camera_facing_rad_{camera_facing_rad},
      rng_{rng.child("hazard")},
      config_{config},
      ldm_{ldm},
      trace_{trace},
      name_{std::move(name)} {
  predictor_ = CollisionPredictor{config_.cpa};
  bus_.subscribe_to<DetectionBatch>("detections",
                                    [this](const DetectionBatch& b) { on_detections(b); });
}

void HazardAdvertisementService::start() {
  running_ = true;
  if (config_.monitor_cam_pairs && !cam_scan_timer_.pending()) {
    cam_scan_timer_ = sched_.schedule_in(config_.cam_pair_scan_period, [this] { scan_cam_pairs(); });
  }
}

void HazardAdvertisementService::stop() {
  running_ = false;
  cam_scan_timer_.cancel();
}

void HazardAdvertisementService::scan_cam_pairs() {
  if (!running_) return;
  cam_scan_timer_ = sched_.schedule_in(config_.cam_pair_scan_period, [this] { scan_cam_pairs(); });
  if (!ldm_) return;
  if (!armed_) {
    if (sched_.now() - last_trigger_ > config_.rearm_delay) armed_ = true;
    else return;
  }
  const auto vehicles = ldm_->vehicles();
  for (std::size_t i = 0; i < vehicles.size(); ++i) {
    const geo::Vec2 vi =
        geo::vector_from_heading(vehicles[i].heading_rad) * vehicles[i].speed_mps;
    // Assess vehicle i (as the "object") against all the others.
    std::vector<its::LdmVehicleEntry> others;
    for (std::size_t j = 0; j < vehicles.size(); ++j) {
      if (j != i) others.push_back(vehicles[j]);
    }
    const auto threat = predictor_.assess(vehicles[i].position, vi, others);
    if (!threat) continue;
    armed_ = false;
    last_trigger_ = sched_.now();
    ++stats_.crossings_detected;
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::HazardDecision, 0,
                           (static_cast<std::uint64_t>(vehicles[i].station_id) << 32) |
                               threat->station_id,
                           threat->t_cpa_s, sim::kHazardCpaStation);
    }
    trigger_denm_at(threat->predicted_conflict_point,
                    its::EventType::of(its::Cause::CollisionRisk,
                                       static_cast<std::uint8_t>(
                                           its::CollisionRiskSubCause::CrossingCollisionRisk)),
                    vehicles[i].speed_mps);
    return;
  }
}

void HazardAdvertisementService::rearm() { armed_ = true; }

bool HazardAdvertisementService::crossing_detected(const TrackedDetection& det) {
  const double est = det.detection.estimated_distance_m;
  bool crossing = est <= config_.action_point_distance_m;
  if (!crossing && config_.treat_min_range_default_as_crossing &&
      est == config_.min_range_default_m) {
    // Exactly the estimator's default: the object is inside the minimum
    // working range, i.e. closer than any threshold — but only if we saw
    // it genuinely approaching before (a fresh far object can plausibly
    // sit at 1.73 m for real).
    const auto it = last_distance_.find(det.detection.object_id);
    crossing = it != last_distance_.end() && it->second < config_.min_range_default_m - 0.05;
  }
  last_distance_[det.detection.object_id] = est;
  return crossing;
}

geo::Vec2 HazardAdvertisementService::world_position(const TrackedDetection& det) const {
  const geo::Vec2 direction =
      geo::vector_from_heading(camera_facing_rad_ + det.detection.bearing_rad);
  return camera_position_ + direction * det.detection.estimated_distance_m;
}

geo::Vec2 HazardAdvertisementService::update_velocity(std::uint32_t object_id, geo::Vec2 position,
                                                      sim::SimTime now) {
  auto& m = motion_[object_id];
  if (m.stamp != sim::SimTime{} && now > m.stamp) {
    const double dt = (now - m.stamp).to_seconds();
    const geo::Vec2 raw = (position - m.position) / dt;
    m.velocity = m.has_velocity ? m.velocity * 0.65 + raw * 0.35 : raw;
    m.has_velocity = true;
  }
  m.position = position;
  m.stamp = now;
  return m.has_velocity ? m.velocity : geo::Vec2{};
}

void HazardAdvertisementService::on_detections(const DetectionBatch& batch) {
  if (!running_) return;
  ++stats_.batches_seen;
  if (!armed_) {
    if (sched_.now() - last_trigger_ > config_.rearm_delay) armed_ = true;
    else return;
  }
  for (const auto& det : batch.detections) {
    if (det.detection.confidence < config_.min_confidence ||
        (config_.require_known_road_user && !is_known_road_user(det.detection.label))) {
      ++stats_.detections_gated;
      continue;
    }
    if (config_.trigger_mode == HazardTriggerMode::ActionPointDistance) {
      if (!crossing_detected(det)) continue;
      ++stats_.crossings_detected;
      armed_ = false;
      last_trigger_ = sched_.now();
      if (trace_) {
        trace_->record_event(sched_.now(), sim::Stage::HazardDecision, 0,
                             det.detection.object_id, det.detection.estimated_distance_m,
                             sim::kHazardActionPoint);
      }
      trigger_denm(det, std::nullopt);
      return;  // one trigger per batch
    }

    // CPA mode: build the object's world-frame motion and assess against
    // every CAM-known vehicle in the LDM.
    const geo::Vec2 position = world_position(det);
    const geo::Vec2 velocity = update_velocity(det.detection.object_id, position,
                                               batch.capture_time);
    const auto& m = motion_[det.detection.object_id];
    if (!m.has_velocity || !ldm_) continue;
    const auto threat = predictor_.assess(position, velocity, ldm_->vehicles());
    if (!threat) continue;
    ++stats_.crossings_detected;
    armed_ = false;
    last_trigger_ = sched_.now();
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::HazardDecision, 0,
                           (static_cast<std::uint64_t>(det.detection.object_id) << 32) |
                               threat->station_id,
                           threat->t_cpa_s, sim::kHazardCpaObject);
    }
    trigger_denm(det, threat->predicted_conflict_point);
    return;
  }
}

void HazardAdvertisementService::trigger_denm(const TrackedDetection& det,
                                              std::optional<geo::Vec2> event_position_override) {
  // Decide the cause code. If the LDM confirms an ETSI-capable protagonist
  // vehicle approaching, announce a crossing collision risk (97/2, paper
  // Table I); otherwise an obstacle-on-road warning (10).
  its::EventType event = its::EventType::of(its::Cause::CollisionRisk,
                                            static_cast<std::uint8_t>(its::CollisionRiskSubCause::CrossingCollisionRisk));
  if (config_.require_cam_vehicle_for_collision_risk) {
    const bool have_vehicle = ldm_ && !ldm_->vehicles().empty();
    if (!have_vehicle) event = its::EventType::of(its::Cause::HazardousLocationObstacleOnTheRoad, 0);
  }

  // The event position: the predicted conflict point (CPA mode) or the
  // detected object's location projected from the camera along its bearing.
  const geo::Vec2 event_pos = event_position_override.value_or(world_position(det));

  // LDM bookkeeping: the perceived (possibly non-ITS) road user.
  if (ldm_) {
    its::PerceivedObject obj;
    obj.object_id = det.detection.object_id;
    obj.classification = det.detection.label;
    obj.position = event_pos;
    obj.velocity = geo::vector_from_heading(camera_facing_rad_ + det.detection.bearing_rad) *
                   det.range_rate_mps;
    obj.confidence = det.detection.confidence;
    ldm_->update_perceived_object(obj);
  }

  trigger_denm_at(event_pos, event, std::abs(det.range_rate_mps));
}

void HazardAdvertisementService::trigger_denm_at(geo::Vec2 event_position, its::EventType event,
                                                 double event_speed_mps) {
  middleware::KvBody body;
  body.set_int("cause", event.cause_code);
  body.set_int("subcause", event.sub_cause_code);
  body.set_int("quality", 5);
  body.set_double("x", event_position.x);
  body.set_double("y", event_position.y);
  body.set_int("validity_ms", config_.denm_validity.count_ns() / 1'000'000);
  body.set_double("radius_m", config_.destination_radius_m);
  if (config_.denm_repetition) {
    body.set_int("repeat_ms", config_.denm_repetition->count_ns() / 1'000'000);
    body.set_int("repeat_dur_ms", config_.denm_validity.count_ns() / 1'000'000);
  }
  if (event_speed_mps != 0) body.set_double("event_speed", event_speed_mps);

  const auto processing =
      rng_.normal_time(config_.processing_mean, config_.processing_sigma, config_.processing_min);
  sched_.post_in(processing, [this, serialized = body.serialize()] {
    if (trace_) {
      trace_->record_event(sched_.now(), sim::Stage::TriggerDenm, 0, 0, 0.0,
                           sim::kTriggerIssued);
    }
    host_.post(config_.rsu_hostname, "/trigger_denm", serialized,
               [this](const middleware::HttpResponse& resp) {
                 if (resp.status == 200) {
                   ++stats_.denms_triggered;
                 } else {
                   ++stats_.trigger_failures;
                   if (trace_) {
                     trace_->record_event(sched_.now(), sim::Stage::TriggerDenm, 0, 0, 0.0,
                                          sim::kTriggerFailed);
                   }
                 }
               });
  });
}

}  // namespace rst::roadside
