#include "rst/roadside/object_detection_service.hpp"

namespace rst::roadside {

ObjectDetectionService::ObjectDetectionService(sim::Scheduler& sched, middleware::MessageBus& bus,
                                               RoadsideCamera& camera, YoloSimulator& yolo,
                                               sim::RandomStream rng, Config config,
                                               sim::Trace* trace, std::string name)
    : sched_{sched},
      bus_{bus},
      camera_{camera},
      yolo_{yolo},
      rng_{rng.child("od_service")},
      config_{config},
      trace_{trace},
      name_{std::move(name)},
      tracker_{config.tracker},
      associator_{config.associator} {}

ObjectDetectionService::~ObjectDetectionService() { loop_timer_.cancel(); }

void ObjectDetectionService::start() {
  if (running_) return;
  running_ = true;
  started_at_ = sched_.now();
  // Random initial phase: the detection loop is not synchronised to the
  // experiment start.
  loop_timer_ = sched_.schedule_in(
      rng_.uniform_time(sim::SimTime::zero(), config_.processing_period), [this] { process_frame(); });
}

void ObjectDetectionService::stop() {
  running_ = false;
  loop_timer_.cancel();
}

double ObjectDetectionService::effective_fps() const {
  const double elapsed = (sched_.now() - started_at_).to_seconds();
  return elapsed > 0 ? static_cast<double>(frames_) / elapsed : 0.0;
}

void ObjectDetectionService::process_frame() {
  if (!running_) return;
  ++frames_;
  const CameraFrame frame = camera_.capture();
  if (trace_) {
    trace_->span_begin(sched_.now(), sim::Stage::CameraFrame, 0, frame.frame_number);
  }
  auto detections = yolo_.detect(frame);

  const auto inference =
      rng_.normal_time(config_.inference_mean, config_.inference_sigma, config_.inference_min);
  sched_.post_in(inference, [this, frame, detections = std::move(detections)]() mutable {
    if (config_.anonymize_detections) {
      // Strip the simulator identities and re-derive track ids the way a
      // real pipeline must: geometrically, frame to frame.
      const geo::Vec2 cam_pos = camera_.config().position;
      const double facing = camera_.config().facing_rad;
      std::vector<geo::Vec2> positions;
      positions.reserve(detections.size());
      for (const auto& det : detections) {
        positions.push_back(cam_pos + geo::vector_from_heading(facing + det.bearing_rad) *
                                          det.estimated_distance_m);
      }
      const auto ids = associator_.associate(positions, frame.capture_time);
      for (std::size_t i = 0; i < detections.size(); ++i) {
        detections[i].object_id = ids[i];
      }
    }
    DetectionBatch batch;
    batch.frame_number = frame.frame_number;
    batch.capture_time = frame.capture_time;
    batch.output_time = sched_.now();
    for (const auto& det : detections) {
      TrackedDetection tracked;
      tracked.detection = det;
      tracked.capture_time = frame.capture_time;
      tracked.output_time = sched_.now();
      const RangeEstimate est =
          tracker_.update(det.object_id, det.estimated_distance_m, frame.capture_time);
      tracked.tracked_range_m = est.range_m;
      // The rate needs a couple of updates before it means anything.
      tracked.range_rate_mps = est.updates >= 3 ? est.range_rate_mps : 0.0;
      batch.detections.push_back(std::move(tracked));
    }
    if (trace_) {
      trace_->span_end(sched_.now(), sim::Stage::CameraFrame, 0, frame.frame_number);
      if (!batch.detections.empty()) {
        trace_->record_event(sched_.now(), sim::Stage::YoloDetection, 0,
                             batch.detections.size(),
                             batch.detections.front().detection.estimated_distance_m);
      }
    }
    bus_.publish("detections", batch);
  });

  loop_timer_ = sched_.schedule_in(config_.processing_period, [this] { process_frame(); });
}

}  // namespace rst::roadside
