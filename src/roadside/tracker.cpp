#include "rst/roadside/tracker.hpp"

namespace rst::roadside {

RangeEstimate RangeTracker::update(std::uint32_t object_id, double measured_range_m,
                                   sim::SimTime now) {
  auto it = tracks_.find(object_id);
  if (it != tracks_.end() && now - it->second.stamp > config_.track_timeout) {
    tracks_.erase(it);
    it = tracks_.end();
  }
  if (it == tracks_.end()) {
    RangeEstimate fresh;
    fresh.range_m = measured_range_m;
    fresh.range_rate_mps = 0;
    fresh.stamp = now;
    fresh.updates = 1;
    tracks_[object_id] = fresh;
    return fresh;
  }

  RangeEstimate& est = it->second;
  const double dt = (now - est.stamp).to_seconds();
  if (dt <= 0) return est;
  // Predict.
  const double predicted = est.range_m + est.range_rate_mps * dt;
  const double residual = measured_range_m - predicted;
  // Correct.
  est.range_m = predicted + config_.alpha * residual;
  est.range_rate_mps += config_.beta / dt * residual;
  est.stamp = now;
  ++est.updates;
  return est;
}

std::optional<RangeEstimate> RangeTracker::predict(std::uint32_t object_id,
                                                   sim::SimTime now) const {
  const auto it = tracks_.find(object_id);
  if (it == tracks_.end()) return std::nullopt;
  if (now - it->second.stamp > config_.track_timeout) return std::nullopt;
  RangeEstimate out = it->second;
  out.range_m += out.range_rate_mps * (now - out.stamp).to_seconds();
  out.stamp = now;
  return out;
}

}  // namespace rst::roadside
