#include "rst/roadside/yolo_sim.hpp"

#include <algorithm>
#include <array>

#include "rst/sim/fault_plan.hpp"

namespace rst::roadside {

namespace {
/// Labels a misclassification burst corrupts detections into: classes YOLO
/// knows but the hazard logic has no business reacting to.
constexpr std::array<std::string_view, 4> kWrongLabels = {"bird", "kite", "umbrella",
                                                          "fire hydrant"};
}  // namespace

YoloSimulator::YoloSimulator(sim::RandomStream rng, Config config)
    : rng_{rng.child("yolo")}, config_{std::move(config)} {}

const YoloSimulator::ClassProfile& YoloSimulator::profile(Presentation p) const {
  switch (p) {
    case Presentation::BareRobot: return config_.bare_robot;
    case Presentation::BodyShell: return config_.body_shell;
    case Presentation::StopSign: return config_.stop_sign;
  }
  throw std::logic_error{"YoloSimulator::profile: unknown presentation"};
}

std::vector<YoloDetection> YoloSimulator::detect(const CameraFrame& frame) {
  std::vector<YoloDetection> out;
  for (const auto& obj : frame.objects) {
    const ClassProfile& prof = profile(obj.presentation);
    if (obj.true_distance_m > prof.max_range_m) continue;
    if (!rng_.bernoulli(prof.detection_probability)) continue;
    if (faults_ && faults_->active(sim::FaultKind::YoloMiss, "yolo") &&
        faults_->draw_bernoulli(sim::FaultKind::YoloMiss,
                                faults_->severity(sim::FaultKind::YoloMiss, "yolo"))) {
      continue;
    }

    YoloDetection det;
    det.object_id = obj.id;
    det.bearing_rad = obj.bearing_rad;

    // Per-frame class sampling: reproduces the label flicker the paper
    // reports for the robot/shell presentations.
    double total = 0;
    for (const auto& [label, w] : prof.labels) total += w;
    double pick = rng_.uniform(0.0, total);
    det.label = prof.labels.back().first;
    for (const auto& [label, w] : prof.labels) {
      if (pick < w) {
        det.label = label;
        break;
      }
      pick -= w;
    }
    det.confidence = std::clamp(rng_.normal(prof.confidence_mean, prof.confidence_sigma), 0.05, 0.99);
    if (faults_) {
      if (faults_->active(sim::FaultKind::YoloMisclassify, "yolo") &&
          faults_->draw_bernoulli(sim::FaultKind::YoloMisclassify,
                                  faults_->severity(sim::FaultKind::YoloMisclassify, "yolo"))) {
        auto& stream = faults_->stream(sim::FaultKind::YoloMisclassify);
        det.label = kWrongLabels[static_cast<std::size_t>(
            stream.uniform_int(0, static_cast<std::int64_t>(kWrongLabels.size()) - 1))];
      }
      // Confidence collapse: severity is the fraction of confidence lost.
      const double collapse = faults_->severity(sim::FaultKind::YoloConfidence, "yolo");
      if (collapse > 0) det.confidence = std::max(0.0, det.confidence * (1.0 - collapse));
    }

    if (obj.true_distance_m < config_.min_working_distance_m) {
      // Below the minimum working range the estimator returns its default.
      det.estimated_distance_m = config_.default_distance_m;
    } else {
      det.estimated_distance_m =
          std::max(0.0, obj.true_distance_m + rng_.normal(0.0, config_.distance_noise_sigma_m));
    }
    out.push_back(std::move(det));
  }
  return out;
}

}  // namespace rst::roadside
