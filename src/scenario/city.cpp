#include "rst/scenario/city.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "rst/core/config_io.hpp"
#include "rst/core/experiment.hpp"
#include "rst/sim/partitioned_scheduler.hpp"

namespace rst::scenario {

// --- CitySpec ---------------------------------------------------------------

void CitySpec::validate() const {
  const auto positive = [](double v, const char* field) {
    if (!(v > 0)) {
      throw std::invalid_argument{std::string{"CitySpec: "} + field + " must be positive"};
    }
  };
  if (blocks_x < 1 || blocks_y < 1) {
    throw std::invalid_argument{"CitySpec: blocks_x/blocks_y must be at least 1"};
  }
  positive(block_m, "block_m");
  positive(street_m, "street_m");
  if (street_m >= block_m) {
    throw std::invalid_argument{"CitySpec: street_m must be narrower than block_m"};
  }
  if (building_loss_db < 0) {
    throw std::invalid_argument{"CitySpec: building_loss_db must be non-negative"};
  }
  if (rsu_every < 1) throw std::invalid_argument{"CitySpec: rsu_every must be at least 1"};
  if (max_rsus < 0) throw std::invalid_argument{"CitySpec: max_rsus must be non-negative"};
  if (vehicles < 0) throw std::invalid_argument{"CitySpec: vehicles must be non-negative"};
  if (vehicles >= 800) {
    throw std::invalid_argument{"CitySpec: vehicles must stay below the RSU station-id base"};
  }
  positive(vehicle_speed_mps, "vehicle_speed_mps");
  if (vehicle_speed_jitter_mps < 0) {
    throw std::invalid_argument{"CitySpec: vehicle_speed_jitter_mps must be non-negative"};
  }
  if (rsu_cam_interval <= sim::SimTime::zero() || obu_cam_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument{"CitySpec: CAM intervals must be positive"};
  }
  if (cpm_enable) {
    if (cpm_interval <= sim::SimTime::zero() || cpm_object_lifetime <= sim::SimTime::zero()) {
      throw std::invalid_argument{"CitySpec: CPM interval and object lifetime must be positive"};
    }
    if (cpm_redundancy_window < sim::SimTime::zero()) {
      throw std::invalid_argument{"CitySpec: cpm_redundancy_window_ms must be non-negative"};
    }
  }
  if (path_loss_exponent < 1.0) {
    throw std::invalid_argument{"CitySpec: path_loss_exponent below free-space is unphysical"};
  }
  if (shadowing_sigma_db < 0) {
    throw std::invalid_argument{"CitySpec: shadowing_sigma_db must be non-negative"};
  }
  if (!std::isfinite(power_floor_dbm) || power_floor_dbm > 0.0) {
    throw std::invalid_argument{"CitySpec: power_floor_dbm must be a finite negative level"};
  }
  if (!std::isfinite(grid_cell_m) || grid_cell_m < 0.0) {
    throw std::invalid_argument{"CitySpec: grid_cell_m must be a finite non-negative size"};
  }
  if (partitions < 0) {
    throw std::invalid_argument{"CitySpec: partitions must be non-negative (0 = environment)"};
  }
  const int rows = blocks_y + 1;
  if (corridor_row >= rows) {
    throw std::invalid_argument{"CitySpec: corridor_row beyond the street grid"};
  }
}

int CitySpec::resolved_corridor_row() const {
  return corridor_row >= 0 ? corridor_row : (blocks_y + 1) / 2;
}

namespace {

using core::parse_spec_bool;
using core::parse_spec_double;
using core::parse_spec_int;

}  // namespace

CitySpec parse_city_spec(const std::string& text) {
  CitySpec spec;
  core::for_each_spec_override(text, [&](const std::string& key, const std::string& value) {
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_spec_int(value, key));
    } else if (key == "blocks_x") {
      spec.blocks_x = static_cast<int>(parse_spec_int(value, key));
    } else if (key == "blocks_y") {
      spec.blocks_y = static_cast<int>(parse_spec_int(value, key));
    } else if (key == "block_m") {
      spec.block_m = parse_spec_double(value, key);
    } else if (key == "street_m") {
      spec.street_m = parse_spec_double(value, key);
    } else if (key == "corridor_row") {
      spec.corridor_row = static_cast<int>(parse_spec_int(value, key));
    } else if (key == "buildings") {
      spec.buildings = parse_spec_bool(value, key);
    } else if (key == "building_loss_db") {
      spec.building_loss_db = parse_spec_double(value, key);
    } else if (key == "building_setback_m") {
      spec.building_setback_m = parse_spec_double(value, key);
    } else if (key == "rsu_every") {
      spec.rsu_every = static_cast<int>(parse_spec_int(value, key));
    } else if (key == "max_rsus") {
      spec.max_rsus = static_cast<int>(parse_spec_int(value, key));
    } else if (key == "rsu_corridor_only") {
      spec.rsu_corridor_only = parse_spec_bool(value, key);
    } else if (key == "rsu_cam_interval_ms") {
      spec.rsu_cam_interval = sim::SimTime::milliseconds(parse_spec_int(value, key));
    } else if (key == "vehicles") {
      spec.vehicles = static_cast<int>(parse_spec_int(value, key));
    } else if (key == "vehicle_speed_mps") {
      spec.vehicle_speed_mps = parse_spec_double(value, key);
    } else if (key == "vehicle_speed_jitter_mps") {
      spec.vehicle_speed_jitter_mps = parse_spec_double(value, key);
    } else if (key == "obu_cam_interval_ms") {
      spec.obu_cam_interval = sim::SimTime::milliseconds(parse_spec_int(value, key));
    } else if (key == "enable_dcc") {
      spec.enable_dcc = parse_spec_bool(value, key);
    } else if (key == "enable_kaf") {
      spec.enable_kaf = parse_spec_bool(value, key);
    } else if (key == "cpm_enable") {
      spec.cpm_enable = parse_spec_bool(value, key);
    } else if (key == "cpm_interval_ms") {
      spec.cpm_interval = sim::SimTime::milliseconds(parse_spec_int(value, key));
    } else if (key == "cpm_object_lifetime_ms") {
      spec.cpm_object_lifetime = sim::SimTime::milliseconds(parse_spec_int(value, key));
    } else if (key == "cpm_redundancy_window_ms") {
      spec.cpm_redundancy_window = sim::SimTime::milliseconds(parse_spec_int(value, key));
    } else if (key == "path_loss_exponent") {
      spec.path_loss_exponent = parse_spec_double(value, key);
    } else if (key == "shadowing_sigma_db") {
      spec.shadowing_sigma_db = parse_spec_double(value, key);
    } else if (key == "tx_power_dbm") {
      spec.tx_power_dbm = parse_spec_double(value, key);
    } else if (key == "spatial_index") {
      spec.spatial_index = parse_spec_bool(value, key);
    } else if (key == "obstacle_index") {
      spec.obstacle_index = parse_spec_bool(value, key);
    } else if (key == "power_floor_dbm") {
      spec.power_floor_dbm = parse_spec_double(value, key);
    } else if (key == "grid_cell_m") {
      spec.grid_cell_m = parse_spec_double(value, key);
    } else if (key == "partitions") {
      spec.partitions = static_cast<int>(parse_spec_int(value, key));
    } else {
      throw std::invalid_argument{"city spec: unknown key '" + key + "'"};
    }
  });
  spec.validate();
  return spec;
}

std::vector<std::pair<std::string, std::string>> city_spec_keys() {
  return {
      {"seed", "root random seed"},
      {"blocks_x", "grid blocks east-west"},
      {"blocks_y", "grid blocks north-south"},
      {"block_m", "block edge length"},
      {"street_m", "street width"},
      {"corridor_row", "arterial east-west street index (-1 = middle)"},
      {"buildings", "emit buildings as NLOS walls"},
      {"building_loss_db", "obstruction loss per wall crossing"},
      {"building_setback_m", "facade setback from the street edge"},
      {"rsu_every", "RSU at every Nth intersection"},
      {"max_rsus", "cap on placed RSUs (0 = no cap)"},
      {"rsu_corridor_only", "place RSUs only along the corridor"},
      {"rsu_cam_interval_ms", "fixed RSU beacon period"},
      {"vehicles", "generated vehicle flows"},
      {"vehicle_speed_mps", "mean flow speed"},
      {"vehicle_speed_jitter_mps", "uniform speed jitter"},
      {"obu_cam_interval_ms", "fixed vehicle CAM period"},
      {"enable_dcc", "reactive DCC gate on every station"},
      {"enable_kaf", "DEN keep-alive forwarding on vehicles"},
      {"cpm_enable", "collective perception service on every station"},
      {"cpm_interval_ms", "CPM generation period"},
      {"cpm_object_lifetime_ms", "LDM perceived-object lifetime under CPM"},
      {"cpm_redundancy_window_ms", "skip objects a peer announced within this window"},
      {"path_loss_exponent", "log-distance channel exponent"},
      {"shadowing_sigma_db", "log-normal shadowing sigma"},
      {"tx_power_dbm", "station transmit power"},
      {"spatial_index", "grid receiver culling (PR 3 medium)"},
      {"obstacle_index", "ray-index building walls (off = brute-force scan)"},
      {"power_floor_dbm", "per-link out-of-range floor"},
      {"grid_cell_m", "culling/partition grid cell size (0 = derive)"},
      {"partitions", "medium partition domains (0 = RST_PARTITIONS env)"},
  };
}

std::string format_city_spec(const CitySpec& spec) {
  std::ostringstream out;
  const auto put = [&](const char* key, const std::string& value) {
    out << key << " = " << value << "\n";
  };
  const auto num = [&](const char* key, double v) { put(key, core::format_spec_double(v)); };
  const auto integer = [&](const char* key, long long v) { put(key, std::to_string(v)); };
  const auto boolean = [&](const char* key, bool v) { put(key, v ? "true" : "false"); };

  // Seeds above INT64_MAX print as their two's-complement negative so the
  // parser's stoll -> uint64 cast lands back on the same bit pattern.
  integer("seed", static_cast<long long>(spec.seed));
  integer("blocks_x", spec.blocks_x);
  integer("blocks_y", spec.blocks_y);
  num("block_m", spec.block_m);
  num("street_m", spec.street_m);
  integer("corridor_row", spec.corridor_row);
  boolean("buildings", spec.buildings);
  num("building_loss_db", spec.building_loss_db);
  num("building_setback_m", spec.building_setback_m);
  integer("rsu_every", spec.rsu_every);
  integer("max_rsus", spec.max_rsus);
  boolean("rsu_corridor_only", spec.rsu_corridor_only);
  integer("rsu_cam_interval_ms", spec.rsu_cam_interval.count_ns() / 1'000'000);
  integer("vehicles", spec.vehicles);
  num("vehicle_speed_mps", spec.vehicle_speed_mps);
  num("vehicle_speed_jitter_mps", spec.vehicle_speed_jitter_mps);
  integer("obu_cam_interval_ms", spec.obu_cam_interval.count_ns() / 1'000'000);
  boolean("enable_dcc", spec.enable_dcc);
  boolean("enable_kaf", spec.enable_kaf);
  boolean("cpm_enable", spec.cpm_enable);
  integer("cpm_interval_ms", spec.cpm_interval.count_ns() / 1'000'000);
  integer("cpm_object_lifetime_ms", spec.cpm_object_lifetime.count_ns() / 1'000'000);
  integer("cpm_redundancy_window_ms", spec.cpm_redundancy_window.count_ns() / 1'000'000);
  num("path_loss_exponent", spec.path_loss_exponent);
  num("shadowing_sigma_db", spec.shadowing_sigma_db);
  num("tx_power_dbm", spec.tx_power_dbm);
  boolean("spatial_index", spec.spatial_index);
  boolean("obstacle_index", spec.obstacle_index);
  num("power_floor_dbm", spec.power_floor_dbm);
  num("grid_cell_m", spec.grid_cell_m);
  integer("partitions", spec.partitions);
  return out.str();
}

// --- Flows ------------------------------------------------------------------

namespace {

double loop_length(const VehicleFlow& flow) {
  if (flow.waypoints.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < flow.waypoints.size(); ++i) {
    const geo::Vec2 a = flow.waypoints[i];
    const geo::Vec2 b = flow.waypoints[(i + 1) % flow.waypoints.size()];
    total += (b - a).norm();
  }
  return total;
}

/// Point and direction at arc length `s` along the closed loop.
std::pair<geo::Vec2, geo::Vec2> loop_at(const VehicleFlow& flow, double s) {
  const std::size_t n = flow.waypoints.size();
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 a = flow.waypoints[i];
    const geo::Vec2 b = flow.waypoints[(i + 1) % n];
    const double len = (b - a).norm();
    if (s <= len || i + 1 == n) {
      if (len <= 0.0) return {a, {0.0, 1.0}};
      const double f = std::clamp(s / len, 0.0, 1.0);
      return {a + (b - a) * f, (b - a) / len};
    }
    s -= len;
  }
  return {flow.waypoints.front(), {0.0, 1.0}};
}

}  // namespace

geo::Vec2 flow_position(const VehicleFlow& flow, sim::SimTime t) {
  if (flow.waypoints.empty()) return {};
  const double total = loop_length(flow);
  if (flow.speed_mps <= 0.0 || total <= 0.0) return flow.waypoints.front();
  const double s = std::fmod(flow.phase_m + flow.speed_mps * t.to_seconds(), total);
  return loop_at(flow, s < 0 ? s + total : s).first;
}

double flow_heading_rad(const VehicleFlow& flow, sim::SimTime t) {
  if (flow.waypoints.size() < 2) return 0.0;
  const double total = loop_length(flow);
  if (flow.speed_mps <= 0.0 || total <= 0.0) return 0.0;
  const double s = std::fmod(flow.phase_m + flow.speed_mps * t.to_seconds(), total);
  return geo::heading_from_vector(loop_at(flow, s < 0 ? s + total : s).second);
}

// --- Generator --------------------------------------------------------------

geo::Vec2 RoadNetwork::intersection(int ix, int iy) const {
  return intersections[static_cast<std::size_t>(iy) * cols + static_cast<std::size_t>(ix)];
}

RoadNetwork generate_road_network(const CitySpec& spec) {
  spec.validate();
  RoadNetwork net;
  const int cols = spec.blocks_x + 1;
  const int rows = spec.blocks_y + 1;
  net.cols = cols;
  net.extent_x = spec.extent_x_m();
  net.extent_y = spec.extent_y_m();
  net.corridor_y = spec.resolved_corridor_row() * spec.block_m;

  net.intersections.reserve(static_cast<std::size_t>(cols) * rows);
  for (int iy = 0; iy < rows; ++iy) {
    for (int ix = 0; ix < cols; ++ix) {
      net.intersections.push_back({ix * spec.block_m, iy * spec.block_m});
    }
  }

  // Buildings: one rectangular footprint per block, inset so facades sit
  // `building_setback_m` behind the street edge. Street centerlines stay
  // clear, so any LOS ray along a single street never crosses a wall.
  if (spec.buildings) {
    const double inset = spec.street_m / 2.0 + spec.building_setback_m;
    for (int by = 0; by < spec.blocks_y; ++by) {
      for (int bx = 0; bx < spec.blocks_x; ++bx) {
        const double x0 = bx * spec.block_m + inset;
        const double y0 = by * spec.block_m + inset;
        const double x1 = (bx + 1) * spec.block_m - inset;
        const double y1 = (by + 1) * spec.block_m - inset;
        if (x1 <= x0 || y1 <= y0) continue;
        const geo::Vec2 sw{x0, y0}, se{x1, y0}, ne{x1, y1}, nw{x0, y1};
        net.building_walls.push_back({sw, se, spec.building_loss_db});
        net.building_walls.push_back({se, ne, spec.building_loss_db});
        net.building_walls.push_back({ne, nw, spec.building_loss_db});
        net.building_walls.push_back({nw, sw, spec.building_loss_db});
      }
    }
  }

  // RSUs at intersections, placement ordered south rows first, west to
  // east, so `max_rsus` keeps a spatially-contiguous prefix.
  const int corridor = spec.resolved_corridor_row();
  for (int iy = 0; iy < rows; ++iy) {
    for (int ix = 0; ix < cols; ++ix) {
      const bool on_grid = (ix % spec.rsu_every == 0) && (iy % spec.rsu_every == 0);
      const bool on_corridor = iy == corridor && (ix % spec.rsu_every == 0);
      if (spec.rsu_corridor_only ? !on_corridor : !on_grid) continue;
      if (spec.max_rsus > 0 && static_cast<int>(net.rsu_positions.size()) >= spec.max_rsus) break;
      net.rsu_positions.push_back({ix * spec.block_m, iy * spec.block_m});
    }
  }

  // Vehicle flows: even indices run the arterial corridor, odd indices
  // orbit a seeded block ring. All draws come from one named child stream
  // in a fixed per-vehicle order.
  sim::RandomStream flow_rng{spec.seed, "city.flows"};
  net.flows.reserve(static_cast<std::size_t>(spec.vehicles));
  for (int i = 0; i < spec.vehicles; ++i) {
    VehicleFlow flow;
    const double jitter = spec.vehicle_speed_jitter_mps > 0
                              ? flow_rng.uniform(-spec.vehicle_speed_jitter_mps,
                                                 spec.vehicle_speed_jitter_mps)
                              : 0.0;
    flow.speed_mps = std::max(1.0, spec.vehicle_speed_mps + jitter);
    if (i % 2 == 0) {
      flow.waypoints = {{0.0, net.corridor_y}, {net.extent_x, net.corridor_y}};
    } else {
      const int bx = static_cast<int>(flow_rng.uniform_int(0, spec.blocks_x - 1));
      const int by = static_cast<int>(flow_rng.uniform_int(0, spec.blocks_y - 1));
      const double x0 = bx * spec.block_m, x1 = (bx + 1) * spec.block_m;
      const double y0 = by * spec.block_m, y1 = (by + 1) * spec.block_m;
      flow.waypoints = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
    }
    flow.phase_m = flow_rng.uniform(0.0, std::max(1.0, loop_length(flow)));
    net.flows.push_back(std::move(flow));
  }
  return net;
}

// --- CityScenario -----------------------------------------------------------

class CityScenario::VehicleEntry {
 public:
  VehicleEntry(CityScenario& city, VehicleFlow flow, std::size_t index) : flow_{std::move(flow)} {
    core::ItsStationConfig cfg;
    cfg.station_id = kVehicleIdBase + static_cast<its::StationId>(index);
    cfg.station_type = its::StationType::PassengerCar;
    cfg.name = "veh" + std::to_string(index);
    cfg.radio.tx_power_dbm = city.spec_.tx_power_dbm;
    cfg.ca.t_gen_cam_min = city.spec_.obu_cam_interval;
    cfg.ca.t_gen_cam_max = city.spec_.obu_cam_interval;
    cfg.enable_dcc = city.spec_.enable_dcc;
    cfg.den.enable_kaf = city.spec_.enable_kaf;
    if (city.spec_.cpm_enable) {
      cfg.enable_cpm = true;
      cfg.cpm.interval = city.spec_.cpm_interval;
      cfg.cpm.redundancy_window = city.spec_.cpm_redundancy_window;
    }
    auto* sched = &city.sched_;
    const VehicleFlow* route = &flow_;
    station_ = std::make_unique<core::ItsStation>(
        city.sched_, *city.medium_, *city.lan_, city.frame_, cfg,
        [sched, route] {
          return its::EgoState{flow_position(*route, sched->now()),
                               route->speed_mps > 0 ? route->speed_mps : 0.0,
                               flow_heading_rad(*route, sched->now())};
        },
        city.rng_.child(cfg.name));
    if (city.spec_.cpm_enable) {
      station_->ldm().set_perceived_object_lifetime(city.spec_.cpm_object_lifetime);
    }
  }

  [[nodiscard]] core::ItsStation& station() { return *station_; }
  [[nodiscard]] const VehicleFlow& flow() const { return flow_; }

 private:
  VehicleFlow flow_;
  std::unique_ptr<core::ItsStation> station_;
};

CityScenario::CityScenario(CitySpec spec)
    : spec_{std::move(spec)},
      net_{generate_road_network(spec_)},
      rng_{spec_.seed, "city"},
      frame_{spec_.origin} {
  dot11p::ChannelModel channel;
  auto base = std::make_unique<dot11p::LogDistanceModel>(
      dot11p::LogDistanceModel::its_g5(spec_.path_loss_exponent));
  if (net_.building_walls.empty()) {
    channel.path_loss = std::shared_ptr<const dot11p::PathLossModel>{std::move(base)};
  } else {
    auto obstacles = std::make_shared<const dot11p::ObstacleShadowingModel>(
        std::move(base), net_.building_walls, spec_.obstacle_index);
    obstacles_ = obstacles.get();
    channel.path_loss = std::move(obstacles);
  }
  channel.shadowing_sigma_db = spec_.shadowing_sigma_db;
  channel.per_link_streams = spec_.spatial_index;
  channel.spatial_index = spec_.spatial_index;
  channel.power_floor_dbm = spec_.power_floor_dbm;
  channel.cell_size_m = spec_.grid_cell_m;
  channel.max_station_speed_mps =
      std::max(50.0, 2.0 * (spec_.vehicle_speed_mps + spec_.vehicle_speed_jitter_mps));
  const int parts = resolved_partitions();
  if (parts > 1 && spec_.spatial_index) {
    sim::PartitionedScheduler::Config pcfg;
    pcfg.partitions = static_cast<std::uint32_t>(parts);
    engine_ = std::make_unique<sim::PartitionedScheduler>(pcfg);
  }
  medium_ = std::make_unique<dot11p::Medium>(sched_, rng_.child("medium"), std::move(channel));
  if (engine_) medium_->set_partition_engine(engine_.get());
  lan_ = std::make_unique<middleware::HttpLan>(sched_, rng_.child("lan"));

  rsus_.reserve(net_.rsu_positions.size());
  for (std::size_t i = 0; i < net_.rsu_positions.size(); ++i) {
    core::ItsStationConfig cfg;
    cfg.station_id = kRsuIdBase + static_cast<its::StationId>(i);
    cfg.station_type = its::StationType::RoadSideUnit;
    cfg.name = "rsu" + std::to_string(i);
    cfg.radio.tx_power_dbm = spec_.tx_power_dbm;
    cfg.ca.t_gen_cam_min = spec_.rsu_cam_interval;
    cfg.ca.t_gen_cam_max = spec_.rsu_cam_interval;
    cfg.enable_dcc = spec_.enable_dcc;
    if (spec_.cpm_enable) {
      cfg.enable_cpm = true;
      cfg.cpm.interval = spec_.cpm_interval;
      cfg.cpm.redundancy_window = spec_.cpm_redundancy_window;
    }
    const geo::Vec2 pos = net_.rsu_positions[i];
    rsus_.push_back(std::make_unique<core::ItsStation>(
        sched_, *medium_, *lan_, frame_, cfg,
        [pos] { return its::EgoState{pos, 0.0, 0.0}; }, rng_.child(cfg.name)));
    if (spec_.cpm_enable) {
      rsus_.back()->ldm().set_perceived_object_lifetime(spec_.cpm_object_lifetime);
    }
  }

  vehicles_.reserve(net_.flows.size());
  for (const auto& flow : net_.flows) {
    vehicles_.push_back(std::make_unique<VehicleEntry>(*this, flow, vehicles_.size()));
  }
}

CityScenario::~CityScenario() = default;

int CityScenario::resolved_partitions() const {
  if (spec_.partitions > 0) return spec_.partitions;
  return static_cast<int>(core::experiment_partitions_from_env(1));
}

core::ItsStation& CityScenario::vehicle(std::size_t i) { return vehicles_[i]->station(); }

geo::Vec2 CityScenario::vehicle_position(std::size_t i) const {
  return flow_position(vehicles_[i]->flow(), sched_.now());
}

std::size_t CityScenario::add_vehicle(VehicleFlow flow) {
  if (started_) throw std::logic_error{"CityScenario: add_vehicle after start()"};
  vehicles_.push_back(std::make_unique<VehicleEntry>(*this, std::move(flow), vehicles_.size()));
  return vehicles_.size() - 1;
}

void CityScenario::start() {
  if (started_) return;
  started_ = true;

  // Stations come up with a seeded phase offset inside their own CAM
  // period. Unstaggered fixed-rate beacons from RSUs that cannot
  // carrier-sense each other (they sit beyond CS range but share
  // receivers) would collide *synchronously forever* — the classic hidden
  // terminal pathology; real CA services are never phase-locked.
  sim::RandomStream phase_rng = rng_.child("phase");

  for (auto& rsu : rsus_) {
    auto* station = rsu.get();
    const geo::Vec2 pos = station->router().ego().position;
    const sim::SimTime offset = phase_rng.uniform_time(sim::SimTime::zero(), spec_.rsu_cam_interval);
    sched_.post_in(offset, [station, pos] {
      station->start_cam([pos] {
        its::CaVehicleData data;
        data.position = pos;
        return data;
      });
      // CPM rides the same phase offset as the CAM start (no extra draws).
      if (station->cpm()) station->cpm()->start();
    });
  }
  for (auto& veh : vehicles_) {
    auto* station = &veh->station();
    auto* sched = &sched_;
    const VehicleFlow* flow = &veh->flow();
    const sim::SimTime offset = phase_rng.uniform_time(sim::SimTime::zero(), spec_.obu_cam_interval);
    sched_.post_in(offset, [station, sched, flow] {
      station->start_cam([sched, flow] {
        its::CaVehicleData data;
        data.position = flow_position(*flow, sched->now());
        data.heading_rad = flow_heading_rad(*flow, sched->now());
        data.speed_mps = flow->speed_mps > 0 ? flow->speed_mps : 0.0;
        return data;
      });
      if (station->cpm()) station->cpm()->start();
    });
  }
}

}  // namespace rst::scenario
