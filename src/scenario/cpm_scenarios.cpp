#include "rst/scenario/cpm_scenarios.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <memory>

#include "rst/core/testbed.hpp"
#include "rst/geo/obstacle_grid.hpp"
#include "rst/roadside/collision_predictor.hpp"

namespace rst::scenario {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, double v) { fnv_mix(h, std::bit_cast<std::uint64_t>(v)); }

void fnv_mix(std::uint64_t& h, sim::SimTime t) {
  fnv_mix(h, static_cast<std::uint64_t>(t.count_ns()));
}

}  // namespace

std::uint64_t OccludedPedestrianReport::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(cpm_enabled));
  fnv_mix(h, static_cast<std::uint64_t>(braked));
  fnv_mix(h, t_brake);
  fnv_mix(h, static_cast<std::uint64_t>(los_seen));
  fnv_mix(h, t_los);
  fnv_mix(h, static_cast<std::uint64_t>(fused));
  fnv_mix(h, t_first_fusion);
  fnv_mix(h, min_separation_m);
  fnv_mix(h, objects_published);
  fnv_mix(h, objects_fused);
  fnv_mix(h, cpms_sent);
  fnv_mix(h, cpms_received);
  return h;
}

std::uint64_t BlindIntersectionReport::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(cpm_enabled));
  fnv_mix(h, static_cast<std::uint64_t>(threat_flagged));
  fnv_mix(h, t_threat);
  fnv_mix(h, static_cast<std::uint64_t>(threat_source));
  fnv_mix(h, static_cast<std::uint64_t>(b_braked));
  fnv_mix(h, min_gap_m);
  fnv_mix(h, cpms_sent);
  fnv_mix(h, cpms_received);
  fnv_mix(h, objects_fused);
  return h;
}

// --- Occluded pedestrian -----------------------------------------------------
//
// Geometry (east-north metres):
//
//            camera (2.2,12) looking south, RSU (2.2,11.5)
//       11 +  wall x=0.8
//          |                 pedestrian (3,10) walking west at 0.25 m/s
//          |
//        2 +
//            vehicle (0,0.5) line-following north along x=0
//
// The wall spans y in [2,11] at x=0.8: it blocks the vehicle's (and its
// LiDAR's) sight line to the pedestrian for the whole approach, while the
// camera past the wall end keeps a clear view. The pedestrian's closest
// approach to the camera stays ~2.0 m, outside the 1.52 m Action Point, so
// the classic DENM chain never fires — only CPM fusion can warn the OBU.

OccludedPedestrianReport run_occluded_pedestrian(std::uint64_t seed, bool cpm_enable,
                                                 int partitions) {
  core::TestbedConfig cfg;
  cfg.seed = seed;
  cfg.track_start = {0, 0};
  cfg.track_end = {0, 14};
  cfg.vehicle_start = {0, 0.5};
  cfg.camera_position = {2.2, 12.0};
  cfg.camera_facing_rad = M_PI;  // optical axis south, down the track
  cfg.rsu_position = {2.2, 11.5};
  const geo::Vec2 wall_a{0.8, 2.0};
  const geo::Vec2 wall_b{0.8, 11.0};
  cfg.walls.push_back({wall_a, wall_b, 12.0});
  cfg.medium_per_link_streams = true;
  cfg.medium_spatial_index = true;
  cfg.medium_partitions = partitions;
  cfg.cpm_enable = cpm_enable;
  cfg.cpm_interval = sim::SimTime::milliseconds(100);

  core::TestbedScenario scenario{cfg};
  // Pedestrian: east of the wall, walking west towards the track.
  const geo::Vec2 ped_start{3.0, 10.0};
  const double ped_speed = 0.25;
  scenario.add_road_user(ped_start, 1.5 * M_PI, ped_speed, roadside::Presentation::StopSign);
  scenario.start_services();

  auto& sched = scenario.scheduler();
  const sim::SimTime t0 = sched.now();
  const sim::SimTime horizon = t0 + sim::SimTime::seconds(10);

  OccludedPedestrianReport report;
  report.cpm_enabled = cpm_enable;
  while (sched.now() < horizon) {
    sched.run_until(sched.now() + sim::SimTime::milliseconds(1));
    if (!report.los_seen) {
      const double t = (sched.now() - t0).to_seconds();
      const geo::Vec2 ped{ped_start.x - ped_speed * t, ped_start.y};
      if (!geo::segments_intersect(scenario.dynamics().position(), ped, wall_a, wall_b)) {
        report.los_seen = true;
        report.t_los = sched.now();
      }
    }
  }

  if (const auto* cut = scenario.trace().find_event(sim::Stage::PowerCutCommand, t0)) {
    report.braked = true;
    report.t_brake = cut->when;
  }
  if (const auto* fusion = scenario.trace().find_event(sim::Stage::CpmFusion, t0,
                                                       scenario.config().obu.station_id)) {
    report.fused = true;
    report.t_first_fusion = fusion->when;
  }
  report.min_separation_m = scenario.min_separation_m();
  if (cpm_enable) {
    const auto& rsu = scenario.rsu().cpm()->stats();
    const auto& obu = scenario.obu().cpm()->stats();
    report.objects_published = rsu.objects_published + obu.objects_published;
    report.objects_fused = obu.objects_fused + rsu.objects_fused;
    report.cpms_sent = rsu.cpms_sent + obu.cpms_sent;
    report.cpms_received = rsu.cpms_received + obu.cpms_received;
  }
  return report;
}

// --- Blind intersection ------------------------------------------------------
//
// Two building walls form an L around the south-west corner of a crossing:
// a cyclist rides east along y=0 behind the east-west wall while vehicle B
// drives north along x=0 behind the north-south wall. A parked observer
// station at (-4,1) inside the corner sees the cyclist and publishes it
// over CPM; B's collision predictor fires on the fused percept seconds
// before either could see the other.

BlindIntersectionReport run_blind_intersection(std::uint64_t seed, bool cpm_enable) {
  sim::Scheduler sched;
  sim::Trace trace;
  sim::RandomStream rng{seed, "blindx"};
  const geo::LocalFrame frame{geo::GeoPosition{41.1780, -8.6080}};

  dot11p::ChannelModel channel;
  auto base = std::make_unique<dot11p::LogDistanceModel>(dot11p::LogDistanceModel::its_g5(2.1));
  const std::vector<dot11p::Wall> walls{{{-2, -2}, {-2, -20}, 15.0},
                                        {{-2, -2}, {-20, -2}, 15.0}};
  channel.path_loss =
      std::make_shared<const dot11p::ObstacleShadowingModel>(std::move(base), walls, true);
  channel.shadowing_sigma_db = 2.0;
  dot11p::Medium medium{sched, rng.child("medium"), std::move(channel)};
  middleware::HttpLan lan{sched, rng.child("lan")};

  const sim::SimTime cpm_interval = sim::SimTime::milliseconds(100);
  core::ItsStationConfig observer_cfg;
  observer_cfg.station_id = 101;
  observer_cfg.station_type = its::StationType::RoadSideUnit;
  observer_cfg.name = "observer";
  if (cpm_enable) {
    observer_cfg.enable_cpm = true;
    observer_cfg.cpm.interval = cpm_interval;
  }
  const geo::Vec2 observer_pos{-4, 1};
  core::ItsStation observer{
      sched,          medium,
      lan,            frame,
      observer_cfg,   [observer_pos] { return its::EgoState{observer_pos, 0.0, 0.0}; },
      rng.child("a"), &trace};

  // Vehicle B: northbound along x=0 at 8 m/s, frozen in place once its
  // predictor latches a threat (the braked state the report asserts on).
  struct BState {
    bool braked{false};
    geo::Vec2 hold{};
  } b_state;
  const auto b_position = [&sched, &b_state] {
    if (b_state.braked) return b_state.hold;
    return geo::Vec2{0, -30 + 8 * sched.now().to_seconds()};
  };
  core::ItsStationConfig b_cfg;
  b_cfg.station_id = 202;
  b_cfg.station_type = its::StationType::PassengerCar;
  b_cfg.name = "vehicle-b";
  if (cpm_enable) {
    b_cfg.enable_cpm = true;
    b_cfg.cpm.interval = cpm_interval;
  }
  core::ItsStation b{sched,
                     medium,
                     lan,
                     frame,
                     b_cfg,
                     [&b_position, &b_state] {
                       return its::EgoState{b_position(), b_state.braked ? 0.0 : 8.0, 0.0};
                     },
                     rng.child("b"),
                     &trace};

  // The observer's local sensing: a cyclist percept refreshed at 10 Hz
  // (eastbound along y=0, crossing B's path at the intersection).
  const auto cyclist_at = [](sim::SimTime t) {
    return geo::Vec2{-12 + 3 * t.to_seconds(), 0};
  };
  std::function<void()> feed_cyclist = [&] {
    its::PerceivedObject obj;
    obj.object_id = 7;
    obj.classification = "bicycle";
    obj.position = cyclist_at(sched.now());
    obj.velocity = {3, 0};
    obj.confidence = 0.9;
    observer.ldm().update_perceived_object(obj);
    sched.post_in(sim::SimTime::milliseconds(100), [&feed_cyclist] { feed_cyclist(); });
  };
  feed_cyclist();

  BlindIntersectionReport report;
  report.cpm_enabled = cpm_enable;
  if (cpm_enable) {
    const roadside::CollisionPredictor predictor{
        {.horizon_s = 5.0, .conflict_distance_m = 2.0, .max_pair_distance_m = 60.0}};
    b.cpm()->set_fused_callback(
        [&](const its::PerceivedObject& object, const its::GnDeliveryMeta&) {
          if (report.threat_flagged) return;
          its::LdmVehicleEntry ego;
          ego.station_id = b_cfg.station_id;
          ego.position = b_position();
          ego.speed_mps = b_state.braked ? 0.0 : 8.0;
          ego.heading_rad = 0.0;
          const auto threat = predictor.assess(object.position, object.velocity, {ego});
          if (!threat) return;
          report.threat_flagged = true;
          report.t_threat = sched.now();
          report.threat_source = object.source_station;
          b_state.hold = b_position();
          b_state.braked = true;
        });
    observer.cpm()->start();
    b.cpm()->start();
  }

  const sim::SimTime horizon = sim::SimTime::seconds(6);
  double min_gap = geo::distance(b_position(), cyclist_at(sched.now()));
  while (sched.now() < horizon) {
    sched.run_until(sched.now() + sim::SimTime::milliseconds(10));
    min_gap = std::min(min_gap, geo::distance(b_position(), cyclist_at(sched.now())));
  }
  report.b_braked = b_state.braked;
  report.min_gap_m = min_gap;
  if (cpm_enable) {
    report.cpms_sent = observer.cpm()->stats().cpms_sent + b.cpm()->stats().cpms_sent;
    report.cpms_received = observer.cpm()->stats().cpms_received + b.cpm()->stats().cpms_received;
    report.objects_fused = observer.cpm()->stats().objects_fused + b.cpm()->stats().objects_fused;
  }
  return report;
}

}  // namespace rst::scenario
