#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <map>

#include "rst/its/dcc/channel_probe.hpp"
#include "rst/its/messages/cause_code.hpp"
#include "rst/scenario/city.hpp"
#include "rst/sim/trial_pool.hpp"

namespace rst::scenario {

// --- Fingerprints -----------------------------------------------------------
//
// FNV-1a over the exact field bytes. Experiments assert these are stable
// across reruns and thread counts, so every contributing value must itself
// be deterministic (integer counters, SimTime nanoseconds, IEEE doubles
// produced by the same arithmetic).

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, double v) { fnv_mix(h, std::bit_cast<std::uint64_t>(v)); }

void fnv_mix(std::uint64_t& h, sim::SimTime t) {
  fnv_mix(h, static_cast<std::uint64_t>(t.count_ns()));
}

}  // namespace

std::uint64_t CoverageMap::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(rsu_index));
  fnv_mix(h, static_cast<std::uint64_t>(samples.size()));
  for (const auto& s : samples) {
    fnv_mix(h, s.pos.x);
    fnv_mix(h, s.pos.y);
    fnv_mix(h, s.rssi_dbm);
    fnv_mix(h, static_cast<std::uint64_t>(s.walls_crossed));
  }
  fnv_mix(h, covered_fraction);
  return h;
}

std::uint64_t HandoverReport::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(receptions.size()));
  for (const auto& r : receptions) {
    fnv_mix(h, r.t);
    fnv_mix(h, static_cast<std::uint64_t>(r.rsu));
    fnv_mix(h, r.rssi_dbm);
  }
  for (const auto id : serving_sequence) fnv_mix(h, static_cast<std::uint64_t>(id));
  fnv_mix(h, max_service_gap);
  fnv_mix(h, max_serving_gap);
  return h;
}

std::uint64_t cbr_sweep_fingerprint(const std::vector<CbrPoint>& curve) {
  std::uint64_t h = kFnvOffset;
  for (const auto& p : curve) {
    fnv_mix(h, static_cast<std::uint64_t>(p.vehicles));
    fnv_mix(h, p.cbr);
    fnv_mix(h, p.frames_on_air);
    fnv_mix(h, p.deliveries);
  }
  return h;
}

std::uint64_t DeliveryReport::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(near_targets));
  fnv_mix(h, static_cast<std::uint64_t>(near_delivered));
  fnv_mix(h, static_cast<std::uint64_t>(far_targets));
  fnv_mix(h, static_cast<std::uint64_t>(far_delivered));
  fnv_mix(h, first_near_delivery);
  fnv_mix(h, first_far_delivery);
  fnv_mix(h, gn_forwarded);
  fnv_mix(h, kaf_retransmissions);
  fnv_mix(h, best_direct_far_budget_dbm);
  return h;
}

// --- Experiment 1: coverage / RSSI map --------------------------------------

CoverageMap measure_coverage(CityScenario& city, std::size_t rsu_index, double step_m) {
  const CitySpec& spec = city.spec();
  CoverageMap map;
  map.rsu_index = rsu_index;
  map.rsu_pos = city.rsu_position(rsu_index);

  // A probe radio moved across the raster. No traffic runs during the
  // measurement, so attaching (and detaching, in ~Radio) a radio is
  // invisible to any simulation the caller runs afterwards except for one
  // extra MAC address allocation.
  geo::Vec2 probe_pos{};
  dot11p::RadioConfig probe_cfg;
  probe_cfg.tx_power_dbm = spec.tx_power_dbm;
  dot11p::Radio probe{city.medium(), probe_cfg, [&probe_pos] { return probe_pos; },
                      sim::RandomStream{spec.seed, "city.coverage.probe"}, "coverage-probe"};

  const auto sample = [&](geo::Vec2 p) {
    probe_pos = p;
    CoverageSample s;
    s.pos = p;
    s.distance_m = geo::distance(map.rsu_pos, p);
    s.rssi_dbm = city.medium().mean_rx_power_dbm(city.rsu(rsu_index).radio(), probe);
    if (const auto* obstacles = city.obstacles()) {
      s.walls_crossed = obstacles->walls_crossed(map.rsu_pos, p);
    }
    map.samples.push_back(s);
  };

  // Street centerlines: every east-west row, then every north-south column.
  const auto& net = city.network();
  const int rows = spec.blocks_y + 1;
  const int cols = spec.blocks_x + 1;
  for (int iy = 0; iy < rows; ++iy) {
    const double y = iy * spec.block_m;
    for (double x = 0.0; x <= net.extent_x + 1e-9; x += step_m) sample({x, y});
  }
  for (int ix = 0; ix < cols; ++ix) {
    const double x = ix * spec.block_m;
    for (double y = 0.0; y <= net.extent_y + 1e-9; y += step_m) sample({x, y});
  }

  std::size_t covered = 0;
  for (const auto& s : map.samples) {
    if (s.rssi_dbm >= map.sensitivity_dbm) ++covered;
  }
  map.covered_fraction =
      map.samples.empty() ? 0.0 : static_cast<double>(covered) / map.samples.size();
  return map;
}

// --- Experiment 2: RSU <-> OBU handover -------------------------------------

HandoverReport run_handover_experiment(const CitySpec& spec, sim::SimTime duration,
                                       double hysteresis_db) {
  CityScenario city{spec};

  // One probe OBU driving the arterial corridor end to end (and back, if
  // the duration outlasts one pass — the flow is a closed loop).
  VehicleFlow drive;
  drive.waypoints = {{0.0, city.network().corridor_y},
                     {city.network().extent_x, city.network().corridor_y}};
  drive.speed_mps = spec.vehicle_speed_mps;
  const std::size_t probe = city.add_vehicle(drive);

  HandoverReport report;
  city.vehicle(probe).ca().set_cam_callback(
      [&report, &city](const its::Cam& cam, const its::GnDeliveryMeta& meta) {
        if (cam.header.station_id < CityScenario::kRsuIdBase) return;
        report.receptions.push_back({city.scheduler().now(), cam.header.station_id, meta.rssi_dbm});
      });

  city.start();
  city.scheduler().run_until(duration);

  // Serving-RSU selection with hysteresis: switch only when another RSU's
  // beacon is `hysteresis_db` stronger than the last beacon heard from the
  // serving RSU.
  its::StationId serving = 0;
  double serving_rssi = 0.0;
  sim::SimTime last_any{};
  sim::SimTime last_serving{};
  for (const auto& r : report.receptions) {
    if (!report.serving_sequence.empty()) {
      report.max_service_gap = std::max(report.max_service_gap, r.t - last_any);
    }
    last_any = r.t;
    if (report.serving_sequence.empty()) {
      serving = r.rsu;
      serving_rssi = r.rssi_dbm;
      last_serving = r.t;
      report.serving_sequence.push_back(serving);
      continue;
    }
    if (r.rsu == serving) {
      serving_rssi = r.rssi_dbm;
      report.max_serving_gap = std::max(report.max_serving_gap, r.t - last_serving);
      last_serving = r.t;
    } else if (r.rssi_dbm > serving_rssi + hysteresis_db) {
      serving = r.rsu;
      serving_rssi = r.rssi_dbm;
      last_serving = r.t;
      report.serving_sequence.push_back(serving);
    }
  }
  if (!report.receptions.empty()) {
    report.max_service_gap = std::max(report.max_service_gap, duration - last_any);
  }
  return report;
}

// --- Experiment 3: CBR vs density -------------------------------------------

namespace {

CbrPoint run_cbr_cell(const CitySpec& base, int vehicles, sim::SimTime duration) {
  CitySpec spec = base;
  spec.vehicles = vehicles;
  CityScenario city{spec};

  // External probe on the monitor RSU's radio: the station's own DCC probe
  // only exists when DCC is enabled, and the experiment must measure the
  // no-DCC baseline identically.
  its::dcc::ChannelProbe probe{city.scheduler(), city.rsu(0).radio()};
  probe.start();

  city.start();
  city.scheduler().run_until(duration);

  CbrPoint point;
  point.vehicles = vehicles;
  point.cbr = probe.cbr();
  point.frames_on_air = city.medium().stats().frames_transmitted;
  point.deliveries = city.medium().stats().deliveries;
  return point;
}

}  // namespace

std::vector<CbrPoint> run_cbr_sweep(const CitySpec& base, const std::vector<int>& densities,
                                    sim::SimTime duration, unsigned threads) {
  sim::TrialPool pool{threads == 0 ? 1 : threads};
  return pool.map(densities.size(),
                  [&](std::size_t i) { return run_cbr_cell(base, densities[i], duration); });
}

// --- Experiment 4: multi-hop GBC delivery across a coverage gap -------------

DeliveryReport run_delivery_experiment(const CitySpec& spec, sim::SimTime duration) {
  // The experiment owns the topology: one RSU at the corridor's west end,
  // a parked relay chain under (or one GBC hop beyond) its coverage, a
  // parked cluster across the gap, and one mover crossing it carrying the
  // DENM via keep-alive forwarding.
  CitySpec s = spec;
  s.vehicles = 0;           // all vehicles are placed below
  s.max_rsus = 1;           // single source of the warning
  s.rsu_corridor_only = true;
  s.enable_kaf = true;      // the store-carry-forward substrate
  s.validate();

  CityScenario city{s};
  const double L = city.network().extent_x;
  const double y = city.network().corridor_y;

  const auto park = [&](double x) {
    VehicleFlow f;
    f.waypoints = {{x, y}};
    return city.add_vehicle(f);
  };

  // Relay chain: first hop inside direct coverage, second reachable only by
  // GBC forwarding. Far cluster: beyond any single-hop budget from the RSU.
  const std::vector<std::size_t> near_idx = {park(0.15 * L), park(0.30 * L)};
  const std::vector<std::size_t> far_idx = {park(0.85 * L), park(0.92 * L), park(1.00 * L)};

  VehicleFlow crossing;
  crossing.waypoints = {{0.0, y}, {L, y}};
  crossing.speed_mps = s.vehicle_speed_mps;
  const std::size_t mover = city.add_vehicle(crossing);
  (void)mover;

  DeliveryReport report;
  report.near_targets = static_cast<int>(near_idx.size());
  report.far_targets = static_cast<int>(far_idx.size());

  report.best_direct_far_budget_dbm = -1e9;
  for (const auto i : far_idx) {
    report.best_direct_far_budget_dbm =
        std::max(report.best_direct_far_budget_dbm,
                 city.medium().mean_rx_power_dbm(city.rsu(0).radio(), city.vehicle(i).radio()));
  }

  std::map<std::size_t, sim::SimTime> first_delivery;
  for (std::size_t i = 0; i < city.vehicle_count(); ++i) {
    city.vehicle(i).den().set_denm_callback(
        [&first_delivery, &city, i](const its::Denm&, const its::GnDeliveryMeta&, bool) {
          first_delivery.emplace(i, city.scheduler().now());
        });
  }

  city.start();

  // Trigger at the RSU once CAM beaconing has populated location tables:
  // a GBC DENM scoped to the whole corridor, repeated by the originator for
  // a few seconds, then kept alive only by stations inside the area.
  city.scheduler().post_at(sim::SimTime::milliseconds(500), [&city, L, y] {
    its::DenmRequest req;
    req.event_type = its::EventType::of(its::Cause::Accident);
    req.event_position = city.rsu_position(0);
    req.validity = sim::SimTime::seconds(600);
    req.repetition_interval = sim::SimTime::milliseconds(500);
    req.repetition_duration = sim::SimTime::seconds(5);
    req.destination_area =
        geo::GeoArea::rectangle({L / 2.0, y}, L / 2.0 + 50.0, 60.0, M_PI / 2.0);
    city.rsu(0).den().trigger(req);
  });

  city.scheduler().run_until(duration);

  const auto collect = [&](const std::vector<std::size_t>& idx, int& delivered,
                           sim::SimTime& first) {
    first = sim::SimTime::zero();
    for (const auto i : idx) {
      const auto it = first_delivery.find(i);
      if (it == first_delivery.end()) continue;
      ++delivered;
      if (first == sim::SimTime::zero() || it->second < first) first = it->second;
    }
  };
  collect(near_idx, report.near_delivered, report.first_near_delivery);
  collect(far_idx, report.far_delivered, report.first_far_delivery);

  report.gn_forwarded = city.rsu(0).router().stats().forwarded;
  for (std::size_t i = 0; i < city.vehicle_count(); ++i) {
    report.gn_forwarded += city.vehicle(i).router().stats().forwarded;
    report.kaf_retransmissions += city.vehicle(i).den().stats().kaf_retransmissions;
  }
  return report;
}

}  // namespace rst::scenario
