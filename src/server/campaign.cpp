#include "rst/server/campaign.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "rst/core/config_io.hpp"

namespace rst::server {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  // Explicit little-endian byte order so the address is platform-stable.
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t trial_key(const std::string& canonical_spec, std::uint64_t seed) {
  std::uint64_t h = fnv1a(canonical_spec);
  h = mix_u64(h, seed);
  return fnv1a(kCodeVersion, h);
}

std::uint64_t campaign_id(const std::string& canonical_spec, int trials,
                          std::uint64_t base_seed) {
  std::uint64_t h = fnv1a(canonical_spec);
  h = mix_u64(h, static_cast<std::uint64_t>(trials));
  h = mix_u64(h, base_seed);
  return fnv1a(kCodeVersion, h);
}

std::string serialize_trial_record(std::uint64_t seed, const core::TrialResult& r) {
  std::string out;
  char buf[64];
  const auto token = [&](const char* key, const std::string& value) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  };
  const auto integer = [&](const char* key, std::int64_t v) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    token(key, buf);
  };
  const auto real = [&](const char* key, double v) { token(key, core::format_spec_double(v)); };

  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(seed));
  token("seed", buf);
  integer("stopped", r.stopped_by_denm ? 1 : 0);
  integer("timeout", r.timed_out ? 1 : 0);
  integer("t_cross_ns", r.t_cross_actual.count_ns());
  integer("t_det_ns", r.t_detection.count_ns());
  integer("t_rsu_ns", r.t_rsu_send.count_ns());
  integer("t_obu_ns", r.t_obu_receive.count_ns());
  integer("t_cut_ns", r.t_power_cut.count_ns());
  integer("t_halt_ns", r.t_halt.count_ns());
  real("det_rsu_ms", r.meas_detection_to_rsu_ms);
  real("rsu_obu_ms", r.meas_rsu_to_obu_ms);
  real("obu_act_ms", r.meas_obu_to_actuator_ms);
  real("total_ms", r.meas_total_ms);
  real("brake_m", r.braking_distance_m);
  real("stop_cam_m", r.stop_distance_to_camera_m);
  real("det_dist_m", r.detection_distance_m);
  real("det_speed_mps", r.speed_at_detection_mps);
  return out;
}

namespace {

[[noreturn]] void bad_record(const std::string& line, const char* why) {
  throw std::invalid_argument{std::string{"trial record: "} + why + " in '" + line + "'"};
}

}  // namespace

TrialRecord parse_trial_record(const std::string& line) {
  TrialRecord rec;
  // Every field must appear exactly once; track per-field presence so both
  // a truncated record and a duplicated-field one (which a plain token
  // count would wave through with a silent default-zero measurement) fail
  // loud instead of decoding.
  std::uint32_t seen = 0;
  constexpr int kFieldCount = 17;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const auto space = line.find(' ', pos);
    const std::string tok =
        line.substr(pos, space == std::string::npos ? std::string::npos : space - pos);
    pos = space == std::string::npos ? line.size() : space + 1;
    if (tok.empty()) continue;
    const auto eq = tok.find('=');
    if (eq == std::string::npos) bad_record(line, "token without '='");
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    char* end = nullptr;
    const auto as_i64 = [&]() -> std::int64_t {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || value.empty()) bad_record(line, "bad integer");
      return v;
    };
    const auto as_double = [&]() -> double {
      const double v = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || value.empty()) bad_record(line, "bad number");
      return v;
    };
    using sim::SimTime;
    core::TrialResult& r = rec.result;
    static constexpr const char* kFields[kFieldCount] = {
        "seed",      "stopped",    "timeout",    "t_cross_ns", "t_det_ns",  "t_rsu_ns",
        "t_obu_ns",  "t_cut_ns",   "t_halt_ns",  "det_rsu_ms", "rsu_obu_ms", "obu_act_ms",
        "total_ms",  "brake_m",    "stop_cam_m", "det_dist_m", "det_speed_mps"};
    int field = -1;
    for (int i = 0; i < kFieldCount; ++i) {
      if (key == kFields[i]) {
        field = i;
        break;
      }
    }
    if (field < 0) bad_record(line, "unknown field");
    const std::uint32_t bit = 1u << field;
    if (seen & bit) bad_record(line, "duplicate field");
    seen |= bit;
    if (key == "seed") {
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || value.empty()) bad_record(line, "bad seed");
      rec.seed = v;
    } else if (key == "stopped") {
      r.stopped_by_denm = as_i64() != 0;
    } else if (key == "timeout") {
      r.timed_out = as_i64() != 0;
    } else if (key == "t_cross_ns") {
      r.t_cross_actual = SimTime::nanoseconds(as_i64());
    } else if (key == "t_det_ns") {
      r.t_detection = SimTime::nanoseconds(as_i64());
    } else if (key == "t_rsu_ns") {
      r.t_rsu_send = SimTime::nanoseconds(as_i64());
    } else if (key == "t_obu_ns") {
      r.t_obu_receive = SimTime::nanoseconds(as_i64());
    } else if (key == "t_cut_ns") {
      r.t_power_cut = SimTime::nanoseconds(as_i64());
    } else if (key == "t_halt_ns") {
      r.t_halt = SimTime::nanoseconds(as_i64());
    } else if (key == "det_rsu_ms") {
      r.meas_detection_to_rsu_ms = as_double();
    } else if (key == "rsu_obu_ms") {
      r.meas_rsu_to_obu_ms = as_double();
    } else if (key == "obu_act_ms") {
      r.meas_obu_to_actuator_ms = as_double();
    } else if (key == "total_ms") {
      r.meas_total_ms = as_double();
    } else if (key == "brake_m") {
      r.braking_distance_m = as_double();
    } else if (key == "stop_cam_m") {
      r.stop_distance_to_camera_m = as_double();
    } else if (key == "det_dist_m") {
      r.detection_distance_m = as_double();
    } else if (key == "det_speed_mps") {
      r.speed_at_detection_mps = as_double();
    }
  }
  if (seen != (std::uint32_t{1} << kFieldCount) - 1) bad_record(line, "missing field");
  return rec;
}

}  // namespace rst::server
