#include "rst/server/campaign_engine.hpp"

#include <mutex>
#include <stdexcept>
#include <vector>

#include "rst/core/config_io.hpp"
#include "rst/core/experiment.hpp"
#include "rst/core/testbed.hpp"

namespace rst::server {

using sim::Stage;

CampaignEngine::CampaignEngine(CampaignEngineConfig config)
    : config_{config}, store_{config.store_path} {
  const unsigned resolved = core::resolve_experiment_threads(config_.threads);
  if (resolved > 1) pool_ = std::make_unique<sim::TrialPool>(resolved);
  // The engine trace is a long-running server log, not a per-trial ring;
  // give it room for a deep campaign history before drop-new kicks in.
  trace_.set_event_capacity(1 << 16);
}

namespace {

/// Validation shared by submit-time rejection messages and run_campaign.
struct Validated {
  bool ok{false};
  std::string error{};
  std::string canonical{};
};

/// Best-effort id for admission-time traces: the canonical campaign id when
/// the spec canonicalizes (matching CampaignOutcome::id), else the id of the
/// raw spec bytes — still stable per submission, so the trace stays joinable.
std::uint64_t submission_id(const CampaignRequest& request) {
  std::string spec = request.spec;
  try {
    spec = core::canonicalize_spec(request.spec);
  } catch (const std::exception&) {
  }
  return campaign_id(spec, request.trials, request.base_seed);
}

Validated validate_request(const CampaignRequest& request, int max_trials) {
  Validated v;
  try {
    v.canonical = core::canonicalize_spec(request.spec);
    core::TestbedConfig scratch;
    (void)core::apply_config_overrides(scratch, v.canonical);
    if (request.trials < 1) throw std::invalid_argument{"campaign: trials must be >= 1"};
    if (request.trials > max_trials) {
      throw std::invalid_argument{"campaign: trials exceeds max_trials"};
    }
    v.ok = true;
  } catch (const std::exception& e) {
    v.error = e.what();
  }
  return v;
}

}  // namespace

CampaignEngine::Admission CampaignEngine::submit(CampaignRequest request) {
  metrics_.histogram("campaign.queue_depth").observe(static_cast<double>(queue_.size()));
  if (queue_.size() >= config_.queue_capacity) {
    if (config_.overflow == CampaignEngineConfig::OverflowPolicy::Reject) {
      metrics_.counter("campaigns_rejected").add();
      trace_.record_event(tick(), Stage::CampaignRejected, 0, submission_id(request),
                          static_cast<double>(queue_.size()), sim::kCampaignRejectedQueueFull);
      return Admission::Rejected;
    }
    shed_oldest();
  }
  const std::uint64_t id = submission_id(request);
  queue_.push_back(std::move(request));
  metrics_.counter("campaigns_admitted").add();
  trace_.record_event(tick(), Stage::CampaignAdmitted, 0, id,
                      static_cast<double>(queue_.size()));
  return Admission::Admitted;
}

void CampaignEngine::shed_oldest() {
  // Drop-oldest: the new submission is admitted, the stalest queued
  // campaign is shed (it was enqueued longest ago and is the most likely
  // to have a departed client).
  metrics_.counter("campaigns_shed").add();
  trace_.record_event(tick(), Stage::CampaignRejected, 0, submission_id(queue_.front()),
                      static_cast<double>(queue_.size()), sim::kCampaignRejectedDropOldest);
  queue_.pop_front();
}

std::optional<CampaignOutcome> CampaignEngine::run_one(const LineSink& sink) {
  if (queue_.empty()) return std::nullopt;
  CampaignRequest request = std::move(queue_.front());
  queue_.pop_front();
  return run_campaign(request, sink);
}

CampaignOutcome CampaignEngine::execute(CampaignRequest request, const LineSink& sink) {
  // The synchronous transport path: admission against the queued backlog
  // (a direct execute does not jump a full queue), then run inline. The
  // configured overflow policy applies exactly as in submit(): under
  // DropOldest a full queue sheds its stalest campaign to admit this one.
  metrics_.histogram("campaign.queue_depth").observe(static_cast<double>(queue_.size()));
  if (queue_.size() >= config_.queue_capacity) {
    if (config_.overflow == CampaignEngineConfig::OverflowPolicy::Reject) {
      metrics_.counter("campaigns_rejected").add();
      trace_.record_event(tick(), Stage::CampaignRejected, 0, submission_id(request),
                          static_cast<double>(queue_.size()), sim::kCampaignRejectedQueueFull);
      CampaignOutcome out;
      out.status = CampaignOutcome::Status::Rejected;
      out.error = "overloaded";
      return out;
    }
    shed_oldest();
  }
  metrics_.counter("campaigns_admitted").add();
  trace_.record_event(tick(), Stage::CampaignAdmitted, 0, submission_id(request),
                      static_cast<double>(queue_.size()));
  return run_campaign(request, sink);
}

CampaignOutcome CampaignEngine::run_campaign(const CampaignRequest& request,
                                             const LineSink& sink) {
  CampaignOutcome out;
  const Validated v = validate_request(request, config_.max_trials);
  if (!v.ok) {
    out.status = CampaignOutcome::Status::Error;
    out.error = v.error;
    return out;
  }
  out.canonical_spec = v.canonical;
  out.id = campaign_id(v.canonical, request.trials, request.base_seed);

  core::TestbedConfig base;
  (void)core::apply_config_overrides(base, v.canonical);

  const std::size_t n = static_cast<std::size_t>(request.trials);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::string> records(n);
  std::vector<char> done(n, 0);
  std::vector<char> fresh(n, 0);
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = trial_key(v.canonical, request.base_seed + i);
    if (const std::string* stored = store_.get(keys[i])) {
      records[i] = *stored;
      done[i] = 1;
      ++out.cache_hits;
    } else {
      misses.push_back(i);
    }
  }
  out.cache_misses = misses.size();
  out.executed = misses.size();

  // Incremental seed-ordered streaming: trial i's line goes out as soon as
  // it and every earlier trial are resolved, so the stream (and the store
  // append order for fresh records) is identical at any worker count.
  std::mutex mu;
  std::size_t next_emit = 0;
  const auto emit = [&](const std::string& line) {
    out.artifact += line;
    out.artifact += '\n';
    if (sink) sink(line);
  };
  const auto flush_ready = [&] {
    while (next_emit < n && done[next_emit]) {
      if (fresh[next_emit]) store_.put(keys[next_emit], records[next_emit]);
      emit("TRIAL " + std::to_string(next_emit) + " " + records[next_emit]);
      ++next_emit;
    }
  };
  flush_ready();  // leading cache hits stream immediately

  if (!misses.empty()) {
    const auto run_miss = [&](std::size_t j) {
      const std::size_t i = misses[j];
      core::TestbedConfig config = base;
      config.seed = request.base_seed + static_cast<std::uint64_t>(i);
      core::TestbedScenario scenario{config};
      std::string record = serialize_trial_record(config.seed, scenario.run_emergency_brake_trial());
      const std::lock_guard<std::mutex> lock{mu};
      records[i] = std::move(record);
      done[i] = 1;
      fresh[i] = 1;
      flush_ready();
    };
    if (pool_ && misses.size() > 1) {
      pool_->run_indexed(misses.size(), run_miss);
    } else {
      for (std::size_t j = 0; j < misses.size(); ++j) run_miss(j);
    }
  }
  flush_ready();  // everything is done; drain any tail

  // Accounting in seed order (never completion order): counters, the
  // trial-resolution trace, and the per-trial latency histogram all come
  // from the ordered pass so engine observability is worker-count-invariant.
  trials_executed_ += misses.size();
  metrics_.counter("trials_executed").add(misses.size());
  auto& hits_counter = metrics_.counter("cache_hits");
  auto& misses_counter = metrics_.counter("cache_misses");
  auto& trial_latency = metrics_.histogram("campaign.trial_total_ms");
  std::vector<core::TrialResult> trials(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      const bool hit = !fresh[i];
      (hit ? hits_counter : misses_counter).add();
      trace_.record_event(tick(), Stage::CampaignTrial, 0, keys[i], 0.0,
                          hit ? sim::kCampaignTrialHit : sim::kCampaignTrialMiss);
      // Both paths decode the stored record bytes — one code path, so a
      // cache-hit summary cannot diverge from the cold run's.
      trials[i] = parse_trial_record(records[i]).result;
      trial_latency.observe(trials[i].meas_total_ms);
    }
  } catch (const std::exception& e) {
    out.status = CampaignOutcome::Status::Error;
    out.error = e.what();
    return out;
  }
  const auto summary = core::aggregate_experiment_summary(std::move(trials));
  const auto emit_block = [&](const std::string& text) {
    std::size_t pos = 0;
    while (pos < text.size()) {
      const auto nl = text.find('\n', pos);
      emit(text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos));
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
  };
  emit_block(core::format_table2(summary, request.trials));
  emit_block(core::format_table3(summary, request.trials));
  return out;
}

std::uint64_t CampaignEngine::compact_store() {
  const std::uint64_t reclaimed = store_.compact();
  metrics_.counter("store_compactions").add();
  trace_.record_event(tick(), Stage::StoreCompaction, 0, store_.count(),
                      static_cast<double>(reclaimed));
  return reclaimed;
}

}  // namespace rst::server
