#include "rst/server/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rst/core/config_io.hpp"

namespace rst::server {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// First whitespace-separated word of `line`, and the rest after it.
std::string first_word(const std::string& line, std::string* rest) {
  std::size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) begin = line.size();
  std::size_t end = line.find_first_of(" \t", begin);
  if (end == std::string::npos) end = line.size();
  if (rest) {
    const std::size_t r = line.find_first_not_of(" \t", end);
    *rest = r == std::string::npos ? std::string{} : line.substr(r);
  }
  return line.substr(begin, end - begin);
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool LineSession::consume_line(const std::string& line, const LineSink& emit) {
  if (collecting_) {
    if (first_word(line, nullptr) == "END") {
      collecting_ = false;
      finish_campaign(emit);
      pending_ = CampaignRequest{};
    } else {
      pending_.spec += line;
      pending_.spec += '\n';
    }
    return true;
  }

  std::string rest;
  const std::string cmd = first_word(line, &rest);
  if (cmd.empty()) return true;  // blank line between commands
  if (cmd == "QUIT") return false;
  if (cmd == "PING") {
    emit("PONG");
    return true;
  }
  if (cmd == "STATS") {
    auto& m = engine_->metrics();
    emit("STATS admitted=" + std::to_string(m.counter("campaigns_admitted").value()) +
         " rejected=" + std::to_string(m.counter("campaigns_rejected").value()) +
         " shed=" + std::to_string(m.counter("campaigns_shed").value()) +
         " cache_hits=" + std::to_string(m.counter("cache_hits").value()) +
         " cache_misses=" + std::to_string(m.counter("cache_misses").value()) +
         " executed=" + std::to_string(engine_->trials_executed()) +
         " store_records=" + std::to_string(engine_->store().count()) +
         " queue_depth=" + std::to_string(engine_->queue_depth()));
    return true;
  }
  if (cmd == "COMPACT") {
    emit("COMPACTED reclaimed=" + std::to_string(engine_->compact_store()));
    return true;
  }
  if (cmd == "CAMPAIGN") {
    pending_ = CampaignRequest{};
    // Header tokens: trials=<n> seed=<s>, either optional, any order.
    while (!rest.empty()) {
      std::string tail;
      const std::string tok = first_word(rest, &tail);
      rest = tail;
      const auto eq = tok.find('=');
      const std::string key = tok.substr(0, eq == std::string::npos ? tok.size() : eq);
      const std::string value = eq == std::string::npos ? std::string{} : tok.substr(eq + 1);
      std::uint64_t v = 0;
      if (key == "trials" && parse_u64(value, &v) && v >= 1 &&
          v <= static_cast<std::uint64_t>(engine_->config().max_trials)) {
        pending_.trials = static_cast<int>(v);
      } else if (key == "seed" && parse_u64(value, &v)) {
        pending_.base_seed = v;
      } else {
        emit("ERROR campaign header: bad token '" + tok + "'");
        emit("DONE");
        return true;
      }
    }
    collecting_ = true;
    return true;
  }
  emit("ERROR unknown command '" + cmd + "'");
  emit("DONE");
  return true;
}

void LineSession::finish_campaign(const LineSink& emit) {
  // The OK header carries the campaign id, which the engine derives from the
  // canonical spec — so it is emitted lazily, just before the first artifact
  // line (by which point validation has necessarily passed).
  bool ok_emitted = false;
  const CampaignRequest request = pending_;
  const auto header = [&] {
    if (ok_emitted) return;
    ok_emitted = true;
    const std::uint64_t id =
        campaign_id(core::canonicalize_spec(request.spec), request.trials, request.base_seed);
    emit("OK id=" + hex16(id) + " trials=" + std::to_string(request.trials));
  };
  const CampaignOutcome outcome =
      engine_->execute(request, [&](const std::string& line) {
        header();
        emit(line);
      });
  switch (outcome.status) {
    case CampaignOutcome::Status::Ok:
      header();  // degenerate campaigns with no artifact lines still get OK
      emit("ENDARTIFACT");
      emit("STATS hits=" + std::to_string(outcome.cache_hits) +
           " misses=" + std::to_string(outcome.cache_misses) +
           " executed=" + std::to_string(outcome.executed));
      break;
    case CampaignOutcome::Status::Rejected:
      emit("REJECTED overloaded");
      break;
    case CampaignOutcome::Status::Error:
      emit("ERROR " + outcome.error);
      break;
  }
  emit("DONE");
}

std::string LineSession::handle_text(const std::string& request_text) {
  std::string response;
  const LineSink emit = [&](const std::string& line) {
    response += line;
    response += '\n';
  };
  std::size_t pos = 0;
  bool open = true;
  while (open && pos <= request_text.size()) {
    const auto nl = request_text.find('\n', pos);
    const std::string line =
        request_text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    open = consume_line(line, emit);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return response;
}

std::string format_campaign_request(const CampaignRequest& request) {
  std::string out = "CAMPAIGN trials=" + std::to_string(request.trials) +
                    " seed=" + std::to_string(request.base_seed) + "\n";
  out += request.spec;
  if (!out.empty() && out.back() != '\n') out += '\n';
  out += "END\n";
  return out;
}

}  // namespace rst::server
