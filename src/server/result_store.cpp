#include "rst/server/result_store.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace rst::server {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

std::uint64_t record_bytes(const std::string& value) {
  return 8 + 4 + static_cast<std::uint64_t>(value.size());
}

}  // namespace

ResultStore::ResultStore(std::string path) : path_{std::move(path)} {
  if (!path_.empty()) replay();
}

ResultStore::~ResultStore() = default;

const std::string* ResultStore::get(std::uint64_t key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second;
}

bool ResultStore::contains(std::uint64_t key) const { return index_.count(key) != 0; }

void ResultStore::put(std::uint64_t key, const std::string& value) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    index_.emplace(key, value);
  } else {
    // Superseded: the old record's segment bytes go dead until compact().
    live_bytes_ -= record_bytes(it->second);
    it->second = value;
  }
  live_bytes_ += record_bytes(value);
  append_record(key, value);
  appended_bytes_ += record_bytes(value);
}

void ResultStore::truncate_segment(std::uint64_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path_, size, ec);
  if (ec) {
    throw std::runtime_error{"ResultStore: cannot truncate torn tail of " + path_ + ": " +
                             ec.message()};
  }
}

void ResultStore::append_record(std::uint64_t key, const std::string& value) {
  if (path_.empty()) return;
  std::string rec;
  rec.reserve(12 + value.size());
  put_u64(rec, key);
  put_u32(rec, static_cast<std::uint32_t>(value.size()));
  rec += value;
  std::ofstream out{path_, std::ios::binary | std::ios::app};
  if (!out) throw std::runtime_error{"ResultStore: cannot append to " + path_};
  // A fresh file needs the header first; detect via current position.
  out.seekp(0, std::ios::end);
  if (out.tellp() == std::streampos{0}) out.write(kMagic, sizeof kMagic);
  out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  if (!out) throw std::runtime_error{"ResultStore: short write to " + path_};
}

void ResultStore::replay() {
  std::ifstream in{path_, std::ios::binary};
  if (!in) return;  // no segment yet — first put() creates it
  std::vector<char> data{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  if (data.empty()) return;
  const std::string_view magic{kMagic, sizeof kMagic};
  const std::string_view head{data.data(), std::min(data.size(), sizeof kMagic)};
  if (head != magic.substr(0, head.size())) {
    throw std::runtime_error{"ResultStore: " + path_ + " is not a result segment"};
  }
  if (data.size() < sizeof kMagic) {
    truncate_segment(0);  // crash mid-header: next append rewrites the magic
    return;
  }
  std::size_t pos = sizeof kMagic;
  while (pos + 12 <= data.size()) {
    const std::uint64_t key = get_u64(data.data() + pos);
    const std::uint32_t len = get_u32(data.data() + pos + 8);
    if (pos + 12 + len > data.size()) break;  // torn tail: truncated below
    std::string value{data.data() + pos + 12, len};
    const bool inserted = index_.insert_or_assign(key, std::move(value)).second;
    (void)inserted;
    pos += 12 + len;
    appended_bytes_ += 12 + len;
  }
  if (pos < data.size()) {
    // A torn final record must be cut from the file, not just skipped in the
    // index: append opens with ios::app, and new records written after the
    // partial bytes would misalign the parse on the next open.
    truncate_segment(pos);
  }
  live_bytes_ = 0;
  for (const auto& [k, v] : index_) {
    (void)k;
    live_bytes_ += record_bytes(v);
  }
}

std::uint64_t ResultStore::compact() {
  const std::uint64_t reclaimed =
      appended_bytes_ > live_bytes_ ? appended_bytes_ - live_bytes_ : 0;
  if (!path_.empty()) {
    const std::string tmp = path_ + ".compact";
    {
      std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
      if (!out) throw std::runtime_error{"ResultStore: cannot write " + tmp};
      out.write(kMagic, sizeof kMagic);
      for (const auto& [key, value] : index_) {
        std::string rec;
        put_u64(rec, key);
        put_u32(rec, static_cast<std::uint32_t>(value.size()));
        rec += value;
        out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
      }
      if (!out) throw std::runtime_error{"ResultStore: short write to " + tmp};
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error{"ResultStore: cannot replace " + path_};
    }
  }
  appended_bytes_ = live_bytes_;
  return reclaimed;
}

}  // namespace rst::server
