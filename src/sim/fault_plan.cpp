#include "rst/sim/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rst::sim {

namespace {

constexpr std::array<std::string_view, kFaultKindCount> kKindNames = {
    "radio-blackout", "radio-attenuation", "camera-freeze", "camera-drop",
    "yolo-miss",      "yolo-misclassify",  "yolo-confidence",
    "http-loss",      "http-stall",        "gnss-drift",     "node-down",
};

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kKindNames.size() ? kKindNames[i] : "unknown";
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == name) return static_cast<FaultKind>(i);
  }
  return std::nullopt;
}

FaultClause parse_fault_clause(const std::string& text) {
  // kind:target:start_ms:end_ms:severity — target is the only field that
  // may be empty ("" and "*" both mean every target of the kind).
  std::array<std::string, 5> fields;
  std::size_t field = 0;
  for (const char c : text) {
    if (c == ':') {
      if (++field >= fields.size()) {
        throw std::invalid_argument{"fault clause: too many fields in '" + text + "'"};
      }
    } else {
      fields[field] += c;
    }
  }
  if (field != fields.size() - 1) {
    throw std::invalid_argument{"fault clause: expected kind:target:start_ms:end_ms:severity, got '" +
                                text + "'"};
  }
  const auto kind = fault_kind_from_name(fields[0]);
  if (!kind) throw std::invalid_argument{"fault clause: unknown kind '" + fields[0] + "'"};

  const auto number = [&](const std::string& value, const char* what) {
    std::size_t consumed = 0;
    double v = 0;
    try {
      v = std::stod(value, &consumed);
    } catch (const std::exception&) {
      consumed = std::string::npos;
    }
    if (consumed != value.size()) {
      throw std::invalid_argument{std::string{"fault clause: bad "} + what + " '" + value + "'"};
    }
    return v;
  };
  FaultClause clause;
  clause.kind = *kind;
  clause.target = fields[1] == "*" ? std::string{} : fields[1];
  clause.start = SimTime::from_milliseconds(number(fields[2], "start"));
  clause.end = SimTime::from_milliseconds(number(fields[3], "end"));
  clause.severity = number(fields[4], "severity");
  if (clause.end < clause.start) {
    throw std::invalid_argument{"fault clause: window ends before it starts in '" + text + "'"};
  }
  return clause;
}

std::string format_fault_clause(const FaultClause& clause) {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%.*s:%s:%.17g:%.17g:%.17g",
                static_cast<int>(fault_kind_name(clause.kind).size()),
                fault_kind_name(clause.kind).data(), clause.target.c_str(),
                clause.start.to_milliseconds(), clause.end.to_milliseconds(), clause.severity);
  return buf;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::string out;
  for (const auto& clause : plan.clauses) {
    out += "fault = ";
    out += format_fault_clause(clause);
    out += '\n';
  }
  return out;
}

FaultInjector::FaultInjector(Scheduler& sched, RandomStream rng, FaultPlan plan, Trace* trace)
    : sched_{sched}, plan_{std::move(plan)}, trace_{trace} {
  streams_.reserve(kFaultKindCount);
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    streams_.push_back(
        rng.child(std::string{"fault."} + std::string{kKindNames[i]}));
  }
  // Every clause boundary becomes a typed span, so an activation and its
  // recovery are visible (and Perfetto-renderable) exactly like a pipeline
  // stage. Empty windows ([t, t)) never activate and emit nothing.
  for (std::size_t i = 0; i < plan_.clauses.size(); ++i) {
    const FaultClause& clause = plan_.clauses[i];
    if (clause.end <= clause.start) continue;
    const auto detail = static_cast<std::uint16_t>(clause.kind);
    sched_.post_at(clause.start, [this, i, detail, severity = clause.severity] {
      ++stats_.activations;
      if (trace_) {
        trace_->span_begin(sched_.now(), Stage::FaultWindow, 0, i, severity, detail);
      }
    });
    sched_.post_at(clause.end, [this, i, detail, severity = clause.severity] {
      ++stats_.recoveries;
      if (trace_) trace_->span_end(sched_.now(), Stage::FaultWindow, 0, i, severity, detail);
    });
  }
}

bool FaultInjector::matches(const FaultClause& clause, FaultKind kind, std::string_view target) {
  return clause.kind == kind && (clause.target.empty() || clause.target == target);
}

bool FaultInjector::active(FaultKind kind, std::string_view target) const {
  const SimTime now = sched_.now();
  for (const auto& clause : plan_.clauses) {
    if (matches(clause, kind, target) && clause.start <= now && now < clause.end) return true;
  }
  return false;
}

double FaultInjector::severity(FaultKind kind, std::string_view target) const {
  const SimTime now = sched_.now();
  double worst = 0.0;
  for (const auto& clause : plan_.clauses) {
    if (matches(clause, kind, target) && clause.start <= now && now < clause.end) {
      worst = std::max(worst, clause.severity);
    }
  }
  return worst;
}

double FaultInjector::radio_attenuation_db(std::string_view target) const {
  double db = severity(FaultKind::RadioAttenuation, target);
  if (active(FaultKind::RadioBlackout, target)) db = std::max(db, kRadioBlackoutDb);
  return db;
}

}  // namespace rst::sim
