#include "rst/sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rst::sim {

LatencyHistogram::LatencyHistogram(Options options) {
  const std::size_t n = std::max<std::size_t>(1, options.buckets);
  const double lo = std::max(1e-12, options.min);
  const double hi = std::max(lo * 1.0000001, options.max);
  edges_.reserve(n);
  const double ratio = std::log(hi / lo) / static_cast<double>(n);
  for (std::size_t i = 1; i <= n; ++i) {
    edges_.push_back(lo * std::exp(ratio * static_cast<double>(i)));
  }
  edges_.back() = hi;  // guard against rounding drift on the last edge
  counts_.assign(edges_.size() + 1, 0);
}

void LatencyHistogram::observe(double value) {
  if (count_ == 0) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  ++counts_[static_cast<std::size_t>(it - edges_.begin())];
}

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within the covering bucket; the overflow bucket and the
    // first bucket fall back to the observed extremes.
    const double lower = i == 0 ? std::min(min_seen_, edges_.front()) : edges_[i - 1];
    const double upper = i < edges_.size() ? edges_[i] : max_seen_;
    const double fraction =
        counts_[i] == 0 ? 0.0 : (target - before) / static_cast<double>(counts_[i]);
    const double v = lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    return std::clamp(v, min_seen_, max_seen_);
  }
  return max_seen_;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name, LatencyHistogram::Options options) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, LatencyHistogram{options}).first->second;
}

std::string MetricsRegistry::format() const {
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof line, "  %-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof line,
                  "  %-32s n=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f\n", name.c_str(),
                  static_cast<unsigned long long>(hist.count()), hist.mean(), hist.p50(),
                  hist.p95(), hist.p99(), hist.max_seen());
    out += line;
  }
  return out;
}

}  // namespace rst::sim
