#include "rst/sim/partitioned_scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace rst::sim {

namespace detail {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Pause-loop iterations before a worker parks on the condition variable
/// (tens of microseconds of spinning — several phase periods at city-scale
/// transmission rates, so back-to-back phases never pay a wake).
constexpr unsigned kSpinBudget = 1u << 14;

}  // namespace

WorkerTeam::WorkerTeam(unsigned participants) {
  if (participants == 0) participants = 1;
  workers_.reserve(participants - 1);
  for (unsigned member = 1; member < participants; ++member) {
    workers_.emplace_back([this, member] { worker_main(member); });
  }
}

WorkerTeam::~WorkerTeam() {
  stop_.store(true, std::memory_order_seq_cst);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    // Taking the mutex orders the notify after any in-flight park decision.
    std::lock_guard<std::mutex> lk{mu_};
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerTeam::execute_share(unsigned member) {
  const unsigned step = participants();
  try {
    for (unsigned i = member; i < width_; i += step) fn_(ctx_, i);
  } catch (...) {
    std::lock_guard<std::mutex> lk{error_mu_};
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void WorkerTeam::worker_main(unsigned member) {
  std::uint64_t seen = 0;
  for (;;) {
    unsigned spins = 0;
    while (epoch_.load(std::memory_order_seq_cst) == seen) {
      if (stop_.load(std::memory_order_seq_cst)) return;
      if (++spins < kSpinBudget) {
        cpu_relax();
        continue;
      }
      std::unique_lock<std::mutex> lk{mu_};
      sleeping_.fetch_add(1, std::memory_order_seq_cst);
      cv_.wait(lk, [&] {
        return epoch_.load(std::memory_order_seq_cst) != seen ||
               stop_.load(std::memory_order_seq_cst);
      });
      sleeping_.fetch_sub(1, std::memory_order_seq_cst);
    }
    if (stop_.load(std::memory_order_seq_cst)) return;
    seen = epoch_.load(std::memory_order_seq_cst);
    execute_share(member);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void WorkerTeam::run(unsigned width, PhaseFn fn, void* ctx) {
  if (workers_.empty()) {
    for (unsigned i = 0; i < width; ++i) fn(ctx, i);
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  width_ = width;
  // Every worker from the previous phase has already incremented done_
  // (run() waited for them), so resetting here cannot lose a count.
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Miss-free handshake: a worker that decided to park registered in
  // sleeping_ (seq_cst, under mu_) *before* its final epoch check. If that
  // check preceded our bump in the seq_cst order, our sleeping_ load below
  // comes after its registration and we notify; otherwise its wait
  // predicate already sees the new epoch and never blocks.
  if (sleeping_.load(std::memory_order_seq_cst) != 0) {
    {
      std::lock_guard<std::mutex> lk{mu_};
    }
    cv_.notify_all();
  }
  execute_share(0);
  const auto outstanding = static_cast<unsigned>(workers_.size());
  unsigned spins = 0;
  while (done_.load(std::memory_order_acquire) != outstanding) {
    if (++spins < kSpinBudget) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  // The acquire on done_ orders this unsynchronized peek after every
  // worker's (mutex-guarded) store.
  if (first_error_) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk{error_mu_};
      err = std::exchange(first_error_, nullptr);
    }
    std::rethrow_exception(err);
  }
}

}  // namespace detail

namespace {

/// Which (engine, partition) the calling thread is currently executing an
/// event for. Lets send()/post_*/local_now() know their execution context
/// without plumbing it through every callback signature.
struct TlsExec {
  const void* engine{nullptr};
  std::uint32_t partition{0};
};
thread_local TlsExec tls_exec;

constexpr std::uint32_t kNoPartition = UINT32_MAX;

}  // namespace

PartitionedScheduler::PartitionedScheduler(Config cfg) : lookahead_{cfg.lookahead} {
  if (cfg.partitions == 0) {
    throw std::invalid_argument{"PartitionedScheduler: partitions must be >= 1"};
  }
  if (lookahead_ <= SimTime::zero()) {
    throw std::invalid_argument{"PartitionedScheduler: lookahead must be positive"};
  }
  parts_.reserve(cfg.partitions);
  for (std::uint32_t i = 0; i < cfg.partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>());
  }
  unsigned threads = cfg.threads;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    threads = std::min<unsigned>(cfg.partitions, hw);
  }
  team_ = std::make_unique<detail::WorkerTeam>(threads);
}

PartitionedScheduler::~PartitionedScheduler() = default;

std::uint32_t PartitionedScheduler::executing_partition() const {
  return tls_exec.engine == this ? tls_exec.partition : kNoPartition;
}

SimTime PartitionedScheduler::local_now() const {
  const std::uint32_t cur = executing_partition();
  return cur == kNoPartition ? now_ : parts_[cur]->local_now;
}

PartitionedScheduler::Partition& PartitionedScheduler::checked_partition(std::uint32_t partition,
                                                                         SimTime when) {
  if (partition >= parts_.size()) {
    throw std::out_of_range{"PartitionedScheduler: partition index out of range"};
  }
  const std::uint32_t cur = executing_partition();
  if (in_window_ && cur != partition) {
    throw std::logic_error{
        "PartitionedScheduler: scheduling onto another partition from inside an "
        "event is a race; use send()"};
  }
  const SimTime floor = cur == partition ? parts_[partition]->local_now : now_;
  if (when < floor) {
    throw std::invalid_argument{"PartitionedScheduler: time in the past"};
  }
  return *parts_[partition];
}

EventHandle PartitionedScheduler::schedule_at(std::uint32_t partition, SimTime when, Callback cb) {
  Partition& part = checked_partition(partition, when);
  // Handle state comes from the global heap, not the queue's recycling
  // pool: a handle's last reference may drop on whichever thread executes
  // some other partition, and the pool free-list is single-owner.
  auto state = std::make_shared<EventHandle::State>();
  part.queue.push(when, std::move(cb), state);
  return EventHandle{std::move(state)};
}

void PartitionedScheduler::post_at(std::uint32_t partition, SimTime when, Callback cb) {
  Partition& part = checked_partition(partition, when);
  part.queue.push(when, std::move(cb), nullptr);
}

void PartitionedScheduler::post_in(std::uint32_t partition, SimTime delay, Callback cb) {
  const std::uint32_t cur = executing_partition();
  const SimTime base =
      cur == partition && partition < parts_.size() ? parts_[partition]->local_now : now_;
  post_at(partition, base + delay, std::move(cb));
}

void PartitionedScheduler::send_impl(std::uint32_t to, SimTime when, Callback&& cb,
                                     std::shared_ptr<EventHandle::State> state) {
  const std::uint32_t from = executing_partition();
  if (from == kNoPartition || !in_window_) {
    throw std::logic_error{
        "PartitionedScheduler::send: only legal from an executing event (use "
        "post_at outside the run loop)"};
  }
  if (to >= parts_.size()) {
    throw std::out_of_range{"PartitionedScheduler::send: partition index out of range"};
  }
  if (when < window_end_) {
    throw std::invalid_argument{
        "PartitionedScheduler::send: target time violates the conservative "
        "lookahead window"};
  }
  Partition& src = *parts_[from];
  src.outbox.push_back(Outgoing{when, from, to, src.out_seq++, std::move(cb), std::move(state)});
}

void PartitionedScheduler::send(std::uint32_t to, SimTime when, Callback cb) {
  send_impl(to, when, std::move(cb), nullptr);
}

EventHandle PartitionedScheduler::send_tracked(std::uint32_t to, SimTime when, Callback cb) {
  auto state = std::make_shared<EventHandle::State>();
  send_impl(to, when, std::move(cb), state);
  return EventHandle{std::move(state)};
}

void PartitionedScheduler::execute_partition_window(std::uint32_t pi, SimTime end,
                                                    SimTime deadline) {
  Partition& part = *parts_[pi];
  tls_exec = TlsExec{this, pi};
  for (;;) {
    part.queue.purge_cancelled_front();
    if (part.queue.empty()) break;
    const SimTime t = part.queue.front_time();
    if (t >= end || t > deadline) break;
    SimTime when;
    Callback cb;
    part.queue.pop(when, cb);
    part.local_now = when;
    ++part.executed;
    cb();
  }
  tls_exec = TlsExec{};
}

void PartitionedScheduler::drain_outboxes() {
  merge_scratch_.clear();
  for (auto& p : parts_) {
    for (auto& msg : p->outbox) merge_scratch_.push_back(std::move(msg));
    p->outbox.clear();
  }
  if (merge_scratch_.empty()) return;
  // (when, source partition, send seq) is unique per message, so this total
  // order — and therefore the destination queues' pop order — is
  // independent of which thread ran which partition.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Outgoing& a, const Outgoing& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (auto& msg : merge_scratch_) {
    parts_[msg.to]->queue.push(msg.when, std::move(msg.cb), std::move(msg.state));
    ++messages_;
  }
  merge_scratch_.clear();
}

std::size_t PartitionedScheduler::run_windows(SimTime deadline, std::size_t limit) {
  std::size_t total = 0;
  while (total < limit) {
    SimTime floor = SimTime::max();
    bool any = false;
    for (auto& p : parts_) {
      p->queue.purge_cancelled_front();
      if (!p->queue.empty()) {
        any = true;
        floor = std::min(floor, p->queue.front_time());
      }
    }
    if (!any || floor > deadline) break;
    const SimTime end =
        floor > SimTime::max() - lookahead_ ? SimTime::max() : floor + lookahead_;
    window_end_ = end;
    in_window_ = true;
    std::uint64_t before = 0;
    for (auto& p : parts_) before += p->executed;
    const auto width = static_cast<unsigned>(parts_.size());
    try {
      team_->run_phase(width,
                       [&](unsigned pi) { execute_partition_window(pi, end, deadline); });
    } catch (...) {
      in_window_ = false;
      throw;
    }
    in_window_ = false;
    drain_outboxes();
    std::uint64_t after = 0;
    for (auto& p : parts_) after += p->executed;
    total += static_cast<std::size_t>(after - before);
    ++windows_;
    now_ = std::min(end, deadline);
  }
  return total;
}

std::size_t PartitionedScheduler::run(std::size_t limit) {
  return run_windows(SimTime::max(), limit);
}

std::size_t PartitionedScheduler::run_until(SimTime deadline) {
  const std::size_t n = run_windows(deadline, SIZE_MAX);
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t PartitionedScheduler::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p->executed;
  return total;
}

std::size_t PartitionedScheduler::pending_events() const {
  std::size_t total = 0;
  for (const auto& p : parts_) total += p->queue.size();
  return total;
}

}  // namespace rst::sim
