#include "rst/sim/random.hpp"

#include <cmath>
#include <stdexcept>

namespace rst::sim {

std::uint64_t stable_hash(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
// splitmix64 finalizer: decorrelates seed material before feeding mt19937_64.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

RandomStream::RandomStream(std::uint64_t root_seed, std::string_view name)
    : RandomStream{root_seed, mix(root_seed ^ stable_hash(name))} {}

RandomStream::RandomStream(std::uint64_t root_seed, std::uint64_t derived)
    : root_seed_{root_seed}, derived_seed_{derived}, engine_{derived} {}

RandomStream RandomStream::child(std::string_view name) const {
  return RandomStream{root_seed_, mix(derived_seed_ ^ stable_hash(name))};
}

CounterStream RandomStream::counter_child(std::uint64_t key) const {
  return CounterStream{mix(derived_seed_ ^ mix(key))};
}

std::uint64_t CounterStream::next_u64() { return mix(base_ + ++counter_ * 0x9e3779b97f4a7c15ULL); }

double CounterStream::uniform01() {
  // 53 high bits -> double in [0, 1), the standard bit-twiddle.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double CounterStream::normal(double mean, double stddev) {
  // Box-Muller; one value per call keeps the draw count deterministic.
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double CounterStream::gamma(double shape, double scale) {
  // Marsaglia-Tsang squeeze; the shape < 1 boost uses the alpha+1 trick.
  if (shape < 1.0) {
    const double u = uniform01();
    return gamma(shape + 1.0, scale) * std::pow(u > 0 ? u : 0x1.0p-53, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    const double x = normal(0.0, 1.0);
    const double v_cbrt = 1.0 + c * x;
    if (v_cbrt <= 0.0) continue;
    const double v = v_cbrt * v_cbrt * v_cbrt;
    const double u = uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u > 0 ? u : 0x1.0p-53) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool CounterStream::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform01() < p;
}

double RandomStream::uniform01() {
  return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double RandomStream::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument{"RandomStream::uniform: hi < lo"};
  return lo + (hi - lo) * uniform01();
}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument{"RandomStream::uniform_int: hi < lo"};
  return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
}

double RandomStream::normal(double mean, double stddev) {
  return std::normal_distribution<double>{mean, stddev}(engine_);
}

double RandomStream::normal_min(double mean, double stddev, double lo) {
  for (int i = 0; i < 1000; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo) return v;
  }
  return lo;  // pathological parameters: clamp rather than spin forever
}

double RandomStream::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

double RandomStream::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument{"RandomStream::exponential: mean <= 0"};
  return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

bool RandomStream::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform01() < p;
}

double RandomStream::gamma(double shape, double scale) {
  return std::gamma_distribution<double>{shape, scale}(engine_);
}

SimTime RandomStream::uniform_time(SimTime lo, SimTime hi) {
  return SimTime::nanoseconds(uniform_int(lo.count_ns(), hi.count_ns()));
}

SimTime RandomStream::normal_time(SimTime mean, SimTime stddev, SimTime min) {
  const double v = normal_min(static_cast<double>(mean.count_ns()),
                              static_cast<double>(stddev.count_ns()),
                              static_cast<double>(min.count_ns()));
  return SimTime::nanoseconds(static_cast<std::int64_t>(v));
}

}  // namespace rst::sim
