#include "rst/sim/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace rst::sim {

std::string SimTime::to_string() const {
  char buf[64];
  const double ms = to_milliseconds();
  std::snprintf(buf, sizeof buf, "%.3fms", ms);
  return buf;
}

namespace detail {

void* EventStatePool::allocate(std::size_t n) {
  // Round up so recycled nodes can hold the free-list link and stay
  // suitably aligned for the shared_ptr control block they back.
  const std::size_t want =
      (std::max(n, sizeof(Node)) + alignof(std::max_align_t) - 1) &
      ~(alignof(std::max_align_t) - 1);
  if (node_size_ == 0) node_size_ = want;
  if (want > node_size_) return ::operator new(n);  // unexpected size: bypass
  if (!free_) {
    auto slab = std::make_unique<std::byte[]>(node_size_ * kSlabNodes);
    std::byte* base = slab.get();
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      auto* node = reinterpret_cast<Node*>(base + i * node_size_);
      node->next = free_;
      free_ = node;
    }
    slabs_.push_back(std::move(slab));
  }
  Node* node = free_;
  free_ = node->next;
  return node;
}

void EventStatePool::deallocate(void* p, std::size_t n) noexcept {
  const std::size_t want =
      (std::max(n, sizeof(Node)) + alignof(std::max_align_t) - 1) &
      ~(alignof(std::max_align_t) - 1);
  if (want > node_size_) {
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<Node*>(p);
  node->next = free_;
  free_ = node;
}

EventQueue::EventQueue() : pool_{std::make_shared<EventStatePool>()} {}

EventQueue::~EventQueue() = default;

std::shared_ptr<EventHandle::State> EventQueue::make_state() {
  return std::allocate_shared<EventHandle::State>(PoolAllocator<EventHandle::State>{pool_});
}

EventQueue::Slot* EventQueue::acquire_slot(Callback&& cb,
                                           std::shared_ptr<EventHandle::State>&& state) {
  if (!free_slots_) {
    auto slab = std::make_unique<Slot[]>(kSlotSlab);
    for (std::size_t i = 0; i < kSlotSlab; ++i) {
      slab[i].next_free = free_slots_;
      free_slots_ = &slab[i];
    }
    slot_slabs_.push_back(std::move(slab));
  }
  Slot* s = free_slots_;
  free_slots_ = s->next_free;
  s->cb = std::move(cb);
  s->state = std::move(state);
  return s;
}

void EventQueue::release_slot(Slot* s) noexcept {
  s->cb = Callback{};
  s->state.reset();
  s->next_free = free_slots_;
  free_slots_ = s;
}

void EventQueue::push(SimTime when, Callback&& cb, std::shared_ptr<EventHandle::State> state) {
  Slot* slot = acquire_slot(std::move(cb), std::move(state));
  heap_.push_back(Entry{when, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  purge_cancelled_front();  // keep dead entries from lingering ahead of live ones
}

void EventQueue::purge_cancelled_front() {
  while (!heap_.empty()) {
    Slot* s = heap_.front().slot;
    if (!s->state || !s->state->cancelled.load(std::memory_order_relaxed)) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    release_slot(s);
    ++purged_;
  }
}

bool EventQueue::pop(SimTime& when, Callback& cb) {
  purge_cancelled_front();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  when = entry.when;
  Slot* s = entry.slot;
  if (s->state) s->state->fired.store(true, std::memory_order_relaxed);
  // Move the callback out and recycle the slot before invoking, so a
  // callback that reschedules can reuse it immediately.
  cb = std::move(s->cb);
  release_slot(s);
  return true;
}

}  // namespace detail

void EventHandle::cancel() {
  if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled.load(std::memory_order_relaxed) &&
         !state_->fired.load(std::memory_order_relaxed);
}

Scheduler::Scheduler() = default;

void Scheduler::check_not_past(SimTime when) const {
  if (when < now_) throw std::invalid_argument{"Scheduler::schedule_at: time in the past"};
}

EventHandle Scheduler::schedule_at(SimTime when, Callback cb) {
  auto state = queue_.make_state();
  check_not_past(when);
  queue_.push(when, std::move(cb), state);
  return EventHandle{std::move(state)};
}

EventHandle Scheduler::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::post_at(SimTime when, Callback cb) {
  check_not_past(when);
  queue_.push(when, std::move(cb), nullptr);
}

void Scheduler::post_in(SimTime delay, Callback cb) {
  check_not_past(now_ + delay);
  queue_.push(now_ + delay, std::move(cb), nullptr);
}

bool Scheduler::step() {
  SimTime when;
  Callback cb;
  if (!queue_.pop(when, cb)) return false;
  now_ = when;
  ++executed_;
  cb();
  return true;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t n = 0;
  for (;;) {
    queue_.purge_cancelled_front();
    if (queue_.empty() || queue_.front_time() > deadline) break;
    step();  // the front is live here, so step() pops it without rescanning
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rst::sim
