#include "rst/sim/scheduler.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace rst::sim {

std::string SimTime::to_string() const {
  char buf[64];
  const double ms = to_milliseconds();
  std::snprintf(buf, sizeof buf, "%.3fms", ms);
  return buf;
}

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Scheduler::schedule_at(SimTime when, Callback cb) {
  if (when < now_) throw std::invalid_argument{"Scheduler::schedule_at: time in the past"};
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(cb), state});
  return EventHandle{std::move(state)};
}

EventHandle Scheduler::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast on the known
    // unique top entry, then pop — standard idiom to avoid copying the
    // callback state.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.state->cancelled) continue;
    now_ = entry.when;
    entry.state->fired = true;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rst::sim
