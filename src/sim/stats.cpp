#include "rst/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <stdexcept>

namespace rst::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::population_variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Edf::Edf(std::vector<double> samples) : samples_{std::move(samples)} {
  std::sort(samples_.begin(), samples_.end());
}

double Edf::at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Edf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error{"Edf::quantile on empty sample set"};
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double Edf::fraction_in(double lo, double hi) const {
  if (samples_.empty()) return 0.0;
  const auto a = std::lower_bound(samples_.begin(), samples_.end(), lo);
  const auto b = std::upper_bound(samples_.begin(), samples_.end(), hi);
  return static_cast<double>(b - a) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Edf::steps() const {
  std::vector<std::pair<double, double>> out;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i + 1 < samples_.size() && samples_[i + 1] == samples_[i]) continue;
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(samples_.size()));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument{"Histogram: bad range/bins"};
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "[%8.2f,%8.2f) %6zu |", bin_lo(i), bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples, double confidence,
                                     int resamples, std::uint64_t seed) {
  if (samples.size() < 2) throw std::invalid_argument{"bootstrap_mean_ci: need >= 2 samples"};
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument{"bootstrap_mean_ci: confidence must be in (0, 1)"};
  }
  std::mt19937_64 engine{seed};
  std::uniform_int_distribution<std::size_t> pick{0, samples.size() - 1};

  double sum = 0;
  for (double x : samples) sum += x;
  const auto n = static_cast<double>(samples.size());

  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double s = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) s += samples[pick(engine)];
    means.push_back(s / n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto lo = static_cast<std::size_t>(alpha * (means.size() - 1));
  const auto hi = static_cast<std::size_t>((1.0 - alpha) * (means.size() - 1));
  return {means[lo], means[hi], sum / n};
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double gamma_p(double a, double x) {
  if (x <= 0 || a <= 0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion.
    double sum = 1.0 / a;
    double term = sum;
    for (int n = 1; n < 500; ++n) {
      term *= x / (a + n);
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q(a, x), Lentz's method.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double DistributionFit::cdf(double x) const {
  if (family == "normal") {
    return p2 > 0 ? normal_cdf((x - p1) / p2) : (x >= p1 ? 1.0 : 0.0);
  }
  if (family == "lognormal") {
    if (x <= 0) return 0.0;
    return p2 > 0 ? normal_cdf((std::log(x) - p1) / p2) : (std::log(x) >= p1 ? 1.0 : 0.0);
  }
  if (family == "gamma") {
    return x <= 0 ? 0.0 : gamma_p(p1, x / p2);
  }
  if (family == "shifted-exponential") {
    return x <= p1 ? 0.0 : 1.0 - std::exp(-(x - p1) / p2);
  }
  throw std::logic_error{"DistributionFit::cdf: unknown family " + family};
}

namespace {
double ks_stat(const std::vector<double>& sorted, const DistributionFit& fit) {
  const auto n = static_cast<double>(sorted.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = fit.cdf(sorted[i]);
    worst = std::max(worst, std::abs(f - static_cast<double>(i) / n));
    worst = std::max(worst, std::abs(static_cast<double>(i + 1) / n - f));
  }
  return worst;
}
}  // namespace

std::vector<DistributionFit> fit_distributions(const std::vector<double>& samples) {
  if (samples.size() < 2) throw std::invalid_argument{"fit_distributions: need >= 2 samples"};
  RunningStats s;
  for (double x : samples) s.add(x);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  std::vector<DistributionFit> fits;
  fits.push_back({.family = "normal", .p1 = s.mean(), .p2 = s.stddev(), .ks_statistic = 0});

  if (sorted.front() > 0) {
    RunningStats logs;
    for (double x : samples) logs.add(std::log(x));
    fits.push_back({.family = "lognormal", .p1 = logs.mean(), .p2 = logs.stddev(), .ks_statistic = 0});
    if (s.variance() > 0) {
      const double shape = s.mean() * s.mean() / s.variance();
      const double scale = s.variance() / s.mean();
      fits.push_back({.family = "gamma", .p1 = shape, .p2 = scale, .ks_statistic = 0});
    }
  }
  // Shift just below the minimum so the min sample has non-zero density.
  const double shift = sorted.front() - (s.mean() - sorted.front()) / static_cast<double>(sorted.size());
  const double rate_mean = s.mean() - shift;
  if (rate_mean > 0) {
    fits.push_back({.family = "shifted-exponential", .p1 = shift, .p2 = rate_mean, .ks_statistic = 0});
  }

  for (auto& f : fits) f.ks_statistic = ks_stat(sorted, f);
  std::sort(fits.begin(), fits.end(),
            [](const DistributionFit& a, const DistributionFit& b) { return a.ks_statistic < b.ks_statistic; });
  return fits;
}

}  // namespace rst::sim
