#include "rst/sim/trace.hpp"

#include <algorithm>
#include <cinttypes>

#include "rst/sim/fault_plan.hpp"

namespace rst::sim {

std::string_view stage_name(Stage stage) {
  switch (stage) {
    case Stage::CameraFrame: return "CameraFrame";
    case Stage::YoloDetection: return "YoloDetection";
    case Stage::HazardDecision: return "HazardDecision";
    case Stage::TriggerDenm: return "TriggerDenm";
    case Stage::DenmTx: return "DenmTx";
    case Stage::DenmRx: return "DenmRx";
    case Stage::KafForward: return "KafForward";
    case Stage::GnForward: return "GnForward";
    case Stage::DenmPoll: return "DenmPoll";
    case Stage::DenmFetch: return "DenmFetch";
    case Stage::InboxDrop: return "InboxDrop";
    case Stage::EmergencyStop: return "EmergencyStop";
    case Stage::PowerCutCommand: return "PowerCutCommand";
    case Stage::PowerCutApplied: return "PowerCutApplied";
    case Stage::CamTx: return "CamTx";
    case Stage::CamRx: return "CamRx";
    case Stage::ModemDenmRx: return "ModemDenmRx";
    case Stage::AebTrigger: return "AebTrigger";
    case Stage::FaultWindow: return "FaultWindow";
    case Stage::WatchdogDegraded: return "WatchdogDegraded";
    case Stage::WatchdogRecovered: return "WatchdogRecovered";
    case Stage::CampaignAdmitted: return "CampaignAdmitted";
    case Stage::CampaignRejected: return "CampaignRejected";
    case Stage::CampaignTrial: return "CampaignTrial";
    case Stage::StoreCompaction: return "StoreCompaction";
    case Stage::CpmTx: return "CpmTx";
    case Stage::CpmRx: return "CpmRx";
    case Stage::CpmFusion: return "CpmFusion";
  }
  return "Unknown";
}

namespace {

/// Renders a typed event into its legacy component/message form. Buffers
/// are caller-provided so the echo path stays allocation-free; the merged
/// compatibility view copies them into strings (cold path only).
void render_event(const TraceEvent& ev, char (&component)[32], char (&message)[160]) {
  const auto action = [&](char* out, std::size_t n, const char* verb) {
    std::snprintf(out, n, "DENM %s action=%" PRIu32 "/%" PRIu16 "%s", verb,
                  action_station(ev.a), action_sequence(ev.a),
                  (ev.detail & kDenmTermination) != 0 ? " termination" : "");
  };
  switch (ev.stage) {
    case Stage::CameraFrame:
      std::snprintf(component, sizeof component, "object_detection");
      std::snprintf(message, sizeof message, "frame %" PRIu64 " %s", ev.a,
                    ev.phase == Phase::End ? "processed" : "captured");
      break;
    case Stage::YoloDetection:
      std::snprintf(component, sizeof component, "object_detection");
      std::snprintf(message, sizeof message, "YOLO output: %" PRIu64 " object(s), nearest at %f m",
                    ev.a, ev.value);
      break;
    case Stage::HazardDecision:
      std::snprintf(component, sizeof component, "hazard_service");
      if (ev.detail == kHazardActionPoint) {
        std::snprintf(message, sizeof message, "action point crossed: object %" PRIu64 " at %f m",
                      ev.a, ev.value);
      } else {
        std::snprintf(message, sizeof message,
                      "collision predicted: %s %" PRIu64 " vs station %" PRIu64 " in %f s",
                      ev.detail == kHazardCpaStation ? "station" : "object", ev.a >> 32,
                      ev.a & 0xffffffffu, ev.value);
      }
      break;
    case Stage::TriggerDenm:
      std::snprintf(component, sizeof component, "hazard_service");
      std::snprintf(message, sizeof message, "trigger_denm %s",
                    ev.detail == kTriggerFailed ? "failed" : "requested");
      break;
    case Stage::DenmTx:
      std::snprintf(component, sizeof component, "den.%" PRIu32, ev.station);
      action(message, sizeof message, "sent");
      break;
    case Stage::DenmRx:
      std::snprintf(component, sizeof component, "den.%" PRIu32, ev.station);
      action(message, sizeof message, "received");
      break;
    case Stage::KafForward:
      std::snprintf(component, sizeof component, "den.%" PRIu32, ev.station);
      action(message, sizeof message, "keep-alive forwarded");
      break;
    case Stage::GnForward:
      std::snprintf(component, sizeof component, "gn.%" PRIu32, ev.station);
      std::snprintf(message, sizeof message, "packet forwarded seq=%" PRIu64, ev.a);
      break;
    case Stage::DenmPoll:
      std::snprintf(component, sizeof component, "msg_handler");
      std::snprintf(message, sizeof message, "request_denm %s #%" PRIu64,
                    ev.phase == Phase::End ? "response" : "poll", ev.a);
      break;
    case Stage::DenmFetch:
      std::snprintf(component, sizeof component, "msg_handler");
      action(message, sizeof message, "fetched");
      break;
    case Stage::InboxDrop:
      std::snprintf(component, sizeof component, "openc2x.%" PRIu32, ev.station);
      action(message, sizeof message, "dropped (inbox full):");
      break;
    case Stage::EmergencyStop:
      std::snprintf(component, sizeof component, "planner");
      std::snprintf(message, sizeof message, "emergency stop");
      break;
    case Stage::PowerCutCommand:
      std::snprintf(component, sizeof component, "control");
      std::snprintf(message, sizeof message, "power cut commanded wall=%.3fms",
                    static_cast<double>(static_cast<std::int64_t>(ev.a)) * 1e-6);
      break;
    case Stage::PowerCutApplied:
      std::snprintf(component, sizeof component, "control");
      std::snprintf(message, sizeof message, "power cut applied");
      break;
    case Stage::CamTx:
      std::snprintf(component, sizeof component, "ca.%" PRIu32, ev.station);
      std::snprintf(message, sizeof message, "CAM sent gdt=%" PRIu64, ev.a);
      break;
    case Stage::CamRx:
      std::snprintf(component, sizeof component, "ca.%" PRIu32, ev.station);
      std::snprintf(message, sizeof message, "CAM received from %" PRIu64, ev.a);
      break;
    case Stage::ModemDenmRx:
      std::snprintf(component, sizeof component, "modem");
      action(message, sizeof message, "received");
      break;
    case Stage::AebTrigger:
      std::snprintf(component, sizeof component, "aeb");
      std::snprintf(message, sizeof message, "AEB triggered: obstacle at %f m", ev.value);
      break;
    case Stage::FaultWindow:
      std::snprintf(component, sizeof component, "fault_injector");
      std::snprintf(message, sizeof message, "fault %.*s clause %" PRIu64 " %s severity=%g",
                    static_cast<int>(fault_kind_name(static_cast<FaultKind>(ev.detail)).size()),
                    fault_kind_name(static_cast<FaultKind>(ev.detail)).data(), ev.a,
                    ev.phase == Phase::End ? "recovered" : "active", ev.value);
      break;
    case Stage::WatchdogDegraded:
      std::snprintf(component, sizeof component, "msg_handler");
      std::snprintf(message, sizeof message,
                    "watchdog: infrastructure contact lost, failsafe engaged");
      break;
    case Stage::WatchdogRecovered:
      std::snprintf(component, sizeof component, "msg_handler");
      std::snprintf(message, sizeof message, "watchdog: infrastructure contact restored");
      break;
    case Stage::CampaignAdmitted:
      std::snprintf(component, sizeof component, "campaign_engine");
      std::snprintf(message, sizeof message, "campaign %016" PRIx64 " admitted, queue depth %g",
                    ev.a, ev.value);
      break;
    case Stage::CampaignRejected:
      std::snprintf(component, sizeof component, "campaign_engine");
      std::snprintf(message, sizeof message, "campaign %016" PRIx64 " %s", ev.a,
                    ev.detail == kCampaignRejectedDropOldest ? "dropped (oldest shed)"
                                                             : "rejected (queue full)");
      break;
    case Stage::CampaignTrial:
      std::snprintf(component, sizeof component, "campaign_engine");
      std::snprintf(message, sizeof message, "trial key %016" PRIx64 " cache %s", ev.a,
                    ev.detail == kCampaignTrialHit ? "hit" : "miss");
      break;
    case Stage::StoreCompaction:
      std::snprintf(component, sizeof component, "result_store");
      std::snprintf(message, sizeof message, "compaction reclaimed %g byte(s), %" PRIu64
                    " live record(s)", ev.value, ev.a);
      break;
  }
}

}  // namespace

void Trace::push_event(SimTime when, Stage stage, Phase phase, std::uint32_t station,
                       std::uint64_t a, double value, std::uint16_t detail) {
  if (events_.capacity() == 0 && event_capacity_ > 0) events_.reserve(event_capacity_);
  if (events_.size() >= event_capacity_) {
    ++events_dropped_;
    return;
  }
  TraceEvent ev;
  ev.when = when;
  ev.a = a;
  ev.value = value;
  ev.seq = next_seq_++;
  ev.station = station;
  ev.detail = detail;
  ev.stage = stage;
  ev.phase = phase;
  events_.push_back(ev);
  merged_dirty_ = true;
  if (echo_) {
    char component[32];
    char message[160];
    render_event(ev, component, message);
    std::fprintf(stderr, "[%12.3f ms] %-28s %s\n", when.to_milliseconds(), component, message);
  }
}

const TraceEvent* Trace::find_event(Stage stage, SimTime from) const {
  for (const auto& ev : events_) {
    if (ev.when >= from && ev.stage == stage) return &ev;
  }
  return nullptr;
}

const TraceEvent* Trace::find_event(Stage stage, SimTime from, std::uint32_t station) const {
  for (const auto& ev : events_) {
    if (ev.when >= from && ev.stage == stage && ev.station == station) return &ev;
  }
  return nullptr;
}

std::vector<const TraceEvent*> Trace::find_all_events(Stage stage) const {
  std::vector<const TraceEvent*> out;
  for (const auto& ev : events_) {
    if (ev.stage == stage) out.push_back(&ev);
  }
  return out;
}

void Trace::record(SimTime when, std::string_view component, std::string_view message) {
  if (echo_) {
    std::fprintf(stderr, "[%12.3f ms] %-28.*s %.*s\n", when.to_milliseconds(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }
  records_.push_back({when, std::string{component}, std::string{message}});
  record_seqs_.push_back(next_seq_++);
  merged_dirty_ = true;
}

const std::vector<TraceRecord>& Trace::merged() const {
  // Fast path: no typed events recorded — the legacy vector IS the view.
  if (events_.empty()) return records_;
  if (!merged_dirty_ && merged_.size() == events_.size() + records_.size()) return merged_;

  struct Entry {
    std::uint32_t seq;
    TraceRecord rec;
  };
  std::vector<Entry> entries;
  entries.reserve(events_.size() + records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    entries.push_back({record_seqs_[i], records_[i]});
  }
  char component[32];
  char message[160];
  for (const auto& ev : events_) {
    render_event(ev, component, message);
    entries.push_back({ev.seq, {ev.when, component, message}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  merged_.clear();
  merged_.reserve(entries.size());
  for (auto& e : entries) merged_.push_back(std::move(e.rec));
  merged_dirty_ = false;
  return merged_;
}

const std::vector<TraceRecord>& Trace::records() const { return merged(); }

void Trace::clear() {
  events_.clear();
  events_dropped_ = 0;
  next_seq_ = 0;
  records_.clear();
  record_seqs_.clear();
  merged_.clear();
  merged_dirty_ = false;
}

const TraceRecord* Trace::find(std::string_view component_substr, std::string_view message_substr,
                               SimTime from) const {
  for (const auto& r : merged()) {
    if (r.when < from) continue;
    if (r.component.find(component_substr) == std::string::npos) continue;
    if (r.message.find(message_substr) == std::string::npos) continue;
    return &r;
  }
  return nullptr;
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

std::string Trace::to_csv() const {
  std::string out = "time_ms,component,message\n";
  char buf[64];
  for (const auto& r : merged()) {
    std::snprintf(buf, sizeof buf, "%.6f,", r.when.to_milliseconds());
    out += buf;
    out += csv_escape(r.component);
    out += ',';
    out += csv_escape(r.message);
    out += '\n';
  }
  return out;
}

std::string Trace::to_chrome_trace_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[320];
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const auto& ev : events_) {
    sep();
    const std::string_view name = stage_name(ev.stage);
    if (ev.phase == Phase::Instant) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%.*s\",\"cat\":\"rst\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,"
                    "\"pid\":0,\"tid\":%" PRIu32 ",\"args\":{\"a\":%" PRIu64
                    ",\"value\":%g,\"detail\":%" PRIu16 "}}",
                    static_cast<int>(name.size()), name.data(), ev.when.to_microseconds(),
                    ev.station, ev.a, ev.value, ev.detail);
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%.*s\",\"cat\":\"rst\",\"ph\":\"%c\",\"id\":%" PRIu64
                    ",\"ts\":%.3f,\"pid\":0,\"tid\":%" PRIu32 ",\"args\":{\"value\":%g,"
                    "\"detail\":%" PRIu16 "}}",
                    static_cast<int>(name.size()), name.data(),
                    ev.phase == Phase::Begin ? 'b' : 'e', ev.a, ev.when.to_microseconds(),
                    ev.station, ev.value, ev.detail);
    }
    out += buf;
  }
  for (const auto& r : records_) {
    sep();
    out += "{\"name\":\"";
    json_escape_into(out, r.component);
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"legacy\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":0,"
                  "\"tid\":0,\"args\":{\"message\":\"",
                  r.when.to_milliseconds() * 1000.0);
    out += buf;
    json_escape_into(out, r.message);
    out += "\"}}";
  }
  out += "]}";
  return out;
}

std::vector<const TraceRecord*> Trace::find_all(std::string_view component_substr,
                                                std::string_view message_substr) const {
  std::vector<const TraceRecord*> out;
  for (const auto& r : merged()) {
    if (r.component.find(component_substr) == std::string::npos) continue;
    if (r.message.find(message_substr) == std::string::npos) continue;
    out.push_back(&r);
  }
  return out;
}

}  // namespace rst::sim
