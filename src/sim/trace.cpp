#include "rst/sim/trace.hpp"

namespace rst::sim {

void Trace::record(SimTime when, std::string_view component, std::string_view message) {
  if (echo_) {
    std::fprintf(stderr, "[%12.3f ms] %-28.*s %.*s\n", when.to_milliseconds(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }
  records_.push_back({when, std::string{component}, std::string{message}});
}

const TraceRecord* Trace::find(std::string_view component_substr, std::string_view message_substr,
                               SimTime from) const {
  for (const auto& r : records_) {
    if (r.when < from) continue;
    if (r.component.find(component_substr) == std::string::npos) continue;
    if (r.message.find(message_substr) == std::string::npos) continue;
    return &r;
  }
  return nullptr;
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Trace::to_csv() const {
  std::string out = "time_ms,component,message\n";
  char buf[64];
  for (const auto& r : records_) {
    std::snprintf(buf, sizeof buf, "%.6f,", r.when.to_milliseconds());
    out += buf;
    out += csv_escape(r.component);
    out += ',';
    out += csv_escape(r.message);
    out += '\n';
  }
  return out;
}

std::vector<const TraceRecord*> Trace::find_all(std::string_view component_substr,
                                                std::string_view message_substr) const {
  std::vector<const TraceRecord*> out;
  for (const auto& r : records_) {
    if (r.component.find(component_substr) == std::string::npos) continue;
    if (r.message.find(message_substr) == std::string::npos) continue;
    out.push_back(&r);
  }
  return out;
}

}  // namespace rst::sim
