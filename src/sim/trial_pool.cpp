#include "rst/sim/trial_pool.hpp"

namespace rst::sim {

TrialPool::TrialPool(unsigned threads) {
  unsigned n = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TrialPool::~TrialPool() {
  {
    std::lock_guard lk{mu_};
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void TrialPool::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock lk{mu_};
  batch_fn_ = &fn;
  batch_n_ = n;
  next_index_ = 0;
  completed_ = 0;
  first_error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return completed_ == batch_n_; });
  batch_fn_ = nullptr;
  const std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  lk.unlock();
  if (error) std::rethrow_exception(error);
}

void TrialPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock lk{mu_};
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    const std::function<void(std::size_t)>* fn = batch_fn_;
    // A new batch can only start after this one fully drains (run_indexed
    // blocks on completed_ == batch_n_), so while tasks remain, fn and the
    // batch fields belong to generation `seen_generation`.
    while (generation_ == seen_generation && next_index_ < batch_n_) {
      const std::size_t index = next_index_++;
      lk.unlock();
      std::exception_ptr error;
      try {
        (*fn)(index);
      } catch (...) {
        error = std::current_exception();
      }
      lk.lock();
      if (error && !first_error_) first_error_ = error;
      if (++completed_ == batch_n_) cv_done_.notify_all();
    }
  }
}

}  // namespace rst::sim
