#include "rst/vehicle/cacc.hpp"

#include <algorithm>

namespace rst::vehicle {

CaccController::CaccController(sim::Scheduler& sched, VehicleDynamics& dynamics, Config config,
                               sim::Trace* trace, std::string name)
    : sched_{sched},
      dynamics_{dynamics},
      config_{config},
      trace_{trace},
      name_{std::move(name)} {}

CaccController::~CaccController() { timer_.cancel(); }

void CaccController::start() {
  if (running_) return;
  running_ = true;
  timer_ = sched_.schedule_in(config_.control_period, [this] { tick(); });
}

void CaccController::stop() {
  running_ = false;
  timer_.cancel();
}

void CaccController::on_leader_cam(const its::Cam& cam, geo::Vec2 leader_position) {
  LeaderState state;
  state.position = leader_position;
  state.speed_mps = cam.high_frequency.speed.to_mps();
  state.stamp = sched_.now();
  leader_ = state;
}

bool CaccController::leader_valid() const {
  return leader_ && sched_.now() - leader_->stamp <= config_.leader_timeout;
}

double CaccController::current_gap_m() const {
  if (!leader_) return 0.0;
  // Straight-lane platoon: the gap is the along-track distance minus the
  // predecessor's body length.
  return geo::distance(leader_->position, dynamics_.position()) -
         dynamics_.params().length_m;
}

void CaccController::tick() {
  if (!running_) return;
  timer_ = sched_.schedule_in(config_.control_period, [this] { tick(); });
  if (dynamics_.power_cut()) {
    stop();  // emergency latched: never reapply throttle
    return;
  }
  ++updates_;

  if (!leader_valid()) {
    // Fail-safe degradation: no fresh awareness, coast.
    dynamics_.set_throttle(0.0);
    return;
  }

  const double gap = current_gap_m();
  const double desired = config_.standstill_gap_m + config_.headway_s * dynamics_.speed_mps();
  const double gap_error = gap - desired;
  const double speed_error = leader_->speed_mps - dynamics_.speed_mps();
  const double command = config_.cruise_throttle + config_.gap_gain * gap_error * 0.1 +
                         config_.speed_gain * speed_error;
  dynamics_.set_throttle(std::clamp(command, 0.0, 1.0));
}

}  // namespace rst::vehicle
