#include "rst/vehicle/control_module.hpp"

namespace rst::vehicle {

ControlModule::ControlModule(sim::Scheduler& sched, middleware::MessageBus& bus,
                             VehicleDynamics& dynamics, sim::RandomStream rng, Config config,
                             sim::Trace* trace, std::string name,
                             const middleware::NtpClock* clock)
    : sched_{sched},
      bus_{bus},
      dynamics_{dynamics},
      rng_{rng.child("control")},
      config_{config},
      trace_{trace},
      name_{std::move(name)},
      clock_{clock} {
  bus_.subscribe_to<DriveCommand>("drive_cmd",
                                  [this](const DriveCommand& cmd) { on_command(cmd); });
}

ControlModule::~ControlModule() { odometry_timer_.cancel(); }

void ControlModule::start() {
  if (running_) return;
  running_ = true;
  odometry_timer_ = sched_.schedule_in(config_.odometry_period, [this] { publish_odometry(); });
}

void ControlModule::stop() {
  running_ = false;
  odometry_timer_.cancel();
}

sim::SimTime ControlModule::next_pwm_edge(sim::SimTime t) const {
  const auto period = config_.pwm_period;
  const auto remainder = t % period;
  if (remainder == sim::SimTime::zero()) return t;
  return t - remainder + period;
}

void ControlModule::on_command(const DriveCommand& cmd) {
  if (!running_) return;
  const auto usart = config_.usart_latency +
                     rng_.uniform_time(sim::SimTime::zero(), config_.usart_jitter);
  sched_.post_in(usart, [this, cmd] {
    // USART write instant: the ECU's "command sent to actuators" timestamp
    // (paper step 5).
    if (cmd.power_cut && trace_) {
      const auto wall = clock_ ? clock_->now_wall() : sched_.now();
      trace_->record_event(sched_.now(), sim::Stage::PowerCutCommand, 0,
                           static_cast<std::uint64_t>(wall.count_ns()));
    }
    // The ESC/servo apply the new duty cycle at the next PWM edge.
    const auto edge = next_pwm_edge(sched_.now());
    sched_.post_at(edge, [this, cmd] {
      ++applied_;
      if (cmd.power_cut) {
        dynamics_.cut_power();
        if (trace_) trace_->record_event(sched_.now(), sim::Stage::PowerCutApplied);
      } else {
        dynamics_.set_throttle(cmd.throttle01);
        dynamics_.set_steering(cmd.steering_rad);
      }
    });
  });
}

void ControlModule::publish_odometry() {
  if (!running_) return;
  Odometry odo;
  odo.speed_mps = dynamics_.speed_mps();
  odo.position = dynamics_.position();
  odo.heading_rad = dynamics_.heading_rad();
  bus_.publish("odometry", odo);
  odometry_timer_ = sched_.schedule_in(config_.odometry_period, [this] { publish_odometry(); });
}

}  // namespace rst::vehicle
