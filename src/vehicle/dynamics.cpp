#include "rst/vehicle/dynamics.hpp"

#include <algorithm>
#include <cmath>

namespace rst::vehicle {

namespace {
constexpr double kGravity = 9.81;
}

VehicleDynamics::VehicleDynamics(sim::Scheduler& sched, VehicleParams params, sim::RandomStream rng)
    : sched_{sched}, params_{params}, rng_{rng.child("dynamics")} {}

VehicleDynamics::~VehicleDynamics() { tick_timer_.cancel(); }

void VehicleDynamics::reset(geo::Vec2 position, double heading_rad, double speed_mps) {
  position_ = position;
  heading_ = heading_rad;
  speed_ = speed_mps;
  odometer_ = 0;
  throttle_ = 0;
  steering_ = 0;
  power_cut_ = false;
  friction_factor_ = rng_.normal_min(1.0, 0.09, 0.6);
}

void VehicleDynamics::start() {
  if (running_) return;
  running_ = true;
  tick_timer_ = sched_.schedule_in(params_.tick, [this] { tick(); });
}

void VehicleDynamics::stop() {
  running_ = false;
  tick_timer_.cancel();
}

void VehicleDynamics::set_throttle(double throttle01) {
  if (!power_cut_) throttle_ = std::clamp(throttle01, 0.0, 1.0);
}

void VehicleDynamics::set_steering(double angle_rad) {
  steering_ = std::clamp(angle_rad, -params_.max_steer_rad, params_.max_steer_rad);
}

void VehicleDynamics::cut_power() {
  power_cut_ = true;
  throttle_ = 0;
}

void VehicleDynamics::tick() {
  if (!running_) return;
  const double dt = params_.tick.to_seconds();

  double force = throttle_ * params_.max_motor_force_n;
  // Resistive terms act only while moving.
  if (speed_ > 0) {
    force -= params_.rolling_resistance * params_.mass_kg * kGravity * friction_factor_;
    force -= params_.drag_coefficient * speed_ * speed_;
    if (power_cut_) {
      force -= params_.power_cut_decel_mps2 * params_.mass_kg * friction_factor_;
    }
  }
  const double accel = force / params_.mass_kg;
  last_accel_ = accel;

  double new_speed = speed_ + accel * dt;
  if (new_speed < 0) new_speed = 0;  // the model does not reverse
  const double avg_speed = (speed_ + new_speed) / 2;
  speed_ = new_speed;

  const double ds = avg_speed * dt;
  odometer_ += ds;
  position_ += geo::vector_from_heading(heading_) * ds;
  if (avg_speed > 1e-6) {
    heading_ += ds / params_.wheelbase_m * std::tan(steering_);
  }

  tick_timer_ = sched_.schedule_in(params_.tick, [this] { tick(); });
}

}  // namespace rst::vehicle
