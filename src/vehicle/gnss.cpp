#include "rst/vehicle/gnss.hpp"

#include <cmath>

#include "rst/sim/fault_plan.hpp"

namespace rst::vehicle {

GnssReceiver::GnssReceiver(sim::Scheduler& sched, const VehicleDynamics& vehicle,
                           sim::RandomStream rng, Config config)
    : sched_{sched}, vehicle_{vehicle}, rng_{rng.child("gnss")}, config_{config} {
  bias_ = {rng_.normal(0.0, config_.initial_bias_sigma_m),
           rng_.normal(0.0, config_.initial_bias_sigma_m)};
  last_fix_ = vehicle_.position() + bias_;
}

GnssReceiver::~GnssReceiver() { timer_.cancel(); }

void GnssReceiver::start() {
  if (running_) return;
  running_ = true;
  timer_ = sched_.schedule_in(config_.fix_period, [this] { tick(); });
}

void GnssReceiver::stop() {
  running_ = false;
  timer_.cancel();
}

void GnssReceiver::tick() {
  if (!running_) return;
  bias_ = bias_ * (1.0 - config_.bias_decay) +
          geo::Vec2{rng_.normal(0.0, config_.bias_walk_sigma_m),
                    rng_.normal(0.0, config_.bias_walk_sigma_m)};
  if (faults_ && faults_->active(sim::FaultKind::GnssDrift, "gnss")) {
    if (!drifting_) {
      // One direction per activation (multipath pulls the fix one way).
      drifting_ = true;
      const double angle = faults_->stream(sim::FaultKind::GnssDrift).uniform(0.0, 2.0 * M_PI);
      drift_direction_ = {std::cos(angle), std::sin(angle)};
    }
    bias_ = bias_ + drift_direction_ * (faults_->severity(sim::FaultKind::GnssDrift, "gnss") *
                                        config_.fix_period.to_seconds());
  } else {
    drifting_ = false;
  }
  last_fix_ = vehicle_.position() + bias_ +
              geo::Vec2{rng_.normal(0.0, config_.noise_sigma_m),
                        rng_.normal(0.0, config_.noise_sigma_m)};
  last_fix_time_ = sched_.now();
  ++fixes_;
  timer_ = sched_.schedule_in(config_.fix_period, [this] { tick(); });
}

}  // namespace rst::vehicle
