#include "rst/vehicle/gnss.hpp"

namespace rst::vehicle {

GnssReceiver::GnssReceiver(sim::Scheduler& sched, const VehicleDynamics& vehicle,
                           sim::RandomStream rng, Config config)
    : sched_{sched}, vehicle_{vehicle}, rng_{rng.child("gnss")}, config_{config} {
  bias_ = {rng_.normal(0.0, config_.initial_bias_sigma_m),
           rng_.normal(0.0, config_.initial_bias_sigma_m)};
  last_fix_ = vehicle_.position() + bias_;
}

GnssReceiver::~GnssReceiver() { timer_.cancel(); }

void GnssReceiver::start() {
  if (running_) return;
  running_ = true;
  timer_ = sched_.schedule_in(config_.fix_period, [this] { tick(); });
}

void GnssReceiver::stop() {
  running_ = false;
  timer_.cancel();
}

void GnssReceiver::tick() {
  if (!running_) return;
  bias_ = bias_ * (1.0 - config_.bias_decay) +
          geo::Vec2{rng_.normal(0.0, config_.bias_walk_sigma_m),
                    rng_.normal(0.0, config_.bias_walk_sigma_m)};
  last_fix_ = vehicle_.position() + bias_ +
              geo::Vec2{rng_.normal(0.0, config_.noise_sigma_m),
                        rng_.normal(0.0, config_.noise_sigma_m)};
  last_fix_time_ = sched_.now();
  ++fixes_;
  timer_ = sched_.schedule_in(config_.fix_period, [this] { tick(); });
}

}  // namespace rst::vehicle
