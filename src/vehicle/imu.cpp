#include "rst/vehicle/imu.hpp"

#include <algorithm>
#include <cmath>

#include "rst/vehicle/motion_planner.hpp"

namespace rst::vehicle {

Imu::Imu(sim::Scheduler& sched, middleware::MessageBus& bus, const VehicleDynamics& vehicle,
         sim::RandomStream rng, Config config)
    : sched_{sched}, bus_{bus}, vehicle_{vehicle}, rng_{rng.child("imu")}, config_{config} {
  accel_bias_ = rng_.normal(0.0, config_.accel_bias_sigma);
  gyro_bias_ = rng_.normal(0.0, config_.gyro_bias_sigma);
}

Imu::~Imu() { timer_.cancel(); }

void Imu::start() {
  if (running_) return;
  running_ = true;
  timer_ = sched_.schedule_in(config_.sample_period, [this] { tick(); });
}

void Imu::stop() {
  running_ = false;
  timer_.cancel();
}

void Imu::tick() {
  if (!running_) return;
  ImuSample sample;
  sample.stamp = sched_.now();
  sample.longitudinal_accel_mps2 =
      vehicle_.acceleration_mps2() + accel_bias_ + rng_.normal(0.0, config_.accel_noise_sigma);
  double yaw_rate = 0.0;
  if (has_last_) {
    const double dt = (sched_.now() - last_tick_).to_seconds();
    if (dt > 0) {
      yaw_rate = std::remainder(vehicle_.heading_rad() - last_heading_, 2.0 * M_PI) / dt;
    }
  }
  sample.yaw_rate_radps = yaw_rate + gyro_bias_ + rng_.normal(0.0, config_.gyro_noise_sigma);
  last_heading_ = vehicle_.heading_rad();
  last_tick_ = sched_.now();
  has_last_ = true;
  ++samples_;
  bus_.publish("imu", sample);
  timer_ = sched_.schedule_in(config_.sample_period, [this] { tick(); });
}

SpeedEstimator::SpeedEstimator(sim::Scheduler& sched, middleware::MessageBus& bus, Config config)
    : sched_{sched}, config_{config} {
  bus.subscribe_to<ImuSample>("imu", [this](const ImuSample& sample) {
    if (has_imu_) {
      const double dt = (sample.stamp - last_imu_).to_seconds();
      speed_ = std::max(0.0, speed_ + sample.longitudinal_accel_mps2 * dt);
    }
    last_imu_ = sample.stamp;
    has_imu_ = true;
    ++imu_updates_;
  });
  bus.subscribe_to<Odometry>("odometry", [this](const Odometry& odo) {
    speed_ += config_.odometry_gain * (odo.speed_mps - speed_);
    ++odometry_updates_;
  });
}

}  // namespace rst::vehicle
