#include "rst/vehicle/lidar.hpp"

#include <algorithm>
#include <cmath>

#include "rst/vehicle/motion_planner.hpp"

namespace rst::vehicle {

ScanningLidar::ScanningLidar(sim::Scheduler& sched, middleware::MessageBus& bus,
                             const VehicleDynamics& vehicle, sim::RandomStream rng, Config config)
    : sched_{sched},
      bus_{bus},
      vehicle_{vehicle},
      rng_{rng.child("lidar")},
      config_{config} {}

ScanningLidar::~ScanningLidar() { timer_.cancel(); }

void ScanningLidar::add_target(LidarTarget target) { targets_.push_back(std::move(target)); }

void ScanningLidar::start() {
  if (running_) return;
  running_ = true;
  timer_ = sched_.schedule_in(config_.scan_period, [this] { tick(); });
}

void ScanningLidar::stop() {
  running_ = false;
  timer_.cancel();
}

LidarScan ScanningLidar::scan() const {
  LidarScan out;
  out.capture_time = sched_.now();
  const geo::Vec2 own = vehicle_.position();
  const double heading = vehicle_.heading_rad();

  for (const auto& target : targets_) {
    const geo::Vec2 pos = target.position();
    const geo::Vec2 rel = pos - own;
    const double distance = rel.norm();
    if (distance < 1e-6 || distance - target.radius_m > config_.max_range_m) continue;
    const double bearing = std::remainder(geo::heading_from_vector(rel) - heading, 2.0 * M_PI);
    if (std::abs(bearing) > config_.fov_half_angle_rad) continue;
    // Occlusion: a wall between the sensor and the target blocks the ray.
    const bool occluded = std::any_of(walls_.begin(), walls_.end(), [&](const dot11p::Wall& w) {
      return dot11p::segments_intersect(own, pos, w.a, w.b);
    });
    if (occluded) continue;
    LidarDetection det;
    det.range_m = std::max(0.0, distance - target.radius_m +
                                    rng_.normal(0.0, config_.range_noise_sigma_m));
    det.bearing_rad = bearing;
    out.detections.push_back(det);
  }
  return out;
}

void ScanningLidar::tick() {
  if (!running_) return;
  const LidarScan result = scan();
  ++scans_;
  sched_.post_in(config_.processing_latency,
                 [this, result] { bus_.publish("lidar_scan", result); });
  timer_ = sched_.schedule_in(config_.scan_period, [this] { tick(); });
}

AebController::AebController(sim::Scheduler& sched, middleware::MessageBus& bus, Config config,
                             sim::Trace* trace, std::string name)
    : sched_{sched}, bus_{bus}, config_{config}, trace_{trace}, name_{std::move(name)} {
  bus_.subscribe_to<LidarScan>("lidar_scan", [this](const LidarScan& scan) { on_scan(scan); });
  bus_.subscribe_to<Odometry>("odometry", [this](const Odometry& odo) { speed_ = odo.speed_mps; });
}

void AebController::on_scan(const LidarScan& scan) {
  if (!running_ || triggered_) return;
  ++scans_;
  const double stopping =
      speed_ * speed_ / (2.0 * config_.assumed_decel_mps2) + config_.margin_m;
  for (const auto& det : scan.detections) {
    if (std::abs(det.bearing_rad) > config_.max_bearing_rad) continue;
    const double forward = det.range_m * std::cos(det.bearing_rad);
    const double lateral = det.range_m * std::sin(det.bearing_rad);
    if (forward < 0 || std::abs(lateral) > config_.corridor_half_width_m) continue;
    if (forward <= stopping) {
      triggered_ = true;
      if (trace_) {
        trace_->record_event(sched_.now(), sim::Stage::AebTrigger, 0, 0, forward);
      }
      bus_.publish("emergency_stop", std::string{"AEB: obstacle ahead"});
      return;
    }
  }
}

}  // namespace rst::vehicle
