#include "rst/vehicle/line_detection.hpp"

#include <cmath>

namespace rst::vehicle {

LineCameraSensor::LineCameraSensor(sim::Scheduler& sched, middleware::MessageBus& bus,
                                   const Track& track, const VehicleDynamics& vehicle,
                                   sim::RandomStream rng, Config config)
    : sched_{sched},
      bus_{bus},
      track_{track},
      vehicle_{vehicle},
      rng_{rng.child("line_camera")},
      config_{config} {}

LineCameraSensor::~LineCameraSensor() { frame_timer_.cancel(); }

void LineCameraSensor::start() {
  if (running_) return;
  running_ = true;
  frame_timer_ = sched_.schedule_in(config_.frame_period, [this] { capture(); });
}

void LineCameraSensor::stop() {
  running_ = false;
  frame_timer_.cancel();
}

void LineCameraSensor::capture() {
  if (!running_) return;
  ++frames_;

  LineDetection det;
  det.capture_time = sched_.now();
  const Track::Projection proj = track_.project(vehicle_.position());
  const double heading_err =
      std::remainder(vehicle_.heading_rad() - track_.heading_at(proj.arc_length), 2.0 * M_PI);

  if (std::abs(proj.lateral_offset) > config_.fov_half_width_m ||
      rng_.bernoulli(config_.dropout_probability)) {
    det.line_found = false;
  } else {
    det.lateral_offset_m = proj.lateral_offset + rng_.normal(0.0, config_.offset_noise_m);
    det.heading_error_rad = heading_err + rng_.normal(0.0, config_.heading_noise_rad);
  }

  const auto latency = rng_.normal_time(config_.processing_mean, config_.processing_sigma,
                                        config_.processing_min);
  sched_.post_in(latency, [this, det] { bus_.publish("line_detection", det); });

  frame_timer_ = sched_.schedule_in(config_.frame_period, [this] { capture(); });
}

}  // namespace rst::vehicle
