#include "rst/vehicle/message_handler.hpp"

#include "rst/middleware/kv.hpp"

namespace rst::vehicle {

MessageHandler::MessageHandler(sim::Scheduler& sched, middleware::MessageBus& bus,
                               middleware::HttpHost& host, sim::RandomStream rng, Config config,
                               sim::Trace* trace, std::string name)
    : sched_{sched},
      bus_{bus},
      host_{host},
      rng_{rng.child("msg_handler")},
      config_{config},
      trace_{trace},
      name_{std::move(name)} {}

MessageHandler::~MessageHandler() { poll_timer_.cancel(); }

void MessageHandler::start() {
  if (running_) return;
  running_ = true;
  last_contact_ = sched_.now();  // grace period: contact assumed at startup
  // First poll at a random phase, as the script start is uncorrelated with
  // the experiment.
  poll_timer_ = sched_.schedule_in(rng_.uniform_time(sim::SimTime::zero(), config_.poll_period),
                                   [this] { poll(); });
}

void MessageHandler::stop() {
  running_ = false;
  poll_timer_.cancel();
}

void MessageHandler::poll() {
  if (!running_) return;
  const std::uint64_t poll_no = ++stats_.polls;
  if (last_poll_failed_) ++stats_.retries;
  if (trace_) trace_->span_begin(sched_.now(), sim::Stage::DenmPoll, 0, poll_no);
  host_.post(config_.obu_hostname, "/request_denm", {},
             [this, poll_no](const middleware::HttpResponse& r) {
               if (trace_) trace_->span_end(sched_.now(), sim::Stage::DenmPoll, 0, poll_no);
               if (running_) on_response(r);
             });
  poll_timer_ = sched_.schedule_in(config_.poll_period, [this] { poll(); });
}

bool MessageHandler::is_emergency(const its::Denm& denm) {
  if (denm.is_termination() || !denm.situation) return false;
  switch (denm.situation->event_type.cause()) {
    case its::Cause::CollisionRisk:
    case its::Cause::DangerousSituation:
    case its::Cause::StationaryVehicle:
    case its::Cause::HazardousLocationObstacleOnTheRoad:
      return true;
    default:
      return false;
  }
}

void MessageHandler::set_degraded(bool degraded) {
  if (degraded_ == degraded) return;
  degraded_ = degraded;
  if (degraded) {
    ++stats_.watchdog_degradations;
    if (trace_) trace_->record_event(sched_.now(), sim::Stage::WatchdogDegraded);
  } else {
    ++stats_.watchdog_recoveries;
    if (trace_) trace_->record_event(sched_.now(), sim::Stage::WatchdogRecovered);
  }
  bus_.publish("watchdog", WatchdogState{degraded});
}

void MessageHandler::on_response(const middleware::HttpResponse& resp) {
  if (resp.status != 200) {
    // Lost request (status 0 after the LAN's loss timeout) or server error.
    // The next scheduled poll is the retry; the watchdog degrades once the
    // silence outlives its timeout. Every poll response always comes back
    // (loss produces a timed-out status-0 reply), so liveness needs no
    // timer of its own.
    ++stats_.failed_polls;
    last_poll_failed_ = true;
    if (config_.watchdog && !degraded_ &&
        sched_.now() - last_contact_ > config_.watchdog_timeout) {
      set_degraded(true);
    }
    return;
  }
  last_poll_failed_ = false;
  last_contact_ = sched_.now();
  if (config_.watchdog && degraded_) set_degraded(false);
  if (resp.body.empty()) return;
  const middleware::KvBody kv = middleware::KvBody::parse(resp.body);
  // The API drains its whole inbox per poll as denm0..denmN; older builds
  // answered with a single "denm" key — accept either form.
  auto hex = kv.get("denm0");
  if (!hex) hex = kv.get("denm");
  for (std::size_t i = 0; hex; hex = kv.get("denm" + std::to_string(++i))) {
    handle_denm_hex(*hex);
  }
}

void MessageHandler::handle_denm_hex(const std::string& hex) {
  its::Denm denm;
  try {
    denm = its::Denm::decode(middleware::hex_decode(hex));
  } catch (const std::exception&) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.denms_fetched;
  if (trace_) {
    trace_->record_event(sched_.now(), sim::Stage::DenmFetch, 0,
                         sim::pack_action(denm.management.action_id.originating_station,
                                          denm.management.action_id.sequence_number));
  }
  if (!is_emergency(denm)) return;
  ++stats_.emergencies;
  const auto handling = config_.handling_latency +
                        rng_.uniform_time(sim::SimTime::zero(), config_.handling_jitter);
  const auto cause = denm.situation->event_type.cause_code;
  sched_.post_in(handling, [this, cause] {
    bus_.publish("v2x_emergency",
                 std::string{"DENM cause "} + std::to_string(cause) + " (" +
                     std::string{its::describe_cause(cause)} + ")");
  });
}

}  // namespace rst::vehicle
