#include "rst/vehicle/message_handler.hpp"

#include "rst/middleware/kv.hpp"

namespace rst::vehicle {

MessageHandler::MessageHandler(sim::Scheduler& sched, middleware::MessageBus& bus,
                               middleware::HttpHost& host, sim::RandomStream rng, Config config,
                               sim::Trace* trace, std::string name)
    : sched_{sched},
      bus_{bus},
      host_{host},
      rng_{rng.child("msg_handler")},
      config_{config},
      trace_{trace},
      name_{std::move(name)} {}

MessageHandler::~MessageHandler() { poll_timer_.cancel(); }

void MessageHandler::start() {
  if (running_) return;
  running_ = true;
  // First poll at a random phase, as the script start is uncorrelated with
  // the experiment.
  poll_timer_ = sched_.schedule_in(rng_.uniform_time(sim::SimTime::zero(), config_.poll_period),
                                   [this] { poll(); });
}

void MessageHandler::stop() {
  running_ = false;
  poll_timer_.cancel();
}

void MessageHandler::poll() {
  if (!running_) return;
  ++stats_.polls;
  host_.post(config_.obu_hostname, "/request_denm", {}, [this](const middleware::HttpResponse& r) {
    if (running_) on_response(r);
  });
  poll_timer_ = sched_.schedule_in(config_.poll_period, [this] { poll(); });
}

bool MessageHandler::is_emergency(const its::Denm& denm) {
  if (denm.is_termination() || !denm.situation) return false;
  switch (denm.situation->event_type.cause()) {
    case its::Cause::CollisionRisk:
    case its::Cause::DangerousSituation:
    case its::Cause::StationaryVehicle:
    case its::Cause::HazardousLocationObstacleOnTheRoad:
      return true;
    default:
      return false;
  }
}

void MessageHandler::on_response(const middleware::HttpResponse& resp) {
  if (resp.status != 200 || resp.body.empty()) return;
  const middleware::KvBody kv = middleware::KvBody::parse(resp.body);
  const auto hex = kv.get("denm");
  if (!hex) return;

  its::Denm denm;
  try {
    denm = its::Denm::decode(middleware::hex_decode(*hex));
  } catch (const std::exception&) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.denms_fetched;
  if (trace_) {
    trace_->record(sched_.now(), name_,
                   "DENM fetched action=" +
                       std::to_string(denm.management.action_id.originating_station) + "/" +
                       std::to_string(denm.management.action_id.sequence_number));
  }
  if (!is_emergency(denm)) return;
  ++stats_.emergencies;
  const auto handling = config_.handling_latency +
                        rng_.uniform_time(sim::SimTime::zero(), config_.handling_jitter);
  const auto cause = denm.situation->event_type.cause_code;
  sched_.post_in(handling, [this, cause] {
    bus_.publish("v2x_emergency",
                 std::string{"DENM cause "} + std::to_string(cause) + " (" +
                     std::string{its::describe_cause(cause)} + ")");
  });
}

}  // namespace rst::vehicle
