#include "rst/vehicle/motion_planner.hpp"

#include <algorithm>
#include <cmath>

#include "rst/vehicle/message_handler.hpp"

namespace rst::vehicle {

MotionPlanner::MotionPlanner(sim::Scheduler& sched, middleware::MessageBus& bus, Config config,
                             sim::Trace* trace, std::string name)
    : sched_{sched},
      bus_{bus},
      config_{config},
      trace_{trace},
      name_{std::move(name)},
      steering_pid_{config.steering_gains, -config.max_steer_rad, config.max_steer_rad} {
  bus_.subscribe_to<LineDetection>("line_detection",
                                   [this](const LineDetection& det) { on_line(det); });
  bus_.subscribe_to<Odometry>("odometry", [this](const Odometry& odo) { on_odometry(odo); });
  bus_.subscribe_to<std::string>("v2x_emergency",
                                 [this](const std::string& reason) { emergency_stop(reason); });
  // Local (non-V2X) emergencies, e.g. the on-board AEB.
  bus_.subscribe_to<std::string>("emergency_stop",
                                 [this](const std::string& reason) { emergency_stop(reason); });
  bus_.subscribe_to<WatchdogState>(
      "watchdog", [this](const WatchdogState& state) { degraded_ = state.degraded; });
}

void MotionPlanner::reset() {
  emergency_latched_ = false;
  steering_pid_.reset();
  has_last_line_ = false;
}

void MotionPlanner::on_odometry(const Odometry& odo) { current_speed_ = odo.speed_mps; }

void MotionPlanner::on_line(const LineDetection& det) {
  if (emergency_latched_) return;
  double dt = 1.0 / 30.0;
  if (has_last_line_) {
    dt = std::max(1e-3, (sched_.now() - last_line_time_).to_seconds());
  }
  last_line_time_ = sched_.now();
  has_last_line_ = true;

  DriveCommand cmd;
  if (det.line_found) {
    // Positive offset = vehicle left of the line = steer right (positive);
    // the heading term damps the correction once the car rotates towards
    // the line (Stanley-style error blend).
    const double error =
        det.lateral_offset_m - config_.heading_gain_m * std::sin(det.heading_error_rad);
    cmd.steering_rad = steering_pid_.update(error, dt);
  } else {
    cmd.steering_rad = 0.0;  // hold course until the line reappears
  }
  const double target = degraded_ ? std::min(config_.target_speed_mps, config_.failsafe_speed_mps)
                                  : config_.target_speed_mps;
  const double speed_error = target - current_speed_;
  cmd.throttle01 = std::clamp(config_.cruise_throttle + config_.speed_kp * speed_error, 0.0, 1.0);
  ++commands_;
  bus_.publish("drive_cmd", cmd);
}

void MotionPlanner::emergency_stop(const std::string& reason) {
  if (emergency_latched_) return;
  emergency_latched_ = true;
  if (trace_) trace_->record_event(sched_.now(), sim::Stage::EmergencyStop);
  (void)reason;
  DriveCommand cmd;
  cmd.power_cut = true;
  ++commands_;
  bus_.publish("drive_cmd", cmd);
}

}  // namespace rst::vehicle
