#include "rst/vehicle/track.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rst::vehicle {

Track::Track(std::vector<geo::Vec2> waypoints) : points_{std::move(waypoints)} {
  if (points_.size() < 2) throw std::invalid_argument{"Track: need at least 2 waypoints"};
  cumulative_.reserve(points_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cumulative_.push_back(cumulative_.back() + geo::distance(points_[i - 1], points_[i]));
  }
  if (cumulative_.back() <= 0) throw std::invalid_argument{"Track: zero length"};
}

Track Track::straight(geo::Vec2 a, geo::Vec2 b) { return Track{{a, b}}; }

Track Track::loop(geo::Vec2 center, double width, double height, int corner_points) {
  // Rounded-rectangle loop: straights plus quarter-circle corners.
  const double r = std::min(width, height) * 0.15;
  const double hw = width / 2 - r;
  const double hh = height / 2 - r;
  std::vector<geo::Vec2> pts;
  const auto corner = [&](geo::Vec2 c, double start_angle) {
    for (int i = 0; i <= corner_points; ++i) {
      const double a = start_angle + (M_PI / 2) * i / corner_points;
      pts.push_back(c + geo::Vec2{r * std::cos(a), r * std::sin(a)});
    }
  };
  corner(center + geo::Vec2{hw, hh}, 0.0);
  corner(center + geo::Vec2{-hw, hh}, M_PI / 2);
  corner(center + geo::Vec2{-hw, -hh}, M_PI);
  corner(center + geo::Vec2{hw, -hh}, 3 * M_PI / 2);
  pts.push_back(pts.front());  // close the loop
  return Track{std::move(pts)};
}

geo::Vec2 Track::point_at(double s) const {
  s = std::clamp(s, 0.0, length());
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const auto i = std::min<std::size_t>(
      points_.size() - 2, it == cumulative_.begin() ? 0 : (it - cumulative_.begin()) - 1);
  const double seg_len = cumulative_[i + 1] - cumulative_[i];
  const double t = seg_len > 0 ? (s - cumulative_[i]) / seg_len : 0.0;
  return points_[i] + (points_[i + 1] - points_[i]) * t;
}

double Track::heading_at(double s) const {
  s = std::clamp(s, 0.0, length());
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const auto i = std::min<std::size_t>(
      points_.size() - 2, it == cumulative_.begin() ? 0 : (it - cumulative_.begin()) - 1);
  return geo::heading_from_vector(points_[i + 1] - points_[i]);
}

Track::Projection Track::project(geo::Vec2 p) const {
  Projection best;
  double best_dist2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const geo::Vec2 a = points_[i];
    const geo::Vec2 d = points_[i + 1] - a;
    const double len2 = d.norm2();
    const double t = len2 > 0 ? std::clamp((p - a).dot(d) / len2, 0.0, 1.0) : 0.0;
    const geo::Vec2 q = a + d * t;
    const double dist2 = (p - q).norm2();
    if (dist2 < best_dist2) {
      best_dist2 = dist2;
      best.closest = q;
      best.arc_length = cumulative_[i] + std::sqrt(len2) * t;
      // Sign: positive when p lies left of the direction of travel.
      best.lateral_offset = std::sqrt(dist2) * (d.cross(p - a) >= 0 ? 1.0 : -1.0);
    }
  }
  return best;
}

}  // namespace rst::vehicle
