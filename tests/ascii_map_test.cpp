#include <gtest/gtest.h>

#include "rst/middleware/ascii_map.hpp"

namespace rst::middleware {
namespace {

TEST(AsciiMap, PlotsWithinViewportNorthUp) {
  AsciiMap map{{0, 0}, {10, 10}, 11, 11};
  map.plot({5, 5}, 'X');    // centre
  map.plot({0, 10}, 'N');   // north-west corner -> top-left
  map.plot({10, 0}, 'S');   // south-east corner -> bottom-right
  const std::string out = map.render();
  const auto lines = [&] {
    std::vector<std::string> v;
    std::size_t pos = 0;
    while (pos < out.size()) {
      const auto next = out.find('\n', pos);
      v.push_back(out.substr(pos, next - pos));
      pos = next + 1;
    }
    return v;
  }();
  // Border, then 11 grid rows.
  ASSERT_GE(lines.size(), 13u);
  EXPECT_EQ(lines[1][1], 'N');            // top-left cell
  EXPECT_EQ(lines[11][11], 'S');          // bottom-right cell
  EXPECT_NE(out.find('X'), std::string::npos);
}

TEST(AsciiMap, OutOfViewportIsIgnored) {
  AsciiMap map{{0, 0}, {10, 10}};
  map.plot({-5, 5}, 'X');
  map.plot({5, 50}, 'X');
  EXPECT_EQ(map.render().find('X'), std::string::npos);
}

TEST(AsciiMap, LinesAreContinuous) {
  AsciiMap map{{0, 0}, {10, 10}, 21, 21};
  map.plot_line({0, 5}, {10, 5}, '-');
  const std::string out = map.render();
  // Count the dashes: a horizontal line across 21 columns.
  EXPECT_GE(std::count(out.begin(), out.end(), '-'),
            21 + 2 * 23 - 4);  // the line itself plus the border dashes
}

TEST(AsciiMap, LegendIsAppended) {
  AsciiMap map{{0, 0}, {1, 1}};
  map.legend('V', "vehicle");
  const std::string out = map.render();
  EXPECT_NE(out.find("V = vehicle"), std::string::npos);
}

TEST(AsciiMap, DegenerateViewportRejected) {
  EXPECT_THROW((AsciiMap{{0, 0}, {0, 10}}), std::invalid_argument);
  EXPECT_THROW((AsciiMap{{0, 0}, {10, 10}, 1, 5}), std::invalid_argument);
}

}  // namespace
}  // namespace rst::middleware
