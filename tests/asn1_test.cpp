#include <gtest/gtest.h>

#include "rst/asn1/bitbuffer.hpp"
#include "rst/asn1/per.hpp"
#include "rst/sim/random.hpp"

namespace rst::asn1 {
namespace {

TEST(BitBuffer, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true, false, true, true};
  for (bool b : pattern) w.write_bit(b);
  EXPECT_EQ(w.bit_count(), 10u);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes.size(), 2u);

  BitReader r{bytes};
  for (bool b : pattern) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitBuffer, MsbFirstLayout) {
  BitWriter w;
  w.write_bits(0b1010, 4);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xA0);  // MSB-first with zero padding
}

TEST(BitBuffer, MultiBitValuesAcrossByteBoundaries) {
  BitWriter w;
  w.write_bits(0x3, 3);
  w.write_bits(0x1234, 16);
  w.write_bits(0x1, 1);
  const auto bytes = w.finish();
  BitReader r{bytes};
  EXPECT_EQ(r.read_bits(3), 0x3u);
  EXPECT_EQ(r.read_bits(16), 0x1234u);
  EXPECT_EQ(r.read_bits(1), 0x1u);
}

TEST(BitBuffer, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(0xff, 8);
  const auto bytes = w.finish();
  BitReader r{bytes};
  (void)r.read_bits(8);
  EXPECT_THROW((void)r.read_bit(), DecodeError);
}

TEST(BitBuffer, SixtyFourBitValues) {
  BitWriter w;
  const std::uint64_t v = 0xdeadbeefcafebabeULL;
  w.write_bits(v, 64);
  const auto bytes = w.finish();  // BitReader is a non-owning view
  BitReader r{bytes};
  EXPECT_EQ(r.read_bits(64), v);
}

TEST(BitsForRange, Values) {
  EXPECT_EQ(bits_for_range(1), 0u);
  EXPECT_EQ(bits_for_range(2), 1u);
  EXPECT_EQ(bits_for_range(3), 2u);
  EXPECT_EQ(bits_for_range(4), 2u);
  EXPECT_EQ(bits_for_range(5), 3u);
  EXPECT_EQ(bits_for_range(256), 8u);
  EXPECT_EQ(bits_for_range(257), 9u);
}

TEST(Per, ConstrainedUsesMinimalBits) {
  PerEncoder e;
  e.constrained(5, 0, 7);  // 3 bits
  EXPECT_EQ(e.bit_count(), 3u);
  PerEncoder e2;
  e2.constrained(100, 100, 100);  // 0 bits (single-value range)
  EXPECT_EQ(e2.bit_count(), 0u);
}

TEST(Per, ConstrainedRejectsOutOfRange) {
  PerEncoder e;
  EXPECT_THROW(e.constrained(8, 0, 7), std::invalid_argument);
  EXPECT_THROW(e.constrained(0, 5, 3), std::invalid_argument);
}

TEST(Per, ConstrainedRoundTripProperty) {
  sim::RandomStream r{10, "per"};
  for (int i = 0; i < 500; ++i) {
    const std::int64_t lo = r.uniform_int(-1000000, 1000000);
    const std::int64_t hi = lo + r.uniform_int(0, 1000000);
    const std::int64_t v = r.uniform_int(lo, hi);
    PerEncoder e;
    e.constrained(v, lo, hi);
    PerDecoder d{e.finish()};
    EXPECT_EQ(d.constrained(lo, hi), v);
  }
}

TEST(Per, ConstrainedExtRootAndExtension) {
  for (std::int64_t v : {5LL, 0LL, 7LL, -3LL, 1000LL}) {
    PerEncoder e;
    e.constrained_ext(v, 0, 7);
    PerDecoder d{e.finish()};
    EXPECT_EQ(d.constrained_ext(0, 7), v);
  }
}

TEST(Per, UnconstrainedRoundTripProperty) {
  sim::RandomStream r{11, "unc"};
  std::vector<std::int64_t> values{0, 1, -1, 127, 128, -128, -129, 65535, -65536,
                                   (1LL << 40), -(1LL << 40)};
  for (int i = 0; i < 200; ++i) values.push_back(r.uniform_int(-(1LL << 62), (1LL << 62)));
  for (const auto v : values) {
    PerEncoder e;
    e.unconstrained(v);
    PerDecoder d{e.finish()};
    EXPECT_EQ(d.unconstrained(), v) << v;
  }
}

TEST(Per, EnumeratedRoundTrip) {
  for (std::uint32_t v = 0; v < 7; ++v) {
    PerEncoder e;
    e.enumerated(v, 7);
    PerDecoder d{e.finish()};
    EXPECT_EQ(d.enumerated(7), v);
  }
  PerEncoder e;
  EXPECT_THROW(e.enumerated(7, 7), std::invalid_argument);
}

TEST(Per, LengthDeterminantBothForms) {
  for (std::size_t n : {0u, 1u, 127u, 128u, 500u, 16383u}) {
    PerEncoder e;
    e.length(n);
    PerDecoder d{e.finish()};
    EXPECT_EQ(d.length(), n);
  }
  PerEncoder e;
  EXPECT_THROW(e.length(16384), std::invalid_argument);
}

TEST(Per, OctetStringRoundTrip) {
  sim::RandomStream r{12, "oct"};
  for (std::size_t len : {0u, 1u, 63u, 128u, 1000u}) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(r.uniform_int(0, 255));
    PerEncoder e;
    e.octet_string(data);
    PerDecoder d{e.finish()};
    EXPECT_EQ(d.octet_string(), data);
  }
}

TEST(Per, FixedOctetStringHasNoLengthOverhead) {
  const std::uint8_t data[4] = {1, 2, 3, 4};
  PerEncoder e;
  e.fixed_octet_string(data, 4);
  EXPECT_EQ(e.bit_count(), 32u);
  std::uint8_t out[4] = {};
  PerDecoder d{e.finish()};
  d.fixed_octet_string(out, 4);
  EXPECT_TRUE(std::equal(std::begin(data), std::end(data), std::begin(out)));
}

TEST(Per, Ia5StringRoundTripAndValidation) {
  PerEncoder e;
  e.ia5_string("DENM test 123!");
  PerDecoder d{e.finish()};
  EXPECT_EQ(d.ia5_string(), "DENM test 123!");

  PerEncoder bad;
  EXPECT_THROW(bad.ia5_string("caf\xc3\xa9"), std::invalid_argument);
}

TEST(Per, BooleanAndMixedSequence) {
  PerEncoder e;
  e.boolean(true);
  e.constrained(-5, -10, 10);
  e.boolean(false);
  e.unconstrained(123456789);
  PerDecoder d{e.finish()};
  EXPECT_TRUE(d.boolean());
  EXPECT_EQ(d.constrained(-10, 10), -5);
  EXPECT_FALSE(d.boolean());
  EXPECT_EQ(d.unconstrained(), 123456789);
}

TEST(Per, DecoderDetectsTruncation) {
  PerEncoder e;
  e.octet_string({1, 2, 3, 4, 5});
  auto buf = e.finish();
  buf.pop_back();
  PerDecoder d{buf};
  EXPECT_THROW((void)d.octet_string(), DecodeError);
}

}  // namespace
}  // namespace rst::asn1
