#include <gtest/gtest.h>

#include "rst/core/testbed.hpp"
#include "rst/roadside/associator.hpp"

namespace rst::roadside {
namespace {

using namespace rst::sim::literals;

TEST(Associator, StableIdForAMovingObject) {
  DetectionAssociator assoc;
  std::uint32_t id = 0;
  for (int i = 0; i < 20; ++i) {
    const geo::Vec2 pos{0.0, 8.0 - 0.3 * i};  // approaching at 1.2 m/s, 4 Hz
    const auto ids = assoc.associate({pos}, 250_ms * i);
    ASSERT_EQ(ids.size(), 1u);
    if (i == 0) {
      id = ids[0];
    } else {
      EXPECT_EQ(ids[0], id) << "track identity lost at frame " << i;
    }
  }
  EXPECT_EQ(assoc.active_tracks(), 1u);
}

TEST(Associator, DistinctObjectsKeepDistinctIds) {
  DetectionAssociator assoc;
  std::uint32_t id_a = 0;
  std::uint32_t id_b = 0;
  for (int i = 0; i < 15; ++i) {
    const geo::Vec2 a{0.0, 8.0 - 0.3 * i};
    const geo::Vec2 b{5.0, 2.0 + 0.3 * i};
    const auto ids = assoc.associate({a, b}, 250_ms * i);
    ASSERT_EQ(ids.size(), 2u);
    if (i == 0) {
      id_a = ids[0];
      id_b = ids[1];
      EXPECT_NE(id_a, id_b);
    } else {
      EXPECT_EQ(ids[0], id_a);
      EXPECT_EQ(ids[1], id_b);
    }
  }
  EXPECT_EQ(assoc.active_tracks(), 2u);
}

TEST(Associator, MissedFramesSurvivedByPrediction) {
  DetectionAssociator assoc;
  // Converge the velocity estimate first.
  std::uint32_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id = assoc.associate({{0.0, 8.0 - 0.3 * i}}, 250_ms * i)[0];
  }
  // Two frames missed; the object moved 0.9 m meanwhile — outside the
  // static gate but matched thanks to constant-velocity prediction.
  const auto ids = assoc.associate({{0.0, 8.0 - 0.3 * 10}}, 250_ms * 10);
  EXPECT_EQ(ids[0], id);
}

TEST(Associator, TimeoutStartsAFreshTrack) {
  DetectionAssociator assoc;
  const auto first = assoc.associate({{0, 0}}, 0_ms)[0];
  const auto second = assoc.associate({{0, 0}}, 5_s)[0];  // far beyond timeout
  EXPECT_NE(first, second);
  EXPECT_EQ(assoc.active_tracks(), 1u);
}

TEST(Associator, FarDetectionIsANewObjectNotAMatch) {
  DetectionAssociator assoc;
  const auto a = assoc.associate({{0, 0}}, 0_ms)[0];
  const auto b = assoc.associate({{10, 10}}, 250_ms)[0];
  EXPECT_NE(a, b);
  EXPECT_EQ(assoc.active_tracks(), 2u);
}

}  // namespace
}  // namespace rst::roadside

namespace rst::core {
namespace {

TEST(TestbedAnonymized, ChainWorksWithoutSimulatorIdentities) {
  TestbedConfig config;
  config.seed = 81;
  config.detection.anonymize_detections = true;
  TestbedScenario scenario{config};
  const TrialResult r = scenario.run_emergency_brake_trial();
  ASSERT_TRUE(r.stopped_by_denm);
  EXPECT_LT(r.meas_total_ms, 100.0);
  // The min-range backstop also works on associated ids: the approaching
  // track's history supports the 1.73 m default inference.
  EXPECT_GT(r.braking_distance_m, 0.1);
}

}  // namespace
}  // namespace rst::core
