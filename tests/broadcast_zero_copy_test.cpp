// Proves the copy-free broadcast path: when one radio transmits to N
// receivers, every delivered Frame (and the promiscuous-tap capture)
// shares the single payload buffer the sender created — the rst::Bytes
// instrumentation counts exactly one backing buffer for the whole
// broadcast, all aliases pointing at the same storage.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rst/bytes.hpp"
#include "rst/dot11p/medium.hpp"
#include "rst/dot11p/radio.hpp"

namespace rst::dot11p {
namespace {

struct Rig {
  sim::Scheduler sched;
  sim::RandomStream rng{1234, "zero_copy_test"};
  std::unique_ptr<Medium> medium;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::vector<Frame>> received;

  Rig() {
    ChannelModel channel;
    channel.path_loss = std::make_shared<LogDistanceModel>(LogDistanceModel::its_g5(2.0));
    channel.shadowing_sigma_db = 0.0;
    medium = std::make_unique<Medium>(sched, rng.child("medium"), channel);
  }

  Radio& add_radio(geo::Vec2 pos) {
    const auto index = radios.size();
    received.emplace_back();
    radios.push_back(std::make_unique<Radio>(
        *medium, RadioConfig{}, [pos] { return pos; },
        rng.child("radio" + std::to_string(index)), "radio" + std::to_string(index)));
    radios.back()->set_receive_callback(
        [this, index](const Frame& f, const RxInfo&) { received[index].push_back(f); });
    return *radios.back();
  }
};

TEST(BroadcastZeroCopy, NReceiverBroadcastCreatesOneBuffer) {
  constexpr int kReceivers = 16;
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  for (int i = 0; i < kReceivers; ++i) {
    rig.add_radio({5.0 + i, 0});  // all well inside radio range
  }

  const auto buffers_before = Bytes::buffer_count();
  Frame f;
  f.payload.assign(300, 0xAB);  // the one and only payload buffer
  const auto storage = f.payload.storage_id();
  tx.send(std::move(f));
  rig.sched.run();
  const auto buffers_after = Bytes::buffer_count();

  // Exactly one backing buffer was created for the whole broadcast: the
  // sender's. Copying Frames (into the MAC queue, the transmission, and
  // each receiver's callback) must alias it, never duplicate it.
  EXPECT_EQ(buffers_after - buffers_before, 1u);

  for (int i = 1; i <= kReceivers; ++i) {
    ASSERT_EQ(rig.received[i].size(), 1u) << "receiver " << i;
    const auto& rx = rig.received[i][0].payload;
    EXPECT_EQ(rx.size(), 300u);
    EXPECT_EQ(rx.storage_id(), storage) << "receiver " << i << " got a copied payload";
  }
  EXPECT_EQ(rig.received[0].size(), 0u);  // no self-reception
}

TEST(BroadcastZeroCopy, StoredFramesShareUseCount) {
  Rig rig;
  auto& tx = rig.add_radio({0, 0});
  rig.add_radio({5, 0});
  rig.add_radio({10, 0});

  Frame f;
  f.payload.assign(100, 0x55);
  const Bytes alias = f.payload;  // test-side alias to observe the count
  ASSERT_EQ(alias.use_count(), 2);
  tx.send(std::move(f));
  rig.sched.run();

  // Both receivers stored a Frame aliasing the same buffer (plus the
  // test alias and the lazily-pruned transmission record).
  EXPECT_GE(alias.use_count(), 3);
  EXPECT_EQ(rig.received[1][0].payload.storage_id(), alias.storage_id());
  EXPECT_EQ(rig.received[2][0].payload.storage_id(), alias.storage_id());
}

TEST(BroadcastZeroCopy, BytesValueSemanticsStillHold) {
  // Mutation through assignment must not affect aliases (the buffer is
  // immutable; assignment rebinds).
  Bytes a = std::vector<std::uint8_t>{1, 2, 3};
  Bytes b = a;
  EXPECT_EQ(a.storage_id(), b.storage_id());
  b = std::vector<std::uint8_t>{4, 5};
  EXPECT_NE(a.storage_id(), b.storage_id());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u);
  const std::vector<std::uint8_t>& view = a;  // implicit vector view
  EXPECT_EQ(view, (std::vector<std::uint8_t>{1, 2, 3}));
}

}  // namespace
}  // namespace rst::dot11p
