#include <gtest/gtest.h>

#include "rst/core/platoon.hpp"
#include "rst/vehicle/cacc.hpp"

namespace rst::vehicle {
namespace {

using namespace rst::sim::literals;

/// Minimal two-vehicle rig with a direct (radio-less) CAM feed.
struct CaccRig {
  sim::Scheduler sched;
  sim::RandomStream rng{909, "cacc_test"};
  VehicleDynamics leader{sched, {}, rng.child("lead")};
  VehicleDynamics follower{sched, {}, rng.child("follow")};
  CaccController cacc{sched, follower, {}, nullptr, "cacc"};
  sim::EventHandle feed_timer;
  sim::EventHandle lead_timer;

  CaccRig() {
    leader.reset({0, 5.0}, 0.0, 1.2);
    follower.reset({0, 0.0}, 0.0, 1.2);
  }

  void drive_leader_constant(double throttle) {
    leader.set_throttle(throttle);
    lead_timer = sched.schedule_in(50_ms, [this, throttle] { drive_leader_constant(throttle); });
  }

  void feed_cams(sim::SimTime period = 100_ms) {
    its::Cam cam;
    cam.high_frequency.speed = its::Speed::from_mps(leader.speed_mps());
    cacc.on_leader_cam(cam, leader.position());
    feed_timer = sched.schedule_in(period, [this, period] { feed_cams(period); });
  }
};

TEST(Cacc, ConvergesToTheTimeGapPolicy) {
  CaccRig rig;
  rig.leader.start();
  rig.follower.start();
  rig.drive_leader_constant(0.05);  // leader holds ~1.2 m/s
  rig.feed_cams();
  rig.cacc.start();
  rig.sched.run_until(30_s);

  ASSERT_TRUE(rig.cacc.leader_valid());
  const double v = rig.follower.speed_mps();
  const double desired = 0.6 + 0.6 * v;  // standstill + headway * v
  EXPECT_NEAR(rig.cacc.current_gap_m(), desired, 0.3);
  EXPECT_NEAR(v, rig.leader.speed_mps(), 0.25);
  EXPECT_GT(rig.cacc.control_updates(), 100u);
}

TEST(Cacc, CoastsWhenAwarenessIsLost) {
  CaccRig rig;
  rig.leader.start();
  rig.follower.start();
  rig.drive_leader_constant(0.05);
  rig.feed_cams();
  rig.cacc.start();
  rig.sched.run_until(10_s);
  const double v_tracking = rig.follower.speed_mps();
  EXPECT_GT(v_tracking, 0.5);

  rig.feed_timer.cancel();  // CAMs stop arriving
  rig.sched.run_until(20_s);
  EXPECT_FALSE(rig.cacc.leader_valid());
  // Fail-safe: throttle released, the follower slows well below tracking.
  EXPECT_LT(rig.follower.speed_mps(), v_tracking / 2.0);
}

TEST(Cacc, PowerCutLatchesOff) {
  CaccRig rig;
  rig.leader.start();
  rig.follower.start();
  rig.drive_leader_constant(0.05);
  rig.feed_cams();
  rig.cacc.start();
  rig.sched.run_until(5_s);
  rig.follower.cut_power();
  rig.sched.run_until(10_s);
  EXPECT_TRUE(rig.follower.stopped());
  // CACC stopped itself and never re-applied throttle.
  const double odometer = rig.follower.odometer_m();
  rig.sched.run_until(15_s);
  EXPECT_DOUBLE_EQ(rig.follower.odometer_m(), odometer);
}

}  // namespace
}  // namespace rst::vehicle

namespace rst::core {
namespace {

using namespace rst::sim::literals;

TEST(PlatoonCacc, FollowersHoldGapsAndStillStopOnDenm) {
  PlatoonConfig config;
  config.seed = 404;
  config.n_vehicles = 4;
  config.spacing_m = 1.4;
  config.use_cacc = true;
  PlatoonScenario scenario{config};
  const auto result = scenario.run_emergency_stop(8_s, 15_s);
  EXPECT_TRUE(result.all_stopped);
  // Gap regulation kept everyone clear of each other throughout.
  EXPECT_GT(result.min_gap_m, 0.1);
  for (const auto& v : result.vehicles) {
    EXPECT_LT(v.detection_to_action_ms, 150.0);
  }
}

}  // namespace
}  // namespace rst::core
